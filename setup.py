"""Shim so `pip install -e .` works without the `wheel` package installed
(this environment is offline; setuptools<70 cannot build PEP 660 editable
wheels without it). All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
