"""The R3000's 64-entry fully-associative TLB (one per CPU).

The paper's instrumentation records every TLB change so the
postprocessing program can translate physical trace addresses back to
virtual ones (Section 2.2); our kernel emits the same escape records when
it refills the TLB.

Replacement is random-among-unwired in the real R3000; we model FIFO,
which has the same steady-state fault behaviour for the working-set sizes
involved and keeps runs deterministic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class TlbEntry:
    """One address translation."""

    pid: int
    vpage: int
    frame: int
    is_text: bool


class Tlb:
    """Fully-associative TLB keyed by (pid, virtual page)."""

    def __init__(self, entries: int = 64):
        if entries < 1:
            raise ValueError("TLB needs at least one entry")
        self.capacity = entries
        self._map: "OrderedDict[Tuple[int, int], TlbEntry]" = OrderedDict()
        self.lookups = 0
        self.misses = 0

    def lookup(self, pid: int, vpage: int) -> Optional[TlbEntry]:
        """Translate; None on a TLB miss (fault)."""
        self.lookups += 1
        entry = self._map.get((pid, vpage))
        if entry is None:
            self.misses += 1
        return entry

    def insert(self, entry: TlbEntry) -> Tuple[int, Optional[TlbEntry]]:
        """Install a translation.

        Returns ``(index, evicted)`` where ``index`` is the slot number
        reported in the TLB-change escape record and ``evicted`` is the
        entry pushed out, if the TLB was full.
        """
        key = (entry.pid, entry.vpage)
        evicted = None
        if key in self._map:
            del self._map[key]
        elif len(self._map) >= self.capacity:
            _, evicted = self._map.popitem(last=False)
        self._map[key] = entry
        # Slot index is synthetic (the analysis only needs a stable id).
        index = len(self._map) - 1
        return index, evicted

    def flush_pid(self, pid: int) -> int:
        """Drop every translation belonging to ``pid`` (address-space
        teardown on exit/exec). Returns the number dropped."""
        stale = [key for key in self._map if key[0] == pid]
        for key in stale:
            del self._map[key]
        return len(stale)

    def flush_frame(self, frame: int) -> int:
        """Drop every translation pointing at a physical frame (page
        reclaim). Returns the number dropped."""
        stale = [key for key, entry in self._map.items() if entry.frame == frame]
        for key in stale:
            del self._map[key]
        return len(stale)

    def entries(self) -> List[TlbEntry]:
        return list(self._map.values())

    def __len__(self) -> int:
        return len(self._map)

    @property
    def miss_rate(self) -> float:
        return self.misses / self.lookups if self.lookups else 0.0
