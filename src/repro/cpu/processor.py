"""Per-CPU execution context.

All memory references in the simulator — kernel and application alike —
are issued through a :class:`Processor`, which

- keeps the CPU's local cycle clock,
- attributes elapsed cycles to user / system / idle time (the Table 1
  execution-time split),
- carries the classification context (who is executing: OS or
  application, and the CPU's *application epoch* used to detect
  ``Dispossame`` misses), and
- charges the paper's stall costs for every miss the memory system
  reports.

References are issued at cache-block granularity: one instruction block
(16 bytes = four R3000 instructions) costs four issue cycles, one data
touch costs one cycle, and misses add the 35-cycle bus stall
(Section 3.1).
"""

from __future__ import annotations

from typing import Dict

from repro.common.params import MachineParams
from repro.common.types import Mode, RefDomain
from repro.cpu.tlb import Tlb
from repro.memsys.system import MemorySystem

# Issue cost of one fetched instruction block (4 instructions at ~1 CPI).
IFETCH_ISSUE_CYCLES = 4
# Issue cost of one data touch (the load/store itself).
DTOUCH_ISSUE_CYCLES = 1


class Processor:
    """One CPU: clock, mode accounting and reference issue."""

    def __init__(self, cpu_id: int, params: MachineParams, memsys: MemorySystem):
        self.cpu_id = cpu_id
        self.params = params
        self.memsys = memsys
        self.tlb = Tlb(params.tlb_entries)
        self.cycles = 0
        self.mode = Mode.IDLE
        self.domain = RefDomain.OS
        # Incremented whenever the CPU returns to application code; used
        # to distinguish Dispossame (OS self-displacement with no
        # intervening application run, Table 2).
        self.app_epoch = 0
        self.current_pid: int = 0  # 0 = nobody (idle)
        self.mode_cycles: Dict[Mode, int] = {m: 0 for m in Mode}
        self.stall_cycles: Dict[Mode, int] = {m: 0 for m in Mode}
        # Block-granularity references this CPU has issued, across all
        # fidelity tiers; the fidelity layer reports per-tier reference
        # throughput (refs/s of wall clock) from these.
        self.refs_retired = 0
        self._block_bytes = params.block_bytes
        # When set, miss latencies are not charged as stall time: the
        # data was prefetched ahead of use ("if the data to be copied or
        # cleared is prefetched in advance while other computation is in
        # progress, the latency of the misses is hidden" — Section 4.2.2).
        # Bus traffic and cache effects still happen.
        self.prefetch_mode = False
        # Sanitizer hook (repro.sanitizers): called with
        # (cpu_id, addr, write) on the word-granularity reference paths
        # the kernel uses for structure touches. None when checking is
        # off; the block-granularity user paths are never probed.
        self.access_probe = None
        # Deep-mode hook: called with (cpu_id, block, write) on the
        # block-granularity sweep paths (dread_block/dwrite_block), so
        # bcopy/PCB/kernel-stack sweeps can be attributed to structures.
        # None unless checking runs with check="deep".
        self.block_probe = None

    # ------------------------------------------------------------------
    # Mode transitions
    # ------------------------------------------------------------------
    def set_mode(self, mode: Mode) -> None:
        if mode is Mode.USER and self.mode is not Mode.USER:
            self.app_epoch += 1
        self.mode = mode
        self.domain = RefDomain.APP if mode is Mode.USER else RefDomain.OS

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def advance(self, cycles: int) -> None:
        """Burn ``cycles`` of computation in the current mode."""
        if cycles < 0:
            raise ValueError("cannot advance time backwards")
        self.cycles += cycles
        self.mode_cycles[self.mode] += cycles

    def advance_to(self, target_cycles: int) -> None:
        """Advance the local clock to an absolute time (idle waits)."""
        if target_cycles > self.cycles:
            self.advance(target_cycles - self.cycles)

    def _stall(self, cycles: int) -> None:
        if cycles and not self.prefetch_mode:
            self.cycles += cycles
            self.mode_cycles[self.mode] += cycles
            self.stall_cycles[self.mode] += cycles

    def charge_stall(self, cycles: int) -> None:
        """Charge an externally-computed stall (synchronization bus ops)."""
        if cycles < 0:
            raise ValueError("stall cycles must be non-negative")
        self._stall(cycles)

    # ------------------------------------------------------------------
    # Reference issue (physical addresses)
    # ------------------------------------------------------------------
    def ifetch_range(self, base: int, size: int) -> None:
        """Execute straight-line code spanning ``[base, base+size)``."""
        if size <= 0:
            return
        block_bytes = self._block_bytes
        first = base // block_bytes
        last = (base + size - 1) // block_bytes
        nblocks = last - first + 1
        self.refs_retired += nblocks
        if self.memsys.atomic:
            self.advance(nblocks * IFETCH_ISSUE_CYCLES)
            self._stall(self.memsys.atomic_ifetch_range(
                self.cpu_id, first, nblocks, self.domain, self.app_epoch
            ))
            return
        fetch = self.memsys.ifetch
        for block in range(first, last + 1):
            self.advance(IFETCH_ISSUE_CYCLES)
            self._stall(fetch(self.cycles, self.cpu_id, block, self.domain, self.app_epoch))

    def ifetch_block(self, block: int) -> None:
        """Fetch one instruction block (loop bodies, idle loop)."""
        self.refs_retired += 1
        self.advance(IFETCH_ISSUE_CYCLES)
        m = self.memsys
        if (m.atomic and m._icache_dm
                and block in m.hierarchies[self.cpu_id].icache._present):
            # Atomic-tier hit: zero stall, no state movement — skip the
            # call into the memory system (same shortcut its own atomic
            # path would take).
            m.atomic_refs += 1
            return
        self._stall(
            m.ifetch(self.cycles, self.cpu_id, block, self.domain, self.app_epoch)
        )

    def dread(self, addr: int) -> None:
        """Load from one data address."""
        if self.access_probe is not None:
            self.access_probe(self.cpu_id, addr, False)
        self.refs_retired += 1
        self.advance(DTOUCH_ISSUE_CYCLES)
        m = self.memsys
        block = addr // self._block_bytes
        if (m.atomic and m._dl2_dm
                and block in m.hierarchies[self.cpu_id].dl2._present):
            m.atomic_refs += 1  # atomic-tier hit (see ifetch_block)
            return
        self._stall(
            m.dread(self.cycles, self.cpu_id, block, self.domain, self.app_epoch)
        )

    def dwrite(self, addr: int) -> None:
        """Store to one data address."""
        if self.access_probe is not None:
            self.access_probe(self.cpu_id, addr, True)
        self.refs_retired += 1
        self.advance(DTOUCH_ISSUE_CYCLES)
        m = self.memsys
        block = addr // self._block_bytes
        if (m.atomic and m._dl2_dm
                and block in m.hierarchies[self.cpu_id].dl2._present
                and m._owner.get(block) == self.cpu_id):
            m.atomic_refs += 1  # atomic-tier owned-hit (see ifetch_block)
            return
        self._stall(
            m.dwrite(self.cycles, self.cpu_id, block, self.domain, self.app_epoch)
        )

    def dread_block(self, block: int) -> None:
        if self.block_probe is not None:
            self.block_probe(self.cpu_id, block, False)
        self.refs_retired += 1
        self.advance(DTOUCH_ISSUE_CYCLES)
        m = self.memsys
        if (m.atomic and m._dl2_dm
                and block in m.hierarchies[self.cpu_id].dl2._present):
            m.atomic_refs += 1  # atomic-tier hit (see ifetch_block)
            return
        self._stall(
            m.dread(self.cycles, self.cpu_id, block, self.domain, self.app_epoch)
        )

    def dwrite_block(self, block: int) -> None:
        if self.block_probe is not None:
            self.block_probe(self.cpu_id, block, True)
        self.refs_retired += 1
        self.advance(DTOUCH_ISSUE_CYCLES)
        m = self.memsys
        if (m.atomic and m._dl2_dm
                and block in m.hierarchies[self.cpu_id].dl2._present
                and m._owner.get(block) == self.cpu_id):
            m.atomic_refs += 1  # atomic-tier owned-hit (see ifetch_block)
            return
        self._stall(
            m.dwrite(self.cycles, self.cpu_id, block, self.domain, self.app_epoch)
        )

    def dtouch_range(self, base: int, size: int, write: bool = False) -> None:
        """Sweep a data range block by block (structure touches, block ops)."""
        if size <= 0:
            return
        if self.access_probe is not None:
            # Structure sweeps stay within one region; attribute by base.
            self.access_probe(self.cpu_id, base, write)
        block_bytes = self._block_bytes
        first = base // block_bytes
        last = (base + size - 1) // block_bytes
        if self.memsys.atomic and self.block_probe is None:
            nblocks = last - first + 1
            self.refs_retired += nblocks
            self.advance(nblocks * DTOUCH_ISSUE_CYCLES)
            self._stall(self.memsys.atomic_dtouch(
                self.cpu_id, first, nblocks, write, self.domain, self.app_epoch
            ))
            return
        touch = self.dwrite_block if write else self.dread_block
        for block in range(first, last + 1):
            touch(block)

    def copy_blocks(self, src_block: int, dst_block: int, nblocks: int,
                    loop_block: int, refetch_every: int) -> None:
        """bcopy's inner loop: read source, write destination, with the
        loop-body refetch every ``refetch_every`` blocks."""
        if nblocks <= 0:
            return
        if self.memsys.atomic and self.block_probe is None:
            n_if = (nblocks + refetch_every - 1) // refetch_every
            self.refs_retired += 2 * nblocks + n_if
            self.advance(
                2 * nblocks * DTOUCH_ISSUE_CYCLES + n_if * IFETCH_ISSUE_CYCLES
            )
            self._stall(self.memsys.atomic_sweep(
                self.cpu_id, dst_block, nblocks, loop_block, refetch_every,
                self.domain, self.app_epoch, src_block=src_block,
            ))
            return
        for i in range(nblocks):
            self.dread_block(src_block + i)
            self.dwrite_block(dst_block + i)
            if i % refetch_every == 0:
                self.ifetch_block(loop_block)

    def clear_blocks(self, dst_block: int, nblocks: int,
                     loop_block: int, refetch_every: int) -> None:
        """bclear's inner loop: write destination blocks with refetch."""
        if nblocks <= 0:
            return
        if self.memsys.atomic and self.block_probe is None:
            n_if = (nblocks + refetch_every - 1) // refetch_every
            self.refs_retired += nblocks + n_if
            self.advance(
                nblocks * DTOUCH_ISSUE_CYCLES + n_if * IFETCH_ISSUE_CYCLES
            )
            self._stall(self.memsys.atomic_sweep(
                self.cpu_id, dst_block, nblocks, loop_block, refetch_every,
                self.domain, self.app_epoch,
            ))
            return
        for i in range(nblocks):
            self.dwrite_block(dst_block + i)
            if i % refetch_every == 0:
                self.ifetch_block(loop_block)

    def uncached_read(self, addr: int) -> None:
        """Cache-bypassing byte read (escape references)."""
        self.refs_retired += 1
        self.advance(DTOUCH_ISSUE_CYCLES)
        self._stall(self.memsys.uncached_read(self.cycles, self.cpu_id, addr, self.domain))

    # ------------------------------------------------------------------
    # Accounting queries
    # ------------------------------------------------------------------
    def non_idle_cycles(self) -> int:
        return self.mode_cycles[Mode.USER] + self.mode_cycles[Mode.KERNEL]

    def time_split(self) -> Dict[Mode, float]:
        """Fraction of this CPU's time in each mode (Table 1 columns 2-4)."""
        total = sum(self.mode_cycles.values())
        if total == 0:
            return {m: 0.0 for m in Mode}
        return {m: cycles / total for m, cycles in self.mode_cycles.items()}
