"""Processor-side models: the R3000's TLB and the per-CPU execution
context through which all memory references are issued."""

from repro.cpu.tlb import Tlb, TlbEntry
from repro.cpu.processor import Processor

__all__ = ["Tlb", "TlbEntry", "Processor"]
