"""User-mode execution engine.

Executes workload-driver actions on a CPU: sampled working-set
references for :class:`~repro.workloads.actions.Compute` (every touch
goes through the TLB, so UTLB faults, expensive faults and copy-on-write
behaviour all emerge), system calls through the kernel's Table 8
operation wrappers, and the user-level spinlock protocol whose backoff is
the ``sginap`` storm of Multpgm (Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.common.types import HighLevelOp
from repro.kernel.process import DATA_VBASE, Process
from repro.workloads import actions as A
from repro.workloads.base import EngineConfig

# Outcomes of running one slice / one action.
RAN = "ran"            # budget exhausted, process still current
BLOCKED = "blocked"    # process slept; CPU switched or idles
EXITED = "exited"
SWITCHED = "switched"  # voluntary yield moved the CPU to another process

_DONE = "done"
_PARTIAL = "partial"

# The synchronization library's protocol (Table 8): spin count before
# sginap, and per-iteration cost.
LIBRARY_SPINS = 20
SPIN_CYCLES = 30
USER_LOCK_ACQUIRE_CYCLES = 40   # uncached test + set
USER_LOCK_RELEASE_CYCLES = 20

_IFETCH_ISSUE = 4  # mirrors processor.IFETCH_ISSUE_CYCLES
_DTOUCH_ISSUE = 1  # mirrors processor.DTOUCH_ISSUE_CYCLES


@dataclass
class UserLock:
    """A user-level spinlock word (application shared memory).

    Critical sections execute atomically within an engine slice, so the
    lock remembers the release time of the last hold interval; an attempt
    whose local time falls inside a recorded interval was, in machine
    time, contended (same technique as :class:`KernelLock`). A holder
    preempted or blocked mid-section keeps ``holder_pid`` set across
    slices — the case that produces the long sginap storms.
    """

    holder_pid: Optional[int] = None
    release_time: int = 0   # local-clock end of the last hold interval
    acquires: int = 0
    contended_acquires: int = 0


class UserEngine:
    """Drives workload processes on CPUs."""

    def __init__(self, kernel, config: EngineConfig, rng):
        self.k = kernel
        self.cfg = config
        self.rng = rng
        self.user_locks: Dict[int, UserLock] = {}
        self.app_sync_spins = 0
        self.lock_sginaps = 0
        self._blocks_per_page = kernel.params.page_bytes // kernel.params.block_bytes

    # ------------------------------------------------------------------
    # Slice execution
    # ------------------------------------------------------------------
    def run_slice(self, proc, process: Process, budget_cycles: int) -> str:
        """Run ``process`` on ``proc`` for up to ``budget_cycles``."""
        deadline = proc.cycles + budget_cycles
        while proc.cycles < deadline:
            if self.k.current[proc.cpu_id] is not process:
                return SWITCHED
            action = process.pending_action
            if action is None:
                if self.k.driver_log is not None:
                    self.k.driver_log.append(("n", process.pid))
                try:
                    action = next(process.driver)
                except StopIteration:
                    self._do_exit(proc, process)
                    return EXITED
                process.pending_action = action
            outcome = self._execute(proc, process, action, deadline)
            if outcome == _DONE:
                process.pending_action = None
                continue
            if outcome == _PARTIAL:
                continue  # compute will re-check the deadline
            if outcome == EXITED:
                process.pending_action = None
                return EXITED
            return outcome  # BLOCKED or SWITCHED (pending action retained)
        return RAN

    # ------------------------------------------------------------------
    # Action dispatch
    # ------------------------------------------------------------------
    def _execute(self, proc, process: Process, action, deadline: int) -> str:
        k = self.k
        if isinstance(action, A.Compute):
            return self._do_compute(proc, process, action, deadline)
        if isinstance(action, A.ReadFile):
            with k.os_invocation(proc, HighLevelOp.IO_SYSCALL):
                done, action.progress = k.syscalls.read(
                    proc, process, action.ino, action.offset, action.nbytes,
                    action.progress,
                )
                if not done:
                    k.block_current(proc)
            return _DONE if done else BLOCKED
        if isinstance(action, A.WriteFile):
            with k.os_invocation(proc, HighLevelOp.IO_SYSCALL):
                k.syscalls.write(
                    proc, process, action.ino, action.offset, action.nbytes
                )
            return _DONE
        if isinstance(action, A.OpenFile):
            with k.os_invocation(proc, HighLevelOp.IO_SYSCALL):
                k.syscalls.open(proc, process, action.ino)
            return _DONE
        if isinstance(action, A.Sginap):
            # A plain yield is complete once issued, even if the CPU
            # switched away; clear it so resumption does not re-yield.
            process.pending_action = None
            return self._do_sginap(proc, process)
        if isinstance(action, A.UserLockAcquire):
            return self._do_user_lock_acquire(proc, process, action)
        if isinstance(action, A.UserLockRelease):
            lock = self.user_locks.setdefault(action.lock_id, UserLock())
            proc.advance(USER_LOCK_RELEASE_CYCLES)
            lock.holder_pid = None
            lock.release_time = proc.cycles
            return _DONE
        if isinstance(action, A.Fork):
            with k.os_invocation(proc, HighLevelOp.OTHER_SYSCALL):
                action.child = k.syscalls.fork(
                    proc, process, action.name, action.driver_factory()
                )
            return _DONE
        if isinstance(action, A.Exec):
            with k.os_invocation(proc, HighLevelOp.OTHER_SYSCALL):
                k.syscalls.exec(proc, process, action.image, action.data_pages)
            return _DONE
        if isinstance(action, A.WaitChild):
            with k.os_invocation(proc, HighLevelOp.OTHER_SYSCALL):
                done = k.syscalls.wait_for(proc, process, action.child)
                if not done:
                    k.block_current(proc)
            return _DONE if done else BLOCKED
        if isinstance(action, A.ExitProc):
            self._do_exit(proc, process)
            return EXITED
        if isinstance(action, A.SleepFor):
            # One-shot: the wakeup completes the action (re-executing it
            # after the timer fired would sleep forever).
            process.pending_action = None
            with k.os_invocation(proc, HighLevelOp.OTHER_SYSCALL):
                k.syscalls.misc(proc, process, "time")
                wake = proc.cycles + k.params.ms_to_cycles(action.ms)
                k.sleep_until(process, wake)
                k.block_current(proc)
            return BLOCKED
        if isinstance(action, A.TermWait):
            pending = k.tty_input.get(action.session_id, 0)
            if pending > 0:
                k.tty_input[action.session_id] = 0
                with k.os_invocation(proc, HighLevelOp.IO_SYSCALL):
                    k.syscalls.tty_read(proc, process, action.session_id, pending)
                return _DONE
            with k.os_invocation(proc, HighLevelOp.IO_SYSCALL):
                k.syscalls.misc(proc, process, "ioctl")
                k.sleep(process, ("tty", action.session_id))
                k.block_current(proc)
            return BLOCKED
        if isinstance(action, A.TermWrite):
            with k.os_invocation(proc, HighLevelOp.IO_SYSCALL):
                k.syscalls.tty_write(proc, process, action.session_id, action.nchars)
            return _DONE
        if isinstance(action, A.Brk):
            with k.os_invocation(proc, HighLevelOp.OTHER_SYSCALL):
                k.syscalls.brk(proc, process, action.data_pages)
            return _DONE
        if isinstance(action, A.SemOp):
            with k.os_invocation(proc, HighLevelOp.OTHER_SYSCALL):
                ok = k.syscalls.semop(proc, process, action.sem_id, action.delta)
                if not ok:
                    k.block_current(proc)
            return _DONE if ok else BLOCKED
        if isinstance(action, A.Misc):
            with k.os_invocation(proc, HighLevelOp.OTHER_SYSCALL):
                k.syscalls.misc(proc, process, action.flavor)
            return _DONE
        raise TypeError(f"unknown action {action!r}")

    # ------------------------------------------------------------------
    # Compute: sampled working-set references
    # ------------------------------------------------------------------
    def _do_compute(self, proc, process: Process, action: A.Compute,
                    deadline: int) -> str:
        cfg = self.cfg
        remaining = action.cycles - action.done_cycles
        chunk = min(remaining, max(0, deadline - proc.cycles))
        if chunk <= 0:
            return _PARTIAL if remaining > 0 else _DONE
        if not process.hot_blocks:
            process.build_hot_set(
                self.rng, cfg.hot_text_fraction, cfg.hot_data_fraction,
                self._blocks_per_page,
            )
        ran, blocked = self._run_user_refs(proc, process, chunk, action)
        action.done_cycles += ran
        if blocked:
            return BLOCKED
        return _DONE if action.done_cycles >= action.cycles else _PARTIAL

    def _run_user_refs(self, proc, process: Process, cycles: int,
                       action: A.Compute) -> "tuple[int, bool]":
        """Issue sampled references worth ``cycles`` of computation.

        Returns (user cycles consumed, blocked?). Kernel time spent in
        faults is *not* counted against the compute budget (it shows up
        as system time, as on the real machine).
        """
        cfg = self.cfg
        k = self.k
        rng = self.rng
        hot = process.hot_blocks
        if not hot:
            proc.advance(cycles)
            return cycles, False
        n_touches = max(1, int(cycles * cfg.touches_per_kcycle / 1000))
        gap = max(0, cycles // n_touches - _IFETCH_ISSUE)
        bpp = self._blocks_per_page
        consumed = 0
        cursor = process.sweep_cursor
        advance = proc.advance
        # Atomic-tier hit fast path: a resident (and, for writes, owned)
        # block costs zero stall, so the whole processor/memsys call
        # chain collapses to the bookkeeping below. Hoisted per slice —
        # the seam can only flip `memsys.atomic` between slices. Only
        # direct-mapped geometries prove residency by membership, and a
        # deep-check probe must see every block reference.
        memsys = proc.memsys
        atomic = memsys.atomic and proc.block_probe is None
        if atomic:
            hier = memsys.hierarchies[proc.cpu_id]
            ipresent = hier.icache._present if memsys._icache_dm else ()
            dpresent = hier.dl2._present if memsys._dl2_dm else ()
            owner_get = memsys._owner.get
            cpu_id = proc.cpu_id
        for _ in range(n_touches):
            if rng.random() < cfg.jump_probability:
                cursor = rng.randrange(len(hot))
            vpage, block = hot[cursor]
            cursor = (cursor + 1) % len(hot)
            is_text = vpage < DATA_VBASE
            write = (not is_text) and rng.random() < action.write_fraction
            frame = k.translate(proc, process, vpage, write)
            if frame is None:
                process.sweep_cursor = cursor
                return consumed, True
            pblock = frame * bpp + block
            if atomic:
                if is_text:
                    if pblock in ipresent:
                        memsys.atomic_refs += 1
                        proc.refs_retired += 1
                        advance(_IFETCH_ISSUE + gap)
                        consumed += gap + _IFETCH_ISSUE
                        continue
                    proc.ifetch_block(pblock)
                elif pblock in dpresent and (
                    not write or owner_get(pblock) == cpu_id
                ):
                    memsys.atomic_refs += 1
                    proc.refs_retired += 1
                    advance(_DTOUCH_ISSUE + gap)
                    consumed += gap + _IFETCH_ISSUE
                    continue
                elif write:
                    proc.dwrite_block(pblock)
                else:
                    proc.dread_block(pblock)
            elif is_text:
                proc.ifetch_block(pblock)
            elif write:
                proc.dwrite_block(pblock)
            else:
                proc.dread_block(pblock)
            advance(gap)
            consumed += gap + _IFETCH_ISSUE
        process.sweep_cursor = cursor
        return consumed, False

    # ------------------------------------------------------------------
    # User locks and yields
    # ------------------------------------------------------------------
    def _do_user_lock_acquire(self, proc, process: Process,
                              action: A.UserLockAcquire) -> str:
        lock = self.user_locks.setdefault(action.lock_id, UserLock())
        if lock.holder_pid is None:
            wait = lock.release_time - proc.cycles
            if wait > 0 and wait <= LIBRARY_SPINS * SPIN_CYCLES:
                # Contended, but the (already-recorded) hold interval ends
                # before the library gives up: spin it out and take it.
                spins = wait // SPIN_CYCLES + 1
                action.spins_done += spins
                self.app_sync_spins += spins
                proc.advance_to(lock.release_time)
            elif wait > 0:
                # Contended beyond the library's patience: 20 spins, then
                # sginap; the retry (after reschedule) will find it free.
                return self._spin_then_sginap(proc, process, action)
            lock.holder_pid = process.pid
            lock.acquires += 1
            if action.spins_done:
                lock.contended_acquires += 1
            proc.advance(USER_LOCK_ACQUIRE_CYCLES)
            return _DONE
        if lock.holder_pid == process.pid:
            raise RuntimeError(
                f"process {process.pid} re-acquiring user lock {action.lock_id}"
            )
        # Held by a process that is descheduled or blocked mid-section.
        return self._spin_then_sginap(proc, process, action)

    def _spin_then_sginap(self, proc, process: Process,
                          action: A.UserLockAcquire) -> str:
        proc.advance(LIBRARY_SPINS * SPIN_CYCLES)
        action.spins_done += LIBRARY_SPINS
        self.app_sync_spins += LIBRARY_SPINS
        self.lock_sginaps += 1
        outcome = self._do_sginap(proc, process)
        # Still current (nobody else to run): retry the lock immediately.
        return _PARTIAL if outcome == _DONE else outcome

    def _do_sginap(self, proc, process: Process) -> str:
        """Issue the sginap system call; SWITCHED if the CPU moved on."""
        k = self.k
        with k.os_invocation(proc, HighLevelOp.SGINAP_SYSCALL):
            k.syscalls.sginap(proc, process)
        return _DONE if k.current[proc.cpu_id] is process else SWITCHED

    def _do_exit(self, proc, process: Process) -> None:
        k = self.k
        with k.os_invocation(proc, HighLevelOp.OTHER_SYSCALL):
            k.syscalls.exit(proc, process)
