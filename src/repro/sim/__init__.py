"""Simulation sessions: machine + kernel + workload + monitor."""

from repro.sim._session import Simulation, TracedRun, run_traced_workload
from repro.sim.config import CALIBRATIONS, WorkloadCalibration

__all__ = [
    "Simulation",
    "TracedRun",
    "run_traced_workload",
    "CALIBRATIONS",
    "WorkloadCalibration",
]
