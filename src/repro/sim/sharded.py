"""Sharded, vectorized trace analysis: the raw-speed core.

Two independent accelerations, both bit-exact against the serial path:

**Sharded analysis** (:func:`sharded_analysis`). The postprocessor is a
sequential decoder — escape state, reconstructed cache contents and the
frame-typing map all carry across every entry — so the trace cannot be
split naively. Instead a serial *scout* pass (a ``state_only``
:class:`~repro.analysis.decode.TraceAnalyzer`, which maintains all
decoder state but skips every windowed statistic) sweeps the stream once
and checkpoints the full inter-entry state at each shard boundary. Each
chunk is then re-analyzed with full statistics in a worker process,
seeded from its boundary checkpoint, and the per-chunk results are
spliced with :func:`merge_analyses`. Every checkpoint carries the
cumulative monitor transaction counters, and
:func:`repro.sanitizers.seams.verify_seams` asserts at every seam that
the spliced per-chunk counters land exactly on the checkpointed
cumulatives — a divergent splice raises instead of returning.

Splice rules that make the merge byte-identical to serial:

- Counters merge with ``Counter.update`` in chunk order, which
  reproduces the serial first-occurrence insertion order (exhibit
  tables iterate these counters, so ordering is load-bearing);
- lists (invocations, app intervals, block-op log, I-miss stream)
  concatenate in chunk order;
- tick sums add; ``measured_ticks`` comes from the last chunk, the only
  one that runs :meth:`TraceAnalyzer.finish` (with the globally
  precomputed end tick) — interior chunks never flush trailing time, so
  every time span is accounted exactly once, in the chunk whose entry
  triggers the accounting.

**Vectorized Figure 6 sweep** (:func:`vector_icache_config`,
:func:`simulate_icache_sweep_sharded`). The direct-mapped what-if
replays reduce to array operations: a DM set always holds the last
block that touched it, so misses fall out of one ``lexsort`` over
(cpu, flush epoch, set) runs, and the Inval floor falls out of an
event-adjacency pass — a miss is an Inval miss exactly when the
previous event for its (cpu, block) is a flush-invalidation rather
than another miss. Associative configurations keep the exact scalar
LRU replay but fan out one configuration per pool worker.

The shard count never changes any output, so it is excluded from run
and exhibit cache keys (see ``RunSettings.cache_repr``): identical
output ⇒ identical cache entry.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.decode import (
    MONITOR_FIELDS,
    AnalyzerState,
    TraceAnalysis,
    TraceAnalyzer,
)
from repro.analysis.sweeps import (
    FLUSH_CPU,
    StreamEntry,
    SweepPoint,
    simulate_icache_config,
    sweep_configs,
)
from repro.memsys.cache import set_index
from repro.sanitizers.seams import SeamRecord, verify_seams

_ENV_SHARDS = "REPRO_SHARDS"


def resolve_shards(value: Optional[int] = None) -> int:
    """Effective shard count: explicit value, else ``$REPRO_SHARDS``, else 1."""
    if value is None:
        raw = os.environ.get(_ENV_SHARDS, "").strip()
        if not raw:
            return 1
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(f"{_ENV_SHARDS}={raw!r} is not an integer") from None
    value = int(value)
    if value < 1:
        raise ValueError(f"shards must be >= 1, got {value}")
    return value


def plan_boundaries(num_entries: int, shards: int) -> List[int]:
    """Interior chunk boundaries for an even split of ``num_entries``.

    Returns strictly increasing indices in ``(0, num_entries)``; a shard
    count larger than the entry count simply collapses to fewer chunks
    (duplicate and degenerate boundaries are dropped).
    """
    boundaries = []
    for i in range(1, shards):
        cut = num_entries * i // shards
        if 0 < cut < num_entries and (not boundaries or cut > boundaries[-1]):
            boundaries.append(cut)
    return boundaries


# ----------------------------------------------------------------------
# Per-shard throughput accounting (read by the CLI and the service)
# ----------------------------------------------------------------------
class ShardStats:
    """Refs/sec of the most recent sharded analysis in this process."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.shards: List[Dict[str, float]] = []
        self.scout_seconds = 0.0
        self.wall_seconds = 0.0
        self.total_entries = 0
        self.seam_lines: List[str] = []

    def record(
        self,
        per_shard: List[Dict[str, float]],
        scout_seconds: float,
        wall_seconds: float,
        seam_lines: List[str],
    ) -> None:
        self.shards = per_shard
        self.scout_seconds = scout_seconds
        self.wall_seconds = wall_seconds
        self.total_entries = int(sum(s["entries"] for s in per_shard))
        self.seam_lines = list(seam_lines)

    def stats(self) -> Dict[str, object]:
        """Machine-readable snapshot (the service's /metrics reads this)."""
        return {
            "shards": [dict(s) for s in self.shards],
            "scout_seconds": self.scout_seconds,
            "wall_seconds": self.wall_seconds,
            "total_entries": self.total_entries,
            "total_refs_per_sec": (
                self.total_entries / self.wall_seconds if self.wall_seconds else 0.0
            ),
            "seams_ok": len(self.seam_lines),
        }

    def stats_line(self) -> str:
        if not self.shards:
            return "shards[1] serial"
        per = " ".join(
            f"s{int(s['shard'])}={s['refs_per_sec']:.0f}/s" for s in self.shards
        )
        total = self.stats()["total_refs_per_sec"]
        return (
            f"shards[{len(self.shards)}] {self.total_entries} refs: {per} "
            f"total={total:.0f}/s (scout {self.scout_seconds:.2f}s, "
            f"{len(self.seam_lines)} seams ok)"
        )


SHARD_STATS = ShardStats()


# ----------------------------------------------------------------------
# Chunk workers (top-level so they pickle under any start method)
# ----------------------------------------------------------------------
@dataclass
class _ChunkConfig:
    """Everything a worker needs to rebuild the analyzer, shipped once
    per worker through the pool initializer."""

    workload: str
    num_cpus: int
    icache_bytes: int
    dcache_bytes: int
    block_bytes: int
    keep_imiss_stream: bool
    window_start: int
    end_tick: int
    layout: object
    datamap: object
    # Mixed-fidelity runs: the simulator's warm-state dump at the
    # atomic→detailed seam (TracedRun.seam_state); None otherwise.
    seam_state: object = None


_chunk_config: Optional[_ChunkConfig] = None
_chunk_entries: Optional[list] = None


def _init_chunk_worker(config: _ChunkConfig, entries: Optional[list] = None) -> None:
    """Install the per-worker config (and, under non-fork start methods,
    the flattened entry list — fork children inherit it copy-on-write
    from the parent for free, so it ships as None there)."""
    global _chunk_config, _chunk_entries
    _chunk_config = config
    if entries is not None:
        _chunk_entries = entries


def _analyze_chunk(job) -> Tuple[int, TraceAnalysis, int, float]:
    """One chunk: restore the checkpoint, feed the entries, return stats.

    ``job`` is ``(index, start, end, state|None, is_last)`` — entry
    *indices*, not entries; the worker slices the inherited stream so
    jobs stay tiny on the pickle path. Only the last chunk finalizes
    (trailing time flush + measured window length).
    """
    index, start, end, state, is_last = job
    config = _chunk_config
    assert config is not None, "worker used without initializer"
    assert _chunk_entries is not None, "worker has no entry stream"
    entries = _chunk_entries[start:end]
    started = time.perf_counter()
    analyzer = TraceAnalyzer(
        config.workload,
        config.num_cpus,
        icache_bytes=config.icache_bytes,
        dcache_bytes=config.dcache_bytes,
        layout=config.layout,
        datamap=config.datamap,
        block_bytes=config.block_bytes,
        keep_imiss_stream=config.keep_imiss_stream,
        stats_from_tick=config.window_start,
    )
    if state is not None:
        analyzer.restore(state)
    else:
        # Chunk 0 starts from the trace head: seed the seam warm state
        # (later chunks inherit it through the scout's checkpoints).
        analyzer.seed_seam(config.seam_state)
    analyzer.feed(entries)
    if is_last:
        analyzer.finish(config.end_tick)
    return index, analyzer.result, len(entries), time.perf_counter() - started


# ----------------------------------------------------------------------
# Splicing
# ----------------------------------------------------------------------
_MERGE_META = ("workload", "num_cpus")
_MERGE_LAST = ("measured_ticks",)
_MERGE_SUM = (
    "user_ticks", "sys_ticks", "idle_ticks", "upgrades", "escape_reads",
    "monitor_instr_reads", "monitor_data_reads", "monitor_writes",
    "monitor_uncached", "utlb_count", "utlb_ticks", "utlb_misses",
)
_MERGE_COUNTER = (
    "miss_counts", "dispossame", "sharing_by_struct", "dmiss_by_struct_class",
    "imiss_dispos_by_routine", "imiss_dispos_addr_hist", "imiss_by_routine",
    "op_misses", "op_counts", "blockop_misses", "migration_op_misses",
    "ap_dispos",
)
_MERGE_LIST = ("blockop_log", "invocations", "app_intervals", "imiss_stream")


def merge_analyses(parts: Sequence[TraceAnalysis]) -> TraceAnalysis:
    """Splice per-chunk analyses into one serial-identical analysis."""
    covered = set(_MERGE_META + _MERGE_LAST + _MERGE_SUM + _MERGE_COUNTER + _MERGE_LIST)
    fields = set(TraceAnalysis.__dataclass_fields__)
    if covered != fields:  # a new field needs an explicit merge rule
        raise AssertionError(
            f"merge_analyses out of date: unhandled={sorted(fields - covered)} "
            f"stale={sorted(covered - fields)}"
        )
    first = parts[0]
    merged = TraceAnalysis(first.workload, first.num_cpus)
    for name in _MERGE_LAST:
        setattr(merged, name, getattr(parts[-1], name))
    for part in parts:
        for name in _MERGE_SUM:
            setattr(merged, name, getattr(merged, name) + getattr(part, name))
        for name in _MERGE_COUNTER:
            # Counter.update preserves first-occurrence insertion order,
            # so chunk-ordered updates reproduce the serial key order.
            getattr(merged, name).update(getattr(part, name))
        for name in _MERGE_LIST:
            getattr(merged, name).extend(getattr(part, name))
    return merged


# ----------------------------------------------------------------------
# The sharded analysis driver
# ----------------------------------------------------------------------
def sharded_analysis(
    run,
    shards: int,
    keep_imiss_stream: bool = True,
    boundaries: Optional[Sequence[int]] = None,
    use_pool: Optional[bool] = None,
) -> TraceAnalysis:
    """Analyze ``run`` in ``shards`` spliced chunks; serial-identical.

    ``boundaries`` overrides the even split (tests use it to land a
    seam mid-escape-sequence); ``use_pool=False`` keeps every chunk in
    this process (output is identical either way — the pool is purely a
    wall-clock optimization, and daemonic workers fall back to it
    automatically since they cannot have children).
    """
    from repro.analysis.report import CYCLES_PER_TICK

    wall_started = time.perf_counter()
    params = run.params
    segments = run.trace.segments
    entries = [entry for segment in segments for entry in segment.entries]
    end_tick = max((segment.end_cycles // 2 for segment in segments), default=0)
    window_start = run.measure_from_cycles // CYCLES_PER_TICK
    config = _ChunkConfig(
        workload=run.workload_name,
        num_cpus=params.num_cpus,
        icache_bytes=params.icache.size_bytes,
        dcache_bytes=params.dcache_l2.size_bytes,
        block_bytes=params.block_bytes,
        keep_imiss_stream=keep_imiss_stream,
        window_start=window_start,
        end_tick=end_tick,
        layout=run.kernel.layout,
        datamap=run.kernel.datamap,
        seam_state=getattr(run, "seam_state", None),
    )

    if boundaries is None:
        cuts = plan_boundaries(len(entries), shards)
    else:
        cuts = [b for b in sorted(set(boundaries)) if 0 < b < len(entries)]

    # Scout pass: serial, state-only, checkpointing at each boundary.
    # The last chunk needs no checkpoint beyond the final cut, so the
    # scout stops there.
    scout_started = time.perf_counter()
    states: List[AnalyzerState] = []
    scout = TraceAnalyzer(
        config.workload,
        config.num_cpus,
        icache_bytes=config.icache_bytes,
        dcache_bytes=config.dcache_bytes,
        layout=config.layout,
        datamap=config.datamap,
        block_bytes=config.block_bytes,
        state_only=True,
        stats_from_tick=window_start,
    )
    scout.seed_seam(config.seam_state)
    previous = 0
    for cut in cuts:
        scout.feed(entries[previous:cut])
        states.append(scout.snapshot(cut))
        previous = cut
    scout_seconds = time.perf_counter() - scout_started

    edges = [0] + list(cuts) + [len(entries)]
    jobs = []
    for index in range(len(edges) - 1):
        state = states[index - 1] if index > 0 else None
        jobs.append(
            (index, edges[index], edges[index + 1], state,
             index == len(edges) - 2)
        )

    if use_pool is None:
        # A pool only pays off with real parallel hardware; on one core
        # (or inside a daemonic worker) the chunks run in-process.
        use_pool = (
            len(jobs) > 1
            and (os.cpu_count() or 1) > 1
            and not multiprocessing.current_process().daemon
        )
    global _chunk_entries
    _chunk_entries = entries  # fork children inherit this copy-on-write
    try:
        if use_pool:
            fork = multiprocessing.get_start_method() == "fork"
            with multiprocessing.Pool(
                processes=min(len(jobs), os.cpu_count() or 1),
                initializer=_init_chunk_worker,
                initargs=(config, None if fork else entries),
            ) as pool:
                results = pool.map(_analyze_chunk, jobs, chunksize=1)
        else:
            _init_chunk_worker(config)
            results = [_analyze_chunk(job) for job in jobs]
    finally:
        _chunk_entries = None
    results.sort(key=lambda item: item[0])
    parts = [analysis for _, analysis, _, _ in results]

    # Seam crosscheck: spliced per-chunk monitor counters must land on
    # every checkpoint's cumulative counters exactly.
    seams = [
        SeamRecord(
            index=i + 1,
            entry_index=state.entry_index,
            cumulative=state.monitor_counters,
        )
        for i, state in enumerate(states)
    ]
    chunk_counters = [
        {name: getattr(analysis, name) for name in MONITOR_FIELDS}
        for analysis in parts
    ]
    seam_lines = verify_seams(seams, chunk_counters)

    merged = merge_analyses(parts)
    wall_seconds = time.perf_counter() - wall_started
    SHARD_STATS.record(
        [
            {
                "shard": index,
                "entries": count,
                "seconds": seconds,
                "refs_per_sec": count / seconds if seconds else 0.0,
            }
            for index, _, count, seconds in results
        ],
        scout_seconds,
        wall_seconds,
        seam_lines,
    )
    return merged


# ----------------------------------------------------------------------
# Vectorized Figure 6 replay
# ----------------------------------------------------------------------
@dataclass
class PackedStream:
    """The I-miss stream as column arrays, flush markers separated out."""

    pos: np.ndarray       # original row index of each access
    cpu: np.ndarray
    block: np.ndarray
    epoch: np.ndarray     # number of flushes before the access
    is_os: np.ndarray     # bool
    in_window: np.ndarray  # bool
    flush_pos: np.ndarray  # row index of each flush marker, in order

    def __len__(self) -> int:
        return len(self.pos)


def pack_imiss_stream(stream: Sequence[StreamEntry]) -> PackedStream:
    """Batch ``(cpu, block, is_os, in_window)`` tuples into arrays."""
    table = np.asarray(stream, dtype=np.int64).reshape(-1, 4)
    flush = table[:, 0] == FLUSH_CPU
    epoch_all = np.cumsum(flush)
    access = ~flush
    return PackedStream(
        pos=np.flatnonzero(access),
        cpu=table[access, 0],
        block=table[access, 1],
        # At access rows flush==0, so the inclusive cumsum equals the
        # number of flushes strictly before the row.
        epoch=epoch_all[access],
        is_os=table[access, 2].astype(bool),
        in_window=table[access, 3].astype(bool),
        flush_pos=np.flatnonzero(flush),
    )


def vector_icache_config(
    packed: PackedStream,
    size_bytes: int,
    block_bytes: int = 16,
    associativity: int = 1,
) -> SweepPoint:
    """Exact replay of one configuration, vectorized (1- or 2-way).

    Equivalent to :func:`simulate_icache_config`:

    - an LRU set holds the last ``associativity`` *distinct* blocks
      that touched it, so within each (cpu, epoch, set) run sequence a
      direct-mapped access misses iff the previous access touched a
      different block, and a 2-way access misses iff the block differs
      from both the previous access and the last distinct block before
      the previous access's run (found via run-start indices — one
      ``maximum.accumulate``, no per-reference loop);
    - the Inval floor follows from event adjacency: flushes emit an
      invalidation event for each block resident at the flush (the last
      one or two distinct blocks of every terminated (cpu, epoch, set)
      sequence), misses emit a miss event, and a miss is an Inval miss
      iff the nearest previous event for its (cpu, block) is an
      invalidation — any intervening miss refilled the block and
      cleared its invalidated-set membership, exactly the scalar
      ``invalidated[cpu].discard(block)``.
    """
    if associativity not in (1, 2):
        raise ValueError(
            f"vectorized replay supports associativity 1 or 2, "
            f"got {associativity}"
        )
    n = len(packed)
    if n == 0:
        return SweepPoint(size_bytes, associativity, 0, 0, 0)
    num_sets = size_bytes // (block_bytes * associativity)
    sets = set_index(packed.block, num_sets)

    # Miss detection over (cpu, epoch, set) sequences ordered by position.
    order = np.lexsort((packed.pos, sets, packed.epoch, packed.cpu))
    cpu_s = packed.cpu[order]
    epoch_s = packed.epoch[order]
    set_s = sets[order]
    block_s = packed.block[order]
    idx = np.arange(n)
    same_group = (
        (cpu_s[1:] == cpu_s[:-1])
        & (epoch_s[1:] == epoch_s[:-1])
        & (set_s[1:] == set_s[:-1])
    )
    same_block = np.zeros(n, dtype=bool)
    same_block[1:] = same_group & (block_s[1:] == block_s[:-1])
    # Start index of each position's run (maximal same-group same-block
    # stretch) and of its group.
    run_start = np.maximum.accumulate(np.where(~same_block, idx, 0))
    new_group = np.ones(n, dtype=bool)
    new_group[1:] = ~same_group
    group_start = np.maximum.accumulate(np.where(new_group, idx, 0))

    hit_s = same_block.copy()
    if associativity == 2:
        # The set also holds the last distinct block before the previous
        # access's run: position run_start[i-1] - 1, when still in-group.
        prev_prev = run_start[:-1] - 1
        second_valid = same_group & (prev_prev >= group_start[1:])
        hit_s[1:] |= second_valid & (
            block_s[1:] == block_s[np.maximum(prev_prev, 0)]
        )
    miss = np.zeros(n, dtype=bool)
    miss[order] = ~hit_s

    # Residency at each flush: the last one (DM) or two (2-way) distinct
    # blocks of every terminated (cpu, epoch, set) sequence.
    last_in_group = np.ones(n, dtype=bool)
    last_in_group[:-1] = ~same_group
    num_flushes = len(packed.flush_pos)
    resident = np.flatnonzero(last_in_group & (epoch_s < num_flushes))
    if associativity == 2:
        runner_up = run_start[resident] - 1
        runner_up = runner_up[runner_up >= group_start[resident]]
        resident = np.concatenate([resident, runner_up])

    # Event streams keyed by (cpu, block, position): invalidations at
    # their flush position, misses at their access position.
    inv_cpu = cpu_s[resident]
    inv_block = block_s[resident]
    inv_pos = packed.flush_pos[epoch_s[resident]]
    miss_idx = np.flatnonzero(miss)  # indices into the access arrays
    ev_cpu = np.concatenate([inv_cpu, packed.cpu[miss_idx]])
    ev_block = np.concatenate([inv_block, packed.block[miss_idx]])
    ev_pos = np.concatenate([inv_pos, packed.pos[miss_idx]])
    ev_is_inv = np.zeros(len(ev_cpu), dtype=bool)
    ev_is_inv[: len(inv_cpu)] = True
    ev_src = np.concatenate(
        [np.full(len(inv_cpu), -1, dtype=np.int64), miss_idx]
    )

    ev_order = np.lexsort((ev_pos, ev_block, ev_cpu))
    ev_cpu = ev_cpu[ev_order]
    ev_block = ev_block[ev_order]
    ev_is_inv = ev_is_inv[ev_order]
    ev_src = ev_src[ev_order]
    follows_inv = np.zeros(len(ev_cpu), dtype=bool)
    follows_inv[1:] = (
        (ev_cpu[1:] == ev_cpu[:-1])
        & (ev_block[1:] == ev_block[:-1])
        & ev_is_inv[:-1]
    )
    inval = np.zeros(n, dtype=bool)
    hits_from_inv = ~ev_is_inv & follows_inv
    inval[ev_src[hits_from_inv]] = True

    counted = miss & packed.in_window
    os_counted = counted & packed.is_os
    return SweepPoint(
        size_bytes,
        associativity,
        int(np.count_nonzero(os_counted)),
        int(np.count_nonzero(os_counted & inval)),
        int(np.count_nonzero(counted & ~packed.is_os)),
    )


# ----------------------------------------------------------------------
# Sweep workers: one associative configuration per pool task, the
# stream shipped once per worker through the initializer.
# ----------------------------------------------------------------------
_sweep_input: Optional[Tuple[Sequence[StreamEntry], int, int]] = None


def _init_sweep_worker(stream, num_cpus, block_bytes) -> None:
    global _sweep_input
    _sweep_input = (stream, num_cpus, block_bytes)


def _sweep_one_config(job) -> SweepPoint:
    size_bytes, associativity = job
    assert _sweep_input is not None, "worker used without initializer"
    stream, num_cpus, block_bytes = _sweep_input
    return simulate_icache_config(
        stream, num_cpus, size_bytes, associativity, block_bytes
    )


def simulate_icache_sweep_sharded(
    stream: Sequence[StreamEntry],
    num_cpus: int,
    sizes=(64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024),
    associativities=(1, 2),
    block_bytes: int = 16,
    use_pool: Optional[bool] = None,
) -> List[SweepPoint]:
    """The Figure 6 grid, accelerated; identical to the serial sweep.

    1- and 2-way points replay vectorized in-process — the per-reference
    Python loop is gone entirely, which is where the long-horizon
    speedup comes from. Higher associativities (not in the default
    grid) keep the exact scalar LRU replay, fanned out one
    configuration per pool worker.
    """
    configs = sweep_configs(sizes, associativities)
    scalar_configs = [(s, a) for s, a in configs if a not in (1, 2)]
    if use_pool is None:
        use_pool = (
            len(scalar_configs) > 1
            and (os.cpu_count() or 1) > 1
            and not multiprocessing.current_process().daemon
        )
    points: Dict[Tuple[int, int], SweepPoint] = {}
    if use_pool and scalar_configs:
        with multiprocessing.Pool(
            processes=min(len(scalar_configs), os.cpu_count() or 1),
            initializer=_init_sweep_worker,
            initargs=(stream, num_cpus, block_bytes),
        ) as pool:
            for point in pool.map(_sweep_one_config, scalar_configs, chunksize=1):
                points[(point.size_bytes, point.associativity)] = point
    else:
        for size, assoc in scalar_configs:
            points[(size, assoc)] = simulate_icache_config(
                stream, num_cpus, size, assoc, block_bytes
            )
    packed = pack_imiss_stream(stream)
    for size, assoc in configs:
        if assoc in (1, 2):
            points[(size, assoc)] = vector_icache_config(
                packed, size, block_bytes, assoc
            )
    return [points[config] for config in configs]
