"""Top-level simulation session.

Builds the full machine (memory system, CPUs, kernel, monitor, master
tracer), installs a workload, and runs the event loop: CPUs execute in
interleaved slices ordered by their local clocks; clock interrupts, disk
completions, terminal input and the master tracer's buffer checks are
delivered at slice boundaries.

:func:`run_traced_workload` is the one-call experiment entry point; it
returns a :class:`TracedRun` bundling the recorded trace with the
machine handles the analysis pipeline needs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.common.params import MachineParams
from repro.common.rng import substream
from repro.common.types import HighLevelOp, Mode
from repro.cpu.processor import Processor
from repro.fidelity import (
    UnsupportedFidelityError,
    snapshot_window_counters,
    validate_fidelity,
)
from repro.kernel.kernel import Kernel, KernelTuning
from repro.kernel.vm import VmTuning
from repro.memsys.system import MemorySystem
from repro.monitor.escapes import Instrumentation
from repro.monitor.hwmonitor import HardwareMonitor, Trace
from repro.monitor.master import MasterConfig, MasterTracer
from repro.sanitizers import (
    CheckRegistry,
    CheckReport,
    check_enabled_by_env,
    deep_check_enabled_by_env,
)
from repro.sim.config import CALIBRATIONS
from repro.sim.usermode import UserEngine
from repro.workloads import Workload, canonical_workload_args, make_workload


def clock_stagger(clock_period: int, num_cpus: int) -> List[int]:
    """First clock-tick time per CPU: one period plus ``i/num_cpus`` of a
    period, as exact integer arithmetic.

    ``clock_period * i // num_cpus`` is a Bresenham spread: offsets are
    distinct, strictly increasing, land inside ``[0, clock_period)``,
    and consecutive gaps differ by at most one cycle for *any* CPU
    count — power of two or not — with no floating-point rounding to
    drift at 64 CPUs. The 4-CPU values are byte-identical to the
    original inline loop.
    """
    return [
        clock_period + clock_period * i // num_cpus for i in range(num_cpus)
    ]


@dataclass
class TracedRun:
    """Everything a finished traced run hands to the analysis pipeline.

    A finished run is picklable (workload driver generators are dropped
    by :meth:`repro.kernel.process.Process.__getstate__`), which is what
    lets :mod:`repro.sim.runcache` persist runs across sessions and the
    parallel experiment runner ship them between processes. A restored
    run supports the whole analysis surface but must not be resumed —
    its processes' drivers are gone.
    """

    workload_name: str
    params: MachineParams
    trace: Trace
    simulation: "Simulation"
    # Statistics window start: the trace before this point only feeds the
    # cache-content reconstruction (warmup), mirroring the paper's
    # tracing of a long-running system.
    measure_from_cycles: int = 0
    # Fidelity provenance (repro.fidelity): which engine tier produced
    # this run, where a mixed run's atomic→detailed seam sat, and how
    # many references the atomic tier fast-forwarded through.
    fidelity: str = "detailed"
    seam_cycles: Optional[int] = None
    fast_forwarded_refs: int = 0
    # Mixed runs only: the simulator's own warm-state dump at the seam
    # (resident blocks + classification history per CPU), used to seed
    # the trace-side cache reconstruction, which otherwise starts cold
    # and would inflate the COLD class of every post-seam miss.
    seam_state: Optional[list] = None

    @property
    def kernel(self) -> Kernel:
        return self.simulation.kernel

    @property
    def processors(self) -> List[Processor]:
        return self.simulation.processors

    @property
    def memsys(self) -> MemorySystem:
        return self.simulation.memsys

    @property
    def check_report(self) -> Optional[CheckReport]:
        """The sanitizer report, if the run was simulated with checks.

        Survives the run cache: the registry pickles with the
        simulation, so a reloaded checked run still carries its report.
        """
        checks = self.simulation.checks
        if checks is None:
            return None
        return checks.finalize(max(p.cycles for p in self.processors))


class Simulation:
    """One machine + workload instance."""

    def __init__(
        self,
        workload: Union[str, Workload],
        params: Optional[MachineParams] = None,
        seed: int = 0,
        trace: bool = True,
        record_truth_events: bool = False,
        tuning: Optional[KernelTuning] = None,
        master_config: Optional[MasterConfig] = None,
        monitor_strict: bool = False,
        layout=None,
        check: Union[bool, str] = False,
        fidelity: str = "detailed",
        fast_forward: int = 0,
        record_drivers: bool = False,
        machine=None,
        workload_args=None,
    ):
        # ``machine`` (a preset name from repro.machines, or a full
        # MachineParams) is the public way to pick a geometry; bare
        # ``params=`` remains for custom one-off machines. A preset also
        # carries its recommended run-queue count (one queue per 4-CPU
        # cluster, Section 6), folded into the default tuning below —
        # explicit ``tuning=`` always wins.
        machine_run_queues = 1
        if machine is not None:
            if params is not None:
                raise TypeError("pass machine= or params=, not both")
            from repro.machines import MACHINES, canonical_machine, resolve_machine

            machine = canonical_machine(machine)
            params = resolve_machine(machine)
            if isinstance(machine, str):
                machine_run_queues = MACHINES[machine].run_queues
        self.params = params if params is not None else MachineParams()
        self.seed = seed
        self.fidelity = validate_fidelity(fidelity)
        if fast_forward < 0:
            raise ValueError("fast_forward must be >= 0")
        self.fast_forward = int(fast_forward)
        self.record_drivers = record_drivers
        if fidelity == "atomic" and (check or check_enabled_by_env()):
            raise UnsupportedFidelityError(
                "check= requires detailed-mode event streams; the atomic "
                "tier issues no bus transactions and charges no stalls, so "
                "the sanitizers would report coverage the run never had. "
                "Use fidelity='mixed' (checkers run inside the detailed "
                "window) or fidelity='detailed'."
            )
        # ``workload_args`` is the canonical tuned-knob form: a sorted
        # tuple of (name, value) pairs (a dict is accepted and
        # canonicalized). It only applies when the workload arrives by
        # name — a pre-built Workload instance already carries its knobs.
        self.workload_args = canonical_workload_args(workload_args)
        if isinstance(workload, str):
            workload = make_workload(workload, **dict(self.workload_args))
        elif self.workload_args:
            raise TypeError(
                "workload_args= requires a workload name; the supplied "
                "Workload instance already carries its arguments"
            )
        self.workload = workload

        calibration = CALIBRATIONS.get(workload.name)
        if calibration is not None:
            cfg = workload.engine_config
            cfg.touches_per_kcycle = calibration.touches_per_kcycle
            cfg.hot_text_fraction = calibration.hot_text_fraction
            cfg.hot_data_fraction = calibration.hot_data_fraction
        if tuning is None:
            vm = VmTuning()
            if calibration is not None:
                vm.baseline_frames = calibration.baseline_frames
            tuning = KernelTuning(
                quantum_ms=calibration.quantum_ms if calibration else 30.0,
                num_run_queues=machine_run_queues,
                vm=vm,
            )

        self.memsys = MemorySystem(self.params, record_events=record_truth_events)
        self.processors = [
            Processor(i, self.params, self.memsys) for i in range(self.params.num_cpus)
        ]
        self.instr = Instrumentation(enabled=trace)
        self.monitor = HardwareMonitor(
            self.memsys.bus,
            capacity=self.params.trace_buffer_entries,
            cycle_ns=self.params.cycle_ns,
            tick_ns=self.params.monitor_tick_ns,
            strict_capacity=monitor_strict,
        )
        self.master = MasterTracer(
            self.monitor,
            self.params.cycles_per_ms(),
            master_config if master_config is not None else MasterConfig(),
        )
        self.kernel = Kernel(
            self.params, self.memsys, self.processors, self.instr, tuning, seed,
            layout=layout,
        )
        # Invariant checking (repro.sanitizers): explicit opt-in or
        # REPRO_CHECK=1. When off, self.checks stays None and every hook
        # in the kernel/memsys stays a dormant None-attribute.
        # check="deep" (or REPRO_CHECK=deep) additionally attributes
        # dread_block/dwrite_block sweeps to kernel structures.
        self.checks: Optional[CheckRegistry] = None
        if check or check_enabled_by_env():
            deep = check == "deep" or deep_check_enabled_by_env()
            self.checks = CheckRegistry(
                self.params.num_cpus, self.kernel.datamap, workload.name,
                deep=deep,
            ).install(self.kernel, self.processors, self.memsys)
        self.engine = UserEngine(
            self.kernel, workload.engine_config, substream(seed, "engine")
        )
        workload.setup(self.kernel, substream(seed, "workload"))

        clock_period = self.params.ms_to_cycles(self.params.clock_interrupt_ms)
        ncpus = self.params.num_cpus
        # Stagger the per-CPU clocks so ticks do not all collide.
        self._next_clock = clock_stagger(clock_period, ncpus)
        self._clock_period = clock_period
        self._slice_cycles = self.params.ms_to_cycles(workload.engine_config.slice_ms)
        self._idle_step = max(
            1, self.params.ms_to_cycles(workload.engine_config.idle_step_ms)
        )
        self._idle_flag = [False] * ncpus
        self._tty_queue: List = []
        self._tty_head = 0
        self._net_queue: List = []
        self._net_head = 0
        self.horizon_cycles = 0

        # Fidelity schedule state (repro.fidelity). Setup above ran at
        # full fidelity in every tier; the atomic flags flip only now.
        # ``_instr_trace`` remembers the caller's trace choice so a mixed
        # run can restore it at the seam.
        self._instr_trace = trace
        self._detail_active = self.fidelity == "detailed"
        self._seam_deadline: Optional[int] = None
        self.seam_cycles: Optional[int] = None
        self.seam_state: Optional[list] = None
        if not self._detail_active:
            self.instr.enabled = False
            self.memsys.atomic = True
            if self.checks is not None:
                # Mixed: checkers resume at the seam (registry.resume).
                self.checks.suspend(self.kernel, self.processors, self.memsys)
        # Resumable-loop state: the event heap lives on the instance so a
        # checkpoint pickles mid-run and continue_run() resumes with
        # identical ordering. ``_pending_entry`` is the popped heap entry
        # being serviced when a checkpoint captures.
        self._heap: List = []
        self._seq = 0
        self._pending_entry = None
        self._loop_hooks = False
        self._warmup_cycles = 0
        self._measure_pending = False
        self.measure_snapshot = None
        # Checkpoint controls: a cache handle + key installed by
        # load_or_run (mixed runs store their seam checkpoint there), and
        # test hooks capturing an in-memory EngineCheckpoint at a cycle
        # count (checkpoint_at) or when a predicate fires
        # (checkpoint_when); the capture lands in captured_checkpoint.
        self.checkpoint_cache = None
        self.checkpoint_cache_key: Optional[str] = None
        self.checkpoint_at: Optional[int] = None
        self.checkpoint_when = None
        self.captured_checkpoint = None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, horizon_ms: float, warmup_ms: float = 120.0) -> TracedRun:
        """Run the workload and trace ``horizon_ms`` of simulated time.

        ``warmup_ms`` runs the workload *before* the monitor starts
        recording: the paper traced an already-running system, not a cold
        boot (binaries resident, buffer cache warm, scheduler in steady
        state).
        """
        warmup = self.params.ms_to_cycles(warmup_ms)
        horizon = warmup + self.params.ms_to_cycles(horizon_ms)
        self.horizon_cycles = horizon
        self._warmup_cycles = warmup
        self._measure_pending = True

        rng = substream(self.seed, "tty")
        self._tty_queue = sorted(self.workload.tty_events(horizon, rng))
        self._tty_head = 0
        net_rng = substream(self.seed, "net")
        self._net_queue = sorted(self.workload.net_events(horizon, net_rng))
        self._net_head = 0

        if self.record_drivers or not self._detail_active:
            # Log driver next()s and forks so a checkpoint taken mid-run
            # can replay the unpicklable generators (repro.fidelity).
            self.kernel.driver_log = []

        if self._detail_active:
            # Record from t=0 so the analysis can reconstruct cache
            # contents across the whole run, but report statistics only
            # for the post-warmup window (equivalent to the paper's
            # continuous tracing of an already-running system).
            self._begin_tracing(0)
        elif self.fidelity == "mixed":
            # Switch to detailed a little before the measurement window
            # opens, so escapes and mode transitions settle; a nonzero
            # fast_forward budget can pull the seam earlier still.
            margin = min(2 * self._clock_period, warmup // 4)
            self._seam_deadline = max(0, warmup - margin)

        self._heap = [(proc.cycles, i, i) for i, proc in enumerate(self.processors)]
        heapq.heapify(self._heap)
        self._seq = len(self._heap)
        self._update_loop_hooks()
        return self._run_loop()

    def _run_loop(self) -> TracedRun:
        """Drain the event heap to the horizon; resumable at any pop."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            cpu = entry[2]
            proc = self.processors[cpu]
            if proc.cycles >= self.horizon_cycles:
                continue  # this CPU is done; drain the rest
            if self._loop_hooks:
                self._pending_entry = entry
                self._loop_hook(proc)
            self._step(cpu)
            self._seq += 1
            heapq.heappush(heap, (proc.cycles, self._seq, cpu))
        end = max(proc.cycles for proc in self.processors)
        self.master.finish(end)
        if self.checks is not None:
            self.checks.finalize(end)
        return TracedRun(
            self.workload.name, self.params, self.monitor.trace, self,
            measure_from_cycles=self._warmup_cycles,
            fidelity=self.fidelity,
            seam_cycles=self.seam_cycles,
            fast_forwarded_refs=self.memsys.atomic_refs,
            seam_state=self.seam_state,
        )

    def continue_run(self, horizon_ms: Optional[float] = None) -> TracedRun:
        """Resume a restored :class:`EngineCheckpoint` to the horizon.

        Only meaningful on a simulation rebuilt by
        ``EngineCheckpoint.restore()``; pass ``horizon_ms`` to run the
        warmed state out to a different horizon than the capturing run's
        (valid for workloads without a horizon-derived tty schedule).
        """
        if not self._heap:
            raise RuntimeError(
                "continue_run() resumes a restored checkpoint; this "
                "simulation has no in-flight event queue"
            )
        if horizon_ms is not None:
            self.horizon_cycles = self._warmup_cycles + self.params.ms_to_cycles(
                horizon_ms
            )
        return self._run_loop()

    # ------------------------------------------------------------------
    # Slice-boundary hooks (fidelity seam, checkpoints, window snapshot)
    # ------------------------------------------------------------------
    def _update_loop_hooks(self) -> None:
        self._loop_hooks = (
            self._measure_pending
            or self.checkpoint_at is not None
            or self.checkpoint_when is not None
            or (self.fidelity == "mixed" and not self._detail_active)
        )

    def _loop_hook(self, proc: Processor) -> None:
        now = proc.cycles
        if not self._detail_active and self.fidelity == "mixed" and (
            now >= self._seam_deadline
            or (
                self.fast_forward > 0
                and self.memsys.atomic_refs >= self.fast_forward
            )
        ):
            self._switch_to_detail()
        if self._measure_pending and now >= self._warmup_cycles:
            self._measure_pending = False
            self.measure_snapshot = snapshot_window_counters(self)
        when = self.checkpoint_when
        if when is not None and when(self):
            self.checkpoint_when = None
            self._capture_checkpoint_blob(now)
        at = self.checkpoint_at
        if at is not None and now >= at:
            self.checkpoint_at = None
            self._capture_checkpoint_blob(now)
        self._update_loop_hooks()

    def _switch_to_detail(self) -> None:
        """The atomic→detailed seam of a mixed-fidelity run.

        Aligns every CPU's clock (so the seam's trace-start state dump is
        tick-monotone), stores the seam checkpoint if a cache is
        attached, then flips the machine to full fidelity and starts the
        monitor with the standard trace-start protocol.
        """
        resume_at = max(p.cycles for p in self.processors)
        for p in self.processors:
            mode = p.mode
            p.set_mode(Mode.IDLE)
            p.advance_to(resume_at)
            p.set_mode(mode)
        if self.checkpoint_cache is not None:
            from repro.fidelity.checkpoint import capture

            checkpoint = capture(self, resume_at)
            self.checkpoint_cache.store(
                self.checkpoint_cache_key, {"checkpoint": checkpoint}
            )
            self.checkpoint_cache = None
            self.checkpoint_cache_key = None
        if not self.record_drivers:
            self.kernel.driver_log = None
        # The atomic tier keeps only the bus-visible levels (I-cache, L2)
        # warm; flush the untracked first-level data caches so the L1⊆L2
        # inclusion invariant holds when detailed accesses resume. (They
        # are empty in practice — mixed runs are atomic from cycle 0 —
        # but the seam must not depend on that.)
        for hierarchy in self.memsys.hierarchies:
            hierarchy.dl1.invalidate_all()
        self.memsys.atomic = False
        self.instr.enabled = self._instr_trace
        self._detail_active = True
        self.seam_cycles = resume_at
        self.seam_state = self._dump_seam_state()
        self.monitor.note_seam(resume_at)
        if self.checks is not None:
            self.checks.resume(self.kernel, self.processors, self.memsys)
        self._begin_tracing(resume_at, seam=True)

    def _capture_checkpoint_blob(self, now: int) -> None:
        from repro.fidelity.checkpoint import capture

        self.captured_checkpoint = capture(self, now)

    def _dump_seam_state(self) -> list:
        """Per-CPU warm-state dump for the trace analyzer.

        The mixed-fidelity trace begins at the seam, so the trace-driven
        reconstruction (:mod:`repro.analysis.reconstruct`) would start
        from empty caches and blank classification history — every first
        post-seam miss on a warmed block would look COLD. This dump
        carries the simulator's own answer across the seam: resident
        blocks and the ``ever_cached``/``evicted_by``/``invalidated``
        classification state for the two bus-visible caches, plus each
        CPU's application epoch. The fields map one-to-one onto
        :class:`repro.analysis.reconstruct.ReconstructedCache`.
        """
        from repro.memsys.tracking import DATA, INSTR

        state = []
        truth = self.memsys.truth
        for proc, hierarchy in zip(self.processors, self.memsys.hierarchies):
            entry = {"app_epoch": proc.app_epoch}
            for key, cache, kind in (
                ("icache", hierarchy.icache, INSTR),
                ("dcache", hierarchy.dl2, DATA),
            ):
                cpu_truth = truth.cpu_truth(proc.cpu_id, kind)
                entry[key] = {
                    "resident": sorted(cache.resident_blocks),
                    "ever_cached": set(cpu_truth.ever_cached),
                    "evicted_by": dict(cpu_truth.evicted_by),
                    "invalidated": set(cpu_truth.invalidated),
                }
            state.append(entry)
        return state

    def _begin_tracing(self, now_cycles: int, seam: bool = False) -> None:
        """Trace-start protocol: dump machine state, then record.

        The real system call "dumps the contents of the TLBs and some
        process state onto the trace buffer when tracing starts"
        (Section 2.2) so the postprocessor can translate addresses from
        the first entry on.

        ``seam`` marks the mixed-fidelity atomic→detailed hand-off: CPUs
        sitting in the idle loop re-announce it (their original
        ``idle_enter`` fired while escapes were disabled), so the decoder
        does not misattribute their post-seam idle time. Detailed runs
        never pass ``seam`` — their trace stays byte-identical.
        """
        self.master.start(now_cycles)
        for proc in self.processors:
            self.instr.trace_start(proc)
            self.instr.pid_set(proc, proc.current_pid)
            for entry in proc.tlb.entries():
                self.instr.tlb_update(
                    proc, 0, entry.vpage, entry.frame, entry.pid, entry.is_text
                )
            if seam and self._idle_flag[proc.cpu_id]:
                self.instr.idle_enter(proc)

    # ------------------------------------------------------------------
    # One slice on one CPU
    # ------------------------------------------------------------------
    def _step(self, cpu: int) -> None:
        proc = self.processors[cpu]
        kernel = self.kernel

        if cpu == 0 and self._detail_active and self.master.due(proc.cycles):
            self._service_master(proc)
        if cpu == self.params.device_cpu:
            self._deliver_device_events(proc)
        if cpu == self.params.network_cpu and self._net_queue:
            self._deliver_net_events(proc)

        # Clock ticks due on this CPU.
        while self._next_clock[cpu] <= proc.cycles:
            self._next_clock[cpu] += self._clock_period
            self._leave_idle(proc)
            with kernel.os_invocation(proc, HighLevelOp.INTERRUPT):
                expired = kernel.interrupts.clock(proc)
                if expired:
                    kernel.scheduler.preempt_current(proc)
            self._enter_idle_if_none(proc)

        process = kernel.current[cpu]
        if process is None:
            self._idle_slice(proc)
            return
        self._leave_idle(proc)
        self.engine.run_slice(proc, process, self._slice_cycles)
        self._enter_idle_if_none(proc)

    def _idle_slice(self, proc: Processor) -> None:
        kernel = self.kernel
        if kernel.scheduler.runnable_waiting():
            # A wakeup IPI pulls the CPU out of the idle loop to dispatch.
            self._leave_idle(proc)
            with kernel.os_invocation(proc, HighLevelOp.INTERRUPT, save_frame=False):
                kernel.interrupts.inter_cpu(proc)
                kernel.scheduler.dispatch(proc)
            self._enter_idle_if_none(proc)
            return
        if not self._idle_flag[proc.cpu_id]:
            self._idle_flag[proc.cpu_id] = True
            proc.set_mode(Mode.IDLE)
            self.instr.idle_enter(proc)
        # The idle loop: a tiny resident code loop polling the run queue.
        base, _size = kernel.routine_span("idle_loop")
        proc.ifetch_block(base // self.params.block_bytes)
        proc.advance(self._idle_step)

    def _leave_idle(self, proc: Processor) -> None:
        if self._idle_flag[proc.cpu_id]:
            self._idle_flag[proc.cpu_id] = False
            self.instr.idle_exit(proc)

    def _enter_idle_if_none(self, proc: Processor) -> None:
        if self.kernel.current[proc.cpu_id] is None:
            proc.set_mode(Mode.IDLE)

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------
    def _deliver_device_events(self, proc: Processor) -> None:
        kernel = self.kernel
        disk_due = kernel.fs.disk.next_time()
        if disk_due is not None and disk_due <= proc.cycles:
            self._leave_idle(proc)
            kernel.service_disk(proc)
            self._enter_idle_if_none(proc)
        while (
            self._tty_head < len(self._tty_queue)
            and self._tty_queue[self._tty_head][0] <= proc.cycles
        ):
            _, session_id, nchars = self._tty_queue[self._tty_head]
            self._tty_head += 1
            self._leave_idle(proc)
            with kernel.os_invocation(proc, HighLevelOp.INTERRUPT):
                kernel.interrupts.terminal(proc, session_id, nchars)
            self._enter_idle_if_none(proc)

    def _deliver_net_events(self, proc: Processor) -> None:
        """Inbound requests due at the NIC, as network interrupts."""
        kernel = self.kernel
        while (
            self._net_head < len(self._net_queue)
            and self._net_queue[self._net_head][0] <= proc.cycles
        ):
            _, session_id, nchars = self._net_queue[self._net_head]
            self._net_head += 1
            self._leave_idle(proc)
            with kernel.os_invocation(proc, HighLevelOp.INTERRUPT):
                kernel.interrupts.network(proc, session_id, nchars)
            self._enter_idle_if_none(proc)

    # ------------------------------------------------------------------
    # The master tracer (Section 2.1's suspend/dump/resume loop)
    # ------------------------------------------------------------------
    def _service_master(self, proc: Processor) -> None:
        suspend_cycles = self.master.service(proc.cycles)
        if suspend_cycles <= 0:
            return
        # Workload suspended: every CPU idles while the buffer is dumped
        # to the remote disk.
        resume_at = max(p.cycles for p in self.processors) + suspend_cycles
        for p in self.processors:
            mode = p.mode
            p.set_mode(Mode.IDLE)
            p.advance_to(resume_at)
            p.set_mode(mode)
        # The transfer wakes the network daemons (CPU 1 on the measured
        # machine, Section 2.1; an explicit MachineParams field so scaled
        # geometries route deliberately).
        net_proc = self.processors[self.params.network_cpu]
        with self.kernel.os_invocation(
            net_proc, HighLevelOp.INTERRUPT, save_frame=False
        ):
            self.kernel.interrupts.network(net_proc)


def run_traced_workload(
    workload: Union[str, Workload],
    horizon_ms: float = 50.0,
    seed: int = 0,
    params: Optional[MachineParams] = None,
    warmup_ms: float = 120.0,
    **kwargs,
) -> TracedRun:
    """Build a machine, run a workload under the monitor, return the run."""
    sim = Simulation(workload, params=params, seed=seed, **kwargs)
    return sim.run(horizon_ms, warmup_ms=warmup_ms)
