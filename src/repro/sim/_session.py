"""Top-level simulation session.

Builds the full machine (memory system, CPUs, kernel, monitor, master
tracer), installs a workload, and runs the event loop: CPUs execute in
interleaved slices ordered by their local clocks; clock interrupts, disk
completions, terminal input and the master tracer's buffer checks are
delivered at slice boundaries.

:func:`run_traced_workload` is the one-call experiment entry point; it
returns a :class:`TracedRun` bundling the recorded trace with the
machine handles the analysis pipeline needs.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Optional, Union

from repro.common.params import MachineParams
from repro.common.rng import substream
from repro.common.types import HighLevelOp, Mode
from repro.cpu.processor import Processor
from repro.kernel.interrupts import DEVICE_CPU, NETWORK_CPU
from repro.kernel.kernel import Kernel, KernelTuning
from repro.kernel.vm import VmTuning
from repro.memsys.system import MemorySystem
from repro.monitor.escapes import Instrumentation
from repro.monitor.hwmonitor import HardwareMonitor, Trace
from repro.monitor.master import MasterConfig, MasterTracer
from repro.sanitizers import (
    CheckRegistry,
    CheckReport,
    check_enabled_by_env,
    deep_check_enabled_by_env,
)
from repro.sim.config import CALIBRATIONS
from repro.sim.usermode import UserEngine
from repro.workloads import Workload, make_workload


@dataclass
class TracedRun:
    """Everything a finished traced run hands to the analysis pipeline.

    A finished run is picklable (workload driver generators are dropped
    by :meth:`repro.kernel.process.Process.__getstate__`), which is what
    lets :mod:`repro.sim.runcache` persist runs across sessions and the
    parallel experiment runner ship them between processes. A restored
    run supports the whole analysis surface but must not be resumed —
    its processes' drivers are gone.
    """

    workload_name: str
    params: MachineParams
    trace: Trace
    simulation: "Simulation"
    # Statistics window start: the trace before this point only feeds the
    # cache-content reconstruction (warmup), mirroring the paper's
    # tracing of a long-running system.
    measure_from_cycles: int = 0

    @property
    def kernel(self) -> Kernel:
        return self.simulation.kernel

    @property
    def processors(self) -> List[Processor]:
        return self.simulation.processors

    @property
    def memsys(self) -> MemorySystem:
        return self.simulation.memsys

    @property
    def check_report(self) -> Optional[CheckReport]:
        """The sanitizer report, if the run was simulated with checks.

        Survives the run cache: the registry pickles with the
        simulation, so a reloaded checked run still carries its report.
        """
        checks = self.simulation.checks
        if checks is None:
            return None
        return checks.finalize(max(p.cycles for p in self.processors))


class Simulation:
    """One machine + workload instance."""

    def __init__(
        self,
        workload: Union[str, Workload],
        params: Optional[MachineParams] = None,
        seed: int = 0,
        trace: bool = True,
        record_truth_events: bool = False,
        tuning: Optional[KernelTuning] = None,
        master_config: Optional[MasterConfig] = None,
        monitor_strict: bool = False,
        layout=None,
        check: Union[bool, str] = False,
    ):
        self.params = params if params is not None else MachineParams()
        self.seed = seed
        if isinstance(workload, str):
            workload = make_workload(workload)
        self.workload = workload

        calibration = CALIBRATIONS.get(workload.name)
        if calibration is not None:
            cfg = workload.engine_config
            cfg.touches_per_kcycle = calibration.touches_per_kcycle
            cfg.hot_text_fraction = calibration.hot_text_fraction
            cfg.hot_data_fraction = calibration.hot_data_fraction
        if tuning is None:
            vm = VmTuning()
            if calibration is not None:
                vm.baseline_frames = calibration.baseline_frames
            tuning = KernelTuning(
                quantum_ms=calibration.quantum_ms if calibration else 30.0,
                vm=vm,
            )

        self.memsys = MemorySystem(self.params, record_events=record_truth_events)
        self.processors = [
            Processor(i, self.params, self.memsys) for i in range(self.params.num_cpus)
        ]
        self.instr = Instrumentation(enabled=trace)
        self.monitor = HardwareMonitor(
            self.memsys.bus,
            capacity=self.params.trace_buffer_entries,
            cycle_ns=self.params.cycle_ns,
            tick_ns=self.params.monitor_tick_ns,
            strict_capacity=monitor_strict,
        )
        self.master = MasterTracer(
            self.monitor,
            self.params.cycles_per_ms(),
            master_config if master_config is not None else MasterConfig(),
        )
        self.kernel = Kernel(
            self.params, self.memsys, self.processors, self.instr, tuning, seed,
            layout=layout,
        )
        # Invariant checking (repro.sanitizers): explicit opt-in or
        # REPRO_CHECK=1. When off, self.checks stays None and every hook
        # in the kernel/memsys stays a dormant None-attribute.
        # check="deep" (or REPRO_CHECK=deep) additionally attributes
        # dread_block/dwrite_block sweeps to kernel structures.
        self.checks: Optional[CheckRegistry] = None
        if check or check_enabled_by_env():
            deep = check == "deep" or deep_check_enabled_by_env()
            self.checks = CheckRegistry(
                self.params.num_cpus, self.kernel.datamap, workload.name,
                deep=deep,
            ).install(self.kernel, self.processors, self.memsys)
        self.engine = UserEngine(
            self.kernel, workload.engine_config, substream(seed, "engine")
        )
        workload.setup(self.kernel, substream(seed, "workload"))

        clock_period = self.params.ms_to_cycles(self.params.clock_interrupt_ms)
        ncpus = self.params.num_cpus
        # Stagger the per-CPU clocks so ticks do not all collide.
        self._next_clock = [
            clock_period + clock_period * i // ncpus for i in range(ncpus)
        ]
        self._clock_period = clock_period
        self._slice_cycles = self.params.ms_to_cycles(workload.engine_config.slice_ms)
        self._idle_step = max(
            1, self.params.ms_to_cycles(workload.engine_config.idle_step_ms)
        )
        self._idle_flag = [False] * ncpus
        self._tty_queue: List = []
        self._tty_head = 0
        self.horizon_cycles = 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, horizon_ms: float, warmup_ms: float = 120.0) -> TracedRun:
        """Run the workload and trace ``horizon_ms`` of simulated time.

        ``warmup_ms`` runs the workload *before* the monitor starts
        recording: the paper traced an already-running system, not a cold
        boot (binaries resident, buffer cache warm, scheduler in steady
        state).
        """
        warmup = self.params.ms_to_cycles(warmup_ms)
        horizon = warmup + self.params.ms_to_cycles(horizon_ms)
        self.horizon_cycles = horizon

        rng = substream(self.seed, "tty")
        self._tty_queue = sorted(self.workload.tty_events(horizon, rng))
        self._tty_head = 0

        # Record from t=0 so the analysis can reconstruct cache contents
        # across the whole run, but report statistics only for the
        # post-warmup window (equivalent to the paper's continuous
        # tracing of an already-running system).
        self._begin_tracing(0)

        heap = [(proc.cycles, i, i) for i, proc in enumerate(self.processors)]
        heapq.heapify(heap)
        seq = len(heap)
        while heap:
            _, _, cpu = heapq.heappop(heap)
            proc = self.processors[cpu]
            if proc.cycles >= horizon:
                continue  # this CPU is done; drain the rest
            self._step(cpu)
            seq += 1
            heapq.heappush(heap, (proc.cycles, seq, cpu))
        end = max(proc.cycles for proc in self.processors)
        self.master.finish(end)
        if self.checks is not None:
            self.checks.finalize(end)
        return TracedRun(
            self.workload.name, self.params, self.monitor.trace, self,
            measure_from_cycles=warmup,
        )

    def _begin_tracing(self, now_cycles: int) -> None:
        """Trace-start protocol: dump machine state, then record.

        The real system call "dumps the contents of the TLBs and some
        process state onto the trace buffer when tracing starts"
        (Section 2.2) so the postprocessor can translate addresses from
        the first entry on.
        """
        self.master.start(now_cycles)
        for proc in self.processors:
            self.instr.trace_start(proc)
            self.instr.pid_set(proc, proc.current_pid)
            for entry in proc.tlb.entries():
                self.instr.tlb_update(
                    proc, 0, entry.vpage, entry.frame, entry.pid, entry.is_text
                )

    # ------------------------------------------------------------------
    # One slice on one CPU
    # ------------------------------------------------------------------
    def _step(self, cpu: int) -> None:
        proc = self.processors[cpu]
        kernel = self.kernel

        if cpu == 0 and self.master.due(proc.cycles):
            self._service_master(proc)
        if cpu == DEVICE_CPU:
            self._deliver_device_events(proc)

        # Clock ticks due on this CPU.
        while self._next_clock[cpu] <= proc.cycles:
            self._next_clock[cpu] += self._clock_period
            self._leave_idle(proc)
            with kernel.os_invocation(proc, HighLevelOp.INTERRUPT):
                expired = kernel.interrupts.clock(proc)
                if expired:
                    kernel.scheduler.preempt_current(proc)
            self._enter_idle_if_none(proc)

        process = kernel.current[cpu]
        if process is None:
            self._idle_slice(proc)
            return
        self._leave_idle(proc)
        self.engine.run_slice(proc, process, self._slice_cycles)
        self._enter_idle_if_none(proc)

    def _idle_slice(self, proc: Processor) -> None:
        kernel = self.kernel
        if kernel.scheduler.runnable_waiting():
            # A wakeup IPI pulls the CPU out of the idle loop to dispatch.
            self._leave_idle(proc)
            with kernel.os_invocation(proc, HighLevelOp.INTERRUPT, save_frame=False):
                kernel.interrupts.inter_cpu(proc)
                kernel.scheduler.dispatch(proc)
            self._enter_idle_if_none(proc)
            return
        if not self._idle_flag[proc.cpu_id]:
            self._idle_flag[proc.cpu_id] = True
            proc.set_mode(Mode.IDLE)
            self.instr.idle_enter(proc)
        # The idle loop: a tiny resident code loop polling the run queue.
        base, _size = kernel.routine_span("idle_loop")
        proc.ifetch_block(base // self.params.block_bytes)
        proc.advance(self._idle_step)

    def _leave_idle(self, proc: Processor) -> None:
        if self._idle_flag[proc.cpu_id]:
            self._idle_flag[proc.cpu_id] = False
            self.instr.idle_exit(proc)

    def _enter_idle_if_none(self, proc: Processor) -> None:
        if self.kernel.current[proc.cpu_id] is None:
            proc.set_mode(Mode.IDLE)

    # ------------------------------------------------------------------
    # Devices
    # ------------------------------------------------------------------
    def _deliver_device_events(self, proc: Processor) -> None:
        kernel = self.kernel
        disk_due = kernel.fs.disk.next_time()
        if disk_due is not None and disk_due <= proc.cycles:
            self._leave_idle(proc)
            kernel.service_disk(proc)
            self._enter_idle_if_none(proc)
        while (
            self._tty_head < len(self._tty_queue)
            and self._tty_queue[self._tty_head][0] <= proc.cycles
        ):
            _, session_id, nchars = self._tty_queue[self._tty_head]
            self._tty_head += 1
            self._leave_idle(proc)
            with kernel.os_invocation(proc, HighLevelOp.INTERRUPT):
                kernel.interrupts.terminal(proc, session_id, nchars)
            self._enter_idle_if_none(proc)

    # ------------------------------------------------------------------
    # The master tracer (Section 2.1's suspend/dump/resume loop)
    # ------------------------------------------------------------------
    def _service_master(self, proc: Processor) -> None:
        suspend_cycles = self.master.service(proc.cycles)
        if suspend_cycles <= 0:
            return
        # Workload suspended: every CPU idles while the buffer is dumped
        # to the remote disk.
        resume_at = max(p.cycles for p in self.processors) + suspend_cycles
        for p in self.processors:
            mode = p.mode
            p.set_mode(Mode.IDLE)
            p.advance_to(resume_at)
            p.set_mode(mode)
        # The transfer wakes the network daemons on CPU 1 (Section 2.1).
        net_proc = self.processors[NETWORK_CPU % self.params.num_cpus]
        with self.kernel.os_invocation(
            net_proc, HighLevelOp.INTERRUPT, save_frame=False
        ):
            self.kernel.interrupts.network(net_proc)


def run_traced_workload(
    workload: Union[str, Workload],
    horizon_ms: float = 50.0,
    seed: int = 0,
    params: Optional[MachineParams] = None,
    warmup_ms: float = 120.0,
    **kwargs,
) -> TracedRun:
    """Build a machine, run a workload under the monitor, return the run."""
    sim = Simulation(workload, params=params, seed=seed, **kwargs)
    return sim.run(horizon_ms, warmup_ms=warmup_ms)
