"""Deprecated import path — use :mod:`repro.api`.

The session implementation lives in :mod:`repro.sim._session`; this
module re-exports it so old deep imports keep working, but new code
should import :class:`Simulation`/:class:`TracedRun`/
:func:`run_traced_workload` from :mod:`repro.api`.
"""

from __future__ import annotations

import warnings

from repro.sim._session import (  # noqa: F401
    Simulation,
    TracedRun,
    run_traced_workload,
)

warnings.warn(
    "repro.sim.session is deprecated; import Simulation, TracedRun and "
    "run_traced_workload from repro.api instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["Simulation", "TracedRun", "run_traced_workload"]
