"""Per-workload calibration constants, with provenance.

Rule (DESIGN.md): *input rates* — how often the workloads do things — are
calibrated from the paper's own reported numbers; *outcomes* (miss-class
splits, structure attribution, lock locality/contention) are emergent
from the cache and kernel mechanics and are never dialled in.

Paper anchors used below:

- Table 1: execution-time splits — Pmake 49/31/19 user/sys/idle,
  Multpgm ~53/47/0, Oracle 62/29/8; OS misses 52.6 / 46.3 / 26.6 % of all
  misses.
- Figure 1: mean OS invocation interval 1.9 ms (Pmake), 0.4 ms (Multpgm),
  0.7 ms (Oracle).
- Figure 2 (Multpgm op mix): ~50% sginap, ~20% TLB faults, ~20% I/O
  calls, ~5% clock interrupts.
- Section 3: Pmake = 56 C files, ~480 lines each, -J 8; Mp3d with 4
  processes / 50,000 particles; ed sessions send 1-15 chars per burst,
  at most 25 chars every 5 s; Oracle = 10 branches / 100 tellers /
  10,000 accounts at 59 TPS.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class WorkloadCalibration:
    """Engine and kernel knobs for one workload."""

    # Sampled application reference rate (see EngineConfig): chosen per
    # workload so the OS-vs-application miss split lands near Table 1
    # column 5.
    touches_per_kcycle: float
    # Memory held by untraced residents (window system, daemons, the rest
    # of the kernel) — sets the memory pressure that triggers the pfdat
    # traversals of Table 6.
    baseline_frames: int
    # Scheduler quantum. IRIX timeshares at tens of ms.
    quantum_ms: float
    # Hot-set shape of application pages.
    hot_text_fraction: float = 0.5
    hot_data_fraction: float = 0.6


# Pmake: long OS invocations (1.9 ms apart), heavy I/O, 19.5% idle from
# disk waits, strong memory churn (fork/exec of 56 compiles) -> pressure.
PMAKE = WorkloadCalibration(
    touches_per_kcycle=26.0,
    baseline_frames=6780,
    quantum_ms=30.0,
)

# Multpgm: everything at once -> no idle, frequent OS entry (0.4 ms),
# sginap storm from Mp3d's locks, migration-heavy timesharing.
MULTPGM = WorkloadCalibration(
    touches_per_kcycle=30.0,
    baseline_frames=6150,
    quantum_ms=5.0,
)

# Oracle: big application working set (Dispap dominates OS I-misses),
# in-memory database -> little disk idle, 0.7 ms invocation interval,
# the database does its own page management (expensive-TLB activity is
# lumped into I/O system calls, Section 4.2.3).
ORACLE = WorkloadCalibration(
    touches_per_kcycle=55.0,
    baseline_frames=5400,
    quantum_ms=30.0,
)

# KV: server processes with small hot code and a request loop -> modest
# reference rate; the miss-heavy buffer-cache mix produces the idle. No
# paper anchor (a post-paper workload): rates follow the Oracle-server
# shape at a lighter compute-per-op.
KV = WorkloadCalibration(
    touches_per_kcycle=35.0,
    baseline_frames=5600,
    quantum_ms=20.0,
)

# Netserver: interrupt-heavy request processing; short quanta keep the
# servers responsive to stream wakeups (network daemons ran at kernel
# priority on the measured machine).
NETSERVER = WorkloadCalibration(
    touches_per_kcycle=32.0,
    baseline_frames=5600,
    quantum_ms=10.0,
)

CALIBRATIONS = {
    "pmake": PMAKE,
    "multpgm": MULTPGM,
    "oracle": ORACLE,
    "kv": KV,
    "netserver": NETSERVER,
}
