"""Persistent content-addressed cache for traced runs and exhibits.

Simulating a workload at the experiments' default settings costs tens of
seconds; the analysis pass costs seconds more. Every one of the paper's
exhibits is derived from the same three traced runs, yet each pytest
session, benchmark session and ``repro-experiments`` invocation used to
re-simulate them from scratch. This module keeps finished
:class:`~repro.sim._session.TracedRun` objects (plus their
:class:`~repro.analysis.report.AnalysisReport` and derived
:class:`~repro.experiments._base.Exhibit` tables) on disk so warm
invocations only pay deserialization.

Keying is *content addressed*: an entry's filename is a SHA-256 over the
workload name, the effective run settings, any simulation overrides, the
package version, and a digest of the simulator's own source files. Any
edit to ``src/repro`` (outside ``experiments/``) therefore invalidates
every cached run automatically; an edit anywhere in ``src/repro``
invalidates cached exhibits. There is no mutable metadata to go stale
and no manual invalidation step.

Safety properties:

- **atomic writes** — entries are written to a temp file in the cache
  directory and ``os.replace``d into place, so a killed process never
  leaves a truncated entry under the final name;
- **corruption tolerance** — an unreadable/unpicklable entry is treated
  as a miss (and unlinked), falling back to re-simulation;
- **escape hatches** — ``REPRO_NO_CACHE=1`` (or ``--no-cache`` in the
  CLI) disables the cache entirely; ``REPRO_CACHE_DIR`` (or
  ``--cache-dir``) relocates it from the default ``~/.cache/repro``;
- **cold-run dedup** — populating a missing entry is guarded by an
  advisory claim file (``<key>.lock``, created with ``O_EXCL`` so
  exactly one process wins). Losers wait for the winner's entry to
  appear instead of re-simulating the same key — which is what keeps a
  pool of service workers from doing N× the work on a thundering herd —
  and fall back to simulating themselves if the winner dies or stalls
  past the stale-lock horizon.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional

_ENV_CACHE_DIR = "REPRO_CACHE_DIR"
_ENV_NO_CACHE = "REPRO_NO_CACHE"
_ENV_LOCK_WAIT = "REPRO_CACHE_LOCK_WAIT"

# A claim file older than this is presumed abandoned (holder crashed
# without the ``finally: release()``) and is broken by the next waiter.
STALE_CLAIM_S = 900.0

# Bump to shed all old entries when the on-disk payload layout changes.
_FORMAT = 1


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(_ENV_CACHE_DIR)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro").expanduser()


def cache_disabled_by_env() -> bool:
    value = os.environ.get(_ENV_NO_CACHE, "")
    return value not in ("", "0", "false", "no")


# ----------------------------------------------------------------------
# Source digests
# ----------------------------------------------------------------------
# A traced run's bytes are determined by the simulator sources; an
# exhibit's bytes additionally depend on the experiment modules. Digest
# the package accordingly, once per process.

_digest_memo: Dict[bool, str] = {}


def source_digest(include_experiments: bool = False) -> str:
    """SHA-256 over the package's ``.py`` files, hex-encoded.

    ``include_experiments=False`` covers everything that can change a
    simulation or its analysis (sim, kernel, memsys, workloads, and the
    layers they build on); ``True`` additionally folds in
    ``experiments/`` for exhibit-level entries.
    """
    if include_experiments in _digest_memo:
        return _digest_memo[include_experiments]
    import repro

    root = Path(repro.__file__).resolve().parent
    hasher = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if not include_experiments and rel.startswith("experiments/"):
            continue
        hasher.update(rel.encode())
        hasher.update(path.read_bytes())
    digest = hasher.hexdigest()
    _digest_memo[include_experiments] = digest
    return digest


def _package_version() -> str:
    import repro

    return getattr(repro, "__version__", "0")


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class RunCache:
    """Content-addressed pickle store under one directory.

    Payloads are plain dicts; the two entry kinds used today are

    - run entries: ``{"run": TracedRun, "report": AnalysisReport|None}``
    - exhibit entries: ``{"exhibit": Exhibit}``
    """

    def __init__(self, cache_dir=None, enabled: bool = True):
        self.cache_dir = Path(cache_dir).expanduser() if cache_dir else default_cache_dir()
        self.enabled = enabled and not cache_disabled_by_env()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        # probes = every load() attempt (hits + misses); dedup_hits =
        # cold runs avoided by waiting out another process's claim.
        self.probes = 0
        self.dedup_hits = 0

    # -- keying --------------------------------------------------------
    @staticmethod
    def _hash_material(material: Dict[str, Any]) -> str:
        blob = json.dumps(material, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:40]

    def run_key(
        self,
        workload: str,
        horizon_ms: float,
        warmup_ms: float,
        seed: int,
        sim_kwargs: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Key for one traced run at fully-resolved settings.

        Non-primitive override values (tuning dataclasses, layouts) are
        keyed by ``repr``; dataclass reprs are deterministic and change
        whenever a field does, which is exactly the invalidation we want.
        """
        material = {
            "format": _FORMAT,
            "kind": "run",
            "workload": workload,
            "horizon_ms": horizon_ms,
            "warmup_ms": warmup_ms,
            "seed": seed,
            "overrides": {
                name: repr(value) for name, value in (sim_kwargs or {}).items()
            },
            "version": _package_version(),
            "sources": source_digest(include_experiments=False),
        }
        return "run-" + self._hash_material(material)

    def exhibit_key(self, exhibit_id: str, settings) -> str:
        # cache_repr() excludes output-neutral knobs (the analysis shard
        # count): identical output must map to an identical cache entry.
        settings_repr = (
            settings.cache_repr()
            if hasattr(settings, "cache_repr")
            else repr(settings)
        )
        material = {
            "format": _FORMAT,
            "kind": "exhibit",
            "exhibit_id": exhibit_id,
            "settings": settings_repr,
            "version": _package_version(),
            "sources": source_digest(include_experiments=True),
        }
        return "exhibit-" + self._hash_material(material)

    # -- I/O -----------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The payload stored under ``key``, or None (counted as a miss).

        Any failure to read or unpickle — truncated file, stale class
        layout, flipped bits — is swallowed: the entry is unlinked and
        the caller re-simulates.
        """
        if not self.enabled:
            return None
        self.probes += 1
        payload = self._read(key)
        if payload is None:
            self.misses += 1
        else:
            self.hits += 1
        return payload

    def _read(self, key: str) -> Optional[Dict[str, Any]]:
        """Uncounted read (shared by :meth:`load` and the claim waiter)."""
        path = self._path(key)
        try:
            with open(path, "rb") as fh:
                payload = pickle.load(fh)
            if not isinstance(payload, dict):
                raise ValueError("cache payload is not a dict")
        except FileNotFoundError:
            return None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            return None
        return payload

    def store(self, key: str, payload: Dict[str, Any]) -> bool:
        """Atomically persist ``payload`` under ``key``; False if disabled
        or the write failed (a full disk must never fail a run)."""
        if not self.enabled:
            return False
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._path(key))
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:
            return False
        self.stores += 1
        return True

    # -- cold-run claim lock -------------------------------------------
    def _claim_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.lock"

    def claim(self, key: str) -> bool:
        """Try to become the one process that populates ``key``.

        Atomic ``O_CREAT|O_EXCL`` of a claim file; the winner must call
        :meth:`release` (in a ``finally``) once the entry is stored. A
        claim older than :data:`STALE_CLAIM_S` is presumed abandoned,
        broken, and re-contended. Always True when the cache is
        disabled: with no shared store there is nothing to coordinate.
        """
        if not self.enabled:
            return True
        path = self._claim_path(key)
        for _ in range(2):  # second pass: after breaking a stale claim
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if not self._claim_stale(path):
                    return False
                try:
                    path.unlink()
                except OSError:
                    return False
                continue
            except OSError:
                # Unwritable cache dir: behave like a disabled cache.
                return True
            with os.fdopen(fd, "w") as fh:
                fh.write(str(os.getpid()))
            return True
        return False

    def release(self, key: str) -> None:
        try:
            self._claim_path(key).unlink()
        except OSError:
            pass

    @staticmethod
    def _claim_stale(path: Path) -> bool:
        try:
            age = time.time() - path.stat().st_mtime
        except OSError:  # vanished: not stale, just gone
            return False
        return age > STALE_CLAIM_S

    def wait_for(self, key: str, timeout_s: Optional[float] = None,
                 poll_s: float = 0.1) -> Optional[Dict[str, Any]]:
        """Wait for another process's claimed entry to appear.

        Polls until the entry exists (a dedup hit, counted) or the
        claim is released/stale/timed out without producing one (the
        caller then simulates after all). ``REPRO_CACHE_LOCK_WAIT``
        overrides the default timeout; ``0`` disables waiting entirely.
        """
        if not self.enabled:
            return None
        if timeout_s is None:
            timeout_s = float(os.environ.get(_ENV_LOCK_WAIT, STALE_CLAIM_S))
        deadline = time.monotonic() + timeout_s
        claim = self._claim_path(key)
        while True:
            payload = self._read(key)
            if payload is not None:
                self.dedup_hits += 1
                self.hits += 1
                self.probes += 1
                return payload
            if not claim.exists() or self._claim_stale(claim):
                return None
            if time.monotonic() >= deadline:
                return None
            time.sleep(poll_s)

    # -- reporting -----------------------------------------------------
    def stats(self) -> Dict[str, int]:
        """Machine-readable counters (the service's /metrics reads this)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "probes": self.probes,
            "dedup_hits": self.dedup_hits,
        }

    def stats_line(self) -> str:
        state = "on" if self.enabled else "off"
        line = (
            f"cache[{state}] {self.cache_dir}: "
            f"{self.hits} hits, {self.misses} misses, {self.stores} stores"
        )
        if self.dedup_hits:
            line += f", {self.dedup_hits} dedup"
        return line


# ----------------------------------------------------------------------
# Convenience entry point shared by ExperimentContext, the parallel
# runner and the pytest/benchmark fixtures.
# ----------------------------------------------------------------------
def load_or_run(
    cache: Optional[RunCache],
    workload: str,
    horizon_ms: float,
    warmup_ms: float,
    seed: int,
    sim_kwargs: Optional[Dict[str, Any]] = None,
    analyze: bool = False,
    shards: int = 1,
):
    """Fetch ``(TracedRun, AnalysisReport|None)``, simulating on a miss.

    With ``analyze=True`` the analysis report is computed (and cached)
    too; a cached run whose entry predates the report request is
    upgraded in place. ``shards`` parallelizes the analysis pass only —
    its output (and therefore the cache key and stored entry) is
    identical for every shard count.
    """
    from repro.sanitizers import check_enabled_by_env
    from repro.sim._session import Simulation

    sim_kwargs = dict(sim_kwargs or {})
    # Checked and unchecked runs must never cross-reuse: a run simulated
    # with REPRO_CHECK=1 carries a CheckReport (and sanitizer state), an
    # unchecked run does not. Resolve the env here so it enters the key;
    # an explicit check=False is normalized away so pre-existing entries
    # keyed without the flag stay valid.
    if check_enabled_by_env():
        sim_kwargs["check"] = True
    elif not sim_kwargs.get("check", False):
        sim_kwargs.pop("check", None)
    # Fidelity is folded INTO the run key (unlike shards: the tier
    # changes the run's bytes). The defaults normalize away so every
    # pre-existing detailed entry stays valid, and detailed/atomic/mixed
    # entries can never cross-reuse.
    if sim_kwargs.get("fidelity", "detailed") == "detailed":
        sim_kwargs.pop("fidelity", None)
    if not sim_kwargs.get("fast_forward", 0):
        sim_kwargs.pop("fast_forward", None)
    # The machine geometry also changes the run's bytes, so it keys the
    # run — canonicalized (a preset's name and its literal MachineParams
    # key identically) with the 4d340 default normalized away so every
    # pre-existing default-machine entry stays valid.
    if "machine" in sim_kwargs:
        from repro.machines import DEFAULT_MACHINE, canonical_machine

        machine = canonical_machine(sim_kwargs["machine"])
        if machine == DEFAULT_MACHINE:
            sim_kwargs.pop("machine")
        else:
            sim_kwargs["machine"] = machine
    # Tuned workload knobs also change the run's bytes, so they key the
    # run — canonicalized to the sorted pair-tuple form (deterministic
    # repr) with the empty default normalized away, so tuned and default
    # runs never cross-reuse and every pre-existing key stays identical.
    if "workload_args" in sim_kwargs:
        from repro.workloads import canonical_workload_args

        workload_args = canonical_workload_args(sim_kwargs["workload_args"])
        if workload_args:
            sim_kwargs["workload_args"] = workload_args
        else:
            sim_kwargs.pop("workload_args")
    mixed = sim_kwargs.get("fidelity") == "mixed"
    key = None
    claimed = False
    if cache is not None:
        key = cache.run_key(workload, horizon_ms, warmup_ms, seed, sim_kwargs)
        payload = cache.load(key)
        if payload is None and cache.enabled:
            # Cold: exactly one process simulates this key; everyone
            # else waits for its entry instead of duplicating work.
            claimed = cache.claim(key)
            if not claimed:
                payload = cache.wait_for(key)
                if payload is None:
                    # Claim holder died or stalled: do the work ourselves.
                    claimed = cache.claim(key)
        if payload is not None:
            run, report = payload.get("run"), payload.get("report")
            if run is not None:
                if analyze and report is None:
                    report = _analyze(run, shards)
                    cache.store(key, {"run": run, "report": report})
                return run, report
    try:
        run = None
        if mixed and cache is not None and cache.enabled:
            # Seam-checkpoint reuse: a prior mixed run at the same
            # warmed-state key already paid for the fast-forward —
            # restore it and run only the detailed window.
            from repro.fidelity.checkpoint import load_checkpoint

            restored = load_checkpoint(
                cache, workload, horizon_ms, warmup_ms, seed,
                sim_kwargs.get("fast_forward", 0), sim_kwargs,
            )
            if restored is not None:
                run = restored.continue_run(horizon_ms)
        if run is None:
            sim = Simulation(workload, seed=seed, **sim_kwargs)
            if mixed and cache is not None and cache.enabled:
                from repro.fidelity.checkpoint import (
                    checkpoint_key,
                    tty_dependent,
                )

                sim.checkpoint_cache = cache
                sim.checkpoint_cache_key = checkpoint_key(
                    cache, workload, warmup_ms, seed, sim.fast_forward,
                    sim_kwargs,
                    horizon_ms=(
                        horizon_ms if tty_dependent(sim.workload) else None
                    ),
                )
            run = sim.run(horizon_ms, warmup_ms=warmup_ms)
        report = _analyze(run, shards) if analyze else None
        if cache is not None and key is not None:
            cache.store(key, {"run": run, "report": report})
    finally:
        if cache is not None and key is not None and claimed:
            cache.release(key)
    return run, report


def _analyze(run, shards: int = 1):
    from repro.analysis.report import analyze_trace

    return analyze_trace(run, shards=shards)
