"""Kernel spinlocks: the Table 11 inventory with Table 12 statistics.

Lock words live on the 4D/340's synchronization bus (uncached), so lock
accesses are invisible to the main-bus monitor; statistics are kept by
the OS itself (Section 2.2). Each lock records:

- successful acquires and acquires that found the lock taken
  ("% of failed acquires", spinning excluded, per Table 12),
- the number of waiters present at each release,
- locality: acquires by the CPU that also acquired the lock last, with no
  other CPU touching the lock in between (the property that makes locks
  cachable),
- and it feeds the :class:`~repro.sync.llsc.CachedLockSimulator` so the
  cached/uncached bus-traffic ratio of Table 12 falls out.

The inventory (Table 11): Memlock, Runqlk, Ifree, Dfbmaplk, Bfreelock,
Calock, and the arrays Shr_x (per-process page tables), Streams_x
(per character device), Ino_x (per inode), Semlock.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.cpu.processor import Processor
from repro.sync.llsc import CachedLockSimulator
from repro.sync.syncbus import SyncBus

# Cycles one spin iteration takes (uncached read + loop overhead).
SPIN_ITERATION_CYCLES = 30
# Cap on spin iterations charged per contended acquire (kernel locks
# never sginap; the cap only bounds accounting, not correctness).
MAX_COUNTED_SPINS = 200

LOCK_FUNCTIONS: Dict[str, str] = {
    # Table 11, verbatim.
    "memlock": "Data struct. that allocate/deallocate physical memory.",
    "runqlk": "Scheduler's run queue.",
    "ifree": "List of free inodes.",
    "dfbmaplk": "Table of free blocks on the disk.",
    "bfreelock": "List of free buffers for the buffer cache.",
    "calock": "Table of outstanding actions like alarms or timeouts.",
    "shr_x": "Per-process page tables and related structures.",
    "streams_x": "Management of a character-oriented device.",
    "ino_x": "Operations on a given inode, like read or write.",
    "semlock": "Array of semaphores for the programmer to use.",
}


@dataclass
class LockStats:
    """Per-lock counters (the OS-kept synchronization statistics)."""

    acquires: int = 0
    failed_acquires: int = 0            # found taken (spins not counted)
    releases: int = 0
    releases_with_waiters: int = 0
    waiters_sum: int = 0
    same_cpu_no_intervening: int = 0    # locality numerator (Table 12 col 5)
    spin_iterations: int = 0
    hold_cycles_sum: int = 0
    first_acquire_cycles: Optional[int] = None
    last_acquire_cycles: int = 0

    @property
    def failed_pct(self) -> float:
        return 100.0 * self.failed_acquires / self.acquires if self.acquires else 0.0

    @property
    def mean_waiters_if_any(self) -> float:
        """Average waiters at release, over releases with >= 1 waiter
        (Table 12 column 4); 1.0 when contention never queued."""
        if not self.releases_with_waiters:
            return 1.0
        return self.waiters_sum / self.releases_with_waiters

    @property
    def locality_pct(self) -> float:
        return (
            100.0 * self.same_cpu_no_intervening / self.acquires
            if self.acquires
            else 0.0
        )

    def cycles_between_acquires(self, total_cycles: int) -> float:
        """Average cycles between consecutive successful acquires
        (includes idle time, as in Table 12)."""
        if self.acquires < 1:
            return float("inf")
        return total_cycles / self.acquires


class KernelLock:
    """One spinlock, with chunk-atomic critical-section semantics.

    The simulator executes each critical section atomically on the
    holder's CPU, so the lock records the hold interval
    ``[acquire_cycles, release_cycles]``; a later acquire attempt whose
    local time falls inside a recorded interval counts as contended and
    waits until the recorded release.
    """

    __slots__ = (
        "name",
        "family",
        "stats",
        "holder_cpu",
        "acquire_cycles",
        "release_cycles",
        "interval_waiters",
        "last_acquirer",
        "touched_by_other",
    )

    def __init__(self, name: str, family: str):
        self.name = name
        self.family = family
        self.stats = LockStats()
        self.holder_cpu: Optional[int] = None
        self.acquire_cycles = 0
        self.release_cycles = 0      # end of the most recent hold interval
        self.interval_waiters = 0    # waiters seen against the latest interval
        self.last_acquirer: Optional[int] = None
        self.touched_by_other = False

    def held_at(self, cycles: int) -> bool:
        """Would an acquire at local time ``cycles`` find the lock taken?

        Critical sections execute atomically on the holder's CPU, so the
        hold interval ``[acquire_cycles, release_cycles]`` may already be
        fully recorded when a *slower-clocked* CPU attempts the lock; any
        attempt whose local time falls before the interval's end was, in
        machine time, a contended attempt.
        """
        return cycles < self.release_cycles


class LockTable:
    """All kernel locks; the single place the kernel takes locks through."""

    def __init__(
        self,
        syncbus: SyncBus,
        llsc: Optional[CachedLockSimulator] = None,
        num_shr: int = 128,
        num_streams: int = 8,
        num_ino: int = 64,
        num_runq: int = 1,
    ):
        self.syncbus = syncbus
        self.llsc = llsc if llsc is not None else CachedLockSimulator()
        # Sanitizer hook: a CheckRegistry when invariant checking is on
        # (repro.sanitizers), None — one branch per acquire — otherwise.
        self.checks = None
        self._locks: Dict[str, KernelLock] = {}
        for name in ("memlock", "ifree", "dfbmaplk", "bfreelock",
                     "calock", "semlock"):
            self._locks[name] = KernelLock(name, name)
        # The run queue is a single global lock on the measured machine;
        # Section 6 proposes distributing it (one queue per cluster).
        self.num_runq = max(1, num_runq)
        if self.num_runq == 1:
            self._locks["runqlk"] = KernelLock("runqlk", "runqlk")
        else:
            for i in range(self.num_runq):
                self._locks[f"runqlk_{i}"] = KernelLock(f"runqlk_{i}", "runqlk")
        for i in range(num_shr):
            self._locks[f"shr_{i}"] = KernelLock(f"shr_{i}", "shr_x")
        for i in range(num_streams):
            self._locks[f"streams_{i}"] = KernelLock(f"streams_{i}", "streams_x")
        for i in range(num_ino):
            self._locks[f"ino_{i}"] = KernelLock(f"ino_{i}", "ino_x")

    def lock(self, name: str) -> KernelLock:
        return self._locks[name]

    def runq(self, queue: int = 0) -> KernelLock:
        if self.num_runq == 1:
            return self._locks["runqlk"]
        return self._locks[f"runqlk_{queue % self.num_runq}"]

    def shr(self, slot: int) -> KernelLock:
        return self._locks[f"shr_{slot % self._count('shr_')}"]

    def ino(self, inode: int) -> KernelLock:
        return self._locks[f"ino_{inode % self._count('ino_')}"]

    def streams(self, device: int) -> KernelLock:
        return self._locks[f"streams_{device % self._count('streams_')}"]

    def _count(self, prefix: str) -> int:
        return sum(1 for n in self._locks if n.startswith(prefix))

    # ------------------------------------------------------------------
    # Acquire / release
    # ------------------------------------------------------------------
    def acquire(self, proc: Processor, lock: KernelLock) -> None:
        """Take the lock, spinning (kernel locks never sginap)."""
        cpu = proc.cpu_id
        stats = lock.stats
        if lock.last_acquirer is not None and lock.last_acquirer != cpu:
            lock.touched_by_other = True
        if lock.held_at(proc.cycles):
            stats.failed_acquires += 1
            # Waiter counts are credited to the interval being waited on
            # (the holder's release may already be recorded, see held_at).
            lock.interval_waiters += 1
            stats.waiters_sum += 1
            if lock.interval_waiters == 1:
                stats.releases_with_waiters += 1
            wait = lock.release_cycles - proc.cycles
            spins = min(MAX_COUNTED_SPINS, wait // SPIN_ITERATION_CYCLES + 1)
            stats.spin_iterations += spins
            if self.checks is not None:
                self.checks.llsc.on_spin(lock, cpu, spins, proc.cycles)
            self.llsc.on_spin(lock.family, cpu, spins)
            # Spinning occupies the CPU until the recorded release.
            proc.advance_to(lock.release_cycles)
        # The acquire itself: uncached read + write (no atomic RMW).
        proc.charge_stall(self.syncbus.read(cpu))
        proc.charge_stall(self.syncbus.write(cpu))
        if self.checks is not None:
            self.checks.llsc.on_acquire(lock, cpu, proc.cycles)
        self.llsc.on_acquire(lock.family, cpu)
        stats.acquires += 1
        if stats.first_acquire_cycles is None:
            stats.first_acquire_cycles = proc.cycles
        stats.last_acquire_cycles = proc.cycles
        if lock.last_acquirer == cpu and not lock.touched_by_other:
            stats.same_cpu_no_intervening += 1
        lock.last_acquirer = cpu
        lock.touched_by_other = False
        lock.holder_cpu = cpu
        lock.acquire_cycles = proc.cycles
        lock.release_cycles = proc.cycles  # grows as the holder executes
        lock.interval_waiters = 0
        if self.checks is not None:
            self.checks.lockdep.on_acquire(cpu, proc.cycles, lock)

    def release(self, proc: Processor, lock: KernelLock) -> None:
        if lock.holder_cpu != proc.cpu_id:
            raise RuntimeError(
                f"CPU {proc.cpu_id} releasing {lock.name} held by {lock.holder_cpu}"
            )
        stats = lock.stats
        stats.releases += 1
        stats.hold_cycles_sum += proc.cycles - lock.acquire_cycles
        proc.charge_stall(self.syncbus.write(proc.cpu_id))
        if self.checks is not None:
            self.checks.llsc.on_release(lock, proc.cpu_id, proc.cycles)
        self.llsc.on_release(lock.family, proc.cpu_id)
        lock.holder_cpu = None
        lock.release_cycles = proc.cycles
        if self.checks is not None:
            self.checks.lockdep.on_release(proc.cpu_id, proc.cycles, lock)

    @contextmanager
    def held(self, proc: Processor, name: str) -> Iterator[KernelLock]:
        """``with locks.held(cpu, "runqlk"): ...`` critical section."""
        lock = self._locks[name]
        self.acquire(proc, lock)
        try:
            yield lock
        finally:
            self.release(proc, lock)

    @contextmanager
    def held_lock(self, proc: Processor, lock: KernelLock) -> Iterator[KernelLock]:
        self.acquire(proc, lock)
        try:
            yield lock
        finally:
            self.release(proc, lock)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def family_stats(self) -> Dict[str, LockStats]:
        """Aggregate statistics by lock family (shr_x summed, etc.)."""
        out: Dict[str, LockStats] = {}
        for lock in self._locks.values():
            agg = out.setdefault(lock.family, LockStats())
            s = lock.stats
            agg.acquires += s.acquires
            agg.failed_acquires += s.failed_acquires
            agg.releases += s.releases
            agg.releases_with_waiters += s.releases_with_waiters
            agg.waiters_sum += s.waiters_sum
            agg.same_cpu_no_intervening += s.same_cpu_no_intervening
            agg.spin_iterations += s.spin_iterations
            agg.hold_cycles_sum += s.hold_cycles_sum
        return out

    def all_locks(self) -> List[KernelLock]:
        return list(self._locks.values())

    def total_acquires(self) -> int:
        return sum(lock.stats.acquires for lock in self._locks.values())
