"""Filesystem, buffer cache and disk model.

I/O system calls are the largest contributor to OS instruction misses
(Figure 9) and a big share of the data misses, through

- long code walks (``fs_read``/``fs_write``, the buffer cache, the disk
  driver — "some I/O drivers have a size comparable to the instruction
  cache"),
- buffer-header and inode-table touches (Figure 8's ``Buffer`` and
  ``Inode`` Sharing-miss categories),
- block copies between buffer-cache pages and user pages — the
  "transfer of data in/out of buffer cache" row of Table 7 (regular page
  fragments; our buffer size is a quarter page), and
- the Ifree / Dfbmaplk / Bfreelock / Ino_x locks of Table 11.

The disk is a single-spindle model with exponentially-distributed service
time; a process reading an uncached block sleeps until the disk-interrupt
handler (:mod:`repro.kernel.interrupts`) fills the buffer and wakes it.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.kernel.structures import NBUF, NINODE, StructName
from repro.kernel.vm import USE_BUFFER

BUFFER_BYTES = 1024  # a quarter of a 4 KB page (Table 7's regular fragment)
READAHEAD_BUFFERS = 8  # one disk request fills up to 8 KB of buffers


@dataclass
class FileMeta:
    """One file known to the modelled filesystem."""

    ino: int
    size: int
    name: str = ""


@dataclass
class BufferEntry:
    """One buffer-cache buffer: a header slot plus a data frame."""

    header_idx: int
    ino: int
    fblock: int          # file block number (units of BUFFER_BYTES)
    frame: int
    offset_in_frame: int
    valid: bool = False  # filled from disk / by a write
    dirty: bool = False
    io_pending: bool = False

    def data_addr(self, page_bytes: int) -> int:
        return self.frame * page_bytes + self.offset_in_frame


@dataclass(order=True)
class _DiskEvent:
    time_cycles: int
    seq: int
    payload: Tuple = field(compare=False)


class Disk:
    """Single disk with FCFS service and exponential service times."""

    def __init__(self, rng, cycles_per_ms: float, mean_service_ms: float = 4.0):
        self.rng = rng
        self.cycles_per_ms = cycles_per_ms
        self.mean_service_ms = mean_service_ms
        self._queue: List[_DiskEvent] = []
        self._seq = 0
        self._busy_until = 0
        self.requests = 0

    def schedule(
        self, now_cycles: int, payload: Tuple, service_scale: float = 1.0
    ) -> int:
        """Queue one transfer; returns its completion time.

        ``service_scale`` discounts the service time for sequential
        write-behind traffic (the delayed writes a real driver sorts and
        streams), so asynchronous flushing does not head-of-line block
        demand reads the way random reads do.
        """
        service = self.rng.expovariate(1.0 / self.mean_service_ms) * service_scale
        service_cycles = max(1, int(service * self.cycles_per_ms))
        start = max(now_cycles, self._busy_until)
        done = start + service_cycles
        self._busy_until = done
        self._seq += 1
        self.requests += 1
        heapq.heappush(self._queue, _DiskEvent(done, self._seq, payload))
        return done

    def next_time(self) -> Optional[int]:
        return self._queue[0].time_cycles if self._queue else None

    def pop_due(self, now_cycles: int) -> List[Tuple]:
        due = []
        while self._queue and self._queue[0].time_cycles <= now_cycles:
            due.append(heapq.heappop(self._queue).payload)
        return due

    def pending(self) -> int:
        return len(self._queue)


class BufferCache:
    """The block buffer cache: NBUF headers, one data frame per 4 buffers."""

    def __init__(self, kernel):
        self.k = kernel
        self._entries: Dict[Tuple[int, int], BufferEntry] = {}
        self._by_header: Dict[int, BufferEntry] = {}
        self._lru: List[Tuple[int, int]] = []  # keys, least recent first
        self._free_headers = list(range(NBUF))
        # frame -> list of header_idx sharing it (4 buffers per frame)
        self._frame_slots: Dict[int, List[int]] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def lookup(self, proc, ino: int, fblock: int) -> Optional[BufferEntry]:
        """Hash lookup; touches the buffer header on a hit."""
        key = (ino, fblock)
        entry = self._entries.get(key)
        if entry is not None:
            self.hits += 1
            proc.dread(self.k.datamap.buffer_header(entry.header_idx))
            self._lru.remove(key)
            self._lru.append(key)
            return entry
        self.misses += 1
        return None

    def getblk(self, proc, ino: int, fblock: int) -> BufferEntry:
        """Allocate a buffer for (ino, fblock); caller fills it.

        Touches the free-buffer list under Bfreelock, evicting the least
        recently used buffer when none is free (scheduling a disk write
        first if it was dirty).
        """
        k = self.k
        with k.locks.held(proc, "bfreelock"):
            proc.ifetch_range(*k.routine_span("buffercache_getblk"))
            if not self._free_headers:
                self._evict_lru(proc)
            header_idx = self._free_headers.pop()
            frame, offset = self._frame_slot_for(proc, header_idx)
            entry = BufferEntry(header_idx, ino, fblock, frame, offset)
            self._entries[(ino, fblock)] = entry
            self._by_header[header_idx] = entry
            self._lru.append((ino, fblock))
            proc.dwrite(k.datamap.buffer_header(header_idx))
        return entry

    def _frame_slot_for(self, proc, header_idx: int) -> Tuple[int, int]:
        """Find a frame with spare quarter-page slots, or allocate one."""
        slots_per_frame = self.k.params.page_bytes // BUFFER_BYTES
        for frame, users in self._frame_slots.items():
            if len(users) < slots_per_frame:
                users.append(header_idx)
                return frame, (len(users) - 1) * BUFFER_BYTES
        frame = self.k.vm.alloc_frame(proc, USE_BUFFER, header_idx)
        self._frame_slots[frame] = [header_idx]
        return frame, 0

    def _evict_lru(self, proc) -> None:
        k = self.k
        for key in list(self._lru):
            entry = self._entries[key]
            if entry.io_pending:
                continue
            if entry.dirty:
                # Delayed write: push it to disk, reuse the buffer.
                k.fs.start_buffer_write(proc, entry)
            self._drop_entry(entry)
            return
        raise RuntimeError("buffer cache wedged: all buffers have I/O pending")

    def _drop_entry(self, entry: BufferEntry) -> None:
        key = (entry.ino, entry.fblock)
        del self._entries[key]
        del self._by_header[entry.header_idx]
        self._lru.remove(key)
        self._free_headers.append(entry.header_idx)
        users = self._frame_slots.get(entry.frame)
        if users is not None and entry.header_idx in users:
            users.remove(entry.header_idx)

    # ------------------------------------------------------------------
    def reclaim_frame(self, proc, frame: int) -> bool:
        """Memory pressure: give back a whole buffer frame if possible."""
        users = self._frame_slots.get(frame)
        if users is None:
            return False
        for header_idx in list(users):
            entry = self._by_header.get(header_idx)
            if entry is None:
                continue
            if entry.io_pending:
                return False
            if entry.dirty:
                self.k.fs.start_buffer_write(proc, entry)
            self._drop_entry(entry)
        del self._frame_slots[frame]
        self.k.vm.free_frame(proc, frame)
        return True

    def cached_buffers(self) -> int:
        return len(self._entries)


class FsSubsystem:
    """System-call-level file operations."""

    def __init__(self, kernel, disk_rng):
        self.k = kernel
        self.files: Dict[int, FileMeta] = {}
        self.buffer_cache = BufferCache(kernel)
        self.disk = Disk(disk_rng, kernel.params.cycles_per_ms())
        self._incore_inodes: set = set()
        self.reads = 0
        self.writes = 0
        self.read_bytes = 0
        self.write_bytes = 0

    # ------------------------------------------------------------------
    # File registry (workload setup)
    # ------------------------------------------------------------------
    def register_file(self, ino: int, size: int, name: str = "") -> FileMeta:
        meta = FileMeta(ino, size, name)
        self.files[ino] = meta
        return meta

    def file(self, ino: int) -> FileMeta:
        return self.files[ino]

    # ------------------------------------------------------------------
    # open(): pathname lookup + in-core inode activation
    # ------------------------------------------------------------------
    def do_open(self, proc, ino: int, components: int = 3) -> None:
        k = self.k
        proc.ifetch_range(*k.routine_span("fs_namei"))
        # Touch an inode per pathname component walked.
        for i in range(components):
            proc.dread(k.datamap.inode_entry((ino + i * 7) % NINODE))
        # iget: activating an in-core inode always goes through the free
        # list (System V keeps inactive inodes on it), which is what makes
        # Ifree one of the hottest locks in Table 12.
        with k.locks.held(proc, "ifree"):
            proc.dwrite(k.datamap.inode_entry(ino))
            self._incore_inodes.add(ino)
        with k.locks.held_lock(proc, k.locks.ino(ino)):
            proc.dread(k.datamap.inode_entry(ino))

    # ------------------------------------------------------------------
    # read(): returns True when complete, False when the process slept
    # ------------------------------------------------------------------
    def do_read(self, proc, process, ino: int, offset: int, nbytes: int,
                progress: int, dst_base: Optional[int] = None) -> Tuple[bool, int]:
        """Advance a read; ``progress`` is bytes already transferred.

        ``dst_base`` overrides the destination (physical address) — used
        by text page-in, which reads straight into the new text frame.
        Otherwise data lands in the process's user I/O pages.

        Returns ``(done, new_progress)``. When ``done`` is False the
        process has been put to sleep on the missing buffer and the call
        must be repeated after wakeup.
        """
        k = self.k
        meta = self.files[ino]
        nbytes = min(nbytes, max(0, meta.size - offset))
        if progress == 0:
            self.reads += 1
        while progress < nbytes:
            pos = offset + progress
            fblock = pos // BUFFER_BYTES
            chunk = min(BUFFER_BYTES - pos % BUFFER_BYTES, nbytes - progress)
            with k.locks.held_lock(proc, k.locks.ino(ino)):
                proc.ifetch_range(*k.routine_span("fs_read"))
                proc.dread(k.datamap.inode_entry(ino))
                entry = self.buffer_cache.lookup(proc, ino, fblock)
                if entry is not None and entry.valid:
                    if dst_base is not None:
                        dst = dst_base + progress
                    else:
                        dst = k.user_io_address(proc, process, progress)
                    k.blockops.bcopy(
                        proc, entry.data_addr(k.params.page_bytes), dst, chunk
                    )
                    progress += chunk
                    self.read_bytes += chunk
                    continue
                if entry is None:
                    # One disk request fills a run of consecutive buffers
                    # (read-ahead), like a real block driver would.
                    last_fblock = max(0, (meta.size - 1)) // BUFFER_BYTES
                    run = []
                    for fb in range(
                        fblock, min(fblock + READAHEAD_BUFFERS, last_fblock + 1)
                    ):
                        if (ino, fb) in self.buffer_cache._entries:
                            break
                        new_entry = self.buffer_cache.getblk(proc, ino, fb)
                        new_entry.io_pending = True
                        run.append(fb)
                    proc.ifetch_range(*k.routine_span("disk_driver_hot"))
                    self.disk.schedule(proc.cycles, ("read", ino, tuple(run)))
            # Buffer exists but is not valid yet: sleep until the disk
            # interrupt fills it.
            k.sleep(process, ("buffer", ino, fblock))
            return False, progress
        return True, progress

    # ------------------------------------------------------------------
    # write(): delayed writes never block
    # ------------------------------------------------------------------
    def do_write(self, proc, process, ino: int, offset: int, nbytes: int) -> None:
        k = self.k
        meta = self.files[ino]
        self.writes += 1
        progress = 0
        while progress < nbytes:
            pos = offset + progress
            fblock = pos // BUFFER_BYTES
            chunk = min(BUFFER_BYTES - pos % BUFFER_BYTES, nbytes - progress)
            with k.locks.held_lock(proc, k.locks.ino(ino)):
                proc.ifetch_range(*k.routine_span("fs_write"))
                proc.dwrite(k.datamap.inode_entry(ino))
                entry = self.buffer_cache.lookup(proc, ino, fblock)
                if entry is None:
                    entry = self.buffer_cache.getblk(proc, ino, fblock)
                    entry.valid = True
                    if pos >= meta.size:
                        # New file space: allocate disk blocks.
                        with k.locks.held(proc, "dfbmaplk"):
                            proc.ifetch_range(*k.routine_span("dfbmap_alloc"))
                            proc.dwrite(
                                k.datamap.inode_entry(ino)
                            )
                src = k.user_io_address(proc, process, progress)
                k.blockops.bcopy(
                    proc, src, entry.data_addr(k.params.page_bytes), chunk
                )
                entry.dirty = True
            progress += chunk
            self.write_bytes += chunk
        meta.size = max(meta.size, offset + nbytes)

    # ------------------------------------------------------------------
    # Disk interplay
    # ------------------------------------------------------------------
    def start_buffer_write(self, proc, entry: BufferEntry) -> None:
        """Push a dirty buffer to disk (asynchronous delayed write)."""
        entry.dirty = False
        proc.ifetch_range(*self.k.routine_span("disk_driver_hot"))
        self.disk.schedule(
            proc.cycles, ("write", entry.ino, (entry.fblock,)), service_scale=0.2
        )

    def complete_io(self, proc, payload: Tuple) -> None:
        """Called from the disk-interrupt handler."""
        kind, ino, fblocks = payload
        if kind != "read":
            return
        # The completion writes buffer headers without Bfreelock: disk
        # interrupts are serialized on CPU 0 and the headers' I/O fields
        # are guarded by interrupt level (spl), not a spinlock — the
        # pre-fine-grain-locking discipline. Annotated for the checker.
        with self.k.race_exempt(proc, StructName.BUFFER):
            for fblock in fblocks:
                entry = self.buffer_cache._entries.get((ino, fblock))
                if entry is not None:
                    entry.valid = True
                    entry.io_pending = False
                    proc.dwrite(self.k.datamap.buffer_header(entry.header_idx))
                self.k.wakeup(("buffer", ino, fblock), proc)
