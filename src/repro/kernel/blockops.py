"""Block operations: bcopy, bclear, and the pfdat traversal.

"The OS often sweeps through large arrays of data, primarily in block
copy and clear operations and when traversing the physical page
descriptors" (Section 4.2.2). These sweeps are the paper's third major
miss source (Table 6) and mostly produce displacement and cold misses —
the data is seldom reused, yet it wipes out a large part of the data
cache.

Every operation brackets itself with BLOCKOP escape records (kind, first
block, length), standing in for the paper's per-subroutine
instrumentation, so the analysis can attribute the misses (Table 6) and
characterize operand sizes (Table 7) straight from the trace.
"""

from __future__ import annotations

from repro.kernel.structures import PFDAT_BYTES

KIND_COPY = 0
KIND_CLEAR = 1
KIND_TRAVERSE = 2

KIND_NAMES = {KIND_COPY: "copy", KIND_CLEAR: "clear", KIND_TRAVERSE: "traverse"}

# Loop-body refetch: one extra instruction block per this many bytes
# swept (the loop code stays cache resident; this models issue time).
_LOOP_REFETCH_BYTES = 512

# Cache-bypassing transfers move this many bytes per bus transaction
# ("the data accessed with cache bypassing should not be fetched from
# memory one word at a time, but in blocks of contiguous data").
_BYPASS_TRANSFER_BYTES = 64


class BlockOps:
    """The three sweep kernels.

    Two of the paper's proposed optimizations (Section 4.2.2, "Removing
    Misses in Block Operations") are implemented as switchable modes:

    - ``cache_bypass``: copies and clears move data through uncached
      block transfers — "we still pay the cost of the cache miss
      latency, but do not wipe out other relevant state in the cache
      with this seldom-reused data";
    - ``prefetch``: the sweep's miss latency is hidden behind other
      computation (the bus traffic and displacement still occur).

    ``examples/`` and the ablation experiments measure their effect.
    """

    def __init__(self, kernel, cache_bypass: bool = False,
                 prefetch: bool = False):
        self.k = kernel
        self.cache_bypass = cache_bypass
        self.prefetch = prefetch
        self.copies = 0
        self.clears = 0
        self.traversals = 0
        self.bytes_copied = 0
        self.bytes_cleared = 0

    # ------------------------------------------------------------------
    def bcopy(self, proc, src_base: int, dst_base: int, nbytes: int) -> None:
        """Block copy: read the source, write the destination.

        "The copy operation brings two pages into the cache; one of the
        pages will probably not be accessed anymore" — the misses land in
        whatever class the cache state dictates.
        """
        if nbytes <= 0:
            return
        k = self.k
        self.copies += 1
        self.bytes_copied += nbytes
        block_bytes = k.params.block_bytes
        k.instr.blockop_begin(
            proc, KIND_COPY, dst_base // block_bytes, -(-nbytes // block_bytes)
        )
        base, size = k.routine_span("bcopy")
        proc.ifetch_range(base, size)
        src_block = src_base // block_bytes
        dst_block = dst_base // block_bytes
        nblocks = -(-nbytes // block_bytes)
        loop_block = base // block_bytes
        refetch_every = max(1, _LOOP_REFETCH_BYTES // block_bytes)
        if self.cache_bypass:
            self._bypass_transfer(proc, nbytes, reads=True, writes=True)
            self._invalidate_stale(proc, dst_block, nblocks)
        else:
            if self.prefetch:
                proc.prefetch_mode = True
            try:
                proc.copy_blocks(
                    src_block, dst_block, nblocks, loop_block, refetch_every
                )
            finally:
                proc.prefetch_mode = False
        k.instr.blockop_end(proc)

    # ------------------------------------------------------------------
    def bclear(self, proc, dst_base: int, nbytes: int) -> None:
        """Block clear: zero the destination (demand-zero pages, kernel
        structure initialization)."""
        if nbytes <= 0:
            return
        k = self.k
        self.clears += 1
        self.bytes_cleared += nbytes
        block_bytes = k.params.block_bytes
        k.instr.blockop_begin(
            proc, KIND_CLEAR, dst_base // block_bytes, -(-nbytes // block_bytes)
        )
        base, size = k.routine_span("bclear")
        proc.ifetch_range(base, size)
        dst_block = dst_base // block_bytes
        nblocks = -(-nbytes // block_bytes)
        loop_block = base // block_bytes
        refetch_every = max(1, _LOOP_REFETCH_BYTES // block_bytes)
        if self.cache_bypass:
            self._bypass_transfer(proc, nbytes, reads=False, writes=True)
            self._invalidate_stale(proc, dst_block, nblocks)
        else:
            if self.prefetch:
                proc.prefetch_mode = True
            try:
                proc.clear_blocks(dst_block, nblocks, loop_block, refetch_every)
            finally:
                proc.prefetch_mode = False
        k.instr.blockop_end(proc)

    def _bypass_transfer(self, proc, nbytes: int, reads: bool, writes: bool) -> None:
        """Move data through uncached contiguous block transfers.

        Like the synchronization bus's traffic, these burst transfers are
        not fed to the trace decoder (the ablation experiments measure
        their effect through processor statistics, not the trace).
        """
        transfers = -(-nbytes // _BYPASS_TRANSFER_BYTES)
        per_side = transfers * (int(reads) + int(writes))
        for _ in range(per_side):
            # One bus round trip per transfer; no cache displacement.
            proc.advance(1)
            proc.charge_stall(self.k.params.bus_stall_cycles)

    def _invalidate_stale(self, proc, first_block: int, nblocks: int) -> None:
        """Uncached writes update memory around the caches: stale cached
        copies of the destination must be invalidated everywhere."""
        memsys = self.k.memsys
        for i in range(nblocks):
            block = first_block + i
            for hierarchy in memsys.hierarchies:
                if hierarchy.invalidate_data(block):
                    memsys.truth.record_invalidation(hierarchy.cpu, "D", block)
            # Memory now holds the data and no cache does: no owner.
            memsys._owner.pop(block, None)
        if self.k.checks is not None:
            self.k.checks.coherence.after_bypass_invalidate(
                proc.cpu_id, proc.cycles, first_block, nblocks
            )

    # ------------------------------------------------------------------
    def pfdat_traverse(self, proc, start_entry: int, num_entries: int) -> None:
        """Sweep page descriptors looking for reclaimable pages."""
        if num_entries <= 0:
            return
        k = self.k
        self.traversals += 1
        datamap = k.datamap
        desc_bytes = PFDAT_BYTES // 8192
        block_bytes = k.params.block_bytes
        start = start_entry % 8192
        span_entries = min(num_entries, 8192)
        first_addr = datamap.pfdat_base + start * desc_bytes
        # The traversal may wrap around the array.
        wrap_entries = max(0, start + span_entries - 8192)
        lead_entries = span_entries - wrap_entries
        k.instr.blockop_begin(
            proc,
            KIND_TRAVERSE,
            first_addr // block_bytes,
            -(-span_entries * desc_bytes // block_bytes),
        )
        base, size = k.routine_span("pfdat_scan")
        proc.ifetch_range(base, size)
        proc.dtouch_range(first_addr, lead_entries * desc_bytes)
        if wrap_entries:
            proc.dtouch_range(datamap.pfdat_base, wrap_entries * desc_bytes)
        k.instr.blockop_end(proc)
