"""System-call handlers.

Each handler is a code walk through the dispatch path plus the
operation's own footprint. The "recognition and setup" of read and write
(Table 5's third migration-miss category) touches the user structure —
argument fetch, file-descriptor lookup, return-value store — which is why
those misses follow a migrated process around.

``sginap`` is the call "issued by the synchronization library after 20
unsuccessful attempts to acquire a lock. This call reschedules the CPU,
in the hope of giving the process that holds the lock a chance to run
and release the lock" (Section 4.1); it dominates the OS operation mix
of Multpgm (Figure 2).
"""

from __future__ import annotations

from typing import Tuple

from repro.kernel.process import Image, ProcState, Process

# Small copies of strings / syscall parameters (Table 7's irregular rows).
_PARAM_COPY_BYTES = 64


class Syscalls:
    """The system-call surface the workload drivers use."""

    def __init__(self, kernel):
        self.k = kernel
        self.counts = {
            "read": 0, "write": 0, "open": 0, "sginap": 0, "fork": 0,
            "exec": 0, "exit": 0, "wait": 0, "brk": 0, "semop": 0, "misc": 0,
        }

    # ------------------------------------------------------------------
    # Common entry/exit footprint
    # ------------------------------------------------------------------
    def _entry(self, proc, process: Process) -> None:
        k = self.k
        proc.ifetch_range(*k.routine_span("syscall_entry"))
        # Argument fetch and u-area setup.
        proc.dread(k.datamap.ustruct_rest_base(process.slot))
        proc.dread(k.datamap.proc_entry(process.slot))

    def _exit(self, proc, process: Process) -> None:
        k = self.k
        proc.ifetch_range(*k.routine_span("syscall_exit"))
        # Return value store in the u-area.
        proc.dwrite(k.datamap.ustruct_rest_base(process.slot))

    def _copyin_params(self, proc, process: Process, nbytes: int) -> None:
        """Copy syscall parameters/strings from user space (the
        'irregular chunk' copies of Table 7)."""
        k = self.k
        src = k.user_io_address(proc, process, 0)
        dst = k.datamap.kheap_scratch(process.slot)
        k.blockops.bcopy(proc, src, dst, nbytes)

    # ------------------------------------------------------------------
    # File I/O
    # ------------------------------------------------------------------
    def read(self, proc, process: Process, ino: int, offset: int,
             nbytes: int, progress: int) -> Tuple[bool, int]:
        k = self.k
        if progress == 0:
            self.counts["read"] += 1
            process.syscalls += 1
        self._entry(proc, process)
        proc.ifetch_range(*k.routine_span("read_setup"))
        # File-descriptor table lookup in the user structure.
        proc.dread(k.datamap.ustruct_rest_base(process.slot) + 512)
        done, progress = k.fs.do_read(proc, process, ino, offset, nbytes, progress)
        if done:
            self._exit(proc, process)
        return done, progress

    def write(self, proc, process: Process, ino: int, offset: int,
              nbytes: int) -> None:
        k = self.k
        self.counts["write"] += 1
        process.syscalls += 1
        self._entry(proc, process)
        proc.ifetch_range(*k.routine_span("write_setup"))
        proc.dread(k.datamap.ustruct_rest_base(process.slot) + 512)
        k.fs.do_write(proc, process, ino, offset, nbytes)
        self._exit(proc, process)

    def open(self, proc, process: Process, ino: int) -> None:
        k = self.k
        self.counts["open"] += 1
        process.syscalls += 1
        self._entry(proc, process)
        self._copyin_params(proc, process, _PARAM_COPY_BYTES)  # the pathname
        k.fs.do_open(proc, ino)
        proc.dwrite(k.datamap.ustruct_rest_base(process.slot) + 512)
        self._exit(proc, process)

    # ------------------------------------------------------------------
    # sginap: voluntary reschedule
    # ------------------------------------------------------------------
    def sginap(self, proc, process: Process) -> None:
        """Yield the CPU (each invocation produces only ~25 data misses;
        it is the frequency that makes them matter — Section 4.2.3)."""
        k = self.k
        self.counts["sginap"] += 1
        process.syscalls += 1
        self._entry(proc, process)
        proc.ifetch_range(*k.routine_span("sginap_impl"))
        k.current[proc.cpu_id] = None
        k.scheduler.setrq(proc, process)
        k.scheduler.dispatch(proc)
        self._exit(proc, process)

    # ------------------------------------------------------------------
    # Process management
    # ------------------------------------------------------------------
    def fork(self, proc, parent: Process, child_name: str, driver) -> Process:
        """fork(): child shares the parent's image and COW data pages."""
        k = self.k
        self.counts["fork"] += 1
        parent.syscalls += 1
        self._entry(proc, parent)
        proc.ifetch_range(*k.routine_span("fork_impl"))
        child = k.create_process(child_name, parent.image, driver)
        # Duplicate the u-area (irregular kernel-to-kernel copy).
        k.blockops.bcopy(
            proc,
            k.datamap.ustruct_rest_base(parent.slot),
            k.datamap.ustruct_rest_base(child.slot),
            1024,
        )
        # Share data pages copy-on-write; both sides fault on next write.
        with k.locks.held_lock(proc, k.locks.shr(parent.slot)):
            for vpage, frame in parent.data_frames.items():
                child.data_frames[vpage] = frame
                child.cow_pages.add(vpage)
                parent.cow_pages.add(vpage)
                k.share_frame(frame)
                proc.dwrite(
                    k.datamap.pagetable_base(child.slot) + (vpage % 256) * 4
                )
        child.data_pages = parent.data_pages
        proc.dwrite(k.datamap.proc_entry(child.slot))
        k.scheduler.setrq(proc, child)
        self._exit(proc, parent)
        return child

    def exec(self, proc, process: Process, image: Image, data_pages: int) -> None:
        """exec(): replace the address space with a new image."""
        k = self.k
        self.counts["exec"] += 1
        process.syscalls += 1
        self._entry(proc, process)
        self._copyin_params(proc, process, _PARAM_COPY_BYTES * 2)  # argv
        proc.ifetch_range(*k.routine_span("exec_impl"))
        k.fs.do_open(proc, image.file_ino)
        k.teardown_address_space(proc, process)
        old_image = process.image
        old_image.refcount -= 1
        process.image = image
        image.refcount += 1
        k.register_image(image)
        k.release_image_if_dead(proc, old_image)
        process.data_pages = data_pages
        process.hot_blocks = []
        proc.ifetch_range(*k.routine_span("growreg"))
        proc.dwrite(k.datamap.proc_entry(process.slot))
        self._exit(proc, process)

    def exit(self, proc, process: Process) -> None:
        k = self.k
        self.counts["exit"] += 1
        process.syscalls += 1
        self._entry(proc, process)
        proc.ifetch_range(*k.routine_span("exit_impl"))
        k.teardown_address_space(proc, process)
        process.image.refcount -= 1
        k.release_image_if_dead(proc, process.image)
        process.state = ProcState.ZOMBIE
        process.exited = True
        proc.dwrite(k.datamap.proc_entry(process.slot))
        k.current[proc.cpu_id] = None
        k.wakeup(("child", process.pid), proc)
        k.free_process(process)
        # exit() never returns to user code; the CPU goes straight to the
        # scheduler.
        k.scheduler.dispatch(proc)

    def wait_for(self, proc, process: Process, child: Process) -> bool:
        """waitpid(): True if the child already exited, else sleeps."""
        k = self.k
        self.counts["wait"] += 1
        process.syscalls += 1
        self._entry(proc, process)
        proc.ifetch_range(*k.routine_span("wait_impl"))
        proc.dread(k.datamap.proc_entry(child.slot))
        if child.exited:
            self._exit(proc, process)
            return True
        k.sleep(process, ("child", child.pid))
        return False

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def brk(self, proc, process: Process, new_data_pages: int) -> None:
        k = self.k
        self.counts["brk"] += 1
        process.syscalls += 1
        self._entry(proc, process)
        proc.ifetch_range(*k.routine_span("brk_impl"))
        proc.ifetch_range(*k.routine_span("growreg"))
        with k.locks.held_lock(proc, k.locks.shr(process.slot)):
            proc.dwrite(k.datamap.pagetable_base(process.slot))
        if new_data_pages > process.data_pages:
            process.data_pages = new_data_pages
            process.hot_blocks = []  # engine rebuilds the hot set lazily
        self._exit(proc, process)

    # ------------------------------------------------------------------
    # Semaphores (Semlock, Table 11)
    # ------------------------------------------------------------------
    def semop(self, proc, process: Process, sem_id: int, delta: int) -> bool:
        """P (delta < 0) / V (delta > 0). Returns False if blocked."""
        k = self.k
        self.counts["semop"] += 1
        process.syscalls += 1
        self._entry(proc, process)
        proc.ifetch_range(*k.routine_span("sem_ops"))
        with k.locks.held(proc, "semlock"):
            proc.dwrite(k.datamap.sem_entry(sem_id))
            value = k.semaphores.get(sem_id, 0)
            if delta < 0 and value <= 0:
                blocked = True
            else:
                k.semaphores[sem_id] = value + delta
                blocked = False
        if blocked:
            k.sleep(process, ("sem", sem_id))
            return False
        if delta > 0:
            k.wakeup(("sem", sem_id), proc)
        self._exit(proc, process)
        return True

    # ------------------------------------------------------------------
    # Terminal I/O (the ed sessions; streams locks, Table 11)
    # ------------------------------------------------------------------
    def tty_write(self, proc, process: Process, session_id: int, nchars: int) -> None:
        k = self.k
        self.counts["write"] += 1
        process.syscalls += 1
        self._entry(proc, process)
        proc.ifetch_range(*k.routine_span("write_setup"))
        with k.locks.held_lock(proc, k.locks.streams(session_id)):
            proc.ifetch_range(*k.routine_span("streams_core"))
            proc.ifetch_range(*k.routine_span("tty_driver_hot"))
            self._copyin_params(proc, process, max(16, nchars))
            proc.dwrite(k.datamap.kheap_scratch(session_id))
        self._exit(proc, process)

    def tty_read(self, proc, process: Process, session_id: int, nchars: int) -> None:
        """Consume terminal input already delivered by the interrupt."""
        k = self.k
        self.counts["read"] += 1
        process.syscalls += 1
        self._entry(proc, process)
        proc.ifetch_range(*k.routine_span("read_setup"))
        with k.locks.held_lock(proc, k.locks.streams(session_id)):
            proc.ifetch_range(*k.routine_span("streams_core"))
            proc.ifetch_range(*k.routine_span("tty_driver_hot"))
            proc.dread(k.datamap.kheap_scratch(session_id))
            dst = k.user_io_address(proc, process, 0)
            src = k.datamap.kheap_scratch(session_id)
            k.blockops.bcopy(proc, src, dst, max(16, nchars))
        self._exit(proc, process)

    # ------------------------------------------------------------------
    # Everything else
    # ------------------------------------------------------------------
    def misc(self, proc, process: Process, flavor: str = "misc") -> None:
        """Cheap syscalls: gettimeofday, getpid, sigaction, ioctl..."""
        k = self.k
        self.counts["misc"] += 1
        process.syscalls += 1
        self._entry(proc, process)
        routine = {
            "time": "gettimeofday_impl",
            "signal": "signal_impl",
            "ioctl": "ioctl_impl",
            "stat": "stat_impl",
            "pipe": "pipe_ops",
        }.get(flavor, "misc_syscall")
        proc.ifetch_range(*k.routine_span(routine))
        proc.dread(k.datamap.ustruct_rest_base(process.slot) + 256)
        self._exit(proc, process)
