"""Kernel data segment: the Table 3 structures at their reported sizes.

Every data structure the paper's Figure 8 / Table 3 attributes Sharing
misses to is placed at a fixed physical address in the kernel data
region, so the analysis pipeline can attribute misses by address exactly
the way the paper did ("we compare the address missed on with the entries
in the symbol table of the OS image", Section 2.2).

Table 3 sizes reproduced verbatim:

==================  =======  =============================================
Structure           Bytes    Function
==================  =======  =============================================
Kernel Stack        4096     per process; OS stack while in its context
PCB section         240      registers saved at context switch
Eframe section      172      registers saved at exceptions
Rest of User Str.   3684     file descriptors, system buffers, ...
Process Table       46080    state, priority, signals, scheduling
Pfdat               210944   physical page descriptors
Buffer              17408    buffer-cache headers
Inode               68608    memory-resident inodes
Run Queue           24       head of the run queue
FreePgBuck          3072     hash buckets of free physical pages
Hi_ndproc           4        priority-scheduling flag
==================  =======  =============================================
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import List

from repro.memsys.memory import KDATA_BASE, KDATA_SIZE, KHEAP_BASE, KHEAP_SIZE

# Capacity limits of the modelled kernel.
NPROC = 128            # process-table slots
PROC_ENTRY_BYTES = 360  # 46080 / 128 (paper total size / our slot count)
PROC_TABLE_BYTES = 46080
KSTACK_BYTES = 4096
PCB_BYTES = 240
EFRAME_BYTES = 172
USTRUCT_REST_BYTES = 3684
USTRUCT_BYTES = 4096   # PCB + Eframe + rest, padded to a page
PFDAT_BYTES = 210944
BUFFER_TABLE_BYTES = 17408
NBUF = 272             # buffer headers (17408 / 64)
BUFFER_HDR_BYTES = 64
INODE_TABLE_BYTES = 68608
NINODE = 536           # memory-resident inodes (68608 / 128)
INODE_BYTES = 128
RUNQ_BYTES = 24
FREEPGBUCK_BYTES = 3072
HI_NDPROC_BYTES = 4
CALLOUT_BYTES = 2048   # outstanding alarms/timeouts (protected by Calock)
SEMTABLE_BYTES = 1024  # user-visible semaphores (protected by Semlock)
PAGETABLE_BYTES = 1024  # 256 PTEs x 4 bytes, one per process (Shr_x)


class StructName(str, enum.Enum):
    """Canonical structure names used in attribution (Figure 8 labels)."""

    KERNEL_STACK = "Kernel Stack"
    PCB = "PCB"
    EFRAME = "Eframe"
    USTRUCT_REST = "Rest of User Structure"
    PROC_TABLE = "Process Table"
    PFDAT = "Pfdat"
    BUFFER = "Buffer"
    INODE = "Inode"
    RUN_QUEUE = "Run Queue"
    FREEPGBUCK = "FreePgBuck"
    HI_NDPROC = "Hi_ndproc"
    CALLOUT = "Callout"
    SEM_TABLE = "Semaphore Table"
    PAGE_TABLE = "Page Table"
    KHEAP = "Kernel Heap"
    OTHER = "Other"


@dataclass(frozen=True)
class StructRegion:
    """One named address range in the kernel data segment."""

    name: StructName
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size


class KernelDataMap:
    """Placement of every kernel structure, plus address attribution."""

    def __init__(self) -> None:
        self._regions: List[StructRegion] = []
        cursor = KDATA_BASE

        def place(name: StructName, size: int, align: int = 16) -> int:
            nonlocal cursor
            cursor = -(-cursor // align) * align
            base = cursor
            self._regions.append(StructRegion(name, base, size))
            cursor += size
            return base

        # Global tables first.
        self.proc_table_base = place(StructName.PROC_TABLE, PROC_TABLE_BYTES)
        self.pfdat_base = place(StructName.PFDAT, PFDAT_BYTES)
        self.buffer_base = place(StructName.BUFFER, BUFFER_TABLE_BYTES)
        self.inode_base = place(StructName.INODE, INODE_TABLE_BYTES)
        self.runq_base = place(StructName.RUN_QUEUE, RUNQ_BYTES)
        self.freepgbuck_base = place(StructName.FREEPGBUCK, FREEPGBUCK_BYTES)
        self.hi_ndproc_base = place(StructName.HI_NDPROC, HI_NDPROC_BYTES)
        self.callout_base = place(StructName.CALLOUT, CALLOUT_BYTES)
        self.semtable_base = place(StructName.SEM_TABLE, SEMTABLE_BYTES)
        # Per-process areas: kernel stacks, then user structures.
        self.kstack_base0 = place(
            StructName.KERNEL_STACK, NPROC * KSTACK_BYTES, align=4096
        )
        self.ustruct_base0 = cursor
        # The user structure is subdivided: PCB, Eframe, rest (Table 3).
        for slot in range(NPROC):
            base = self.ustruct_base0 + slot * USTRUCT_BYTES
            self._regions.append(StructRegion(StructName.PCB, base, PCB_BYTES))
            self._regions.append(
                StructRegion(StructName.EFRAME, base + PCB_BYTES, EFRAME_BYTES)
            )
            self._regions.append(
                StructRegion(
                    StructName.USTRUCT_REST,
                    base + PCB_BYTES + EFRAME_BYTES,
                    USTRUCT_BYTES - PCB_BYTES - EFRAME_BYTES,
                )
            )
        cursor = self.ustruct_base0 + NPROC * USTRUCT_BYTES
        if cursor > KDATA_BASE + KDATA_SIZE:
            raise ValueError("kernel data segment overflow")
        self.kdata_end = cursor

        # Per-process page tables live in the kernel heap (Shr_x territory).
        if NPROC * PAGETABLE_BYTES > KHEAP_SIZE:
            raise ValueError("kernel heap overflow")
        self.pagetable_base0 = KHEAP_BASE
        for slot in range(NPROC):
            self._regions.append(
                StructRegion(
                    StructName.PAGE_TABLE,
                    self.pagetable_base0 + slot * PAGETABLE_BYTES,
                    PAGETABLE_BYTES,
                )
            )
        self._regions.append(
            StructRegion(
                StructName.KHEAP,
                KHEAP_BASE + NPROC * PAGETABLE_BYTES,
                KHEAP_SIZE - NPROC * PAGETABLE_BYTES,
            )
        )

        self._regions.sort(key=lambda r: r.base)
        self._bases = [r.base for r in self._regions]

    # ------------------------------------------------------------------
    # Per-process addresses
    # ------------------------------------------------------------------
    def kstack_base(self, slot: int) -> int:
        self._check_slot(slot)
        return self.kstack_base0 + slot * KSTACK_BYTES

    def ustruct_base(self, slot: int) -> int:
        self._check_slot(slot)
        return self.ustruct_base0 + slot * USTRUCT_BYTES

    def pcb_base(self, slot: int) -> int:
        return self.ustruct_base(slot)

    def eframe_base(self, slot: int) -> int:
        return self.ustruct_base(slot) + PCB_BYTES

    def ustruct_rest_base(self, slot: int) -> int:
        return self.ustruct_base(slot) + PCB_BYTES + EFRAME_BYTES

    def proc_entry(self, slot: int) -> int:
        self._check_slot(slot)
        return self.proc_table_base + slot * PROC_ENTRY_BYTES

    def pagetable_base(self, slot: int) -> int:
        self._check_slot(slot)
        return self.pagetable_base0 + slot * PAGETABLE_BYTES

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < NPROC:
            raise ValueError(f"process slot {slot} out of range (NPROC={NPROC})")

    # ------------------------------------------------------------------
    # Table addresses
    # ------------------------------------------------------------------
    def pfdat_entry(self, frame_index: int) -> int:
        desc = PFDAT_BYTES // 8192  # descriptor bytes per physical page
        return self.pfdat_base + (frame_index % 8192) * desc

    def buffer_header(self, index: int) -> int:
        return self.buffer_base + (index % NBUF) * BUFFER_HDR_BYTES

    def inode_entry(self, index: int) -> int:
        return self.inode_base + (index % NINODE) * INODE_BYTES

    def callout_entry(self, index: int) -> int:
        return self.callout_base + (index * 16) % CALLOUT_BYTES

    def sem_entry(self, index: int) -> int:
        return self.semtable_base + (index * 16) % SEMTABLE_BYTES

    def kheap_scratch(self, index: int) -> int:
        """Dynamically-allocated kernel heap objects (streams queues,
        misc allocations) — attributed to ``KHEAP``."""
        scratch_base = self.pagetable_base0 + NPROC * PAGETABLE_BYTES
        scratch_size = KHEAP_SIZE - NPROC * PAGETABLE_BYTES
        return scratch_base + (index * 64) % scratch_size

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def structure_at(self, addr: int) -> StructName:
        """Which structure an address belongs to (Figure 8 attribution)."""
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx >= 0:
            region = self._regions[idx]
            if region.base <= addr < region.end:
                return region.name
        return StructName.OTHER

    def regions(self) -> List[StructRegion]:
        return list(self._regions)
