"""TLB fault handling: the Table 8 cheap/expensive split.

- **UTLB faults** (the frequent, nearly miss-free spikes of Figure 1):
  the fast vector copies a virtual-to-physical association from the
  process's page table into the TLB. No exception frame is saved; the
  handler is a few instructions and one page-table read. "On average,
  one invocation causes less than 0.1 misses."

- **Cheap TLB faults** that are full OS invocations: the mapping exists
  in global page tables but the fast path could not resolve it (here:
  mapping a resident shared-text page into a process that has not used
  it yet).

- **Expensive TLB faults** "require the allocation of a physical page.
  They may involve simply grabbing a page from the list of free pages,
  sometimes performing a page copy or clear, or they may also require
  doing I/O" — demand-zero data pages (bclear), copy-on-write faults
  (bcopy of a full page, Table 7), and text page-ins from the
  executable file through the buffer cache.
"""

from __future__ import annotations

from typing import Optional

from repro.cpu.tlb import TlbEntry
from repro.kernel.process import DATA_VBASE, TEXT_VBASE, Process
from repro.kernel.vm import USE_DATA, USE_TEXT

# Escape op-code for UTLB faults: distinct from HighLevelOp codes so the
# decoder can tell the spikes from full OS invocations (Figure 1).
UTLB_OP_CODE = 100


class TlbFaults:
    """The fault paths."""

    def __init__(self, kernel):
        self.k = kernel
        self.utlb_faults = 0
        self.cheap_faults = 0
        self.expensive_faults = 0
        self.cow_faults = 0
        self.demand_zero_faults = 0
        self.text_pageins = 0

    # ------------------------------------------------------------------
    # Resolution helpers
    # ------------------------------------------------------------------
    def frame_for(self, process: Process, vpage: int) -> Optional[int]:
        """The frame a vpage maps to, if established (page-table state)."""
        if vpage < DATA_VBASE:
            index = vpage - TEXT_VBASE
            image = process.image
            if image.resident() and index < len(image.frames):
                frame = image.frames[index]
                return frame if frame >= 0 else None
            return None
        return process.data_frames.get(vpage)

    def is_text_vpage(self, process: Process, vpage: int) -> bool:
        return vpage < DATA_VBASE

    # ------------------------------------------------------------------
    # UTLB fast path
    # ------------------------------------------------------------------
    def utlb_fault(self, proc, process: Process, vpage: int, frame: int) -> None:
        """Refill the TLB from the page table (the Figure 1 spikes).

        The fast vector saves no exception frame; it is OS execution all
        the same, so the CPU mode flips for the handful of references.
        """
        from repro.common.types import Mode

        k = self.k
        self.utlb_faults += 1
        was_user = proc.mode is Mode.USER
        if was_user:
            proc.set_mode(Mode.KERNEL)
        k.instr.os_enter(proc, UTLB_OP_CODE)
        proc.ifetch_range(*k.routine_span("utlbmiss"))
        # One page-table read (the PTE).
        proc.dread(k.datamap.pagetable_base(process.slot) + (vpage % 256) * 4)
        self._install(proc, process, vpage, frame)
        k.instr.os_exit(proc)
        if was_user:
            proc.set_mode(Mode.USER)

    def _install(self, proc, process: Process, vpage: int, frame: int) -> None:
        k = self.k
        is_text = self.is_text_vpage(process, vpage)
        index, _evicted = proc.tlb.insert(
            TlbEntry(process.pid, vpage, frame, is_text)
        )
        k.instr.tlb_update(proc, index, vpage, frame, process.pid, is_text)

    # ------------------------------------------------------------------
    # Full fault path (vfault)
    # ------------------------------------------------------------------
    def vfault(self, proc, process: Process, vpage: int, write: bool) -> Optional[int]:
        """Resolve a fault the fast path could not.

        Returns the frame, or None if the process went to sleep on I/O
        (text page-in); the caller retries after wakeup.

        Must be called inside an OS invocation (the engine opens one with
        the appropriate Table 8 op before calling).
        """
        k = self.k
        proc.ifetch_range(*k.routine_span("tlbmiss_common"))
        proc.ifetch_range(*k.routine_span("vfault"))
        # Page-table walk under the per-process Shr_x lock.
        with k.locks.held_lock(proc, k.locks.shr(process.slot)):
            proc.dread(k.datamap.pagetable_base(process.slot) + (vpage % 256) * 4)
            frame = self.frame_for(process, vpage)
        if frame is not None and not (write and vpage in process.cow_pages):
            # Mapping exists (e.g. resident shared text): cheap fault.
            self.cheap_faults += 1
            self._install(proc, process, vpage, frame)
            return frame
        if (
            frame is not None
            and write
            and vpage in process.cow_pages
            and not k.frame_shared(frame)
        ):
            # The sibling already copied or died: claim the frame outright.
            self.cheap_faults += 1
            with k.locks.held_lock(proc, k.locks.shr(process.slot)):
                proc.dwrite(
                    k.datamap.pagetable_base(process.slot) + (vpage % 256) * 4
                )
                process.cow_pages.discard(vpage)
            self._install(proc, process, vpage, frame)
            return frame
        self.expensive_faults += 1
        if self.is_text_vpage(process, vpage):
            frame = self._text_pagein(proc, process, vpage)
            if frame is None:
                return None
        elif write and vpage in process.cow_pages:
            frame = self._cow_copy(proc, process, vpage)
        else:
            frame = self._demand_zero(proc, process, vpage)
        self._install(proc, process, vpage, frame)
        return frame

    def _demand_zero(self, proc, process: Process, vpage: int) -> int:
        """First reference to a demand-zero page: allocate and clear a
        full page (the 70% row of Table 7's clears)."""
        k = self.k
        self.demand_zero_faults += 1
        frame = k.vm.alloc_frame(proc, USE_DATA, (process.pid, vpage))
        k.blockops.bclear(proc, frame * k.params.page_bytes, k.params.page_bytes)
        with k.locks.held_lock(proc, k.locks.shr(process.slot)):
            proc.dwrite(k.datamap.pagetable_base(process.slot) + (vpage % 256) * 4)
            process.data_frames[vpage] = frame
        return frame

    def _cow_copy(self, proc, process: Process, vpage: int) -> int:
        """Copy-on-write update: full-page copy (Table 7, 5% of copies)."""
        k = self.k
        self.cow_faults += 1
        shared_frame = process.data_frames[vpage]
        frame = k.vm.alloc_frame(proc, USE_DATA, (process.pid, vpage))
        page_bytes = k.params.page_bytes
        k.blockops.bcopy(
            proc, shared_frame * page_bytes, frame * page_bytes, page_bytes
        )
        with k.locks.held_lock(proc, k.locks.shr(process.slot)):
            proc.dwrite(k.datamap.pagetable_base(process.slot) + (vpage % 256) * 4)
            process.data_frames[vpage] = frame
            process.cow_pages.discard(vpage)
        k.unshare_frame(shared_frame)
        return frame

    def _text_pagein(self, proc, process: Process, vpage: int) -> Optional[int]:
        """Demand-page program text from the executable through the
        buffer cache; may sleep on disk I/O."""
        k = self.k
        image = process.image
        index = vpage - TEXT_VBASE
        if not image.frames:
            image.frames = [-1] * image.text_pages
        if image.frames[index] >= 0:
            return image.frames[index]
        page_bytes = k.params.page_bytes
        frame = k.vm.alloc_frame(proc, USE_TEXT, image.name)
        # Pull the page's file blocks through the buffer cache straight
        # into the new text frame; each chunk is a "transfer of data
        # in/out of buffer cache" fragment copy (Table 7).
        done, _progress = k.fs.do_read(
            proc, process, image.file_ino, index * page_bytes, page_bytes, 0,
            dst_base=frame * page_bytes,
        )
        if not done:
            # Slept on disk; undo the allocation (retry will redo it).
            # No code ever ran from the frame, so reuse needs no flush.
            k.vm.free_frame(proc, frame, contained_code=False)
            return None
        self.text_pageins += 1
        image.frames[index] = frame
        return frame
