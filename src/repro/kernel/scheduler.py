"""Run queue(s) and context switching.

The paper's second major miss source is process migration: the Kernel
Stack, User Structure and Process Table "store per-process state that is
accessed only by the CPU executing that process. If these data
structures appear to be shared, therefore, it is because the process
migrates among CPUs" (Section 4.2.2).

Three scheduling policies, all from the paper:

- **default** (the measured IRIX): one global run queue guarded by
  ``Runqlk`` — the most contended lock in Table 12 and the one whose
  contention Figure 11 shows growing with CPU count; any CPU takes the
  best-priority process, so processes migrate freely;
- **affinity** (`affinity=True`): prefer processes that last ran on this
  CPU, within a priority band — the Section 4.2.2 fix for migration
  misses;
- **distributed run queues** (`num_queues>1`): Section 6's proposal for
  larger machines — one queue (and one lock) per CPU cluster, with
  processes encouraged to stay in their cluster's queue and stealing
  only for load balance.
"""

from __future__ import annotations

from typing import List, Optional

from repro.kernel.process import ProcState, Process
from repro.kernel.structures import PCB_BYTES

# How much of the new process's kernel stack a context switch touches.
_KSTACK_TOUCH_BYTES = 256
# Queue imbalance tolerated before a wakeup spills to another cluster.
_BALANCE_SLACK = 2


class Scheduler:
    """Run queue(s) + dispatch."""

    def __init__(self, kernel, affinity: bool = False, num_queues: int = 1):
        self.k = kernel
        self.affinity = affinity
        self.num_queues = max(1, num_queues)
        self.queues: List[List[Process]] = [[] for _ in range(self.num_queues)]
        self.context_switches = 0
        self.migrations = 0
        self.cross_queue_steals = 0

    # ------------------------------------------------------------------
    # Queue topology
    # ------------------------------------------------------------------
    @property
    def run_queue(self) -> List[Process]:
        """The global queue (queue 0); the whole queue when undistributed."""
        return self.queues[0]

    def queue_of_cpu(self, cpu_id: int) -> int:
        """The cluster queue a CPU serves."""
        num_cpus = self.k.params.num_cpus
        return cpu_id * self.num_queues // num_cpus

    def _home_queue(self, process: Process) -> int:
        if process.last_cpu < 0:
            return 0
        return self.queue_of_cpu(process.last_cpu)

    # ------------------------------------------------------------------
    # Run queue operations (the Table 5 "Management of the Run Queue")
    # ------------------------------------------------------------------
    def setrq(self, proc, process: Process) -> None:
        """Make a process runnable (wakeup, preemption, sginap).

        With distributed queues the process goes to its home cluster's
        queue unless that queue is clearly overloaded ("processes can
        then be encouraged to remain in the same run queue", Section 6).
        """
        k = self.k
        queue_index = self._home_queue(process)
        if self.num_queues > 1:
            shortest = min(range(self.num_queues), key=lambda i: len(self.queues[i]))
            if len(self.queues[queue_index]) > len(self.queues[shortest]) + _BALANCE_SLACK:
                queue_index = shortest
        with k.locks.held_lock(proc, k.locks.runq(queue_index)):
            proc.ifetch_range(*k.routine_span("runq_setrq"))
            proc.dwrite(k.datamap.runq_base)
            proc.dwrite(k.datamap.proc_entry(process.slot))
            process.state = ProcState.RUNNABLE
            if k.checks is not None:
                k.checks.races.on_queue_op(
                    proc.cpu_id, proc.cycles, queue_index, "enqueue"
                )
            self.queues[queue_index].append(process)

    def pick_next(self, proc) -> Optional[Process]:
        """Take the best-priority runnable process off this CPU's queue.

        System V scheduling: lower priority value wins; CPU-bound
        processes decay (their value grows at every quantum expiry) while
        processes that sleep or yield keep good priorities. With
        ``affinity``, a same-CPU candidate is preferred among those
        within one priority step of the best. With distributed queues,
        an empty home queue steals from the longest other queue.
        """
        queue_index = self.queue_of_cpu(proc.cpu_id)
        chosen = self._pick_from(proc, queue_index)
        if chosen is None and self.num_queues > 1:
            victim = max(range(self.num_queues), key=lambda i: len(self.queues[i]))
            if self.queues[victim]:
                chosen = self._pick_from(proc, victim)
                if chosen is not None:
                    self.cross_queue_steals += 1
        return chosen

    def _pick_from(self, proc, queue_index: int) -> Optional[Process]:
        k = self.k
        queue = self.queues[queue_index]
        with k.locks.held_lock(proc, k.locks.runq(queue_index)):
            proc.ifetch_range(*k.routine_span("runq_findproc"))
            proc.dread(k.datamap.runq_base)
            proc.dread(k.datamap.hi_ndproc_base)
            if not queue:
                return None
            index = 0
            best = queue[0].priority
            for i, candidate in enumerate(queue):
                proc.dread(k.datamap.proc_entry(candidate.slot))
                if candidate.priority < best:
                    best = candidate.priority
                    index = i
            if self.affinity:
                for i, candidate in enumerate(queue):
                    if (
                        candidate.priority <= best + 4
                        and candidate.last_cpu in (-1, proc.cpu_id)
                    ):
                        index = i
                        break
            if k.checks is not None:
                k.checks.races.on_queue_op(
                    proc.cpu_id, proc.cycles, queue_index, "dequeue"
                )
            chosen = queue.pop(index)
            proc.ifetch_range(*k.routine_span("runq_remrq"))
            proc.dwrite(k.datamap.proc_entry(chosen.slot))
            return chosen

    def runnable_waiting(self) -> bool:
        """Lock-free peek used by the idle loop (no Runqlk traffic)."""
        return any(self.queues)

    def queue_lengths(self) -> List[int]:
        return [len(queue) for queue in self.queues]

    # ------------------------------------------------------------------
    # Context switch
    # ------------------------------------------------------------------
    def context_switch(
        self, proc, old: Optional[Process], new: Process
    ) -> bool:
        """Switch the CPU to ``new``; returns True if ``new`` migrated.

        The register save/restore through the PCB sections is exactly the
        operation the paper flags: "register saving and restoring have a
        noticeable performance impact" (Section 4.2.2).
        """
        k = self.k
        self.context_switches += 1
        if k.checks is not None:
            k.checks.lockdep.on_context_switch(proc.cpu_id, proc.cycles)
        proc.ifetch_range(*k.routine_span("runq_switch"))
        if old is not None:
            proc.ifetch_range(*k.routine_span("runq_save_ctx"))
            proc.dtouch_range(k.datamap.pcb_base(old.slot), PCB_BYTES, write=True)
            proc.dwrite(k.datamap.proc_entry(old.slot))
        proc.ifetch_range(*k.routine_span("runq_restore_ctx"))
        proc.dtouch_range(k.datamap.pcb_base(new.slot), PCB_BYTES, write=False)
        proc.dwrite(k.datamap.proc_entry(new.slot))
        # The kernel immediately runs on the new process's kernel stack.
        proc.dtouch_range(k.datamap.kstack_base(new.slot), _KSTACK_TOUCH_BYTES,
                          write=True)
        migrated = new.note_dispatch(proc.cpu_id)
        if migrated:
            self.migrations += 1
        new.state = ProcState.RUNNING
        k.current[proc.cpu_id] = new
        proc.current_pid = new.pid
        k.instr.pid_set(proc, new.pid)
        k.quantum_start_cycles[proc.cpu_id] = proc.cycles
        return migrated

    def preempt_current(self, proc) -> None:
        """Quantum expiry: current process back to the queue.

        Burning a full quantum decays the process's priority (System V
        p_cpu accounting).
        """
        k = self.k
        current = k.current[proc.cpu_id]
        if current is None:
            return
        current.priority = min(current.priority + 4, 60)
        self.setrq(proc, current)
        k.current[proc.cpu_id] = None
        self.dispatch(proc)

    def dispatch(self, proc) -> Optional[Process]:
        """Pick and switch to the next process, if any."""
        k = self.k
        old = k.current[proc.cpu_id]
        chosen = self.pick_next(proc)
        if chosen is None:
            if old is None:
                proc.current_pid = 0
            return None
        self.context_switch(proc, old, chosen)
        return chosen
