"""Kernel text image: named routines at physical addresses.

The paper attributes instruction misses to OS routines through the symbol
table of the OS image (Section 2.2) and shows (Figure 5) that
self-interference misses concentrate in a few routines whose addresses
conflict in the direct-mapped 64 KB I-cache (same address modulo the
cache size).

We lay out a ~700 KB kernel text of named routines. Most are placed
sequentially (as a linker would); a handful of *hot* routines that IRIX's
layout happened to map onto the same cache sets are placed at explicit
offsets so the same conflicts arise:

- ``fs_read`` (the filesystem read path) against ``disk_driver`` — both
  run within one I/O system call, so their conflict produces
  *Dispossame* misses;
- ``syscall_entry`` against ``tty_driver``;
- ``runq_switch`` against ``clock_intr``.

The paper notes some I/O drivers have "a size comparable to the
instruction cache"; ``net_driver`` and ``disk_driver`` are sized
accordingly.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.memsys.memory import KTEXT_BASE, KTEXT_SIZE

ICACHE_BYTES = 64 * 1024

# (name, size_bytes, explicit_offset or None)
# Order matters: explicitly-placed routines are reserved first, the rest
# fill remaining space in order.
_ROUTINE_SPEC: List[Tuple[str, int, Optional[int]]] = [
    # --- low-level exception handling (assembly; Table 5 category) ---
    ("excvec_entry", 640, 0x00000),
    ("excvec_exit", 512, None),
    ("utlbmiss", 64, 0x00280),        # the fast UTLB vector
    ("tlbmiss_common", 896, None),
    # --- scheduling: "the seven routines that form the core of the run
    #     queue management" (Table 5) ---
    ("runq_save_ctx", 320, None),
    ("runq_restore_ctx", 320, None),
    ("runq_setrq", 256, None),
    ("runq_remrq", 256, None),
    ("runq_switch", 448, 0x52400),    # conflicts with clock_intr
    ("runq_findproc", 384, None),
    ("runq_schedprio", 512, None),
    # --- syscall dispatch ---
    ("syscall_entry", 512, 0x08000),  # conflicts with tty_driver
    ("syscall_exit", 384, None),
    ("read_setup", 832, None),        # recognition & setup of read (Table 5)
    ("write_setup", 832, None),
    # --- filesystem ---
    ("fs_read", 4096, 0x0A000),       # conflicts with disk_driver
    ("fs_write", 4096, None),
    ("fs_namei", 3072, None),
    ("inode_ops", 2048, None),
    ("buffercache_getblk", 1536, None),
    ("buffercache_brelse", 768, None),
    ("dfbmap_alloc", 768, None),
    # --- block operations (tight loops; Section 4.2.2) ---
    ("bcopy", 256, None),
    ("bclear", 128, None),
    ("pfdat_scan", 640, None),
    # --- virtual memory ---
    ("vfault", 2304, None),
    ("pagealloc", 1024, None),
    ("pagefree", 640, None),
    ("pageout_daemon", 1536, None),
    ("growreg", 1024, None),
    ("cow_fault", 1280, None),
    # --- process management ---
    ("fork_impl", 3072, None),
    ("exec_impl", 4096, None),
    ("exit_impl", 2048, None),
    ("wait_impl", 1024, None),
    ("signal_impl", 1536, None),
    ("pipe_ops", 1536, None),
    ("sginap_impl", 512, None),
    # --- interrupts ---
    ("clock_intr", 1024, 0x62400),    # conflicts with runq_switch
    ("disk_intr", 1536, None),
    ("tty_intr", 1024, None),
    ("ipi_intr", 512, None),
    ("net_intr", 1280, None),
    ("callout_run", 768, None),
    # --- drivers (large; "some I/O drivers have a size comparable to the
    #     instruction cache"). The hot entry paths are placed where they
    #     conflict with the filesystem/syscall code that calls them; the
    #     cold bulk follows. ---
    ("disk_driver_hot", 4096, 0x3A000),   # overlaps fs_read mod 64K
    ("disk_driver_cold", 20480, 0x3B000),
    ("tty_driver_hot", 2048, 0x48000),    # overlaps syscall_entry mod 64K
    ("tty_driver_cold", 14336, 0x48800),
    ("net_driver_hot", 2048, None),
    ("net_driver_cold", 18432, None),
    ("streams_core", 8192, None),
    # --- synchronization library (kernel side) ---
    ("lock_acquire", 128, None),
    ("lock_release", 96, None),
    ("sem_ops", 512, None),
    # --- misc system calls ---
    ("misc_syscall", 2048, None),
    ("gettimeofday_impl", 256, None),
    ("brk_impl", 768, None),
    ("stat_impl", 1024, None),
    ("open_close_impl", 2048, None),
    ("ioctl_impl", 1536, None),
    # --- idle loop ---
    ("idle_loop", 64, None),
    # --- big cold bulk: rarely-executed kernel code that pads the image
    #     to a realistic size (networking, admin, rare drivers) ---
    ("cold_text_1", 98304, None),
    ("cold_text_2", 98304, None),
    ("cold_text_3", 98304, None),
    ("cold_text_4", 98304, None),
]

_ALIGN = 64


@dataclass(frozen=True)
class Routine:
    """One kernel routine in the text image."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def cache_offset(self, cache_bytes: int = ICACHE_BYTES) -> int:
        """Offset of the routine within the direct-mapped cache image."""
        return self.base % cache_bytes

    def _set_spans(self, cache_bytes: int) -> List[Tuple[int, int]]:
        """The cache-set intervals this routine occupies, as [start, end)
        spans over [0, cache_bytes), splitting on wrap-around."""
        if self.size >= cache_bytes:
            return [(0, cache_bytes)]
        start = self.base % cache_bytes
        end = start + self.size
        if end <= cache_bytes:
            return [(start, end)]
        return [(start, cache_bytes), (0, end - cache_bytes)]

    def conflicts_with(self, other: "Routine", cache_bytes: int = ICACHE_BYTES) -> bool:
        """True if the two routines compete for I-cache sets."""
        for a_start, a_end in self._set_spans(cache_bytes):
            for b_start, b_end in other._set_spans(cache_bytes):
                if a_start < b_end and b_start < a_end:
                    return True
        return False


class KernelLayout:
    """The kernel text symbol table.

    ``spec`` overrides the default routine placement — used by the
    code-layout optimizer (:mod:`repro.opt.codelayout`) to build a
    conflict-minimized image with the same routines.
    """

    def __init__(
        self, spec: Optional[List[Tuple[str, int, Optional[int]]]] = None
    ) -> None:
        self.spec = list(spec) if spec is not None else list(_ROUTINE_SPEC)
        self.routines: Dict[str, Routine] = {}
        self._place_all()
        bases = sorted((r.base, r.name) for r in self.routines.values())
        self._sorted_bases = [b for b, _ in bases]
        self._sorted_names = [n for _, n in bases]
        self.text_end = max(r.end for r in self.routines.values())

    def _place_all(self) -> None:
        reserved: List[Tuple[int, int]] = []  # (base, end) of explicit placements
        for name, size, offset in self.spec:
            if offset is None:
                continue
            base = KTEXT_BASE + offset
            self._add(name, base, size)
            reserved.append((base, base + size))
        reserved.sort()
        cursor = KTEXT_BASE
        for name, size, offset in self.spec:
            if offset is not None:
                continue
            base = self._first_fit(cursor, size, reserved)
            self._add(name, base, size)
            reserved.append((base, base + size))
            reserved.sort()
            cursor = base + size

    def _first_fit(
        self, cursor: int, size: int, reserved: List[Tuple[int, int]]
    ) -> int:
        base = -(-cursor // _ALIGN) * _ALIGN
        while True:
            conflict = next(
                (r for r in reserved if base < r[1] and r[0] < base + size), None
            )
            if conflict is None:
                if base + size > KTEXT_BASE + KTEXT_SIZE:
                    raise ValueError("kernel text overflow: shrink routine spec")
                return base
            base = -(-conflict[1] // _ALIGN) * _ALIGN

    def _add(self, name: str, base: int, size: int) -> None:
        if name in self.routines:
            raise ValueError(f"duplicate routine {name}")
        if base < KTEXT_BASE or base + size > KTEXT_BASE + KTEXT_SIZE:
            raise ValueError(f"routine {name} outside kernel text")
        self.routines[name] = Routine(name, base, size)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def routine(self, name: str) -> Routine:
        return self.routines[name]

    def routine_at(self, addr: int) -> Optional[str]:
        """Symbol-table lookup: which routine contains ``addr``."""
        idx = bisect.bisect_right(self._sorted_bases, addr) - 1
        if idx < 0:
            return None
        name = self._sorted_names[idx]
        routine = self.routines[name]
        return name if routine.base <= addr < routine.end else None

    def conflicting_pairs(self) -> List[Tuple[str, str]]:
        """All routine pairs competing for I-cache sets (diagnostics)."""
        names = list(self.routines)
        pairs = []
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                if self.routines[a].conflicts_with(self.routines[b]):
                    pairs.append((a, b))
        return pairs
