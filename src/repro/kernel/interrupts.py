"""Interrupt handlers: clock, disk, terminal, inter-CPU, network.

"Any interrupt, such as disk and terminal I/O, inter-CPU, or clock
interrupts" (Table 8). Interrupts "execute long stretches of code while
referencing relatively few data items", which is why they contribute
more to instruction misses than to data misses (Figure 9).

Routing models the 4D/340: device interrupts (disk, terminal) are taken
on CPU 0; network functions run on CPU 1 (Section 2.2); the clock ticks
on every CPU every 10 ms.
"""

from __future__ import annotations

from repro.common.types import InterruptKind
from repro.kernel.structures import StructName

# Legacy aliases for the measured 4D/340's routing. The simulator reads
# the explicit MachineParams.device_cpu / network_cpu fields instead, so
# scaled geometries (repro.machines) can route deliberately.
DEVICE_CPU = 0
NETWORK_CPU = 1

_INTR_CODE = {kind: i for i, kind in enumerate(InterruptKind)}

# Every N-th clock tick recomputes priorities over the process table.
_SCHEDPRIO_PERIOD = 4
# Process-table entries swept per priority recomputation.
_SCHEDPRIO_SWEEP = 24


class Interrupts:
    """The interrupt handlers, each a code walk plus structure touches."""

    def __init__(self, kernel):
        self.k = kernel
        self.counts = {kind: 0 for kind in InterruptKind}
        self._clock_ticks = [0] * kernel.params.num_cpus

    def _enter(self, proc, kind: InterruptKind) -> None:
        self.counts[kind] += 1
        if self.k.checks is not None:
            self.k.checks.lockdep.on_interrupt_entry(
                proc.cpu_id, proc.cycles, kind.name
            )
        self.k.instr.intr_enter(proc, _INTR_CODE[kind])

    def _exit(self, proc) -> None:
        if self.k.checks is not None:
            self.k.checks.lockdep.on_interrupt_exit(proc.cpu_id, proc.cycles)
        self.k.instr.intr_exit(proc)

    # ------------------------------------------------------------------
    # Clock (10 ms period, per CPU)
    # ------------------------------------------------------------------
    def clock(self, proc) -> bool:
        """One clock tick. Returns True if the current process's quantum
        expired and a reschedule is needed."""
        k = self.k
        self._enter(proc, InterruptKind.CLOCK)
        proc.ifetch_range(*k.routine_span("clock_intr"))
        # Outstanding callouts (alarms/timeouts) under Calock.
        with k.locks.held(proc, "calock"):
            proc.ifetch_range(*k.routine_span("callout_run"))
            tick = self._clock_ticks[proc.cpu_id]
            proc.dread(k.datamap.callout_entry(tick))
            proc.dwrite(k.datamap.callout_entry(tick + 1))
        due = k.pop_due_timers(proc)
        for process in due:
            k.scheduler.setrq(proc, process)
        self._clock_ticks[proc.cpu_id] += 1
        if self._clock_ticks[proc.cpu_id] % _SCHEDPRIO_PERIOD == 0:
            self._recompute_priorities(proc)
        self._exit(proc)
        current = k.current[proc.cpu_id]
        if current is None:
            return False
        elapsed = proc.cycles - k.quantum_start_cycles[proc.cpu_id]
        return elapsed >= k.tuning.quantum_cycles

    def _recompute_priorities(self, proc) -> None:
        """Priority decay sweep over part of the process table.

        p_cpu decays over time, pulling CPU-bound processes back toward
        the base priority so they are not starved forever.
        """
        k = self.k
        proc.ifetch_range(*k.routine_span("runq_schedprio"))
        proc.dread(k.datamap.hi_ndproc_base)
        tick = self._clock_ticks[proc.cpu_id]
        # The sweep writes p_cpu of entries whose processes may be
        # running on other CPUs, without Runqlk — an intentional lossy
        # decay update (System V clock code), annotated as such.
        with k.race_exempt(proc, StructName.PROC_TABLE):
            for i in range(_SCHEDPRIO_SWEEP):
                slot = (tick * _SCHEDPRIO_SWEEP + i) % 128
                proc.dwrite(k.datamap.proc_entry(slot))
        for process in k.processes.values():
            if process.priority > 20:
                process.priority -= 1

    # ------------------------------------------------------------------
    # Disk completion
    # ------------------------------------------------------------------
    def disk(self, proc, payloads) -> None:
        self._enter(proc, InterruptKind.DISK)
        proc.ifetch_range(*self.k.routine_span("disk_intr"))
        proc.ifetch_range(*self.k.routine_span("disk_driver_hot"))
        for payload in payloads:
            self.k.fs.complete_io(proc, payload)
        self._exit(proc)

    # ------------------------------------------------------------------
    # Terminal input (the simulated-user typing of the ed sessions)
    # ------------------------------------------------------------------
    def terminal(self, proc, session_id: int, nchars: int) -> None:
        k = self.k
        self._enter(proc, InterruptKind.TERMINAL)
        proc.ifetch_range(*k.routine_span("tty_intr"))
        with k.locks.held_lock(proc, k.locks.streams(session_id)):
            proc.ifetch_range(*k.routine_span("tty_driver_hot"))
            proc.ifetch_range(*k.routine_span("streams_core"))
            # One queue touch per burst of characters.
            proc.dwrite(k.datamap.kheap_scratch(session_id))
        k.tty_input[session_id] = k.tty_input.get(session_id, 0) + nchars
        k.wakeup(("tty", session_id), proc)
        self._exit(proc)

    # ------------------------------------------------------------------
    # Inter-CPU
    # ------------------------------------------------------------------
    def inter_cpu(self, proc) -> None:
        self._enter(proc, InterruptKind.INTER_CPU)
        proc.ifetch_range(*self.k.routine_span("ipi_intr"))
        self._exit(proc)

    # ------------------------------------------------------------------
    # Network (CPU 1: trace-transfer daemons, and request arrivals)
    # ------------------------------------------------------------------
    def network(self, proc, session_id=None, nchars: int = 0) -> None:
        """One network interrupt on the network CPU.

        Bare ``network(proc)`` is the trace-transfer daemon kick
        (Section 2.1). With a ``session_id`` it delivers an inbound
        request (repro.workloads.netserver): the handler queues the
        bytes on the session's stream under its ``streams_x`` lock —
        the one lock family the IRQ lockdep rules allow here — and
        wakes the server sleeping in ``tty_read``.
        """
        k = self.k
        self._enter(proc, InterruptKind.NETWORK)
        proc.ifetch_range(*k.routine_span("net_intr"))
        proc.ifetch_range(*k.routine_span("net_driver_hot"))
        if session_id is not None:
            with k.locks.held_lock(proc, k.locks.streams(session_id)):
                proc.ifetch_range(*k.routine_span("streams_core"))
                proc.dwrite(k.datamap.kheap_scratch(session_id))
            k.tty_input[session_id] = k.tty_input.get(session_id, 0) + nchars
            k.wakeup(("tty", session_id), proc)
        self._exit(proc)
