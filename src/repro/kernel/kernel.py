"""The kernel facade.

:class:`Kernel` owns every kernel subsystem and exposes the surface the
simulation session and the workload engine drive:

- the OS-invocation wrapper (exception entry/exit, eframe save/restore,
  escape bracketing — the unit Figure 1/3 measure),
- address translation for user references (TLB hit → UTLB fault →
  full fault),
- process lifecycle (create/fork/exec/exit), sleep/wakeup, timers,
- per-CPU dispatch state (current process, quantum),
- and the subsystem objects (scheduler, vm, fs, blockops, tlbfaults,
  syscalls, interrupts, locks).
"""

from __future__ import annotations

import heapq
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.params import MachineParams
from repro.common.rng import substream
from repro.common.types import HighLevelOp, Mode
from repro.cpu.processor import Processor
from repro.kernel.blockops import BlockOps
from repro.kernel.fs import FsSubsystem
from repro.kernel.interrupts import Interrupts
from repro.kernel.layout import KernelLayout
from repro.kernel.locks import LockTable
from repro.kernel.process import DATA_VBASE, Image, ProcState, Process
from repro.kernel.scheduler import Scheduler
from repro.kernel.structures import EFRAME_BYTES, NPROC, KernelDataMap
from repro.kernel.syscalls import Syscalls
from repro.kernel.tlbfault import TlbFaults
from repro.kernel.vm import VmSubsystem, VmTuning
from repro.memsys.system import MemorySystem
from repro.monitor.escapes import Instrumentation, NullInstrumentation
from repro.sync.llsc import CachedLockSimulator
from repro.sync.syncbus import SyncBus

# Escape op codes are HighLevelOp indices; keep a stable mapping.
OP_CODE: Dict[HighLevelOp, int] = {op: i for i, op in enumerate(HighLevelOp)}
CODE_OP: Dict[int, HighLevelOp] = {i: op for op, i in OP_CODE.items()}

# Pages at the start of the data region reserved as user I/O buffers.
USER_IO_PAGES = 4


@dataclass
class KernelTuning:
    """Kernel policy knobs, including the paper's proposed optimizations.

    - ``affinity_scheduling``: cache-affinity scheduling (Section 4.2.2's
      fix for migration misses).
    - ``blockop_cache_bypass`` / ``blockop_prefetch``: the two block-
      operation optimizations of Section 4.2.2.
    - ``num_run_queues``: distribute the run queue (Section 6's
      suggestion for larger machines); 1 = the global IRIX queue.
    """

    quantum_ms: float = 30.0
    affinity_scheduling: bool = False
    blockop_cache_bypass: bool = False
    blockop_prefetch: bool = False
    num_run_queues: int = 1
    vm: VmTuning = field(default_factory=VmTuning)

    def __post_init__(self) -> None:
        self.quantum_cycles = 0  # filled in by Kernel (needs cycle rate)


class Kernel:
    """The modelled IRIX 3.2-like kernel."""

    def __init__(
        self,
        params: MachineParams,
        memsys: MemorySystem,
        processors: List[Processor],
        instr: Optional[Instrumentation] = None,
        tuning: Optional[KernelTuning] = None,
        seed: int = 0,
        layout: Optional[KernelLayout] = None,
    ):
        self.params = params
        self.memsys = memsys
        self.processors = processors
        self.instr = instr if instr is not None else NullInstrumentation()
        self.tuning = tuning if tuning is not None else KernelTuning()
        self.tuning.quantum_cycles = params.ms_to_cycles(self.tuning.quantum_ms)
        self.rng = substream(seed, "kernel")

        self.layout = layout if layout is not None else KernelLayout()
        self.datamap = KernelDataMap()
        # Sanitizer hook: a CheckRegistry when invariant checking is on
        # (repro.sanitizers installs itself here), None otherwise.
        self.checks = None
        self.syncbus = SyncBus()
        self.llsc = CachedLockSimulator(
            bus_stall_cycles=params.bus_stall_cycles,
            sync_op_cycles=self.syncbus.op_cycles,
        )
        self.locks = LockTable(
            self.syncbus, self.llsc,
            num_runq=max(1, self.tuning.num_run_queues),
        )
        self.vm = VmSubsystem(self, self.tuning.vm)
        self.blockops = BlockOps(
            self,
            cache_bypass=self.tuning.blockop_cache_bypass,
            prefetch=self.tuning.blockop_prefetch,
        )
        self.fs = FsSubsystem(self, substream(seed, "disk"))
        self.scheduler = Scheduler(
            self,
            affinity=self.tuning.affinity_scheduling,
            num_queues=max(1, self.tuning.num_run_queues),
        )
        self.tlbfaults = TlbFaults(self)
        self.syscalls = Syscalls(self)
        self.interrupts = Interrupts(self)

        # Per-CPU dispatch state.
        self.current: List[Optional[Process]] = [None] * params.num_cpus
        self.quantum_start_cycles = [0] * params.num_cpus
        self._kdepth = [0] * params.num_cpus

        # Process registry.
        self.processes: Dict[int, Process] = {}
        self._next_pid = 1
        self._free_slots = list(range(NPROC))
        self._frame_refcount: Dict[int, int] = {}
        # Every program image ever seen, by name: needed so reclaim can
        # fix up an image's frame table even when no live process maps it.
        self.images: Dict[str, Image] = {}

        # Driver-replay log (repro.fidelity): when a list, every driver
        # next() and process creation is appended as ("n"|"c", pid) so a
        # checkpoint can rebuild the unpicklable workload generators by
        # replaying the log against a fresh setup. ``_logged_processes``
        # keeps every process created while logging — including ones
        # later freed — because a parent's generator may still hold its
        # child across the capture point.
        self.driver_log = None
        self._logged_processes: Dict[int, Process] = {}

        # Sleep/wakeup and timers.
        self._sleepers: Dict[object, List[Process]] = {}
        self._timers: List[Tuple[int, int, Process]] = []
        self._timer_seq = 0

        # User semaphores (semop syscall).
        self.semaphores: Dict[int, int] = {}
        # Characters delivered by terminal interrupts, per session.
        self.tty_input: Dict[int, int] = {}

        # Statistics.
        self.os_invocations = 0
        self.invocation_ops: Dict[HighLevelOp, int] = {op: 0 for op in HighLevelOp}
        self.op_cycles: Dict[HighLevelOp, int] = {op: 0 for op in HighLevelOp}

    # ------------------------------------------------------------------
    # Layout helpers
    # ------------------------------------------------------------------
    def routine_span(self, name: str) -> Tuple[int, int]:
        routine = self.layout.routine(name)
        return routine.base, routine.size

    # ------------------------------------------------------------------
    # OS invocation bracketing (Figure 1's unit of OS activity)
    # ------------------------------------------------------------------
    @contextmanager
    def os_invocation(
        self, proc: Processor, op: HighLevelOp, save_frame: bool = True
    ) -> Iterator[None]:
        """Enter the OS for one operation.

        At the outermost level this is a full exception: the low-level
        assembly entry saves the registers into the Eframe section of the
        current process's user structure (Table 5's "Low-Level Exception
        Handling"), and the exit restores them. Nested entries (an
        interrupt arriving in kernel mode) skip the mode switch.
        """
        cpu = proc.cpu_id
        depth = self._kdepth[cpu]
        self._kdepth[cpu] = depth + 1
        outermost = depth == 0
        self.os_invocations += 1
        self.invocation_ops[op] += 1
        if outermost:
            proc.set_mode(Mode.KERNEL)
        start_cycles = proc.cycles
        self.instr.os_enter(proc, OP_CODE[op])
        process = self.current[cpu]
        if outermost:
            proc.ifetch_range(*self.routine_span("excvec_entry"))
            if save_frame and process is not None:
                proc.dtouch_range(
                    self.datamap.eframe_base(process.slot), EFRAME_BYTES, write=True
                )
        try:
            yield
        finally:
            process = self.current[cpu]
            if outermost:
                if save_frame and process is not None:
                    proc.dtouch_range(
                        self.datamap.eframe_base(process.slot), EFRAME_BYTES,
                        write=False,
                    )
                proc.ifetch_range(*self.routine_span("excvec_exit"))
            self.instr.os_exit(proc)
            self._kdepth[cpu] = depth
            self.op_cycles[op] += proc.cycles - start_cycles
            if outermost:
                proc.set_mode(
                    Mode.USER if self.current[cpu] is not None else Mode.IDLE
                )

    def in_kernel(self, cpu: int) -> bool:
        return self._kdepth[cpu] > 0

    def race_exempt(self, proc: Processor, *structs):
        """Annotate an intentional lock-free structure access.

        The kernel's ``data_race()``-style escape hatch: the with-block
        may touch ``structs`` without their protecting lock (priority
        decay sweeps, interrupt-level ``spl``-protected writes) without
        the race checker flagging it. A no-op when checking is off.
        """
        if self.checks is None:
            return nullcontext()
        return self.checks.races.allow(proc.cpu_id, *structs)

    # ------------------------------------------------------------------
    # Address translation for user references
    # ------------------------------------------------------------------
    def translate(
        self, proc: Processor, process: Process, vpage: int, write: bool
    ) -> Optional[int]:
        """Virtual page -> frame for a user reference.

        Handles the whole fault ladder. Returns the frame, or None if the
        process went to sleep (text page-in I/O); the engine retries
        after wakeup.
        """
        entry = proc.tlb.lookup(process.pid, vpage)
        if entry is not None and not (write and vpage in process.cow_pages):
            return entry.frame
        frame = self.tlbfaults.frame_for(process, vpage)
        if frame is not None and not (write and vpage in process.cow_pages):
            # Fast refill from the page table: a UTLB fault.
            self.tlbfaults.utlb_fault(proc, process, vpage, frame)
            return frame
        # Full fault.
        with self.os_invocation(proc, HighLevelOp.EXPENSIVE_TLB_FAULT):
            resolved = self.tlbfaults.vfault(proc, process, vpage, write)
            if resolved is None:
                self.block_current(proc)
        return resolved

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def register_image(self, image: Image) -> Image:
        self.images[image.name] = image
        return image

    def release_image_if_dead(self, proc: Processor, image: Image) -> int:
        """System V text semantics: when the last process using a
        (non-sticky) binary exits or execs away, its text frames are
        released. Their later reuse is what forces the I-cache flushes
        behind the *Inval* misses (Table 2). Returns frames freed.

        Long-running images (the database, the simulator, make itself)
        never reach refcount zero, so they stay resident — matching the
        real system, where only the compile pipeline's binaries churn.
        """
        if image.refcount > 0 or not image.frames:
            return 0
        freed = 0
        for index, frame in enumerate(image.frames):
            if frame < 0:
                continue
            image.frames[index] = -1
            for cpu_proc in self.processors:
                cpu_proc.tlb.flush_frame(frame)
            self.vm.free_frame(proc, frame)
            freed += 1
        return freed

    def create_process(self, name: str, image: Image, driver) -> Process:
        if not self._free_slots:
            raise RuntimeError("process table full (NPROC exceeded)")
        pid = self._next_pid
        self._next_pid += 1
        slot = self._free_slots.pop()
        process = Process(pid=pid, slot=slot, name=name, image=image, driver=driver)
        image.refcount += 1
        self.register_image(image)
        self.processes[pid] = process
        if self.driver_log is not None:
            self.driver_log.append(("c", pid))
            self._logged_processes[pid] = process
        return process

    def free_process(self, process: Process) -> None:
        self._free_slots.append(process.slot)
        self.processes.pop(process.pid, None)

    def teardown_address_space(self, proc: Processor, process: Process) -> None:
        """Free the process's private pages (exec and exit).

        COW-shared frames are refcounted so the sharer keeps its copy.
        """
        for vpage, frame in list(process.data_frames.items()):
            refs = self._frame_refcount.get(frame, 1)
            if refs > 1:
                self.unshare_frame(frame)
            else:
                self.vm.free_frame(proc, frame)
            proc.tlb.flush_frame(frame)
        process.data_frames.clear()
        process.cow_pages.clear()
        process.hot_blocks = []
        proc.tlb.flush_pid(process.pid)

    def share_frame(self, frame: int) -> None:
        """Fork: one more address space references this frame."""
        self._frame_refcount[frame] = self._frame_refcount.get(frame, 1) + 1

    def unshare_frame(self, frame: int) -> None:
        """COW fault resolved: the faulter stopped using the shared frame."""
        refs = self._frame_refcount.get(frame, 1)
        if refs > 2:
            self._frame_refcount[frame] = refs - 1
        else:
            self._frame_refcount.pop(frame, None)

    def frame_shared(self, frame: int) -> bool:
        return self._frame_refcount.get(frame, 1) > 1

    def release_dead_image_frame(self, proc: Processor, frame: int, image_name) -> bool:
        """Reclaim a text frame if no live process uses its image."""
        image = self.images.get(image_name)
        if image is not None and image.refcount > 0:
            return False
        for process in self.processes.values():
            if process.image.name == image_name and not process.exited:
                return False
        if image is not None and frame in image.frames:
            image.frames[image.frames.index(frame)] = -1
        for proc_tlb in self.processors:
            proc_tlb.tlb.flush_frame(frame)
        self.vm.free_frame(proc, frame)
        return True

    def steal_data_frame(self, proc: Processor, frame: int, tag) -> bool:
        """Reclaim a data page from a sleeping process (it will refault
        with a fresh demand-zero page — our model has no swap device, so
        only re-creatable pages are stolen)."""
        if not (isinstance(tag, tuple) and len(tag) == 2):
            return False  # anonymous data frame: not safely re-creatable
        pid, vpage = tag
        process = self.processes.get(pid)
        if process is None:
            # Owner exited without the frame being freed: just release it.
            self.vm.free_frame(proc, frame)
            return True
        if process.state is not ProcState.SLEEPING:
            return False
        if self._frame_refcount.get(frame, 1) > 1 or vpage in process.cow_pages:
            return False
        if process.data_frames.get(vpage) != frame:
            # Stale use-tag (the page was COW-copied since): not stealable.
            return False
        process.data_frames.pop(vpage, None)
        for cpu_proc in self.processors:
            cpu_proc.tlb.flush_frame(frame)
        self.vm.free_frame(proc, frame)
        return True

    # ------------------------------------------------------------------
    # Sleep / wakeup / timers
    # ------------------------------------------------------------------
    def sleep(self, process: Process, channel: object) -> None:
        """Mark a process asleep on a channel (the engine performs the
        actual CPU switch when the handler returns 'blocked').

        Sleeping earns back priority (System V interactivity boost).
        """
        process.state = ProcState.SLEEPING
        process.sleep_channel = channel
        process.priority = max(10, process.priority - 2)
        self._sleepers.setdefault(channel, []).append(process)

    def wakeup(self, channel: object, proc: Processor) -> int:
        """Wake every process sleeping on a channel (waker pays the
        run-queue footprint)."""
        sleepers = self._sleepers.pop(channel, [])
        for process in sleepers:
            process.sleep_channel = None
            self.scheduler.setrq(proc, process)
        return len(sleepers)

    def sleep_until(self, process: Process, wake_cycles: int) -> None:
        """Timed sleep (ed think time); the clock interrupt delivers it."""
        self._timer_seq += 1
        heapq.heappush(self._timers, (wake_cycles, self._timer_seq, process))
        process.state = ProcState.SLEEPING
        process.sleep_channel = ("timer", process.pid)

    def pop_due_timers(self, proc: Processor) -> List[Process]:
        due = []
        while self._timers and self._timers[0][0] <= proc.cycles:
            _, _, process = heapq.heappop(self._timers)
            if process.state is ProcState.SLEEPING:
                process.sleep_channel = None
                due.append(process)
        return due

    def next_timer_cycles(self) -> Optional[int]:
        return self._timers[0][0] if self._timers else None

    def block_current(self, proc: Processor) -> None:
        """The current process just went to sleep: switch away."""
        self.current[proc.cpu_id] = None
        self.scheduler.dispatch(proc)

    # ------------------------------------------------------------------
    # User I/O staging pages
    # ------------------------------------------------------------------
    def user_io_address(self, proc: Processor, process: Process, offset: int) -> int:
        """Physical address of the process's user I/O buffer at ``offset``.

        read()/write() transfer between the buffer cache and these pages;
        they are demand-zero faulted like any other data page.
        """
        page_bytes = self.params.page_bytes
        vpage = DATA_VBASE + (offset // page_bytes) % USER_IO_PAGES
        frame = process.data_frames.get(vpage)
        if frame is None:
            frame = self.tlbfaults._demand_zero(proc, process, vpage)
        return frame * page_bytes + offset % page_bytes

    # ------------------------------------------------------------------
    # Device event plumbing (driven by the session)
    # ------------------------------------------------------------------
    def next_device_event_cycles(self) -> Optional[int]:
        return self.fs.disk.next_time()

    def service_disk(self, proc: Processor) -> None:
        payloads = self.fs.disk.pop_due(proc.cycles)
        if payloads:
            with self.os_invocation(proc, HighLevelOp.INTERRUPT):
                self.interrupts.disk(proc, payloads)
