"""Virtual-memory subsystem: frame allocation, reclaim, I-cache flushes.

This is where three of the paper's miss sources are born:

- **Block operations**: demand-zero pages are cleared, copy-on-write
  pages are copied (Section 4.2.2, Table 6/7);
- **Pfdat traversals**: "a traversal of the array of page descriptors
  occurs when free memory is needed" — the page reclaim scan;
- **Inval misses**: "I-cache misses resulting from invalidation of the
  I-cache when physical pages that contained code are reallocated"
  (Table 2). The R3000 has no selective I-cache coherence, so the
  modelled kernel flushes *all* I-caches when it reallocates a frame
  that held code — which is why Figure 6 shows Inval misses bounding
  the gains of larger I-caches.

``baseline_frames`` models everything resident on the real machine that
the simulation does not trace (X server, daemons, the rest of the kernel)
by taking those frames out of the pool, so the traced workload feels the
same memory pressure a loaded 32 MB machine did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


# What a frame is currently used for.
USE_DATA = "data"      # (pid, vpage)
USE_TEXT = "text"      # image name
USE_BUFFER = "buffer"  # (inode, file block)


@dataclass
class VmTuning:
    """Reclaim policy knobs."""

    baseline_frames: int = 5120     # untraced residents (20 MB of 32 MB)
    low_water_frames: int = 128     # reclaim when free frames drop below
    reclaim_batch: int = 32         # frames stolen per traversal
    scan_entries_per_frame: int = 4  # pfdat descriptors scanned per steal


class VmSubsystem:
    """Frame allocation and reclaim, with the paper's reference footprint."""

    def __init__(self, kernel, tuning: Optional[VmTuning] = None):
        self.k = kernel
        self.tuning = tuning if tuning is not None else VmTuning()
        self.frame_use: Dict[int, Tuple[str, object]] = {}
        self.frame_was_text: set = set()
        self._scan_hand = 0
        self.stats_allocs = 0
        self.stats_frees = 0
        self.stats_reclaims = 0
        self.stats_icache_flushes = 0
        self._reclaiming = False
        phys = self.k.memsys.memory
        baseline = min(self.tuning.baseline_frames, phys.num_frames - 256)
        for _ in range(baseline):
            frame = phys.alloc_frame()
            self.frame_use[frame] = ("baseline", None)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def alloc_frame(self, proc, use: str, tag: object) -> int:
        """Allocate one frame, touching the allocator's structures.

        ``proc`` is the :class:`Processor` doing the work (the allocation
        happens in the context of the faulting/requesting process).
        """
        k = self.k
        phys = k.memsys.memory
        self.stats_allocs += 1
        with k.locks.held(proc, "memlock"):
            proc.ifetch_range(*k.routine_span("pagealloc"))
            # Hash bucket of free pages, then the page's descriptor.
            proc.dread(k.datamap.freepgbuck_base + (self._scan_hand * 16) % 3072)
            frame = phys.alloc_frame()
            proc.dwrite(k.datamap.pfdat_entry(frame))
            self.frame_use[frame] = (use, tag)
        if frame in self.frame_was_text:
            self._flush_icaches_for_reuse(proc, frame)
        if (
            phys.free_frame_count() < self.tuning.low_water_frames
            and not self._reclaiming
        ):
            self.reclaim(proc)
        return frame

    def free_frame(self, proc, frame: int, contained_code: Optional[bool] = None) -> None:
        """Return a frame to the pool.

        ``contained_code`` overrides the stale-code inference (a text
        frame freed before any code was actually paged into it does not
        require I-cache flushing on reuse).
        """
        k = self.k
        use, _ = self.frame_use.pop(frame, (None, None))
        if use is None:
            raise ValueError(f"frame {frame} not tracked by the VM subsystem")
        self.stats_frees += 1
        had_code = use == USE_TEXT if contained_code is None else contained_code
        if had_code:
            self.frame_was_text.add(frame)
        with k.locks.held(proc, "memlock"):
            proc.ifetch_range(*k.routine_span("pagefree"))
            proc.dwrite(k.datamap.pfdat_entry(frame))
            proc.dwrite(k.datamap.freepgbuck_base + (frame * 16) % 3072)
            k.memsys.memory.free_frame(frame)

    def _flush_icaches_for_reuse(self, proc, frame: int) -> None:
        """Reallocating a frame that held code: flush every I-cache.

        The flush is announced to the trace (Section 2.2 lists "cache
        flushing" among recorded events) so the postprocessor can keep its
        reconstructed I-cache state correct.
        """
        k = self.k
        self.stats_icache_flushes += 1
        self.frame_was_text.discard(frame)
        k.instr.icache_flush(proc, frame)
        k.memsys.flush_all_icaches()

    # ------------------------------------------------------------------
    # Reclaim: the pfdat traversal (Table 6 "Travers. of Descrip.")
    # ------------------------------------------------------------------
    def reclaim(self, proc) -> int:
        """Scan page descriptors and steal reclaimable frames.

        Runs in the context of the allocating process, as IRIX does when
        free memory is short. Returns the number of frames freed.
        """
        k = self.k
        self.stats_reclaims += 1
        self._reclaiming = True
        try:
            target = self.tuning.reclaim_batch
            freed = 0
            candidates = list(self.frame_use.items())
            if not candidates:
                return 0
            scan_budget = target * self.tuning.scan_entries_per_frame
            k.blockops.pfdat_traverse(proc, self._scan_hand, scan_budget)
            start = self._scan_hand % len(candidates)
            order = candidates[start:] + candidates[:start]
            self._scan_hand += scan_budget
            # Steal in preference order: text of programs nobody runs any
            # more (clean, unreferenced), then buffer-cache pages, then
            # data pages of sleeping processes (which will refault).
            dead_text = []
            buffers = []
            data = []
            for frame, (use, tag) in order:
                if use == USE_TEXT:
                    dead_text.append((frame, tag))
                elif use == USE_BUFFER:
                    buffers.append((frame, tag))
                elif use == USE_DATA:
                    data.append((frame, tag))
            for frame, tag in dead_text:
                if freed >= target:
                    return freed
                if k.release_dead_image_frame(proc, frame, tag):
                    freed += 1
            # Keep a floor of buffer-cache frames: stealing the whole
            # cache just converts memory pressure into disk re-reads.
            buffer_floor = 32
            buffer_steals = 0
            for frame, _tag in buffers:
                if freed >= target or len(buffers) - buffer_steals <= buffer_floor:
                    break
                if k.fs.buffer_cache.reclaim_frame(proc, frame):
                    freed += 1
                    buffer_steals += 1
            # Stealing data pages forces refaults (full page clears);
            # cap it so pressure is relieved mostly from clean pages.
            data_steals = 0
            for frame, tag in data:
                if freed >= target or data_steals >= 8:
                    return freed
                if k.steal_data_frame(proc, frame, tag):
                    freed += 1
                    data_steals += 1
            return freed
        finally:
            self._reclaiming = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def frames_in_use(self, use: str) -> int:
        return sum(1 for u, _ in self.frame_use.values() if u == use)
