"""The synthetic IRIX-like System V kernel.

This is the substrate the paper measured: a fully multithreaded
System V UNIX whose data is shared by all kernel threads (Section 2.2).
Our model reproduces the pieces the paper's analysis attributes misses
to:

- :mod:`repro.kernel.layout` — the kernel text image (named routines at
  physical addresses; the Figure 5 symbol table).
- :mod:`repro.kernel.structures` — the kernel data segment with the
  Table 3 structures at their paper-reported sizes.
- :mod:`repro.kernel.locks` — the Table 11 lock inventory with the
  Table 12 statistics.
- :mod:`repro.kernel.process` / :mod:`repro.kernel.scheduler` — processes,
  the run queue, context switches, migration and (optional) affinity.
- :mod:`repro.kernel.vm` — frame allocation, copy-on-write, demand zero,
  the buffer cache, and the page-out descriptor traversal.
- :mod:`repro.kernel.blockops` — bcopy / bclear / pfdat traversal.
- :mod:`repro.kernel.tlbfault`, :mod:`repro.kernel.syscalls`,
  :mod:`repro.kernel.interrupts` — the Table 8 operation vocabulary.
- :mod:`repro.kernel.kernel` — the `Kernel` facade gluing it together.
"""

from repro.kernel.kernel import Kernel, KernelTuning
from repro.kernel.layout import KernelLayout, Routine
from repro.kernel.structures import KernelDataMap, StructName
from repro.kernel.locks import KernelLock, LockTable
from repro.kernel.process import Process, ProcState

__all__ = [
    "Kernel",
    "KernelTuning",
    "KernelLayout",
    "Routine",
    "KernelDataMap",
    "StructName",
    "KernelLock",
    "LockTable",
    "Process",
    "ProcState",
]
