"""Process model.

A process owns a virtual address space (shared text image + private data
pages), a process-table slot (which fixes the physical addresses of its
kernel stack, user structure and page table — the per-process state whose
migration the paper identifies as a major miss source), and a *driver*:
the workload-supplied iterator of actions it executes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

# Virtual page number bases (per-process virtual layout).
TEXT_VBASE = 0
DATA_VBASE = 0x100
STACK_VBASE = 0x3C0


class ProcState(enum.Enum):
    RUNNING = "running"
    RUNNABLE = "runnable"
    SLEEPING = "sleeping"
    STOPPED = "stopped"   # suspended by the master tracer
    ZOMBIE = "zombie"


@dataclass
class Image:
    """A program's text image, shared by every process executing it.

    Text frames are allocated on first exec and refcounted; when the last
    user exits and memory pressure reclaims them, their reuse forces the
    I-cache invalidations that become *Inval* misses.
    """

    name: str
    text_pages: int
    file_ino: int = -1  # executable file the text is demand-paged from
    frames: List[int] = field(default_factory=list)  # -1 = not resident
    refcount: int = 0

    def resident(self) -> bool:
        return bool(self.frames)


@dataclass
class Process:
    """One schedulable process."""

    pid: int
    slot: int
    name: str
    image: Image
    driver: Iterator  # yields workload actions
    priority: int = 20
    state: ProcState = ProcState.RUNNABLE
    last_cpu: int = -1
    # Private pages: virtual page -> physical frame.
    data_frames: Dict[int, int] = field(default_factory=dict)
    # Data pages still shared copy-on-write with the parent after fork.
    cow_pages: Set[int] = field(default_factory=set)
    # Hot working set the user-mode engine sweeps: (vpage, block-in-page).
    hot_blocks: List[Tuple[int, int]] = field(default_factory=list)
    sweep_cursor: int = 0
    # Number of data pages the process may demand-fault (heap size).
    data_pages: int = 16
    # Carried state for partially-executed Compute actions.
    pending_action: Optional[object] = None
    # Statistics.
    migrations: int = 0
    dispatches: int = 0
    syscalls: int = 0
    # Wakeup bookkeeping (what the process sleeps on).
    sleep_channel: Optional[object] = None
    exited: bool = False

    def runnable(self) -> bool:
        return self.state is ProcState.RUNNABLE

    # ------------------------------------------------------------------
    # Pickling: the driver is a live generator, which CPython cannot
    # serialize. A pickled process (run cache, multiprocessing) is only
    # ever *analyzed*, never resumed, so the driver is dropped on dump
    # and replaced with an exhausted iterator on load — stepping a
    # restored process simply exits it instead of crashing.
    # ------------------------------------------------------------------
    def __getstate__(self):
        state = self.__dict__.copy()
        state["driver"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self.driver is None:
            self.driver = iter(())

    def note_dispatch(self, cpu_id: int) -> bool:
        """Record a dispatch; True if this dispatch migrated the process."""
        migrated = self.last_cpu not in (-1, cpu_id)
        if migrated:
            self.migrations += 1
        self.last_cpu = cpu_id
        self.dispatches += 1
        return migrated

    def build_hot_set(
        self, rng, text_fraction: float = 0.5, data_fraction: float = 0.6,
        blocks_per_page: int = 256,
    ) -> None:
        """Choose the hot blocks the user-mode engine sweeps.

        ``text_fraction`` of each text page and ``data_fraction`` of each
        currently-known data page are hot; the engine walks them
        cyclically, which is what re-exposes OS-displaced blocks as
        *Ap_dispos* misses (Section 4.3).
        """
        hot: List[Tuple[int, int]] = []
        text_step = max(1, int(1 / max(text_fraction, 1e-6)))
        for vpage in range(TEXT_VBASE, TEXT_VBASE + self.image.text_pages):
            for block in range(0, blocks_per_page, text_step):
                hot.append((vpage, block))
        data_step = max(1, int(1 / max(data_fraction, 1e-6)))
        for vpage in range(DATA_VBASE, DATA_VBASE + self.data_pages):
            for block in range(0, blocks_per_page, data_step):
                hot.append((vpage, block))
        # Keep the sweep order sequential (spatial locality drives both
        # the TLB behaviour and the cache behaviour); only the starting
        # point is randomized.
        self.hot_blocks = hot
        self.sweep_cursor = rng.randrange(len(hot)) if hot else 0
