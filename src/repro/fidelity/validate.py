"""Bounded-error validation of the mixed fidelity tier.

The atomic tier trades exact timing for speed, so a mixed run's measured
window sees a machine whose warmup progressed slightly differently than
a detailed run's (the tier's one timing approximation: resident accesses
cost zero instead of the occasional L1-miss/L2-hit refinement). This
harness quantifies that drift the way simplified-model papers do: run
the same (workload, horizon, warmup, seed) both ways and assert every
Table 2 / 11 / 12 statistic from the mixed run's measured window lands
within a configurable error bound of the detailed run.

Two kinds of bound:

- **shares** (Table 2 miss-class shares, Table 12 failed%): absolute
  percentage points. Short windows make ratio bounds meaningless for
  shares near zero.
- **counts** (Table 11 windowed acquires, Table 12 sync-bus traffic):
  *symmetric* relative error ``|m - d| / max(d, m)``, checked only
  above a count floor. Windowed lock counts of a bursty workload are
  intrinsically noisy — two detailed runs at different seeds differ by
  more than 100% on some families at short horizons — so the default
  bounds are sized just above that intrinsic seed-to-seed variance;
  longer horizons tighten the comparison.

Windowing: lock and sync-bus counters are cumulative over the whole
run, so the loop's warmup-boundary snapshot
(:func:`repro.fidelity.snapshot_window_counters`) is subtracted from
the end-of-run totals on both sides before comparing.

Wall-clock is measured three ways: detailed (cold), mixed (cold — pays
the fast-forward), and mixed warm (restore the seam checkpoint, run only
the detailed window) — the steady state of a cached sweep, which is
where the tier's headline speedup lives.

``python -m repro.fidelity.validate [workload ...]`` prints the JSON
report and exits non-zero if any statistic lands out of bound.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.types import MissClass

# Table 2 rows compared per cache kind.
_CLASSES = (
    MissClass.COLD,
    MissClass.DISPOS,
    MissClass.DISPAP,
    MissClass.SHARING,
    MissClass.INVAL,
)

# The Table 12 singleton locks (same list the exhibit reports).
_TABLE12_FAMILIES = (
    "memlock", "runqlk", "ifree", "dfbmaplk", "bfreelock", "calock",
)


@dataclass
class StatCheck:
    """One compared statistic."""

    table: str        # table2 | table11 | table12
    name: str
    detailed: float
    mixed: float
    error: float      # percentage points (shares) or relative (counts)
    bound: float
    kind: str         # "share_pp" | "relative"
    ok: bool

    def to_dict(self) -> Dict[str, object]:
        return {
            "table": self.table,
            "name": self.name,
            "detailed": self.detailed,
            "mixed": self.mixed,
            "error": round(self.error, 4),
            "bound": self.bound,
            "kind": self.kind,
            "ok": self.ok,
        }


@dataclass
class FidelityValidation:
    """Full comparison for one workload."""

    workload: str
    horizon_ms: float
    warmup_ms: float
    seed: int
    machine: str
    fast_forward: int
    fast_forwarded_refs: int
    seam_cycles: Optional[int]
    checks: List[StatCheck] = field(default_factory=list)
    # Wall-clock (simulation only; the analysis pass is tier-independent).
    detailed_seconds: float = 0.0
    mixed_cold_seconds: float = 0.0
    mixed_warm_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> List[StatCheck]:
        return [check for check in self.checks if not check.ok]

    @property
    def speedup_cold(self) -> float:
        if not self.mixed_cold_seconds:
            return 0.0
        return self.detailed_seconds / self.mixed_cold_seconds

    @property
    def speedup_warm(self) -> float:
        """Detailed vs checkpoint-restored mixed — the cached-sweep case."""
        if not self.mixed_warm_seconds:
            return 0.0
        return self.detailed_seconds / self.mixed_warm_seconds

    def to_dict(self) -> Dict[str, object]:
        return {
            "workload": self.workload,
            "horizon_ms": self.horizon_ms,
            "warmup_ms": self.warmup_ms,
            "seed": self.seed,
            "machine": self.machine,
            "fast_forward": self.fast_forward,
            "fast_forwarded_refs": self.fast_forwarded_refs,
            "seam_cycles": self.seam_cycles,
            "ok": self.ok,
            "checks": [check.to_dict() for check in self.checks],
            "wall_clock": {
                "detailed_seconds": round(self.detailed_seconds, 3),
                "mixed_cold_seconds": round(self.mixed_cold_seconds, 3),
                "mixed_warm_seconds": round(self.mixed_warm_seconds, 3),
                "speedup_cold": round(self.speedup_cold, 2),
                "speedup_warm": round(self.speedup_warm, 2),
            },
        }

    def summary(self) -> str:
        verdict = "ok" if self.ok else f"{len(self.failures)} OUT OF BOUND"
        machine = "" if self.machine == "4d340" else f"@{self.machine}"
        return (
            f"validate-fidelity {self.workload}{machine}: "
            f"{len(self.checks)} stats "
            f"[{verdict}] detailed={self.detailed_seconds:.2f}s "
            f"mixed={self.mixed_cold_seconds:.2f}s "
            f"(warm {self.mixed_warm_seconds:.2f}s, "
            f"{self.speedup_warm:.1f}x)"
        )


class _MemoryStore:
    """Single-slot stand-in for the run cache's checkpoint store."""

    def __init__(self) -> None:
        self.payload = None

    def store(self, key, payload) -> bool:
        self.payload = payload
        return True


def _windowed_family(run) -> Dict[str, Dict[str, int]]:
    """Per-family lock counters over the measured window."""
    snapshot = run.simulation.measure_snapshot or {}
    base = snapshot.get("lock_families", {})
    out: Dict[str, Dict[str, int]] = {}
    for family, stats in run.kernel.locks.family_stats().items():
        start = base.get(family)
        out[family] = {
            "acquires": stats.acquires - (start.acquires if start else 0),
            "failed": stats.failed_acquires
            - (start.failed_acquires if start else 0),
        }
    return out


def _windowed_syncbus(run) -> Dict[str, int]:
    snapshot = run.simulation.measure_snapshot or {}
    stats = run.kernel.syncbus.stats
    return {
        "reads": stats.reads - snapshot.get("syncbus_reads", 0),
        "writes": stats.writes - snapshot.get("syncbus_writes", 0),
    }


def compare_runs(
    detailed_run,
    mixed_run,
    detailed_report,
    mixed_report,
    share_bound_pp: float = 18.0,
    rel_bound: float = 0.75,
    count_floor: int = 50,
) -> List[StatCheck]:
    """Every Table 2/11/12 statistic, detailed vs mixed, with verdicts."""
    checks: List[StatCheck] = []

    def share(table: str, name: str, d: float, m: float) -> None:
        error = abs(m - d)
        checks.append(
            StatCheck(
                table, name, round(d, 3), round(m, 3), error,
                share_bound_pp, "share_pp", error <= share_bound_pp,
            )
        )

    def count(table: str, name: str, d: float, m: float) -> None:
        if max(d, m) < count_floor:
            return  # below the floor everything is seed noise
        error = abs(m - d) / max(d, m, 1.0)
        checks.append(
            StatCheck(
                table, name, d, m, error, rel_bound, "relative",
                error <= rel_bound,
            )
        )

    # Table 2: OS miss-class shares (normalized to 100 across classes).
    share(
        "table2", "os_miss_fraction",
        detailed_report.os_miss_fraction_pct, mixed_report.os_miss_fraction_pct,
    )
    for kind in ("I", "D"):
        for miss_class in _CLASSES:
            share(
                "table2", f"os_{kind}_{miss_class.name.lower()}",
                detailed_report.os_class_share_pct(kind, miss_class),
                mixed_report.os_class_share_pct(kind, miss_class),
            )

    # Table 11: windowed acquires per lock family.
    det_locks = _windowed_family(detailed_run)
    mix_locks = _windowed_family(mixed_run)
    for family in sorted(set(det_locks) | set(mix_locks)):
        d = det_locks.get(family, {}).get("acquires", 0)
        m = mix_locks.get(family, {}).get("acquires", 0)
        count("table11", f"{family}_acquires", d, m)

    # Table 12: failed% for the singleton locks + sync-bus traffic.
    for family in _TABLE12_FAMILIES:
        d = det_locks.get(family)
        m = mix_locks.get(family)
        if d is None or m is None:
            continue
        if max(d["acquires"], m["acquires"]) < count_floor:
            continue
        d_failed = 100.0 * d["failed"] / d["acquires"] if d["acquires"] else 0.0
        m_failed = 100.0 * m["failed"] / m["acquires"] if m["acquires"] else 0.0
        share("table12", f"{family}_failed_pct", d_failed, m_failed)
    det_bus = _windowed_syncbus(detailed_run)
    mix_bus = _windowed_syncbus(mixed_run)
    for name in ("reads", "writes"):
        count("table12", f"syncbus_{name}", det_bus[name], mix_bus[name])

    return checks


def validate_workload(
    workload: str,
    horizon_ms: float = 40.0,
    warmup_ms: float = 260.0,
    seed: int = 7,
    machine: str = "4d340",
    fast_forward: int = 0,
    share_bound_pp: float = 18.0,
    rel_bound: float = 0.75,
    count_floor: int = 50,
) -> FidelityValidation:
    """Run ``workload`` detailed and mixed on one machine geometry,
    compare, and time all tiers."""
    from repro.analysis.report import analyze_trace
    from repro.sim._session import Simulation

    started = time.perf_counter()
    detailed_run = Simulation(workload, seed=seed, machine=machine).run(
        horizon_ms, warmup_ms=warmup_ms
    )
    detailed_seconds = time.perf_counter() - started

    store = _MemoryStore()
    sim = Simulation(
        workload, seed=seed, machine=machine, fidelity="mixed",
        fast_forward=fast_forward,
    )
    sim.checkpoint_cache = store
    sim.checkpoint_cache_key = "in-memory"
    started = time.perf_counter()
    mixed_run = sim.run(horizon_ms, warmup_ms=warmup_ms)
    mixed_cold_seconds = time.perf_counter() - started

    # Warm path: restore the seam checkpoint, run only the window.
    mixed_warm_seconds = 0.0
    if store.payload is not None:
        started = time.perf_counter()
        warm_sim = store.payload["checkpoint"].restore()
        warm_sim.continue_run(horizon_ms)
        mixed_warm_seconds = time.perf_counter() - started

    detailed_report = analyze_trace(detailed_run, keep_imiss_stream=False)
    mixed_report = analyze_trace(mixed_run, keep_imiss_stream=False)
    validation = FidelityValidation(
        workload=workload,
        horizon_ms=horizon_ms,
        warmup_ms=warmup_ms,
        seed=seed,
        machine=machine,
        fast_forward=fast_forward,
        fast_forwarded_refs=mixed_run.fast_forwarded_refs,
        seam_cycles=mixed_run.seam_cycles,
        checks=compare_runs(
            detailed_run, mixed_run, detailed_report, mixed_report,
            share_bound_pp=share_bound_pp, rel_bound=rel_bound,
            count_floor=count_floor,
        ),
        detailed_seconds=detailed_seconds,
        mixed_cold_seconds=mixed_cold_seconds,
        mixed_warm_seconds=mixed_warm_seconds,
    )
    return validation


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.fidelity.validate",
        description="Bounded-error validation of the mixed fidelity tier",
    )
    parser.add_argument(
        "workloads", nargs="*", default=["pmake", "multpgm", "oracle"]
    )
    parser.add_argument("--horizon-ms", type=float, default=40.0)
    parser.add_argument("--warmup-ms", type=float, default=260.0)
    parser.add_argument("--seed", type=int, default=7)
    machine_group = parser.add_mutually_exclusive_group()
    machine_group.add_argument(
        "--machine", default=None, metavar="NAME",
        help="machine preset from repro.machines "
             "(default: $REPRO_MACHINE or 4d340)",
    )
    machine_group.add_argument(
        "--cpus", type=int, default=None, metavar="N",
        help="shorthand for --machine: the preset with exactly N CPUs",
    )
    parser.add_argument("--fast-forward", type=int, default=0)
    parser.add_argument(
        "--share-bound-pp", type=float, default=18.0,
        help="max share drift in percentage points (default 18)",
    )
    parser.add_argument(
        "--rel-bound", type=float, default=0.75,
        help="max symmetric relative error on windowed counts "
             "(default 0.75, sized above seed-to-seed variance)",
    )
    parser.add_argument(
        "--count-floor", type=int, default=50,
        help="skip count comparisons below this many events (default 50)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=0.0,
        help="fail unless the warm (checkpoint-restored) mixed run beats "
             "the detailed run by at least this factor (default 0 = off)",
    )
    args = parser.parse_args(argv)
    from repro.machines import machine_for_cpus, resolve_machine_name

    if args.cpus is not None:
        machine = machine_for_cpus(args.cpus)
    else:
        machine = resolve_machine_name(args.machine)
    results = [
        validate_workload(
            workload,
            horizon_ms=args.horizon_ms,
            warmup_ms=args.warmup_ms,
            seed=args.seed,
            machine=machine,
            fast_forward=args.fast_forward,
            share_bound_pp=args.share_bound_pp,
            rel_bound=args.rel_bound,
            count_floor=args.count_floor,
        )
        for workload in args.workloads
    ]
    print(json.dumps([result.to_dict() for result in results], indent=2))
    import sys

    ok = True
    for result in results:
        print(result.summary(), file=sys.stderr)
        for failure in result.failures:
            print(
                f"  OUT OF BOUND {failure.table}/{failure.name}: "
                f"detailed={failure.detailed} mixed={failure.mixed} "
                f"error={failure.error:.3f} > {failure.bound}",
                file=sys.stderr,
            )
        if not result.ok:
            ok = False
        if args.min_speedup and result.speedup_warm < args.min_speedup:
            print(
                f"  TOO SLOW {result.workload}: warm speedup "
                f"{result.speedup_warm:.2f}x < {args.min_speedup}x",
                file=sys.stderr,
            )
            ok = False
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
