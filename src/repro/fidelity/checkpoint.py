"""Explicit engine checkpoints: the atomic→detailed hand-off seam.

A :class:`~repro.sim._session.Simulation` pickles almost completely (the
run cache has relied on that since the snapshot machinery landed): cache
tags, TLBs, coherence ownership, lock and scheduler state, the monitor,
the event heap. The one thing pickling drops is every workload driver —
they are Python generators, and generators cannot be serialized.

:class:`EngineCheckpoint` closes that gap with deterministic replay.
While a run that may be checkpointed executes, the kernel appends every
driver ``next()`` and every process creation to a *driver log* (global
order, ``("n"|"c", pid)``). Restoring a checkpoint rebuilds a scratch
machine from the same workload name and seed — whose setup creates root
processes and generators identical to the original's — grafts the
checkpointed kernel's live :class:`~repro.kernel.process.Image` objects
onto the scratch workload (``exec`` mutates image refcounts and registers
images by name; replayed generators must yield the *restored* objects),
then replays the log: each ``"n"`` advances the named pid's generator,
each ``"c"`` instantiates the child generator from the Fork action its
parent just yielded and rebinds ``fork.child`` to the restored process.
After replay every generator, and the workload RNG they share, sit in
exactly the state the original run had at capture.

Checkpoints are content-addressed in the existing run cache (see
:func:`checkpoint_key`), so repeated mixed-fidelity sweeps reuse the
warmed state instead of re-fast-forwarding.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, Optional

_CHECKPOINT_FORMAT = 1


@dataclass
class EngineCheckpoint:
    """A restorable snapshot of a mid-run simulation.

    ``blob`` is a self-contained pickle of the simulation taken at
    ``now_cycles`` (always at a slice boundary, with the pending event
    queue entry preserved); the remaining fields identify what the
    snapshot is warm *for*, mirroring the cache-key material.
    """

    format: int
    workload: str
    seed: int
    warmup_ms: float
    fast_forward: int
    now_cycles: int
    blob: bytes

    def restore(self):
        """Rebuild a resumable :class:`Simulation` from this checkpoint.

        Unpickles a private copy of the machine, replays the driver log
        to regrow the workload generators, and re-queues the pending
        event-heap entry, so ``sim.continue_run()`` picks up exactly
        where the capture left off.
        """
        import heapq

        state = pickle.loads(self.blob)
        sim = state["sim"]
        _reattach_drivers(sim)
        heapq.heappush(sim._heap, sim._pending_entry)
        return sim


def capture(sim, now_cycles: int) -> EngineCheckpoint:
    """Snapshot ``sim`` at a slice boundary into an :class:`EngineCheckpoint`.

    The simulation must have been running with an active driver log
    (``fidelity="atomic"``/``"mixed"``, or ``record_drivers=True``);
    without it the workload generators cannot be replayed at restore.
    """
    if sim.kernel.driver_log is None:
        raise ValueError(
            "checkpoint capture requires an active driver log; run with "
            "record_drivers=True (or a non-detailed fidelity)"
        )
    # Detach the capture-control attributes: the cache handle and any
    # predicate callable are unpicklable or meaningless in the snapshot.
    detached = {}
    for name in ("checkpoint_cache", "checkpoint_when", "captured_checkpoint"):
        detached[name] = getattr(sim, name)
        setattr(sim, name, None)
    try:
        blob = pickle.dumps(
            {"sim": sim, "now": now_cycles}, protocol=pickle.HIGHEST_PROTOCOL
        )
    finally:
        for name, value in detached.items():
            setattr(sim, name, value)
    return EngineCheckpoint(
        format=_CHECKPOINT_FORMAT,
        workload=sim.workload.name,
        seed=sim.seed,
        warmup_ms=sim._warmup_cycles / sim.params.cycles_per_ms(),
        fast_forward=sim.fast_forward,
        now_cycles=now_cycles,
        blob=blob,
    )


def restore(checkpoint: EngineCheckpoint):
    """Functional-style alias for :meth:`EngineCheckpoint.restore`."""
    return checkpoint.restore()


# ----------------------------------------------------------------------
# Driver replay
# ----------------------------------------------------------------------
def _reattach_drivers(sim) -> None:
    """Regrow the unpicklable workload generators by replaying the log."""
    from repro.sim._session import Simulation
    from repro.workloads import actions as A

    log = sim.kernel.driver_log
    if log is None:
        raise ValueError("checkpoint has no driver log; cannot replay drivers")
    scratch = Simulation(
        sim.workload.name, params=sim.params, seed=sim.seed, trace=False,
        workload_args=getattr(sim, "workload_args", None),
    )
    _graft_images(scratch.workload, sim.kernel.images)
    generators = {
        pid: process.driver for pid, process in scratch.kernel.processes.items()
    }
    last_action = None
    for kind, pid in log:
        if kind == "n":
            generator = generators.get(pid)
            if generator is None:
                raise ValueError(f"driver log names unknown pid {pid}")
            try:
                last_action = next(generator)
            except StopIteration:
                last_action = None
        else:  # "c": the most recent action must be the creating Fork
            if not isinstance(last_action, A.Fork):
                raise ValueError(
                    f"driver log creation of pid {pid} not preceded by a Fork"
                )
            generators[pid] = last_action.driver_factory()
            child = sim.kernel._logged_processes.get(pid)
            if child is None:
                child = sim.kernel.processes.get(pid)
            last_action.child = child
    for pid, process in sim.kernel.processes.items():
        generator = generators.get(pid)
        if generator is not None:
            process.driver = generator


def _graft_images(workload, live_images: Dict[str, Any]) -> None:
    """Point a scratch workload's Image attributes at the restored kernel's.

    ``exec`` mutates ``Image.refcount`` and keys ``kernel.images`` by
    name, so replayed generators must yield the restored run's Image
    objects, not the scratch machine's lookalikes. Recurses into nested
    workloads (multpgm embeds pmake) and common containers.
    """
    from repro.kernel.process import Image
    from repro.workloads.base import Workload

    def graft(value):
        if isinstance(value, Image):
            return live_images.get(value.name, value)
        if isinstance(value, Workload):
            _graft_images(value, live_images)
            return value
        if isinstance(value, list):
            return [graft(item) for item in value]
        if isinstance(value, tuple):
            return tuple(graft(item) for item in value)
        if isinstance(value, dict):
            return {key: graft(item) for key, item in value.items()}
        return value

    for name, value in list(vars(workload).items()):
        grafted = graft(value)
        if grafted is not value:
            setattr(workload, name, grafted)


# ----------------------------------------------------------------------
# Run-cache integration
# ----------------------------------------------------------------------
def tty_dependent(workload) -> bool:
    """True when the workload schedules input events from the horizon.

    Such a workload's checkpoint bakes in a horizon-specific tty (or
    network-arrival) queue, so its cache key must include the horizon;
    the others' checkpoints are horizon-independent and reusable across
    sweep points.
    """
    from repro.workloads.base import Workload

    return (
        type(workload).tty_events is not Workload.tty_events
        or type(workload).net_events is not Workload.net_events
    )


def checkpoint_key(
    cache,
    workload: str,
    warmup_ms: float,
    seed: int,
    fast_forward: int,
    sim_kwargs: Optional[Dict[str, Any]] = None,
    horizon_ms: Optional[float] = None,
) -> str:
    """Content-addressed key for a mixed-run seam checkpoint.

    Everything that shapes the fast-forwarded state is material: the
    workload, seed, warmup (the seam deadline), the fast-forward budget,
    any simulation overrides, and the simulator sources themselves.
    The horizon is material only for tty-scheduling workloads
    (``horizon_ms=None`` otherwise). The fidelity name is deliberately
    absent: only mixed runs write checkpoints.
    """
    from repro.sim.runcache import _FORMAT, _package_version, source_digest

    overrides = {
        name: repr(value)
        for name, value in (sim_kwargs or {}).items()
        if name not in ("fidelity", "fast_forward")
    }
    material = {
        "format": _FORMAT,
        "checkpoint_format": _CHECKPOINT_FORMAT,
        "kind": "checkpoint",
        "workload": workload,
        "warmup_ms": warmup_ms,
        "seed": seed,
        "fast_forward": fast_forward,
        "horizon_ms": horizon_ms,
        "overrides": overrides,
        "version": _package_version(),
        "sources": source_digest(include_experiments=False),
    }
    return "ckpt-" + cache._hash_material(material)


def load_checkpoint(
    cache,
    workload: str,
    horizon_ms: float,
    warmup_ms: float,
    seed: int,
    fast_forward: int,
    sim_kwargs: Optional[Dict[str, Any]] = None,
):
    """Fetch and restore a cached seam checkpoint, or None on a miss."""
    from repro.workloads import make_workload

    horizon = horizon_ms if tty_dependent(make_workload(workload)) else None
    key = checkpoint_key(
        cache, workload, warmup_ms, seed, fast_forward, sim_kwargs,
        horizon_ms=horizon,
    )
    payload = cache.load(key)
    if payload is None:
        return None
    checkpoint = payload.get("checkpoint")
    if not isinstance(checkpoint, EngineCheckpoint):
        return None
    try:
        return checkpoint.restore()
    except Exception:
        # A stale or undecodable checkpoint must never fail the run;
        # the caller fast-forwards from scratch (and re-stores).
        return None
