"""Engine fidelity tiers: detailed, atomic, and the mixed schedule.

The detailed engine simulates every reference with full bus arbitration
and stall accounting — exact, but the limiting factor for long-horizon
sweeps. Following gem5's AtomicSimpleCPU/TimingSimpleCPU split, this
package adds a functional-first **atomic** tier (references update cache
tags, TLBs, coherence ownership and lock state, but cost nothing and
emit nothing) and a **mixed** schedule that fast-forwards the warmup
atomically, then hands off to the detailed tier for the measured window
through an explicit :class:`~repro.fidelity.checkpoint.EngineCheckpoint`.

The tier is selected with ``RunSettings.fidelity`` (or ``--fidelity`` /
``REPRO_FIDELITY``); ``fast_forward`` (``--fast-forward`` /
``REPRO_FAST_FORWARD``) optionally caps the atomic stretch at N
references instead of running it to the seam deadline.

:mod:`repro.fidelity.validate` is the bounded-error harness: it runs a
workload both ways and asserts every Table 2/11/12 statistic from the
mixed run's measured window lands within a configurable relative-error
bound of the detailed run — the discipline of "Validating Simplified
Processor Models in Architectural Studies".
"""

from __future__ import annotations

import copy
import os

FIDELITY_LEVELS = ("detailed", "atomic", "mixed")

_ENV_FIDELITY = "REPRO_FIDELITY"
_ENV_FAST_FORWARD = "REPRO_FAST_FORWARD"


class UnsupportedFidelityError(ValueError):
    """A feature was combined with a fidelity tier that cannot honor it.

    The invariant checkers (repro.sanitizers) assume detailed-mode event
    streams — bus transactions, stall charging, per-access probes — so
    ``check=`` with ``fidelity="atomic"`` raises this instead of
    silently reporting coverage the run never had. Mixed runs are fine:
    checkers run inside the detailed window only.
    """


def validate_fidelity(fidelity: str) -> str:
    if fidelity not in FIDELITY_LEVELS:
        raise ValueError(
            f"unknown fidelity {fidelity!r}; expected one of "
            f"{', '.join(FIDELITY_LEVELS)}"
        )
    return fidelity


def resolve_fidelity(value=None) -> str:
    """CLI/service default chain: explicit value, $REPRO_FIDELITY, detailed."""
    if value is None:
        value = os.environ.get(_ENV_FIDELITY) or "detailed"
    return validate_fidelity(value)


def resolve_fast_forward(value=None) -> int:
    """Explicit value, $REPRO_FAST_FORWARD, or 0 (run to the seam deadline)."""
    if value is None:
        raw = os.environ.get(_ENV_FAST_FORWARD, "")
        value = int(raw) if raw else 0
    value = int(value)
    if value < 0:
        raise ValueError("fast_forward must be >= 0")
    return value


def snapshot_window_counters(sim) -> dict:
    """Copy the cumulative counters at the measurement-window boundary.

    Taken by the run loop when the first CPU crosses the warmup mark, for
    every fidelity tier. Lock statistics (Tables 11/12) and ground-truth
    miss counts are cumulative over the whole run, so the validation
    harness subtracts this snapshot to compare *windowed* statistics
    between mixed and detailed runs.
    """
    return {
        "lock_families": copy.deepcopy(sim.kernel.locks.family_stats()),
        "syncbus_reads": sim.kernel.syncbus.stats.reads,
        "syncbus_writes": sim.kernel.syncbus.stats.writes,
        "truth_counts": sim.memsys.truth.counts.copy(),
        "dispossame_counts": sim.memsys.truth.dispossame_counts.copy(),
        "refs_retired": {p.cpu_id: p.refs_retired for p in sim.processors},
        "atomic_refs": sim.memsys.atomic_refs,
    }


__all__ = [
    "FIDELITY_LEVELS",
    "UnsupportedFidelityError",
    "resolve_fast_forward",
    "resolve_fidelity",
    "snapshot_window_counters",
    "validate_fidelity",
]
