"""Prometheus-style plain-text metrics, stdlib only.

The service's observability surface is one ``GET /metrics`` endpoint in
the standard text exposition format (``# HELP`` / ``# TYPE`` headers,
``name{label="value"} 1234`` samples). Three instrument kinds cover
everything the server measures:

- :class:`Counter` — monotonically increasing event counts, optionally
  split by label values (request paths, response codes, job outcomes);
- :class:`Gauge` — point-in-time values (queue depth, busy workers),
  either set explicitly or read from a callback at render time;
- :class:`LabeledGauge` — gauges split by label values (per-shard
  analysis throughput);
- :class:`Histogram` — cumulative-bucket latency distributions with
  ``_bucket`` / ``_sum`` / ``_count`` series.

Everything is process-local and single-threaded by design: the asyncio
event loop is the only writer, so no locks are needed.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

# Latency buckets (seconds): sub-millisecond warm hits through
# multi-minute cold simulations.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.025, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0, 600.0,
)


def _format_value(value: float) -> str:
    """Integers render bare; floats keep their repr (Prometheus accepts
    both, and bare integers keep counter output stable for tests)."""
    if isinstance(value, bool):
        return str(int(value))
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(value)


def _format_labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape(value)}"' for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


class Counter:
    """Monotonic counter, optionally labelled."""

    kind = "counter"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str] = ()):
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        key = self._key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._values.get(self._key(labels), 0)

    def total(self) -> float:
        return sum(self._values.values())

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def samples(self) -> List[str]:
        if not self._values:
            # An instrument that never fired still renders one zero
            # sample (label-less instruments only) so dashboards and the
            # CI grep can rely on the series existing.
            if not self.label_names:
                return [f"{self.name} 0"]
            return []
        lines = []
        for key in sorted(self._values):
            labels = dict(zip(self.label_names, key))
            lines.append(
                f"{self.name}{_format_labels(labels)} "
                f"{_format_value(self._values[key])}"
            )
        return lines


class Gauge:
    """Point-in-time value; ``callback`` wins over :meth:`set`."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str,
        callback: Optional[Callable[[], float]] = None,
    ):
        self.name = name
        self.help_text = help_text
        self.callback = callback
        self._value: float = 0

    def set(self, value: float) -> None:
        self._value = value

    def value(self) -> float:
        if self.callback is not None:
            return self.callback()
        return self._value

    def samples(self) -> List[str]:
        return [f"{self.name} {_format_value(self.value())}"]


class LabeledGauge:
    """Point-in-time values split by label values.

    The plain :class:`Gauge` covers the label-less case; this covers
    per-shard throughput and friends, where the label set is dynamic
    (``set`` creates a series per distinct label tuple).
    """

    kind = "gauge"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str]):
        self.name = name
        self.help_text = help_text
        self.label_names = tuple(label_names)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels) -> None:
        self._values[self._key(labels)] = value

    def value(self, **labels) -> float:
        return self._values.get(self._key(labels), 0)

    def clear(self) -> None:
        self._values.clear()

    def _key(self, labels: Dict[str, str]) -> Tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        return tuple(str(labels[name]) for name in self.label_names)

    def samples(self) -> List[str]:
        lines = []
        for key in sorted(self._values):
            labels = dict(zip(self.label_names, key))
            lines.append(
                f"{self.name}{_format_labels(labels)} "
                f"{_format_value(self._values[key])}"
            )
        return lines


class Histogram:
    """Cumulative-bucket histogram (Prometheus convention)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ):
        self.name = name
        self.help_text = help_text
        self.buckets = tuple(sorted(buckets))
        self._bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, upper in enumerate(self.buckets):
            if value <= upper:
                self._bucket_counts[i] += 1

    def samples(self) -> List[str]:
        lines = []
        # observe() increments every bucket whose bound covers the value,
        # so the stored counts are already cumulative.
        for upper, count in zip(self.buckets, self._bucket_counts):
            lines.append(
                f'{self.name}_bucket{{le="{_format_value(upper)}"}} {count}'
            )
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.count}')
        lines.append(f"{self.name}_sum {_format_value(round(self.sum, 9))}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


class MetricsRegistry:
    """Ordered collection of instruments with one text renderer."""

    def __init__(self):
        self._instruments: List[object] = []

    def counter(self, name, help_text, label_names=()) -> Counter:
        return self._add(Counter(name, help_text, label_names))

    def gauge(self, name, help_text, callback=None) -> Gauge:
        return self._add(Gauge(name, help_text, callback))

    def labeled_gauge(self, name, help_text, label_names) -> LabeledGauge:
        return self._add(LabeledGauge(name, help_text, label_names))

    def histogram(self, name, help_text, buckets=DEFAULT_BUCKETS) -> Histogram:
        return self._add(Histogram(name, help_text, buckets))

    def _add(self, instrument):
        if any(i.name == instrument.name for i in self._instruments):
            raise ValueError(f"duplicate metric {instrument.name!r}")
        self._instruments.append(instrument)
        return instrument

    def render(self) -> str:
        """The full exposition document, trailing newline included."""
        lines: List[str] = []
        for instrument in self._instruments:
            samples = instrument.samples()
            if not samples:
                continue
            lines.append(f"# HELP {instrument.name} {instrument.help_text}")
            lines.append(f"# TYPE {instrument.name} {instrument.kind}")
            lines.extend(samples)
        return "\n".join(lines) + "\n"
