"""Bounded job queue and worker pool for cache-cold exhibit builds.

A cold exhibit request costs seconds to minutes of simulation; the
event loop must never pay it inline. Instead the request becomes a
:class:`Job` on a bounded :class:`asyncio.Queue`, drained by asyncio
worker tasks that push the actual build into a
:class:`~concurrent.futures.ProcessPoolExecutor` (simulations are
CPU-bound; threads would serialize on the GIL). Each worker reuses the
stack that already exists for batch runs: the build lands in
:func:`repro.experiments.registry.run_experiment` against a per-process
:class:`ExperimentContext` backed by the shared persistent
:class:`~repro.sim.runcache.RunCache` — so a job's result is written to
the content-addressed store and every later request for the same
exhibit is cache-warm, and the cache's advisory claim lock keeps two
workers from simulating the same key twice.

Backpressure is the queue bound itself: :meth:`JobManager.submit`
raises :class:`QueueFull` instead of queueing unboundedly, and the HTTP
layer turns that into ``503`` + ``Retry-After``. Duplicate requests for
an exhibit that is already queued or running coalesce onto the existing
job.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import time
import uuid
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional

# Job lifecycle states. Terminal states keep their result/error forever
# (the manager holds a bounded history so /jobs/<id> keeps answering
# after completion).
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
TIMEOUT = "timeout"
CANCELLED = "cancelled"

TERMINAL_STATES = (DONE, FAILED, TIMEOUT, CANCELLED)

# Completed jobs kept for polling before the oldest are dropped.
MAX_FINISHED_JOBS = 256


class QueueFull(RuntimeError):
    """The bounded job queue rejected a submission (backpressure)."""


@dataclass
class Job:
    """One queued exhibit build and its lifecycle."""

    job_id: str
    exhibit_id: str
    state: str = QUEUED
    # Engine-tier, machine-geometry and workload-knob overrides for this
    # build (the service's configured settings otherwise). Jobs for the
    # same exhibit at different tiers, machines or knobs are distinct —
    # they produce different bytes — so coalescing and result lookup key
    # on (exhibit_id, fidelity, fast_forward, machine, workload_args).
    fidelity: str = "detailed"
    fast_forward: int = 0
    machine: str = "4d340"
    workload_args: tuple = ()
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[dict] = None     # Exhibit.to_dict() payload
    error: Optional[str] = None

    @property
    def variant(self) -> tuple:
        return (self.exhibit_id, self.fidelity, self.fast_forward,
                self.machine, self.workload_args)

    def to_dict(self) -> dict:
        payload = {
            "job": self.job_id,
            "exhibit": self.exhibit_id,
            "state": self.state,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
        if self.fidelity != "detailed":
            payload["fidelity"] = self.fidelity
        if self.fast_forward:
            payload["fast_forward"] = self.fast_forward
        if self.machine != "4d340":
            payload["machine"] = self.machine
        if self.workload_args:
            payload["workload_args"] = [list(kv) for kv in self.workload_args]
        if self.error is not None:
            payload["error"] = self.error
        if self.state == DONE:
            payload["location"] = f"/exhibits/{self.exhibit_id}"
        return payload


def apply_fidelity(settings, fidelity: str, fast_forward: int,
                   machine: str = "4d340", workload_args: tuple = ()):
    """``settings`` with the job's tier/machine/knob overrides applied."""
    if (fidelity == getattr(settings, "fidelity", "detailed")
            and fast_forward == getattr(settings, "fast_forward", 0)
            and machine == getattr(settings, "machine", "4d340")
            and workload_args == getattr(settings, "workload_args", ())):
        return settings
    return dataclasses.replace(
        settings, fidelity=fidelity, fast_forward=fast_forward,
        machine=machine, workload_args=workload_args,
    )


def build_exhibit_payload(exhibit_id: str, settings, cache_spec):
    """Worker-process entry point: build one exhibit.

    Returns ``(Exhibit.to_dict() payload, shard stats dict | None)``;
    the stats come from :data:`repro.sim.sharded.SHARD_STATS` when the
    settings run the analysis sharded, and surface in the parent's
    ``/metrics``.

    Runs in a :class:`ProcessPoolExecutor` child. The context is built
    fresh per call (child processes are reused across jobs, but a
    context per job keeps memory bounded and semantics identical to a
    CLI invocation); the persistent run cache turns repeat work into
    loads, including the three base-workload simulations.
    """
    from repro.experiments._base import ExperimentContext
    from repro.experiments.registry import run_experiment
    from repro.sim.runcache import RunCache
    from repro.sim.sharded import SHARD_STATS

    cache = None
    if cache_spec is not None:
        cache_dir, enabled = cache_spec
        cache = RunCache(cache_dir=cache_dir, enabled=enabled)
    ctx = ExperimentContext(settings, cache=cache)
    SHARD_STATS.reset()
    exhibit = run_experiment(exhibit_id, ctx)
    shard_stats = SHARD_STATS.stats() if SHARD_STATS.shards else None
    return exhibit.to_dict(), shard_stats


class JobManager:
    """Bounded queue + worker pool with per-job timeout and cancel.

    ``runner`` is the synchronous build function executed on the
    executor — injectable so tests can substitute stubs; the default is
    :func:`build_exhibit_payload`. ``executor`` is likewise injectable
    (tests use a thread pool; production uses processes).
    """

    def __init__(
        self,
        settings,
        cache_spec=None,
        max_workers: int = 2,
        queue_depth: int = 8,
        job_timeout_s: float = 600.0,
        runner=build_exhibit_payload,
        executor=None,
        metrics=None,
    ):
        self.settings = settings
        self.cache_spec = cache_spec
        self.max_workers = max(1, max_workers)
        self.queue_depth = max(1, queue_depth)
        self.job_timeout_s = job_timeout_s
        self.runner = runner
        self._executor = executor
        self._owns_executor = executor is None
        self.jobs: Dict[str, Job] = {}
        self._finished_order: List[str] = []
        self._queue: Optional[asyncio.Queue] = None
        self._workers: List[asyncio.Task] = []
        self._tasks_by_job: Dict[str, asyncio.Future] = {}
        self.busy_workers = 0
        self.closing = False
        self._ids = itertools.count(1)
        self.metrics = metrics

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._queue is not None:
            return
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
        self._queue = asyncio.Queue(maxsize=self.queue_depth)
        self._workers = [
            asyncio.create_task(self._worker_loop(i))
            for i in range(self.max_workers)
        ]

    async def close(self, drain: bool = True, deadline_s: float = 30.0) -> None:
        """Stop accepting work; optionally finish what is in flight.

        With ``drain=True`` the queue is emptied and running jobs get up
        to ``deadline_s`` to finish; without it, queued jobs are
        cancelled immediately. Worker tasks are then cancelled and the
        executor shut down either way.
        """
        self.closing = True
        if self._queue is not None:
            if drain:
                try:
                    await asyncio.wait_for(self._queue.join(), deadline_s)
                except asyncio.TimeoutError:
                    pass
            else:
                while not self._queue.empty():
                    job = self._queue.get_nowait()
                    self._queue.task_done()
                    if job.state == QUEUED:
                        self._finish(job, CANCELLED, error="service shutdown")
        for worker in self._workers:
            worker.cancel()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._executor is not None and self._owns_executor:
            self._executor.shutdown(wait=drain)
            self._executor = None

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        exhibit_id: str,
        fidelity: str = "detailed",
        fast_forward: int = 0,
        machine: str = "4d340",
        workload_args: tuple = (),
    ) -> "tuple[Job, bool]":
        """Queue a build; returns ``(job, created)``.

        ``created`` is False when the request coalesced onto a job for
        the same exhibit, engine tier, machine *and workload knobs* that
        is already queued or running. Raises :class:`QueueFull` when the
        bounded queue has no room and :class:`RuntimeError` after
        :meth:`close`.
        """
        if self._queue is None or self.closing:
            raise RuntimeError("job manager is not accepting work")
        variant = (exhibit_id, fidelity, fast_forward, machine,
                   workload_args)
        for job in self.jobs.values():
            if job.variant == variant and job.state in (QUEUED, RUNNING):
                if self.metrics is not None:
                    self.metrics.jobs_total.inc(outcome="coalesced")
                return job, False
        job = Job(job_id=f"job-{next(self._ids)}-{uuid.uuid4().hex[:8]}",
                  exhibit_id=exhibit_id, fidelity=fidelity,
                  fast_forward=fast_forward, machine=machine,
                  workload_args=workload_args)
        try:
            self._queue.put_nowait(job)
        except asyncio.QueueFull:
            if self.metrics is not None:
                self.metrics.jobs_total.inc(outcome="rejected")
            raise QueueFull(
                f"job queue full ({self.queue_depth} queued)"
            ) from None
        self.jobs[job.job_id] = job
        if self.metrics is not None:
            self.metrics.jobs_total.inc(outcome="queued")
        return job, True

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def result_for_exhibit(
        self,
        exhibit_id: str,
        fidelity: str = "detailed",
        fast_forward: int = 0,
        machine: str = "4d340",
        workload_args: tuple = (),
    ) -> Optional[dict]:
        """The most recent completed payload for the exhibit variant."""
        variant = (exhibit_id, fidelity, fast_forward, machine,
                   workload_args)
        for job_id in reversed(self._finished_order):
            job = self.jobs.get(job_id)
            if job is not None and job.variant == variant \
                    and job.state == DONE:
                return job.result
        return None

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a queued or running job; returns it, or None if unknown.

        A queued job is marked cancelled before a worker picks it up; a
        running job's awaiting task is cancelled (the executor call is
        abandoned — a process pool cannot interrupt a running child, so
        its result is discarded when it eventually lands).
        """
        job = self.jobs.get(job_id)
        if job is None:
            return None
        if job.state == QUEUED:
            self._finish(job, CANCELLED)
        elif job.state == RUNNING:
            future = self._tasks_by_job.get(job_id)
            if future is not None:
                future.cancel()
            self._finish(job, CANCELLED)
        return job

    @property
    def depth(self) -> int:
        return self._queue.qsize() if self._queue is not None else 0

    # ------------------------------------------------------------------
    # Workers
    # ------------------------------------------------------------------
    async def _worker_loop(self, index: int) -> None:
        assert self._queue is not None
        while True:
            job = await self._queue.get()
            try:
                if job.state != QUEUED:  # cancelled while queued
                    continue
                await self._run_job(job)
            finally:
                self._queue.task_done()

    async def _run_job(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        job.state = RUNNING
        job.started_at = time.time()
        self.busy_workers += 1
        future = loop.run_in_executor(
            self._executor, self.runner,
            job.exhibit_id,
            apply_fidelity(self.settings, job.fidelity, job.fast_forward,
                           job.machine, job.workload_args),
            self.cache_spec,
        )
        self._tasks_by_job[job.job_id] = future
        try:
            payload = await asyncio.wait_for(
                asyncio.shield(future), self.job_timeout_s
            )
        except asyncio.TimeoutError:
            # A running executor call cannot be interrupted; abandon it
            # (swallowing its eventual result or exception) and move on.
            future.cancel()
            future.add_done_callback(
                lambda f: f.cancelled() or f.exception()
            )
            self._finish(job, TIMEOUT,
                         error=f"job exceeded {self.job_timeout_s}s")
        except asyncio.CancelledError:
            if future.cancelled() and job.state == CANCELLED:
                # Job-level cancel(): already recorded; keep the worker.
                return
            # The worker task itself is being torn down (close()).
            if job.state == RUNNING:
                self._finish(job, CANCELLED, error="service shutdown")
            raise
        except Exception as exc:  # build raised in the worker process
            self._finish(job, FAILED, error=f"{type(exc).__name__}: {exc}")
        else:
            # The default runner returns (payload, shard_stats); plain
            # payloads from injected test runners pass through as-is.
            shard_stats = None
            if isinstance(payload, tuple) and len(payload) == 2:
                payload, shard_stats = payload
            if shard_stats and self.metrics is not None:
                self.metrics.record_shard_stats(shard_stats)
            if job.state == RUNNING:  # not cancelled mid-flight
                job.result = payload
                self._finish(job, DONE)
        finally:
            self.busy_workers -= 1
            self._tasks_by_job.pop(job.job_id, None)

    def _finish(self, job: Job, state: str, error: Optional[str] = None) -> None:
        job.state = state
        job.finished_at = time.time()
        if error is not None:
            job.error = error
        if self.metrics is not None:
            self.metrics.jobs_total.inc(outcome=state)
            if job.started_at is not None and state == DONE:
                self.metrics.job_seconds.observe(
                    job.finished_at - job.started_at
                )
        self._finished_order.append(job.job_id)
        while len(self._finished_order) > MAX_FINISHED_JOBS:
            dropped = self._finished_order.pop(0)
            self.jobs.pop(dropped, None)
