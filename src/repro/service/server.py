"""Minimal asyncio HTTP/1.1 transport for :class:`ServiceApp`.

Stdlib only: requests are parsed by hand (request line + headers; the
service is GET/DELETE-only so bodies are read and discarded), replies
are written with ``Content-Length`` and ``Connection: close``. One
connection, one request — exhibit payloads are the expensive part, so
keep-alive buys nothing here and dropping it keeps the parser trivial.

Graceful shutdown (SIGINT/SIGTERM or :meth:`ExhibitServer.stop`):

1. stop accepting new connections;
2. let in-flight request handlers finish;
3. drain the job queue and in-flight jobs (bounded by
   ``ServiceConfig.drain_deadline_s``);
4. shut the worker pool down.
"""

from __future__ import annotations

import asyncio
import signal
import sys
from typing import Optional

from repro.service.app import STATUS_TEXT, Reply, ServiceApp

MAX_REQUEST_BYTES = 65536
REQUEST_READ_TIMEOUT_S = 30.0


class ExhibitServer:
    """Owns the listening socket and the app's lifecycle."""

    def __init__(self, app: ServiceApp, host: str = "127.0.0.1",
                 port: int = 8080):
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        # Created in start(): pre-3.10 asyncio primitives bind the event
        # loop at construction time.
        self._stopping: Optional[asyncio.Event] = None
        self._connections = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._stopping = asyncio.Event()
        await self.app.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]  # resolve port 0

    async def serve_forever(self) -> None:
        """Run until :meth:`stop` (or a signal handler) fires."""
        assert self._server is not None and self._stopping is not None, \
            "call start() first"
        await self._stopping.wait()
        await self._shutdown()

    def stop(self) -> None:
        if self._stopping is not None:
            self._stopping.set()

    async def _shutdown(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._connections:
            await asyncio.gather(
                *list(self._connections), return_exceptions=True
            )
        await self.app.close(drain=True)

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, self.stop)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._connections.add(task)
        try:
            await self._serve_one(reader, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_one(self, reader, writer) -> None:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), REQUEST_READ_TIMEOUT_S
            )
        except (asyncio.TimeoutError, asyncio.IncompleteReadError):
            return
        except asyncio.LimitOverrunError:
            self._write(writer, Reply(400, "text/plain", b"request too large\n"))
            return
        if len(head) > MAX_REQUEST_BYTES:
            self._write(writer, Reply(400, "text/plain", b"request too large\n"))
            return
        request_line, _, header_block = head.partition(b"\r\n")
        try:
            method, target, _version = (
                request_line.decode("latin-1").split(" ", 2)
            )
        except ValueError:
            self._write(writer, Reply(400, "text/plain", b"bad request line\n"))
            return
        # Drain a body if one was declared (tolerate odd clients).
        content_length = 0
        for line in header_block.split(b"\r\n"):
            name, _, value = line.partition(b":")
            if name.strip().lower() == b"content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    pass
        if content_length:
            try:
                await asyncio.wait_for(
                    reader.readexactly(min(content_length, MAX_REQUEST_BYTES)),
                    REQUEST_READ_TIMEOUT_S,
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError):
                return
        path, _, query = target.partition("?")
        try:
            reply = self.app.handle(method.upper(), path, query)
        except Exception as exc:  # never let a handler bug kill the server
            reply = Reply(
                500, "application/json",
                (f'{{"error": "internal error: {type(exc).__name__}"}}\n'
                 ).encode(),
            )
        self._write(writer, reply)
        await writer.drain()

    @staticmethod
    def _write(writer, reply: Reply) -> None:
        reason = STATUS_TEXT.get(reply.status, "Unknown")
        lines = [
            f"HTTP/1.1 {reply.status} {reason}",
            f"Content-Type: {reply.content_type}",
            f"Content-Length: {len(reply.body)}",
            "Connection: close",
        ]
        for name, value in reply.headers.items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + reply.body)


async def serve(app: ServiceApp, host: str = "127.0.0.1", port: int = 8080,
                ready_message: bool = True) -> None:
    """Start serving and block until a termination signal."""
    server = ExhibitServer(app, host, port)
    await server.start()
    server.install_signal_handlers()
    if ready_message:
        print(
            f"repro.service listening on http://{server.host}:{server.port} "
            f"(workers={app.jobs.max_workers}, "
            f"queue={app.jobs.queue_depth}, "
            f"settings={app.config.settings})",
            file=sys.stderr,
            flush=True,
        )
    await server.serve_forever()
