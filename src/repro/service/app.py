"""Transport-free request handling for the exhibit service.

:class:`ServiceApp` maps ``(method, path, query)`` to a :class:`Reply`
without touching sockets, so the whole routing/backpressure/
serialization surface is testable with plain function calls; the
asyncio transport in :mod:`repro.service.server` is a thin shell
around :meth:`ServiceApp.handle`.

Request lifecycle for ``GET /exhibits/<id>``:

1. **in-memory** — the exhibit was built or loaded earlier in this
   process: serve immediately;
2. **finished job** — a worker completed it since startup: rebuild the
   :class:`Exhibit` from the job payload (the ``from_dict`` round-trip
   is exact), cache in memory, serve;
3. **disk cache** — a previous process (or a worker sharing the cache
   directory) built it: load, cache in memory, serve;
4. **cold** — enqueue a build job and answer ``202 Accepted`` with a
   ``/jobs/<id>`` polling location — or ``503`` + ``Retry-After`` when
   the bounded queue is full.

JSON bodies for exhibit responses are exactly
``Exhibit.to_json() + "\\n"``, which keeps the service byte-identical
to :func:`repro.api.exhibit` (CI asserts this).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs

from repro.experiments._base import Exhibit, ExperimentContext, RunSettings
from repro.experiments.registry import (
    EXPERIMENTS,
    list_exhibit_metadata,
    resolve_exhibit_id,
)
from repro.fidelity import FIDELITY_LEVELS
from repro.machines import MACHINES
from repro.service.jobs import JobManager, QueueFull, apply_fidelity
from repro.service.metrics import MetricsRegistry
from repro.workloads import parse_workload_args

STATUS_TEXT = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 500: "Internal Server Error",
    503: "Service Unavailable",
}

JSON = "application/json"
TEXT = "text/plain; charset=utf-8"
PROM = "text/plain; version=0.0.4; charset=utf-8"


@dataclass
class Reply:
    """One HTTP response, transport-agnostic."""

    status: int
    content_type: str
    body: bytes
    headers: Dict[str, str] = field(default_factory=dict)

    def json(self):
        """The decoded body (test convenience)."""
        return json.loads(self.body.decode())


@dataclass
class ServiceConfig:
    """Everything ``python -m repro.service`` can configure."""

    settings: RunSettings = field(default_factory=RunSettings)
    cache_dir: Optional[str] = None
    no_cache: bool = False
    max_workers: int = 2
    queue_depth: int = 8
    job_timeout_s: float = 600.0
    retry_after_s: int = 5
    drain_deadline_s: float = 30.0


class ServiceMetrics:
    """The service's instrument set on one :class:`MetricsRegistry`."""

    def __init__(self, registry: MetricsRegistry, jobs: "JobManager",
                 cache=None, settings=None):
        self.registry = registry
        self.requests_total = registry.counter(
            "repro_http_requests_total",
            "HTTP requests handled, by route and status code.",
            ("route", "status"),
        )
        self.request_seconds = registry.histogram(
            "repro_http_request_seconds",
            "Wall time spent handling requests (seconds).",
        )
        self.exhibit_warm_hits = registry.counter(
            "repro_exhibit_warm_hits_total",
            "Exhibit requests answered immediately (memory, job or disk).",
        )
        self.exhibit_cold_misses = registry.counter(
            "repro_exhibit_cold_misses_total",
            "Exhibit requests that needed a build job.",
        )
        self.jobs_total = registry.counter(
            "repro_jobs_total",
            "Job lifecycle events, by outcome.",
            ("outcome",),
        )
        self.job_seconds = registry.histogram(
            "repro_job_seconds",
            "Wall time of completed build jobs (seconds).",
        )
        registry.gauge(
            "repro_jobs_queue_depth",
            "Jobs waiting in the bounded queue.",
            callback=lambda: jobs.depth,
        )
        registry.gauge(
            "repro_jobs_queue_capacity",
            "Bound of the job queue.",
            callback=lambda: jobs.queue_depth,
        )
        registry.gauge(
            "repro_workers",
            "Configured worker count.",
            callback=lambda: jobs.max_workers,
        )
        registry.gauge(
            "repro_workers_busy",
            "Workers currently executing a job.",
            callback=lambda: jobs.busy_workers,
        )
        # Sharded-analysis throughput of the most recent build job that
        # ran with shards > 1 (see repro.sim.sharded.SHARD_STATS).
        self.shard_count = registry.gauge(
            "repro_analysis_shards",
            "Shard count of the most recent sharded analysis.",
        )
        self.shard_refs_per_sec = registry.labeled_gauge(
            "repro_analysis_shard_refs_per_sec",
            "Per-shard trace-entry throughput of the most recent "
            "sharded analysis.",
            ("shard",),
        )
        self.shard_total_refs_per_sec = registry.gauge(
            "repro_analysis_total_refs_per_sec",
            "End-to-end trace-entry throughput of the most recent "
            "sharded analysis (scout + chunks + splice).",
        )
        if settings is not None:
            # The configured default engine tier, Prometheus-style: one
            # gauge per tier label, 1 on the active one.
            tier = getattr(settings, "fidelity", "detailed")
            tier_gauge = registry.labeled_gauge(
                "repro_fidelity_tier",
                "Configured default engine fidelity tier "
                "(1 on the active tier's label).",
                ("tier",),
            )
            for level in FIDELITY_LEVELS:
                tier_gauge.set(1.0 if level == tier else 0.0, tier=level)
            registry.gauge(
                "repro_fidelity_fast_forward_refs",
                "Configured mixed-tier atomic fast-forward budget "
                "(references; 0 = hand off at the warmup seam).",
                callback=lambda: float(
                    getattr(settings, "fast_forward", 0)
                ),
            )
        if cache is not None:
            for name, help_text in (
                ("hits", "Run-cache entries served from disk."),
                ("misses", "Run-cache lookups that found nothing."),
                ("stores", "Run-cache entries written."),
                ("probes", "Run-cache lookups attempted."),
                ("dedup_hits",
                 "Cold runs avoided by waiting on another process's claim."),
            ):
                registry.gauge(
                    f"repro_runcache_{name}_total", help_text,
                    callback=lambda n=name: cache.stats()[n],
                )

    def record_shard_stats(self, stats: Dict) -> None:
        """Publish a worker's sharded-analysis throughput snapshot
        (the :meth:`repro.sim.sharded.ShardStats.stats` dict)."""
        shards = stats.get("shards") or []
        self.shard_count.set(len(shards))
        self.shard_total_refs_per_sec.set(stats.get("total_refs_per_sec", 0.0))
        self.shard_refs_per_sec.clear()
        for shard in shards:
            self.shard_refs_per_sec.set(
                shard.get("refs_per_sec", 0.0), shard=str(int(shard["shard"]))
            )


class ServiceApp:
    """Routes requests over one shared :class:`ExperimentContext`."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 jobs: Optional[JobManager] = None):
        from repro.sim.runcache import RunCache

        self.config = config if config is not None else ServiceConfig()
        self.cache = RunCache(
            cache_dir=self.config.cache_dir,
            enabled=not self.config.no_cache,
        )
        self.ctx = ExperimentContext(self.config.settings, cache=self.cache)
        cache_spec = None
        if self.cache.enabled:
            cache_spec = (str(self.cache.cache_dir), True)
        self.jobs = jobs if jobs is not None else JobManager(
            self.config.settings,
            cache_spec=cache_spec,
            max_workers=self.config.max_workers,
            queue_depth=self.config.queue_depth,
            job_timeout_s=self.config.job_timeout_s,
        )
        self.metrics = ServiceMetrics(
            MetricsRegistry(), self.jobs,
            cache=self.cache if self.cache.enabled else None,
            settings=self.config.settings,
        )
        self.jobs.metrics = self.metrics
        self.started_at = time.time()

    # ------------------------------------------------------------------
    # Lifecycle (delegated by the server)
    # ------------------------------------------------------------------
    async def start(self) -> None:
        await self.jobs.start()

    async def close(self, drain: bool = True) -> None:
        await self.jobs.close(
            drain=drain, deadline_s=self.config.drain_deadline_s
        )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str, query: str = "") -> Reply:
        """One request in, one :class:`Reply` out."""
        started = time.perf_counter()
        route, reply = self._route(method, path, query)
        self.metrics.requests_total.inc(route=route, status=str(reply.status))
        self.metrics.request_seconds.observe(time.perf_counter() - started)
        return reply

    def _route(self, method: str, path: str, query: str) -> Tuple[str, Reply]:
        parts = [p for p in path.split("/") if p]
        if path == "/healthz":
            return "/healthz", self._only(method, "GET", self._healthz)
        if path == "/metrics":
            return "/metrics", self._only(method, "GET", self._metrics)
        if path == "/exhibits":
            return "/exhibits", self._only(method, "GET", self._list_exhibits)
        if len(parts) == 2 and parts[0] == "exhibits":
            return "/exhibits/{id}", self._only(
                method, "GET", lambda: self._exhibit(parts[1], query)
            )
        if len(parts) == 2 and parts[0] == "jobs":
            if method == "DELETE":
                return "/jobs/{id}", self._cancel_job(parts[1])
            return "/jobs/{id}", self._only(
                method, "GET", lambda: self._job(parts[1])
            )
        return path, self._error(404, f"no route for {path}")

    @staticmethod
    def _only(method: str, expected: str, handler) -> Reply:
        if method != expected:
            return ServiceApp._error(405, f"use {expected}")
        return handler()

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _healthz(self) -> Reply:
        payload = {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
            "queue_depth": self.jobs.depth,
            "queue_capacity": self.jobs.queue_depth,
            "workers": self.jobs.max_workers,
            "busy_workers": self.jobs.busy_workers,
        }
        return self._json(200, payload)

    def _metrics(self) -> Reply:
        return Reply(200, PROM, self.metrics.registry.render().encode())

    def _list_exhibits(self) -> Reply:
        return self._json(200, {"exhibits": list_exhibit_metadata()})

    def _exhibit(self, exhibit_id: str, query: str) -> Reply:
        # Aliases (e.g. /exhibits/scaling) canonicalize before any cache
        # or job lookup, so both spellings serve identical bytes.
        exhibit_id = resolve_exhibit_id(exhibit_id)
        if exhibit_id not in EXPERIMENTS:
            return self._error(
                404,
                f"unknown exhibit {exhibit_id!r}",
                choices=sorted(EXPERIMENTS),
            )
        params = parse_qs(query)
        fmt = params.get("format", ["json"])[0]
        if fmt not in ("json", "text"):
            return self._error(400, "format must be 'json' or 'text'")
        # Engine-tier job parameters: ?fidelity=mixed&fast_forward=N
        # builds this exhibit's variant on the requested tier (distinct
        # cache entries — the tier changes the exhibit's bytes).
        fidelity = params.get("fidelity", [None])[0]
        if fidelity is None:
            fidelity = getattr(self.config.settings, "fidelity", "detailed")
        elif fidelity not in FIDELITY_LEVELS:
            return self._error(
                400,
                f"unknown fidelity {fidelity!r}",
                choices=sorted(FIDELITY_LEVELS),
            )
        if fidelity == "atomic":
            # Atomic runs carry no monitor trace; an exhibit built from
            # one would render all-zero measured rows.
            return self._error(
                400,
                "exhibits need a traced run; use fidelity=mixed",
                choices=["detailed", "mixed"],
            )
        try:
            fast_forward = int(params.get("fast_forward", ["0"])[0] or 0)
        except ValueError:
            return self._error(400, "fast_forward must be an integer")
        if not fast_forward:
            fast_forward = getattr(self.config.settings, "fast_forward", 0)
        # Machine geometry: ?machine=cpus16 builds the exhibit's variant
        # on a scaled preset (distinct cache entries, like fidelity).
        machine = params.get("machine", [None])[0]
        if machine is None:
            machine = getattr(self.config.settings, "machine", "4d340")
        elif machine not in MACHINES:
            return self._error(
                400,
                f"unknown machine {machine!r}",
                choices=list(MACHINES),
            )
        # Workload knobs: repeated ?workload_arg=k=v parameters build a
        # tuned variant (distinct cache entries — tuned runs are
        # different runs).
        try:
            workload_args = parse_workload_args(
                params.get("workload_arg", ())
            )
        except ValueError as exc:
            return self._error(400, str(exc))
        if not workload_args:
            workload_args = getattr(
                self.config.settings, "workload_args", ()
            )
        exhibit = self._warm_exhibit(exhibit_id, fidelity, fast_forward,
                                     machine, workload_args)
        if exhibit is not None:
            self.metrics.exhibit_warm_hits.inc()
            if fmt == "text":
                return Reply(200, TEXT, (exhibit.to_text() + "\n").encode())
            return Reply(200, JSON, (exhibit.to_json() + "\n").encode())
        self.metrics.exhibit_cold_misses.inc()
        try:
            job, _created = self.jobs.submit(
                exhibit_id, fidelity=fidelity, fast_forward=fast_forward,
                machine=machine, workload_args=workload_args,
            )
        except QueueFull:
            reply = self._error(
                503, "job queue full",
                retry_after_s=self.config.retry_after_s,
            )
            reply.headers["Retry-After"] = str(self.config.retry_after_s)
            return reply
        except RuntimeError:
            return self._error(503, "service is shutting down")
        payload = {
            "state": job.state,
            "job": job.job_id,
            "exhibit": exhibit_id,
            "poll": f"/jobs/{job.job_id}",
        }
        reply = self._json(202, payload)
        reply.headers["Location"] = f"/jobs/{job.job_id}"
        return reply

    def _warm_exhibit(
        self, exhibit_id: str, fidelity: str, fast_forward: int,
        machine: str = "4d340", workload_args: tuple = (),
    ) -> Optional[Exhibit]:
        """The exhibit if it can be served without simulating, else None.

        Non-default engine tiers, machines and workload knobs key a
        separate in-memory slot and a separate disk entry
        (``RunSettings.cache_repr`` folds them in), so a mixed-tier,
        cpus16 or skew-tuned build never shadows the default exhibit.
        """
        settings = apply_fidelity(
            self.config.settings, fidelity, fast_forward, machine,
            workload_args,
        )
        if settings is self.config.settings:
            memory_key = exhibit_id
        else:
            memory_key = (
                f"{exhibit_id}@{fidelity}+{fast_forward}@{machine}"
                f"@{workload_args!r}"
            )
        cached = self.ctx.exhibit_cache.get(memory_key)
        if cached is not None:
            return cached
        payload = self.jobs.result_for_exhibit(
            exhibit_id, fidelity=fidelity, fast_forward=fast_forward,
            machine=machine, workload_args=workload_args,
        )
        if payload is not None:
            exhibit = Exhibit.from_dict(payload)
            self.ctx.exhibit_cache[memory_key] = exhibit
            return exhibit
        exhibit = self._load_disk_exhibit(exhibit_id, settings)
        if exhibit is not None:
            self.ctx.exhibit_cache[memory_key] = exhibit
            return exhibit
        return None

    def _load_disk_exhibit(self, exhibit_id: str, settings) -> Optional[Exhibit]:
        if settings is self.config.settings:
            return self.ctx.load_cached_exhibit(exhibit_id)
        if not self.cache.enabled:
            return None
        payload = self.cache.load(self.cache.exhibit_key(exhibit_id, settings))
        if payload is None:
            return None
        exhibit = payload.get("exhibit")
        return exhibit if isinstance(exhibit, Exhibit) else None

    def _job(self, job_id: str) -> Reply:
        job = self.jobs.get(job_id)
        if job is None:
            return self._error(404, f"unknown job {job_id!r}")
        payload = job.to_dict()
        if job.state == "done" and job.result is not None:
            payload["result"] = job.result
        return self._json(200, payload)

    def _cancel_job(self, job_id: str) -> Reply:
        job = self.jobs.cancel(job_id)
        if job is None:
            return self._error(404, f"unknown job {job_id!r}")
        return self._json(200, job.to_dict())

    # ------------------------------------------------------------------
    # Reply helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _json(status: int, payload: Dict) -> Reply:
        return Reply(status, JSON, (json.dumps(payload) + "\n").encode())

    @staticmethod
    def _error(status: int, message: str, **extra) -> Reply:
        payload = {"error": message, **extra}
        return Reply(status, JSON, (json.dumps(payload) + "\n").encode())
