"""``python -m repro.service`` — run the exhibit server.

Defaults come from :class:`RunSettings` so the service serves exactly
the exhibits ``repro-experiments run`` produces; the ``REPRO_BENCH_*``
environment knobs shrink the simulation window the same way they do for
the benchmark harness (CI uses them to keep the service smoke job
fast). The persistent run cache is shared with the CLI and the test
fixtures, so anything they built is already cache-warm here.
"""

from __future__ import annotations

import argparse
import asyncio
import os
import sys
from typing import List, Optional

from repro.experiments._base import RunSettings
from repro.experiments.parallel import default_jobs
from repro.fidelity import resolve_fast_forward, resolve_fidelity
from repro.machines import MACHINES, resolve_machine_name
from repro.service.app import ServiceApp, ServiceConfig
from repro.service.server import serve
from repro.sim.sharded import resolve_shards
from repro.workloads import parse_workload_args

_DEFAULTS = RunSettings()


def _env_float(name: str, fallback: float) -> float:
    value = os.environ.get(name)
    return float(value) if value else fallback


def build_config(args) -> ServiceConfig:
    settings = RunSettings(
        horizon_ms=args.horizon_ms,
        warmup_ms=args.warmup_ms,
        seed=args.seed,
        shards=resolve_shards(args.shards),
        fidelity=resolve_fidelity(args.fidelity),
        fast_forward=resolve_fast_forward(args.fast_forward),
        machine=resolve_machine_name(args.machine),
        workload_args=parse_workload_args(args.workload_args),
    )
    return ServiceConfig(
        settings=settings,
        cache_dir=args.cache_dir,
        no_cache=args.no_cache,
        max_workers=args.jobs,
        queue_depth=args.queue_depth,
        job_timeout_s=args.timeout,
        retry_after_s=args.retry_after,
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve the paper's exhibits as JSON over HTTP",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080,
                        help="listen port (0 picks a free one)")
    parser.add_argument(
        "--jobs", type=int, default=default_jobs(), metavar="N",
        help="worker processes for cold exhibit builds "
             "(default: min(3, cpu_count))",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=8, metavar="N",
        help="bounded job queue size; beyond it requests get 503 + "
             "Retry-After (default: 8)",
    )
    parser.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="per-job build timeout (default: 600)",
    )
    parser.add_argument(
        "--retry-after", type=int, default=5, metavar="SECONDS",
        help="Retry-After hint sent with 503 responses (default: 5)",
    )
    parser.add_argument(
        "--horizon-ms", type=float,
        default=_env_float("REPRO_BENCH_HORIZON_MS", _DEFAULTS.horizon_ms),
        help="traced window per simulation (default: RunSettings / "
             "$REPRO_BENCH_HORIZON_MS)",
    )
    parser.add_argument(
        "--warmup-ms", type=float,
        default=_env_float("REPRO_BENCH_WARMUP_MS", _DEFAULTS.warmup_ms),
        help="warmup before the traced window (default: RunSettings / "
             "$REPRO_BENCH_WARMUP_MS)",
    )
    parser.add_argument("--seed", type=int, default=_DEFAULTS.seed)
    parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard the analysis pass in build workers; output is "
             "byte-identical to serial (default: $REPRO_SHARDS or 1)",
    )
    parser.add_argument(
        "--fidelity", choices=("detailed", "mixed"), default=None,
        help="default engine tier for builds; per-request override via "
             "?fidelity= (default: $REPRO_FIDELITY or detailed; atomic "
             "is Simulation-only — exhibits need a traced run)",
    )
    parser.add_argument(
        "--fast-forward", type=int, default=None, metavar="REFS",
        help="mixed tier: atomic references before the detailed hand-off "
             "(default: $REPRO_FAST_FORWARD or 0)",
    )
    parser.add_argument(
        "--machine", choices=tuple(MACHINES), default=None, metavar="NAME",
        help="default machine preset for builds; per-request override "
             f"via ?machine= ({', '.join(MACHINES)}; "
             "default: $REPRO_MACHINE or 4d340)",
    )
    parser.add_argument(
        "--workload-arg", action="append", default=None, metavar="K=V",
        dest="workload_args",
        help="default workload tuning knob for builds (repeatable); "
             "per-request override via ?workload_arg=k=v",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent run-cache location (default: $REPRO_CACHE_DIR "
             "or ~/.cache/repro)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the persistent run cache "
             "(also: REPRO_NO_CACHE=1)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    app = ServiceApp(build_config(args))
    try:
        asyncio.run(serve(app, host=args.host, port=args.port))
    except KeyboardInterrupt:  # pragma: no cover - signal path
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
