"""repro.service: async exhibit server over the experiment stack.

A stdlib-only :mod:`asyncio` HTTP front end that serves the paper's
exhibits as JSON. Cache-warm exhibits are answered immediately from the
persistent run cache; cache-cold requests become jobs on a bounded
queue drained by a process worker pool, with ``202 Accepted`` + polling
and backpressure (``503`` + ``Retry-After``) when the queue is full.

Entry points:

- ``python -m repro.service --port 8080`` — run the server;
- :class:`ServiceApp` — the routing/handler layer (transport-free,
  directly testable);
- :class:`JobManager` — bounded queue + worker pool;
- :class:`MetricsRegistry` — Prometheus-style plain-text counters.
"""

from repro.service.app import ServiceApp, ServiceConfig
from repro.service.jobs import Job, JobManager, QueueFull
from repro.service.metrics import MetricsRegistry
from repro.service.server import serve

__all__ = [
    "Job",
    "JobManager",
    "MetricsRegistry",
    "QueueFull",
    "ServiceApp",
    "ServiceConfig",
    "serve",
]
