"""Named machine-geometry presets: the 4D/340 and its scaled-up kin.

The paper could only measure a 4-CPU SGI 4D/340; its headline claims
(Runqlk contention grows with CPU count, buffer-cache structures
ping-pong) were extrapolations.  This registry makes "the machine" a
first-class, named knob so the same workloads can be swept across
8/16/32/64-CPU geometries — the scale of the later SPARC T3-class
characterizations — and the extrapolations tested.

Scaling discipline (each doubling of the CPU count):

- **second-level cache** doubles (bigger dies ship bigger boards of
  SRAM; keeping L2-per-CPU constant isolates the *sharing* effects the
  sweep is after from capacity effects);
- **memory** doubles (constant memory per CPU);
- **bus stall** grows by 5 cycles (more agents on a snoopy bus mean
  longer arbitration and a slower, more loaded backplane);
- **recommended run-queue count** doubles from 2 at 8 CPUs — the
  Section 6 distributed-run-queue proposal sized at one queue per
  4-CPU cluster.

Per-CPU first-level caches, the TLB, page size and cycle time stay
fixed: the sweep models "more of the same CPU", not a different CPU.

:data:`MACHINES` maps preset names to :class:`MachinePreset`;
``4d340`` is the default and is byte-for-byte the legacy
:data:`~repro.common.params.DEFAULT_PARAMS`, which is what lets every
pre-existing run-cache key and exhibit stay valid (the default
normalizes out of cache keys entirely — see
:func:`repro.sim.runcache.load_or_run`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.common.params import CacheGeometry, DEFAULT_PARAMS, MachineParams

#: Spec values accepted anywhere a machine can be chosen: a preset
#: name, a full MachineParams, or None for the default.
MachineSpec = Union[str, MachineParams, None]

DEFAULT_MACHINE = "4d340"

_ENV_MACHINE = "REPRO_MACHINE"


@dataclass(frozen=True)
class MachinePreset:
    """One named machine geometry.

    ``run_queues`` is the geometry's distributed-run-queue count
    (Section 6: one queue per 4-CPU cluster), folded into a
    :class:`~repro.sim._session.Simulation`'s default tuning when the
    preset is selected via ``machine=``; the measured 4D/340 keeps the
    single global queue of the traced IRIX. Explicit ``tuning=`` wins.
    """

    name: str
    description: str
    params: MachineParams
    run_queues: int = 1


def _scaled(name: str, description: str, num_cpus: int,
            l2_kb: int, memory_mb: int, bus_stall: int,
            run_queues: int) -> MachinePreset:
    return MachinePreset(
        name=name,
        description=description,
        params=MachineParams(
            num_cpus=num_cpus,
            dcache_l2=CacheGeometry(l2_kb * 1024),
            memory_bytes=memory_mb * 1024 * 1024,
            bus_stall_cycles=bus_stall,
        ),
        run_queues=run_queues,
    )


#: The registry, in ladder order (CPU count ascending).
MACHINES: Dict[str, MachinePreset] = {
    preset.name: preset
    for preset in (
        MachinePreset(
            name=DEFAULT_MACHINE,
            description="SGI POWER Station 4D/340 (the measured machine)",
            params=DEFAULT_PARAMS,
            run_queues=1,
        ),
        _scaled("cpus8", "8-CPU scale-up of the 4D/340",
                num_cpus=8, l2_kb=512, memory_mb=64, bus_stall=40,
                run_queues=2),
        _scaled("cpus16", "16-CPU scale-up of the 4D/340",
                num_cpus=16, l2_kb=1024, memory_mb=128, bus_stall=45,
                run_queues=4),
        _scaled("cpus32", "32-CPU scale-up of the 4D/340",
                num_cpus=32, l2_kb=2048, memory_mb=256, bus_stall=50,
                run_queues=8),
        _scaled("cpus64", "64-CPU scale-up of the 4D/340",
                num_cpus=64, l2_kb=4096, memory_mb=512, bus_stall=55,
                run_queues=16),
    )
}

#: Preset names in CPU-count order — the scaling experiment's sweep.
LADDER: List[str] = list(MACHINES)


def resolve_machine(spec: MachineSpec) -> MachineParams:
    """The :class:`MachineParams` a machine spec names.

    Accepts a preset name, a ready-made ``MachineParams`` (passed
    through), or ``None`` (the 4D/340 default). Unknown names raise
    :class:`ValueError` listing the registry; other types raise
    :class:`TypeError`.
    """
    if spec is None:
        return DEFAULT_PARAMS
    if isinstance(spec, MachineParams):
        return spec
    if isinstance(spec, str):
        try:
            return MACHINES[spec].params
        except KeyError:
            raise ValueError(
                f"unknown machine {spec!r}; choose from {', '.join(MACHINES)}"
            ) from None
    raise TypeError(
        f"machine must be a preset name or MachineParams, not "
        f"{type(spec).__name__}"
    )


def canonical_machine(spec: MachineSpec) -> Union[str, MachineParams]:
    """The cache-key form of a machine spec.

    A spec naming (or equal to) a registered preset canonicalizes to the
    preset *name*, so ``machine="cpus8"`` and
    ``machine=MACHINES["cpus8"].params`` key identically; a custom
    ``MachineParams`` stays itself (its dataclass repr is the key).
    """
    params = resolve_machine(spec)
    for name, preset in MACHINES.items():
        if preset.params == params:
            return name
    return params


def machine_for_cpus(num_cpus: int) -> str:
    """The preset name with exactly ``num_cpus`` CPUs."""
    for name, preset in MACHINES.items():
        if preset.params.num_cpus == num_cpus:
            return name
    counts = ", ".join(str(p.params.num_cpus) for p in MACHINES.values())
    raise ValueError(
        f"no machine preset with {num_cpus} CPUs; available counts: {counts}"
    )


def resolve_machine_name(value: Optional[str] = None) -> str:
    """CLI/service default chain: explicit value, ``$REPRO_MACHINE``,
    then the 4D/340 — validated against the registry."""
    if value is None:
        value = os.environ.get(_ENV_MACHINE) or DEFAULT_MACHINE
    if value not in MACHINES:
        raise ValueError(
            f"unknown machine {value!r}; choose from {', '.join(MACHINES)}"
        )
    return value


__all__ = [
    "DEFAULT_MACHINE",
    "LADDER",
    "MACHINES",
    "MachinePreset",
    "MachineSpec",
    "canonical_machine",
    "machine_for_cpus",
    "resolve_machine",
    "resolve_machine_name",
]
