"""``python -m repro`` — the experiments CLI.

The same entry point as the ``repro`` / ``repro-experiments`` console
scripts, for checkouts that run via ``PYTHONPATH=src`` without
installing the package::

    python -m repro run scaling --machine cpus16 --shards 2 --check
"""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
