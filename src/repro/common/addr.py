"""Address arithmetic helpers.

The machine uses 16-byte cache blocks and 4 Kbyte pages everywhere, but all
helpers take the granularity as an argument so the cache-sweep experiments
(Figure 6) can reuse them for other geometries.
"""

from __future__ import annotations

from typing import Iterator

BLOCK_BYTES = 16
BLOCK_SHIFT = 4
PAGE_BYTES = 4096
PAGE_SHIFT = 12


def block_of(addr: int, block_bytes: int = BLOCK_BYTES) -> int:
    """Block number containing ``addr``."""
    return addr // block_bytes


def block_base(block: int, block_bytes: int = BLOCK_BYTES) -> int:
    """First byte address of ``block``."""
    return block * block_bytes


def page_of(addr: int, page_bytes: int = PAGE_BYTES) -> int:
    """Page number containing ``addr``."""
    return addr // page_bytes


def page_base(page: int, page_bytes: int = PAGE_BYTES) -> int:
    """First byte address of ``page``."""
    return page * page_bytes


def blocks_in_range(
    base: int, size: int, block_bytes: int = BLOCK_BYTES
) -> Iterator[int]:
    """Iterate over block numbers overlapping ``[base, base + size)``."""
    if size <= 0:
        return
    first = base // block_bytes
    last = (base + size - 1) // block_bytes
    for block in range(first, last + 1):
        yield block


def align_down(addr: int, granularity: int) -> int:
    return addr - (addr % granularity)


def align_up(addr: int, granularity: int) -> int:
    return -(-addr // granularity) * granularity
