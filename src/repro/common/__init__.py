"""Shared machine parameters, typed enums and address arithmetic."""

from repro.common.params import MachineParams
from repro.common.types import (
    AccessKind,
    HighLevelOp,
    MissClass,
    Mode,
    RefDomain,
)
from repro.common.addr import (
    block_of,
    block_base,
    blocks_in_range,
    page_of,
    page_base,
)

__all__ = [
    "MachineParams",
    "AccessKind",
    "HighLevelOp",
    "MissClass",
    "Mode",
    "RefDomain",
    "block_of",
    "block_base",
    "blocks_in_range",
    "page_of",
    "page_base",
]
