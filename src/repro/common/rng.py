"""Deterministic random-number utilities.

Every stochastic component of the simulator draws from a
:class:`random.Random` seeded from a single run seed plus a stable
component label, so that (a) runs are reproducible bit-for-bit and
(b) changing one component's draw count does not perturb the others.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def substream(seed: int, label: str) -> random.Random:
    """A deterministic per-component random stream.

    The stream seed is derived by hashing ``(seed, label)`` so streams for
    distinct labels are statistically independent.
    """
    digest = hashlib.sha256(f"{seed}:{label}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item with the given (unnormalised) weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    pick = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if pick < acc:
            return item
    return items[-1]


def exponential_interval(rng: random.Random, mean: float) -> float:
    """Exponentially distributed interval with the given mean (> 0)."""
    if mean <= 0:
        raise ValueError("mean must be positive")
    return rng.expovariate(1.0 / mean)
