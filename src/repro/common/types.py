"""Typed vocabulary used across the simulator and the analysis pipeline.

The enums mirror the paper's own taxonomies:

- :class:`MissClass` is Table 2 (architectural classification of OS misses),
- :class:`HighLevelOp` is Table 8 (functional classification),
- :class:`AccessKind` distinguishes the bus transaction kinds the hardware
  monitor can observe.
"""

from __future__ import annotations

import enum


class Mode(enum.Enum):
    """What a CPU is executing."""

    USER = "user"
    KERNEL = "kernel"
    IDLE = "idle"

    # Members are singletons, so the C-level identity hash is exact and
    # much cheaper than Enum's Python-level name hash — this enum keys
    # the per-mode cycle buckets the processors update on every
    # reference.
    __hash__ = object.__hash__


class RefDomain(enum.Enum):
    """Who issued a memory reference — the OS or the application.

    Idle-loop execution counts as OS code (the paper reports "OS in the
    Idle Loop" separately in Figure 1) and is tracked through
    :class:`Mode`, not here.
    """

    OS = "os"
    APP = "app"

    __hash__ = object.__hash__  # singleton identity hash (see Mode)


class AccessKind(enum.Enum):
    """Kind of memory access issued by a CPU."""

    IFETCH = "ifetch"
    DREAD = "dread"
    DWRITE = "dwrite"
    UNCACHED_READ = "uncached_read"   # escape references and PIO
    SYNC = "sync"                     # diverted to the synchronization bus


class MissClass(enum.Enum):
    """Architectural classification of cache misses (paper Table 2)."""

    COLD = "cold"          # processor's first access to the block
    DISPOS = "dispos"      # displaced by an intervening OS reference
    DISPAP = "dispap"      # displaced by an intervening application reference
    SHARING = "sharing"    # D-misses from OS data shared/migrating among CPUs
    INVAL = "inval"        # I-misses from I-cache invalidation on page reuse
    UNCACHED = "uncached"  # accesses that bypass the caches

    __hash__ = object.__hash__  # singleton identity hash (see Mode)

    @property
    def is_displacement(self) -> bool:
        return self in (MissClass.DISPOS, MissClass.DISPAP)


class HighLevelOp(enum.Enum):
    """High-level OS operations (paper Table 8)."""

    EXPENSIVE_TLB_FAULT = "expensive_tlb_fault"
    CHEAP_TLB_FAULT = "cheap_tlb_fault"
    IO_SYSCALL = "io_syscall"
    SGINAP_SYSCALL = "sginap_syscall"
    OTHER_SYSCALL = "other_syscall"
    INTERRUPT = "interrupt"

    __hash__ = object.__hash__  # singleton identity hash (see Mode)

    @property
    def is_syscall(self) -> bool:
        return self in (
            HighLevelOp.IO_SYSCALL,
            HighLevelOp.SGINAP_SYSCALL,
            HighLevelOp.OTHER_SYSCALL,
        )


class InterruptKind(enum.Enum):
    """Interrupt sources modelled (paper Table 8: disk, terminal,
    inter-CPU and clock interrupts)."""

    CLOCK = "clock"
    DISK = "disk"
    TERMINAL = "terminal"
    INTER_CPU = "inter_cpu"
    NETWORK = "network"
