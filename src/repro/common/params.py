"""Machine parameters of the modelled SGI POWER Station 4D/340.

All geometry and latency constants come straight from Section 2.1 of the
paper:

- four 33 MHz MIPS R3000 CPUs (30 ns processor cycles),
- per CPU a 64 Kbyte instruction cache and a two-level data cache
  (64 Kbyte first level, 256 Kbyte second level),
- all caches physically addressed, direct mapped, 16 byte blocks,
- 32 Mbytes of main memory,
- a bus access stalls the CPU for 35 cycles (the paper's stall estimate),
- a first-level data miss that hits in the second level stalls ~15 cycles,
- the hardware monitor timestamps bus transactions at 60 ns granularity,
- the monitor's trace buffer holds over 2 million transactions,
- each CPU has a 64-entry fully-associative TLB and 4 Kbyte pages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of one cache."""

    size_bytes: int
    block_bytes: int = 16
    associativity: int = 1

    def __post_init__(self) -> None:
        if self.associativity < 1:
            raise ValueError("associativity must be >= 1")
        if self.size_bytes % (self.block_bytes * self.associativity):
            raise ValueError(
                "cache size must be a multiple of block size x associativity"
            )

    @property
    def num_blocks(self) -> int:
        return self.size_bytes // self.block_bytes

    @property
    def num_sets(self) -> int:
        return self.num_blocks // self.associativity


@dataclass(frozen=True)
class MachineParams:
    """Complete machine description; defaults model the 4D/340."""

    num_cpus: int = 4
    cycle_ns: float = 30.0          # 33 MHz R3000
    icache: CacheGeometry = field(default_factory=lambda: CacheGeometry(64 * 1024))
    dcache_l1: CacheGeometry = field(default_factory=lambda: CacheGeometry(64 * 1024))
    dcache_l2: CacheGeometry = field(default_factory=lambda: CacheGeometry(256 * 1024))
    memory_bytes: int = 32 * 1024 * 1024
    page_bytes: int = 4096
    tlb_entries: int = 64
    bus_stall_cycles: int = 35      # paper Section 3.1 stall estimate
    l2_hit_stall_cycles: int = 15   # L1 miss that hits in L2 (Section 3.1)
    monitor_tick_ns: float = 60.0   # monitor timestamp granularity
    trace_buffer_entries: int = 2 * 1024 * 1024
    clock_interrupt_ms: float = 10.0  # the OS clock period (Section 4.1)
    spin_attempts_before_sginap: int = 20  # sync library behaviour (Table 8)
    # Interrupt routing: IRIX pins disk/tty delivery to CPU 0 and the
    # network daemons to CPU 1 (Section 2.1). Explicit fields so scaled
    # geometries route deliberately instead of through a modulo of a
    # 4-CPU constant; ``network_cpu=None`` resolves to CPU 1 where the
    # machine has one, else CPU 0 (uniprocessor geometries).
    device_cpu: int = 0
    network_cpu: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_cpus < 1:
            raise ValueError("need at least one CPU")
        if self.memory_bytes % self.page_bytes:
            raise ValueError("memory must be a whole number of pages")
        if self.icache.block_bytes != self.dcache_l1.block_bytes:
            raise ValueError("this model assumes a single block size")
        if self.network_cpu is None:
            object.__setattr__(
                self, "network_cpu", 1 if self.num_cpus >= 2 else 0
            )
        if not 0 <= self.device_cpu < self.num_cpus:
            raise ValueError("device_cpu must name an existing CPU")
        if not 0 <= self.network_cpu < self.num_cpus:
            raise ValueError("network_cpu must name an existing CPU")

    @property
    def block_bytes(self) -> int:
        return self.icache.block_bytes

    @property
    def num_pages(self) -> int:
        return self.memory_bytes // self.page_bytes

    def cycles_per_ms(self) -> float:
        return 1e6 / self.cycle_ns

    def ms_to_cycles(self, ms: float) -> int:
        return int(round(ms * self.cycles_per_ms()))

    def cycles_to_ms(self, cycles: float) -> float:
        return cycles / self.cycles_per_ms()


DEFAULT_PARAMS = MachineParams()
