"""Figure 6: effect of I-cache size and associativity on OS I-misses.

Replays each workload's I-miss stream against direct-mapped and two-way
caches from 64 KB to 1 MB, reporting the OS miss rate relative to the
base machine and the Inval floor for the direct-mapped series.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.sweeps import SweepPoint, simulate_icache_sweep
from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext

EXHIBIT_ID = "figure6"
TITLE = "OS I-miss rate vs I-cache size/associativity (relative to 64KB DM)"

_COLUMNS = ("workload", "size_kb", "assoc", "relative_missrate", "inval_floor")

SIZES = (64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024)


def sweep_workload(ctx: ExperimentContext, workload: str) -> List[SweepPoint]:
    analysis = ctx.report(workload).analysis
    if getattr(ctx.settings, "shards", 1) > 1:
        # Identical grid, vectorized DM replay + pooled associative
        # configurations (see repro.sim.sharded).
        from repro.sim.sharded import simulate_icache_sweep_sharded

        return simulate_icache_sweep_sharded(
            analysis.imiss_stream, analysis.num_cpus, sizes=SIZES
        )
    return simulate_icache_sweep(
        analysis.imiss_stream, analysis.num_cpus, sizes=SIZES
    )


def relative_series(points: List[SweepPoint]) -> Dict:
    base = next(
        p for p in points if p.size_bytes == 64 * 1024 and p.associativity == 1
    )
    series = {}
    for p in points:
        rel = p.os_misses / base.os_misses if base.os_misses else 0.0
        inval = p.os_inval_misses / base.os_misses if base.os_misses else 0.0
        series[(p.size_bytes, p.associativity)] = (rel, inval)
    return series


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    for workload in paperdata.WORKLOADS:
        points = sweep_workload(ctx, workload)
        series = relative_series(points)
        for (size, assoc), (rel, inval) in sorted(series.items()):
            exhibit.add_row(
                workload, size // 1024, assoc, rel,
                inval if assoc == 1 else "-",
            )
    exhibit.note(
        "paper: two-way associativity gives a noticeable reduction; "
        "Pmake/Multpgm saturate near 256 KB against the Inval floor, "
        "Oracle keeps falling to 1 MB"
    )
    return exhibit


def chart(ctx: ExperimentContext) -> str:
    """Figure 6 as per-workload relative miss-rate series."""
    from repro.analysis.charts import series_chart

    blocks = []
    for workload in paperdata.WORKLOADS:
        series = relative_series(sweep_workload(ctx, workload))
        dm = {
            f"{size // 1024}KB": series[(size, 1)][0]
            for size in SIZES if (size, 1) in series
        }
        two_way = {
            f"{size // 1024}KB": series[(size, 2)][0]
            for size in SIZES if (size, 2) in series
        }
        blocks.append(series_chart(
            list(dm),
            {"direct-mapped": list(dm.values())},
            title=f"{workload}: OS I-miss rate relative to 64KB DM",
        ))
        blocks.append(series_chart(
            list(two_way),
            {"two-way": list(two_way.values())},
        ))
    return "\n".join(blocks)
