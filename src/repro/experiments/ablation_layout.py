"""Ablation: profile-driven OS code layout (Section 4.2.1's proposal).

Profile a Pmake run, repack the kernel text to de-conflict hot routines,
re-run the identical workload with the optimized image, and compare the
OS instruction-miss picture. The paper proposed this and left it
unevaluated ("it is beyond the scope of this paper to consider these
techniques").
"""

from __future__ import annotations

from repro.analysis.report import analyze_trace
from repro.common.types import MissClass, RefDomain
from repro.experiments._base import Exhibit, ExperimentContext
from repro.opt import optimize_layout, routine_heat_from_analysis
from repro.sim._session import Simulation

EXHIBIT_ID = "ablation-layout"
TITLE = "Profile-driven kernel code layout vs the default image"

_COLUMNS = ("metric", "default", "optimized", "change%")


def _os_imisses(analysis, miss_class=None) -> int:
    return sum(
        count for (dom, kind, cls), count in analysis.miss_counts.items()
        if dom is RefDomain.OS and kind == "I"
        and (miss_class is None or cls is miss_class)
    )


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    settings = ctx.settings
    base_run = ctx.run("pmake")
    base_report = ctx.report("pmake")

    heat = routine_heat_from_analysis(base_report.analysis)
    plan = optimize_layout(base_run.kernel.layout, heat)

    sim = Simulation(
        "pmake", seed=settings.seed, layout=plan.build(),
        check=settings.check,
    )
    opt_run = ctx.note_private_run(
        sim.run(settings.horizon_ms, warmup_ms=settings.warmup_ms)
    )
    opt_report = analyze_trace(opt_run, keep_imiss_stream=False)

    rows = (
        ("OS I-misses (Dispos)",
         _os_imisses(base_report.analysis, MissClass.DISPOS),
         _os_imisses(opt_report.analysis, MissClass.DISPOS)),
        ("OS I-misses (all)",
         _os_imisses(base_report.analysis),
         _os_imisses(opt_report.analysis)),
        ("OS stall %", base_report.os_stall_pct, opt_report.os_stall_pct),
    )
    for metric, before, after in rows:
        change = 100.0 * (after - before) / before if before else 0.0
        exhibit.add_row(metric, round(before, 1), round(after, 1),
                        round(change, 1))
    exhibit.add_check_coverage(base_run, opt_run)
    exhibit.note(plan.summary())
    exhibit.note(
        "the paper's Figure 5 spikes are exactly what the repacking removes"
    )
    return exhibit
