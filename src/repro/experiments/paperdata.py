"""The paper's reported numbers, transcribed for side-by-side display.

Everything here is copied from the ASPLOS'92 text; experiments print
these next to measured values. Reproduction targets the *shape*
(orderings, dominant categories, rough factors), not the absolute
numbers — our substrate is a synthetic kernel model, not IRIX 3.2 on a
real 4D/340 (see EXPERIMENTS.md).
"""

WORKLOADS = ("pmake", "multpgm", "oracle")

# Table 1: characteristics of the workloads.
TABLE1 = {
    #            user  sys   idle  os_miss%  stall_all  stall_os  stall_os+ind
    "pmake":   (49.4, 31.1, 19.5, 52.6, 39.9, 21.0, 25.8),
    "multpgm": (53.2, 46.7, 0.1, 46.3, 46.5, 21.5, 24.9),
    "oracle":  (62.4, 29.4, 8.2, 26.6, 62.5, 16.6, 26.8),
}

# Figure 1: the basic repeating pattern (text-reported anchors).
FIGURE1 = {
    # mean time between OS invocations (ms)
    "invocation_interval_ms": {"pmake": 1.9, "multpgm": 0.4, "oracle": 0.7},
    # Pmake's average OS invocation misses
    "pmake_inv_imisses": 154,
    "pmake_inv_dmisses": 141,
    # UTLB faults: average misses per invocation and share of app cycles
    "utlb_misses_per_fault": 0.1,
    "utlb_share_of_app_cycles_pct": 1.5,
}

# Figure 2: frequency of OS operations in Multpgm (approximate shares
# read off the chart / stated in the text).
FIGURE2 = {
    "sginap": 50.0,
    "tlb_faults": 20.0,
    "io_syscalls": 20.0,
    "clock_interrupts": 5.0,
}

# Figure 4: instruction misses as a share of all OS misses (range given
# in the text) and the per-workload stall rows quoted in Section 4.2.1.
FIGURE4 = {
    "imiss_share_range_pct": (40.0, 65.0),
    "imiss_stall_pct": {"pmake": 10.9, "multpgm": 9.2, "oracle": 10.6},
    # Dispap dominates Oracle's displaced OS instruction misses.
    "oracle_dispap_dominates": True,
}

# Table 4: migration misses (Sharing misses on the three per-process
# structures), as % of OS data misses, plus stall.
TABLE4 = {
    #            kstack ustruct proctable total  stall
    "pmake":   (4.8, 2.5, 2.6, 9.9, 1.0),
    "multpgm": (14.4, 11.6, 7.8, 33.8, 4.2),
    "oracle":  (18.0, 19.0, 7.1, 44.1, 2.6),
}

# Table 5: share of migration misses in three operations.
TABLE5 = {
    #            runq   lowlevel rwsetup total
    "pmake":   (11.5, 7.3, 6.4, 25.2),
    "multpgm": (20.5, 12.9, 13.2, 46.6),
    "oracle":  (14.3, 14.5, 20.7, 49.5),
}

# Table 6: block-operation data misses as % of OS data misses + stall.
TABLE6 = {
    #            copy  clear traverse total stall
    "pmake":   (17.6, 23.7, 19.7, 61.0, 6.2),
    "multpgm": (15.1, 7.2, 15.7, 38.0, 4.7),
    "oracle":  (8.6, 1.0, 1.0, 10.6, 0.6),
}

# Table 7: size characterization of Pmake's copies and clears
# (% of invocations).
TABLE7 = {
    "copy": {"full_page": 5.0, "regular_fragment": 45.0, "irregular": 50.0},
    "clear": {"full_page": 70.0, "irregular": 30.0},
}

# Table 9: stall decomposition (% of non-idle time).
TABLE9 = {
    #            total instr migration blockop rest
    "pmake":   (21.0, 10.9, 1.0, 6.2, 2.9),
    "multpgm": (21.5, 9.2, 4.2, 4.7, 3.4),
    "oracle":  (16.6, 10.6, 2.6, 0.6, 2.8),
    "average": (19.7, 10.2, 2.6, 3.8, 3.0),
}

# Figure 10: Ap_dispos share of all application misses.
FIGURE10 = {"ap_dispos_range_pct": (22.0, 27.0)}

# Table 10: stall from OS synchronization accesses (% of non-idle time).
TABLE10 = {
    "pmake": (4.2, 0.7),
    "multpgm": (4.6, 0.8),
    "oracle": (4.7, 1.1),
}

# Table 12: the most frequently acquired locks in Pmake.
TABLE12 = {
    # lock       kcycles failed% waiters locality% cached/uncached%
    "memlock":   (9.5, 2.2, 1.02, 79.9, 12.0),
    "runqlk":    (16.5, 13.7, 1.29, 36.9, 43.0),
    "ifree":     (16.7, 0.8, 1.00, 91.4, 5.0),
    "dfbmaplk":  (19.4, 0.0, 1.00, 99.0, 0.0),
    "bfreelock": (22.5, 1.5, 1.00, 72.6, 15.0),
    "calock":    (35.1, 0.3, 1.00, 11.4, 45.0),
}

# Figure 6 qualitative anchors.
FIGURE6 = {
    "two_way_helps": True,
    "pmake_multpgm_saturate_kb": 256,
    "oracle_falls_to_kb": 1024,
}

# Figure 8: the per-process structures' share of Sharing misses.
FIGURE8 = {"private_state_share_range_pct": (40.0, 65.0)}

# Figure 11: Runqlk contention grows with CPU count (shape).
FIGURE11 = {"runqlk_grows_with_cpus": True}
