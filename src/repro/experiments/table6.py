"""Table 6: data misses and stall time caused by the block operations."""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext
from repro.experiments.derive import blockop_miss_total, blockop_shares_pct

EXHIBIT_ID = "table6"
TITLE = "Block-operation data misses (copy / clear / pfdat traversal)"

_COLUMNS = (
    "workload", "source", "copy%", "clear%", "traverse%", "total%", "stall%",
)


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    for workload in paperdata.WORKLOADS:
        exhibit.add_row(workload, "paper", *paperdata.TABLE6[workload])
        report = ctx.report(workload)
        shares = blockop_shares_pct(report.analysis)
        exhibit.add_row(
            workload, "measured",
            shares["copy"], shares["clear"], shares["traverse"],
            shares["total"],
            report.stall_pct_for(blockop_miss_total(report.analysis)),
        )
    exhibit.note("percentages are of OS data misses")
    return exhibit
