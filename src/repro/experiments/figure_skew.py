"""Skew sweep: buffer-cache residency and lock traffic vs Zipf exponent.

The paper's workloads decide buffer-cache residency by program structure
(Pmake re-reads a fixed source set; Oracle's database fits in memory).
The server extensions decide it by *popularity*: KV draws keys from a
Zipf distribution over a keyspace ~100x the buffer cache, so the skew
knob alone moves the hit rate from hopeless (uniform) to comfortable
(YCSB-style hot sets). Each row runs KV at one skew through the shared
:class:`ExperimentContext` and reports the buffer-cache hit rate, the
Table 2 OS miss categories (cold and sharing, per traced ms) and the
Table 11 failed-acquire rates of the two lock families server traffic
actually contends: ``bfreelock`` and ``streams_x``.

The final row runs Netserver at its default skew: its arrivals land as
network interrupts taking ``streams_x`` in interrupt context against the
server processes' stream reads/writes — the process-vs-IRQ contention
Table 11 could not show on the paper's workloads.

Rows go through ``ctx.run(workload_args=...)``, so ``--check``,
``--shards``, ``--fidelity`` and the persistent run cache apply to every
point, and each tuned point keys separately in the cache.
"""

from __future__ import annotations

from typing import Tuple

from repro.analysis.lockstats import failed_acquires_per_ms
from repro.common.types import MissClass, RefDomain
from repro.experiments._base import Exhibit, ExperimentContext, RunSettings
from repro.workloads import canonical_workload_args

EXHIBIT_ID = "figure-skew"
TITLE = "Buffer-cache residency and lock traffic vs Zipf skew"

_COLUMNS = (
    "workload", "skew", "bchit%", "cold/ms", "sharing/ms",
    "bfreelock/ms", "streams_x/ms", "os_miss%",
)

# The swept Zipf exponents: uniform, web-ish, YCSB's 0.99, and a hot-set
# so tight the cache-dwarfing keyspace stops mattering.
SKEWS = (0.0, 0.7, 0.99, 1.2)

_LOCKS_SHOWN = ("bfreelock", "streams_x")

# Whole-machine-per-point sweep, so a shorter window than the standard
# settings (the scaling figure's discipline); explicit --horizon-ms /
# --warmup-ms still win.
_SETTINGS = RunSettings(horizon_ms=30.0, warmup_ms=250.0)


def _window(ctx: ExperimentContext) -> Tuple[float, float]:
    """Sweep window: explicit context settings win, else the short one."""
    defaults = RunSettings()
    horizon = ctx.settings.horizon_ms
    warmup = ctx.settings.warmup_ms
    if horizon == defaults.horizon_ms:
        horizon = _SETTINGS.horizon_ms
    if warmup == defaults.warmup_ms:
        warmup = _SETTINGS.warmup_ms
    return horizon, warmup


def _row(ctx, exhibit, workload, skew, args, horizon, warmup) -> None:
    run = ctx.run(
        workload, workload_args=args, horizon_ms=horizon, warmup_ms=warmup
    )
    report = ctx.report(
        workload, workload_args=args, horizon_ms=horizon, warmup_ms=warmup
    )
    exhibit.add_check_coverage(run)
    bcache = run.kernel.fs.buffer_cache
    lookups = bcache.hits + bcache.misses
    hit_pct = 100.0 * bcache.hits / lookups if lookups else 0.0
    per_class = {cls: 0 for cls in (MissClass.COLD, MissClass.SHARING)}
    for (dom, _kind, cls), count in report.analysis.miss_counts.items():
        if dom is RefDomain.OS and cls in per_class:
            per_class[cls] += count
    rates = failed_acquires_per_ms(run.kernel, warmup + horizon)
    exhibit.add_row(
        workload,
        f"{skew:g}",  # string: Exhibit._fmt would render 0.99 as "1.0"
        round(hit_pct, 1),
        round(per_class[MissClass.COLD] / horizon, 3),
        round(per_class[MissClass.SHARING] / horizon, 3),
        *[round(rates.get(lock, 0.0), 3) for lock in _LOCKS_SHOWN],
        round(report.os_miss_fraction_pct, 1),
    )


def _accepted(cls, base: dict) -> dict:
    """Restrict context-level knobs to the ones ``cls`` accepts.

    The sweep covers two workloads with different knob sets, so a
    kv-only ``--workload-arg keys=...`` must not reach netserver.
    """
    import inspect

    params = inspect.signature(cls.__init__).parameters
    return {k: v for k, v in base.items() if k in params}


def build(ctx: ExperimentContext) -> Exhibit:
    from repro.workloads.kv import KvWorkload
    from repro.workloads.netserver import NetserverWorkload

    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    horizon, warmup = _window(ctx)
    # Context-level --workload-arg knobs (get_fraction, keys, ...) apply
    # to every swept point that accepts them; the sweep pins the skew.
    base = dict(canonical_workload_args(
        getattr(ctx.settings, "workload_args", ())
    ))
    for skew in SKEWS:
        args = _accepted(KvWorkload, base)
        args["skew"] = skew
        _row(ctx, exhibit, "kv", skew, canonical_workload_args(args),
             horizon, warmup)
    # Netserver at its default skew: the interrupt-side streams_x load.
    _row(ctx, exhibit, "netserver", NetserverWorkload().skew,
         canonical_workload_args(_accepted(NetserverWorkload, base)),
         horizon, warmup)
    exhibit.note(
        "kv keyspace ~32 MB vs a ~272 KB buffer cache: at skew 0 the "
        "cache holds ~1% of the keys, so residency (bchit%) is decided "
        "entirely by the Zipf exponent; bfreelock traffic follows the "
        "miss rate (every miss churns a buffer header)"
    )
    exhibit.note(
        "netserver's streams_x failed-acquires come from network "
        "interrupts on the network CPU racing the server processes' "
        "stream reads — contention the paper's workloads never drive"
    )
    return exhibit


def chart(ctx: ExperimentContext) -> str:
    """Hit rate and lock traffic vs skew (reuses the built exhibit)."""
    from repro.analysis.charts import series_chart
    from repro.experiments.registry import run_experiment

    exhibit = run_experiment(EXHIBIT_ID, ctx)
    kv_rows = [row for row in exhibit.rows if row[0] == "kv"]
    skews = [str(row[1]) for row in kv_rows]
    series = {
        "bchit%": [float(row[2]) for row in kv_rows],
        "bfreelock/ms": [float(row[5]) for row in kv_rows],
    }
    return series_chart(
        skews, series,
        title="KV buffer-cache hit rate and bfreelock traffic vs skew",
    )
