"""Table 7: characterization of the sizes of blocks copied/cleared in
Pmake, rebuilt from the BLOCKOP escape records."""

from __future__ import annotations

from typing import Dict

from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext

EXHIBIT_ID = "table7"
TITLE = "Sizes of blocks copied or cleared (Pmake)"

_COLUMNS = ("operation", "size_class", "paper_freq%", "measured_freq%")

PAGE = 4096
# "Regular page fragment (e.g. 1/4 of page)": a power-of-two fraction.
_REGULAR_FRAGMENTS = (PAGE // 2, PAGE // 4, PAGE // 8)


def classify_size(nbytes: int) -> str:
    if nbytes >= PAGE:
        return "full_page"
    if nbytes in _REGULAR_FRAGMENTS:
        return "regular_fragment"
    return "irregular"


def size_distribution(analysis, op_kind: str) -> Dict[str, float]:
    sizes = [n for kind, n in analysis.blockop_log if kind == op_kind]
    if not sizes:
        return {}
    counts: Dict[str, int] = {}
    for n in sizes:
        cls = classify_size(n)
        counts[cls] = counts.get(cls, 0) + 1
    return {cls: 100.0 * c / len(sizes) for cls, c in counts.items()}


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    analysis = ctx.report("pmake").analysis
    for op_kind in ("copy", "clear"):
        measured = size_distribution(analysis, op_kind)
        paper = paperdata.TABLE7[op_kind]
        classes = ("full_page", "regular_fragment", "irregular")
        for cls in classes:
            paper_value = paper.get(cls)
            measured_value = measured.get(cls, 0.0)
            if paper_value is None and measured_value == 0.0:
                continue
            exhibit.add_row(
                op_kind, cls,
                paper_value if paper_value is not None else "-",
                measured_value,
            )
    exhibit.note(
        "paper examples: full-page copies come from copy-on-write updates, "
        "fragments from buffer-cache transfers, irregular chunks from "
        "string/parameter copies; clears are mostly demand-zero pages"
    )
    return exhibit
