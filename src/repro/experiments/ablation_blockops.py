"""Ablation: block-operation cache bypass and prefetch (Section 4.2.2).

"One way to eliminate misses in block operations is to use special
hardware and software support to prefetch data ... A second technique is
to bypass the cache when block transfer operations are performed."
Both are implemented as kernel modes; this experiment runs Pmake under
each and compares the OS data-miss picture.
"""

from __future__ import annotations

from repro.analysis.report import analyze_trace
from repro.experiments._base import Exhibit, ExperimentContext
from repro.experiments.derive import blockop_miss_total, os_misses
from repro.kernel.kernel import KernelTuning
from repro.kernel.vm import VmTuning
from repro.sim.config import CALIBRATIONS
from repro.sim._session import Simulation

EXHIBIT_ID = "ablation-blockops"
TITLE = "Block operations: default vs cache bypass vs prefetch (Pmake)"

_COLUMNS = (
    "mode", "blockop_Dmisses", "OS_Dmisses", "apdispos_D",
    "est_OS_stall%", "actual_stall%",
)


def _actual_stall_pct(processors) -> float:
    """Ground-truth machine stall / non-idle time.

    The trace-based estimate charges every miss 35 cycles, so it cannot
    see prefetching (whose whole point is misses that do not stall);
    this reads the machine's real accounting instead.
    """
    from repro.common.types import Mode

    stall = sum(
        proc.stall_cycles[Mode.USER] + proc.stall_cycles[Mode.KERNEL]
        for proc in processors
    )
    non_idle = sum(
        proc.mode_cycles[Mode.USER] + proc.mode_cycles[Mode.KERNEL]
        for proc in processors
    )
    return 100.0 * stall / non_idle if non_idle else 0.0


def _run_mode(ctx: ExperimentContext, cache_bypass: bool, prefetch: bool):
    settings = ctx.settings
    calibration = CALIBRATIONS["pmake"]
    tuning = KernelTuning(
        quantum_ms=calibration.quantum_ms,
        blockop_cache_bypass=cache_bypass,
        blockop_prefetch=prefetch,
        vm=VmTuning(baseline_frames=calibration.baseline_frames),
    )
    sim = Simulation(
        "pmake", seed=settings.seed, tuning=tuning, check=settings.check
    )
    run = ctx.note_private_run(
        sim.run(settings.horizon_ms, warmup_ms=settings.warmup_ms)
    )
    return run, analyze_trace(run, keep_imiss_stream=False)


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    modes = (
        ("default", None),
        ("cache_bypass", dict(cache_bypass=True, prefetch=False)),
        ("prefetch", dict(cache_bypass=False, prefetch=True)),
    )
    for label, overrides in modes:
        if overrides is None:
            run = ctx.run("pmake")
            report = ctx.report("pmake")
        else:
            run, report = _run_mode(ctx, **overrides)
        exhibit.add_check_coverage(run)
        analysis = report.analysis
        exhibit.add_row(
            label,
            blockop_miss_total(analysis),
            os_misses(analysis, "D"),
            analysis.ap_dispos.get("D", 0),
            round(report.os_stall_pct, 1),
            round(_actual_stall_pct(run.processors), 1),
        )
    exhibit.note(
        "bypass removes the displacement (fewer OS D-misses and fewer "
        "OS-induced application misses) while still paying transfer "
        "latency; prefetch hides the latency but keeps the displacement — "
        "visible only in the machine's actual stall, not the 35-cycle "
        "trace estimate"
    )
    return exhibit
