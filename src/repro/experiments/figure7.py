"""Figure 7: classification of the data misses in the OS."""

from __future__ import annotations

from repro.common.types import MissClass, RefDomain
from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext
from repro.experiments.derive import dmiss_class_shares_pct

EXHIBIT_ID = "figure7"
TITLE = "Classification of OS data misses (% of all OS misses)"

_COLUMNS = (
    "workload", "cold", "dispos", "dispap", "sharing", "D-total",
    "dispossame/dispos%",
)


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    for workload in paperdata.WORKLOADS:
        analysis = ctx.report(workload).analysis
        shares = dmiss_class_shares_pct(analysis)
        dispos = analysis.miss_counts.get((RefDomain.OS, "D", MissClass.DISPOS), 0)
        same = analysis.dispossame.get((RefDomain.OS, "D"), 0)
        exhibit.add_row(
            workload,
            shares.get(MissClass.COLD, 0.0),
            shares.get(MissClass.DISPOS, 0.0),
            shares.get(MissClass.DISPAP, 0.0),
            shares.get(MissClass.SHARING, 0.0),
            sum(shares.values()),
            100.0 * same / dispos if dispos else 0.0,
        )
    exhibit.note("paper: Sharing is the dominant class of OS data misses")
    return exhibit
