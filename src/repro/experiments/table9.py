"""Table 9: components of the stall time directly caused by OS misses."""

from __future__ import annotations

from repro.common.types import RefDomain
from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext
from repro.experiments.derive import (
    blockop_miss_total,
    migration_misses,
    os_misses,
)

EXHIBIT_ID = "table9"
TITLE = "Stall-time decomposition of OS misses (% of non-idle time)"

_COLUMNS = (
    "workload", "source", "total", "instr", "migration", "blockops", "rest",
)


def decompose(report) -> tuple:
    analysis = report.analysis
    total = analysis.total_misses(RefDomain.OS)
    instr = os_misses(analysis, "I")
    migration = migration_misses(analysis)["total"]
    blockops = blockop_miss_total(analysis)
    rest = max(0, total - instr - migration - blockops)
    return (
        report.stall_pct_for(total),
        report.stall_pct_for(instr),
        report.stall_pct_for(migration),
        report.stall_pct_for(blockops),
        report.stall_pct_for(rest),
    )


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    measured_rows = []
    for workload in paperdata.WORKLOADS:
        exhibit.add_row(workload, "paper", *paperdata.TABLE9[workload])
        row = decompose(ctx.report(workload))
        measured_rows.append(row)
        exhibit.add_row(workload, "measured", *row)
    exhibit.add_row("average", "paper", *paperdata.TABLE9["average"])
    n = len(measured_rows)
    exhibit.add_row(
        "average", "measured",
        *[sum(r[i] for r in measured_rows) / n for i in range(5)],
    )
    return exhibit
