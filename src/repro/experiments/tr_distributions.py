"""Companion-report distributions: Figure 3's charts for all workloads.

The paper shows per-invocation distributions only for Pmake and points
at its companion technical report for Multpgm and Oracle ("The
corresponding charts for Multpgm and Oracle are shown in [18]. They
show that, as in Pmake, an individual OS invocation has a small impact
on the cache contents."). This exhibit regenerates all three, plus the
application-invocation distributions the report also carries.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext
from repro.experiments.figure3 import _percentiles

EXHIBIT_ID = "tr-distributions"
TITLE = "Per-invocation distributions for all workloads ([18] companion)"

_COLUMNS = ("workload", "quantity", "p10", "p50", "p90", "mean", "max")


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    icache_blocks = 64 * 1024 // 16
    for workload in paperdata.WORKLOADS:
        analysis = ctx.report(workload).analysis
        invocations = analysis.invocations
        intervals = analysis.app_intervals
        rows = (
            ("OS I-miss/inv", [float(i.imisses) for i in invocations]),
            ("OS D-miss/inv", [float(i.dmisses) for i in invocations]),
            ("OS cycles/inv",
             [float(i.duration_ticks * 2) for i in invocations]),
            ("app I-miss/interval", [float(i.imisses) for i in intervals]),
            ("app D-miss/interval", [float(i.dmisses) for i in intervals]),
            ("app cycles/interval",
             [float(i.duration_ticks * 2) for i in intervals]),
        )
        for label, values in rows:
            exhibit.add_row(workload, label, *_percentiles(values))
        mean_imiss = (
            sum(i.imisses for i in invocations) / len(invocations)
            if invocations else 0.0
        )
        exhibit.note(
            f"{workload}: mean {mean_imiss:.0f} I-misses of "
            f"{icache_blocks} I-cache blocks per invocation — a small "
            "fraction of the cache, as in Pmake"
        )
    return exhibit
