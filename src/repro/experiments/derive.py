"""Shared derivations the exhibit modules build on."""

from __future__ import annotations

from typing import Dict, Tuple

from repro.common.types import MissClass, RefDomain
from repro.analysis.decode import TraceAnalysis
from repro.kernel.structures import StructName

# The per-process private-state structures whose Sharing misses the paper
# conservatively attributes to process migration (Section 4.2.2).
USTRUCT_PARTS = (StructName.PCB, StructName.EFRAME, StructName.USTRUCT_REST)


def os_misses(analysis: TraceAnalysis, kind: str) -> int:
    return sum(
        count
        for (dom, knd, _cls), count in analysis.miss_counts.items()
        if dom is RefDomain.OS and knd == kind
    )


def migration_misses(analysis: TraceAnalysis) -> Dict[str, int]:
    """Sharing misses on Kernel Stack / User Structure / Process Table.

    "We conservatively assume that [migration] only causes the Sharing
    misses in the three data structures considered" (Table 4).
    """
    sharing = analysis.sharing_by_struct
    kstack = sharing.get(StructName.KERNEL_STACK, 0)
    ustruct = sum(sharing.get(part, 0) for part in USTRUCT_PARTS)
    proctable = sharing.get(StructName.PROC_TABLE, 0)
    return {
        "kernel_stack": kstack,
        "user_structure": ustruct,
        "process_table": proctable,
        "total": kstack + ustruct + proctable,
    }


def migration_shares_pct(analysis: TraceAnalysis) -> Dict[str, float]:
    """Table 4's percentages: migration misses / OS data misses."""
    d_total = os_misses(analysis, "D")
    counts = migration_misses(analysis)
    if not d_total:
        return {key: 0.0 for key in counts}
    return {key: 100.0 * value / d_total for key, value in counts.items()}


def blockop_shares_pct(analysis: TraceAnalysis) -> Dict[str, float]:
    """Table 6's percentages: block-op misses / OS data misses."""
    d_total = os_misses(analysis, "D")
    out = {}
    for kind in ("copy", "clear", "traverse"):
        count = analysis.blockop_misses.get(kind, 0)
        out[kind] = 100.0 * count / d_total if d_total else 0.0
    out["total"] = sum(out.values())
    return out


def blockop_miss_total(analysis: TraceAnalysis) -> int:
    return sum(analysis.blockop_misses.values())


def imiss_class_shares_pct(analysis: TraceAnalysis) -> Dict[MissClass, float]:
    """Figure 4(a): I-miss classes as % of ALL OS misses."""
    total = analysis.total_misses(RefDomain.OS)
    out: Dict[MissClass, float] = {}
    if not total:
        return out
    for (dom, kind, cls), count in analysis.miss_counts.items():
        if dom is RefDomain.OS and kind == "I":
            out[cls] = out.get(cls, 0.0) + 100.0 * count / total
    return out


def dmiss_class_shares_pct(analysis: TraceAnalysis) -> Dict[MissClass, float]:
    """Figure 7(a): D-miss classes as % of ALL OS misses."""
    total = analysis.total_misses(RefDomain.OS)
    out: Dict[MissClass, float] = {}
    if not total:
        return out
    for (dom, kind, cls), count in analysis.miss_counts.items():
        if dom is RefDomain.OS and kind == "D":
            out[cls] = out.get(cls, 0.0) + 100.0 * count / total
    return out


def invocation_interval_ms(analysis: TraceAnalysis) -> float:
    """Mean time between OS invocations (Figure 1), machine-wide per CPU.

    The paper's interval is per CPU: total traced CPU-time divided by the
    number of OS invocations, expressed in ms of 30 ns cycles.
    """
    if not analysis.invocations:
        return float("inf")
    cpu_ticks = analysis.measured_ticks * analysis.num_cpus
    cycles = cpu_ticks * 2
    return cycles / len(analysis.invocations) / (1e6 / 30.0)


def mean_invocation_misses(analysis: TraceAnalysis) -> Tuple[float, float]:
    """Average (I, D) misses per OS invocation (Figure 1)."""
    if not analysis.invocations:
        return 0.0, 0.0
    n = len(analysis.invocations)
    return (
        sum(inv.imisses for inv in analysis.invocations) / n,
        sum(inv.dmisses for inv in analysis.invocations) / n,
    )
