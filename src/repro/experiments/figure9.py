"""Figure 9: OS cache misses by high-level operation (Table 8 vocabulary)."""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext

EXHIBIT_ID = "figure9"
TITLE = "OS misses by high-level operation (% of all OS misses)"

_COLUMNS = ("workload", "operation", "D-misses%", "I-misses%")

# Figure 9 buckets over the analyzer's innermost-op labels.
_OPS = (
    ("expensive_tlb", ("expensive_tlb_fault",)),
    ("cheap_tlb", ("cheap_tlb_fault", "utlb")),
    ("io_syscall", ("io_syscall",)),
    ("sginap", ("sginap_syscall",)),
    ("other_syscall", ("other_syscall",)),
    ("interrupt", ("interrupt",)),
)


def op_shares(analysis) -> dict:
    os_total = sum(
        count for (dom, _k, _c), count in analysis.miss_counts.items()
        if dom.value == "os"
    )
    out = {}
    for bucket, labels in _OPS:
        d = sum(analysis.op_misses.get((label, "D"), 0) for label in labels)
        i = sum(analysis.op_misses.get((label, "I"), 0) for label in labels)
        out[bucket] = (
            100.0 * d / os_total if os_total else 0.0,
            100.0 * i / os_total if os_total else 0.0,
        )
    return out


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    for workload in paperdata.WORKLOADS:
        analysis = ctx.report(workload).analysis
        for bucket, (d_share, i_share) in op_shares(analysis).items():
            exhibit.add_row(workload, bucket, d_share, i_share)
    exhibit.note(
        "paper: I/O system calls and expensive TLB faults cause most data "
        "misses; I/O calls are the largest instruction-miss contributor; "
        "interrupts skew toward instruction misses"
    )
    return exhibit
