"""Figure 3: distributions of I-misses, D-misses and cycles per OS
invocation in Pmake.

The paper plots full distributions; we report the histogram and verify
the qualitative property the paper uses them for: an individual OS
invocation replaces only a small fraction of the cache contents.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.experiments._base import Exhibit, ExperimentContext

EXHIBIT_ID = "figure3"
TITLE = "Distribution of misses/cycles per OS invocation (Pmake)"

_COLUMNS = ("quantity", "p10", "p50", "p90", "mean", "max")

_MISS_BUCKETS = (0, 25, 50, 100, 200, 400, 800, 1600)


def _percentiles(values: List[float]) -> Tuple[float, float, float, float, float]:
    if not values:
        return (0.0, 0.0, 0.0, 0.0, 0.0)
    ordered = sorted(values)
    n = len(ordered)

    def pct(p: float) -> float:
        return ordered[min(n - 1, int(p * n))]

    return pct(0.10), pct(0.50), pct(0.90), sum(ordered) / n, ordered[-1]


def histogram(values: Sequence[float], buckets: Sequence[float] = _MISS_BUCKETS):
    """Counts per bucket (for plotting / tests)."""
    counts = [0] * (len(buckets))
    for value in values:
        for i in range(len(buckets) - 1, -1, -1):
            if value >= buckets[i]:
                counts[i] += 1
                break
    return list(zip(buckets, counts))


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    analysis = ctx.report("pmake").analysis
    invocations = analysis.invocations
    imisses = [float(inv.imisses) for inv in invocations]
    dmisses = [float(inv.dmisses) for inv in invocations]
    cycles = [float(inv.duration_ticks * 2) for inv in invocations]
    exhibit.add_row("I-misses/invocation", *_percentiles(imisses))
    exhibit.add_row("D-misses/invocation", *_percentiles(dmisses))
    exhibit.add_row("cycles/invocation", *_percentiles(cycles))
    icache_blocks = 64 * 1024 // 16
    mean_imiss = sum(imisses) / len(imisses) if imisses else 0.0
    exhibit.note(
        f"mean I-misses per invocation = {mean_imiss:.0f} of "
        f"{icache_blocks} I-cache blocks -> an invocation replaces only a "
        "small fraction of the cache (paper Section 4.1)"
    )
    return exhibit
