"""One module per paper exhibit (table/figure), plus a registry and CLI.

Each experiment builds its exhibit from fresh (or context-cached)
simulations and returns an :class:`~repro.experiments._base.Exhibit`
holding measured rows next to the paper's reported values.

Run them all::

    python -m repro.experiments run all

or a single one::

    python -m repro.experiments run table1
"""

from repro.experiments._base import Exhibit, ExperimentContext, RunSettings
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

__all__ = [
    "Exhibit",
    "ExperimentContext",
    "RunSettings",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
