"""Table 4: data misses and stall time caused by process migration."""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext
from repro.experiments.derive import migration_misses, migration_shares_pct

EXHIBIT_ID = "table4"
TITLE = "Migration misses (Sharing on KStack/UStruct/ProcTable)"

_COLUMNS = (
    "workload", "source", "kstack%", "ustruct%", "proctable%", "total%",
    "stall%",
)


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    for workload in paperdata.WORKLOADS:
        exhibit.add_row(workload, "paper", *paperdata.TABLE4[workload])
        report = ctx.report(workload)
        shares = migration_shares_pct(report.analysis)
        counts = migration_misses(report.analysis)
        exhibit.add_row(
            workload, "measured",
            shares["kernel_stack"], shares["user_structure"],
            shares["process_table"], shares["total"],
            report.stall_pct_for(counts["total"]),
        )
    exhibit.note(
        "percentages are of OS data misses; migration is conservatively "
        "the Sharing misses on per-process private state (Section 4.2.2)"
    )
    return exhibit
