"""Table 2: the architectural miss-class taxonomy (definitional).

The taxonomy is implemented by the classifier
(:mod:`repro.analysis.reconstruct`); this exhibit prints it and verifies
each class is actually observed somewhere in the traced workloads.
"""

from __future__ import annotations

from repro.common.types import MissClass, RefDomain
from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext

EXHIBIT_ID = "table2"
TITLE = "Classification of OS cache misses (Table 2 taxonomy)"

_COLUMNS = ("class", "meaning", "observed_in_os_misses")

_MEANINGS = {
    MissClass.COLD: "first access by this processor to the block",
    MissClass.DISPOS: "displaced by an intervening OS reference",
    MissClass.DISPAP: "displaced by an intervening application reference",
    MissClass.SHARING: "OS data shared or migrating among processors",
    MissClass.INVAL: "I-cache invalidated when code pages are reallocated",
    MissClass.UNCACHED: "accesses that bypass the caches",
}


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    observed = set()
    escape_total = 0
    for workload in paperdata.WORKLOADS:
        analysis = ctx.report(workload).analysis
        for (dom, _kind, cls), count in analysis.miss_counts.items():
            if dom is RefDomain.OS and count:
                observed.add(cls)
        escape_total += analysis.escape_reads
    for cls, meaning in _MEANINGS.items():
        if cls is MissClass.UNCACHED:
            seen = escape_total > 0
        else:
            seen = cls in observed
        exhibit.add_row(cls.value, meaning, "yes" if seen else "no")
    exhibit.note(
        "Dispossame (Dispos with no intervening application run) is "
        "tracked as a subset flag, as in the paper"
    )
    return exhibit
