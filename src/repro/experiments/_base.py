"""Experiment infrastructure: shared runs and exhibit formatting."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import AnalysisReport, analyze_trace
from repro.machines import DEFAULT_MACHINE, MachineSpec, canonical_machine
from repro.sim.runcache import RunCache, load_or_run
from repro.sim._session import TracedRun
from repro.workloads import canonical_workload_args

# Exhibit.to_dict() payload schema. Version 2 added the explicit
# "schema_version" field itself (version-1 payloads carry none);
# from_dict() accepts both.
EXHIBIT_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class RunSettings:
    """Standard simulation settings shared by the experiments.

    80 ms of traced window after 500 ms of warmup reaches the workloads'
    steady state (all binaries resident, buffer cache warm, scheduler
    mixing) while keeping a full experiment sweep to minutes of host
    time. Individual experiments override where they need to (e.g.
    Figure 11 sweeps CPU counts with a shorter window).
    """

    horizon_ms: float = 80.0
    warmup_ms: float = 500.0
    seed: int = 7
    # Run with the repro.sanitizers invariant checkers installed
    # (``--check`` / ``REPRO_CHECK=1``). Part of the frozen settings so
    # exhibit cache keys (repr-based) distinguish checked runs too.
    check: bool = False
    # Analysis shard count (``--shards`` / ``REPRO_SHARDS``). A pure
    # wall-clock knob: the sharded core is byte-identical to serial, so
    # this field is excluded from cache keys (see :meth:`cache_repr`).
    shards: int = 1
    # Engine fidelity tier (``--fidelity`` / ``REPRO_FIDELITY``) and the
    # mixed tier's atomic reference budget (``--fast-forward`` /
    # ``REPRO_FAST_FORWARD``). Unlike ``shards`` these change the run's
    # bytes, so non-default values DO enter cache keys.
    fidelity: str = "detailed"
    fast_forward: int = 0
    # Machine geometry (``--machine`` / ``--cpus`` / ``REPRO_MACHINE``):
    # a preset name from :mod:`repro.machines` or a full MachineParams.
    # Like fidelity, a non-default machine changes the run's bytes, so
    # it enters cache keys — canonicalized so a preset's name and its
    # literal params key identically, and so the 4d340 default keeps
    # every legacy key byte-identical.
    machine: MachineSpec = DEFAULT_MACHINE
    # Workload tuning knobs (``--workload-arg k=v`` / ``?workload_arg=``):
    # canonicalized to a sorted (name, value) pair tuple. Tuned runs are
    # different runs, so non-empty args enter cache keys; the empty
    # default normalizes away and keeps every existing key byte-identical.
    workload_args: tuple = ()

    def cache_repr(self) -> str:
        """The repr used for exhibit cache keys.

        Excludes ``shards`` (identical output ⇒ identical cache entry)
        and reproduces the pre-``shards`` dataclass repr byte for byte,
        so existing warm caches stay valid. Fidelity and machine fields
        append only at non-default values — same compatibility
        discipline, opposite reason: they change output, so they must
        key distinctly.
        """
        extra = ""
        if self.fidelity != "detailed":
            extra += f", fidelity={self.fidelity!r}"
        if self.fast_forward:
            extra += f", fast_forward={self.fast_forward!r}"
        machine = canonical_machine(getattr(self, "machine", DEFAULT_MACHINE))
        if machine != DEFAULT_MACHINE:
            extra += f", machine={machine!r}"
        workload_args = canonical_workload_args(
            getattr(self, "workload_args", ())
        )
        if workload_args:
            extra += f", workload_args={workload_args!r}"
        return (
            f"RunSettings(horizon_ms={self.horizon_ms!r}, "
            f"warmup_ms={self.warmup_ms!r}, seed={self.seed!r}, "
            f"check={self.check!r}{extra})"
        )


class ExperimentContext:
    """Caches one traced run + analysis per workload per settings.

    Two cache layers: an in-memory dict (one entry per workload per
    override set, exactly as before), and — when a :class:`RunCache` is
    supplied — the persistent on-disk store, so a fresh process reloads
    finished runs instead of re-simulating them. Both layers are
    transparent: a context with a warm disk cache hands out runs and
    reports byte-identical to a cold serial context.
    """

    def __init__(
        self,
        settings: Optional[RunSettings] = None,
        cache: Optional[RunCache] = None,
    ):
        self.settings = settings if settings is not None else RunSettings()
        self.cache = cache
        # Benchmarks flip this off: they want cached *runs* (shared
        # input state) but must still time the exhibit derivations.
        self.cache_exhibits = True
        self._runs: Dict[Tuple, TracedRun] = {}
        self._reports: Dict[Tuple, AnalysisReport] = {}
        self.exhibit_cache: Dict[str, "Exhibit"] = {}
        # Runs the ablation experiments simulate privately (machine
        # variants the shared run cache never sees). Registered so
        # checked-mode reporting covers them too.
        self.private_runs: List[TracedRun] = []

    def _resolved(self, overrides: Dict):
        """Split overrides into (horizon, warmup, seed, sim kwargs, shards).

        Only :class:`RunSettings` fields may be overridden; an unknown
        key raises instead of being silently forwarded (a typo'd
        ``horizon`` used to produce a run with default settings).
        """
        valid = RunSettings.__dataclass_fields__
        unknown = sorted(set(overrides) - set(valid))
        if unknown:
            raise TypeError(
                f"unknown override(s) {', '.join(map(repr, unknown))} for "
                f"ExperimentContext; valid names: {', '.join(valid)}"
            )
        horizon = overrides.get("horizon_ms", self.settings.horizon_ms)
        warmup = overrides.get("warmup_ms", self.settings.warmup_ms)
        seed = overrides.get("seed", self.settings.seed)
        check = overrides.get("check", self.settings.check)
        shards = overrides.get("shards", getattr(self.settings, "shards", 1))
        fidelity = overrides.get(
            "fidelity", getattr(self.settings, "fidelity", "detailed")
        )
        fast_forward = overrides.get(
            "fast_forward", getattr(self.settings, "fast_forward", 0)
        )
        machine = canonical_machine(
            overrides.get(
                "machine", getattr(self.settings, "machine", DEFAULT_MACHINE)
            )
        )
        workload_args = canonical_workload_args(
            overrides.get(
                "workload_args", getattr(self.settings, "workload_args", ())
            )
        )
        # Unchecked runs keep sim_kwargs == {} so PR-1 cache keys (and
        # the byte-identity smoke) are untouched; the same discipline
        # keeps default-fidelity and default-machine keys identical to
        # the keys from before those knobs existed.
        sim_kwargs = {"check": check} if check else {}
        if fidelity != "detailed":
            sim_kwargs["fidelity"] = fidelity
        if fast_forward:
            sim_kwargs["fast_forward"] = fast_forward
        if machine != DEFAULT_MACHINE:
            sim_kwargs["machine"] = machine
        if workload_args:
            sim_kwargs["workload_args"] = workload_args
        return horizon, warmup, seed, sim_kwargs, shards

    @staticmethod
    def _memory_key(workload: str, overrides: Dict) -> Tuple:
        """In-memory cache key; ``shards`` is excluded because sharded
        and serial analysis of the same run are identical objects.
        ``workload_args`` is canonicalized so a dict and its pair-tuple
        form key (and hash) identically."""
        items = []
        for k, v in overrides.items():
            if k == "shards":
                continue
            if k == "workload_args":
                v = canonical_workload_args(v)
                if not v:
                    continue
            items.append((k, v))
        return (workload, tuple(sorted(items)))

    def run(self, workload: str, **overrides) -> TracedRun:
        key = self._memory_key(workload, overrides)
        if key not in self._runs:
            horizon, warmup, seed, sim_kwargs, shards = self._resolved(overrides)
            run, report = load_or_run(
                self.cache, workload, horizon, warmup, seed, sim_kwargs,
                shards=shards,
            )
            self._runs[key] = run
            if report is not None:
                self._reports.setdefault(key, report)
        return self._runs[key]

    def report(self, workload: str, **overrides) -> AnalysisReport:
        key = self._memory_key(workload, overrides)
        if key not in self._reports:
            horizon, warmup, seed, sim_kwargs, shards = self._resolved(overrides)
            if key in self._runs:
                # Run already in memory (possibly mid-upgrade from a
                # report-less disk entry): analyze it and persist the
                # completed pair.
                run = self._runs[key]
                report = analyze_trace(run, shards=shards)
                if self.cache is not None:
                    cache_key = self.cache.run_key(
                        workload, horizon, warmup, seed, sim_kwargs
                    )
                    self.cache.store(cache_key, {"run": run, "report": report})
            else:
                run, report = load_or_run(
                    self.cache, workload, horizon, warmup, seed, sim_kwargs,
                    analyze=True, shards=shards,
                )
                self._runs[key] = run
            self._reports[key] = report
        return self._reports[key]

    def note_private_run(self, run: TracedRun) -> TracedRun:
        """Register an experiment-private run for sanitizer reporting."""
        self.private_runs.append(run)
        return run

    def all_runs(self) -> List[TracedRun]:
        """Every distinct run behind this context's exhibits."""
        seen = set()
        out = []
        for run in list(self._runs.values()) + self.private_runs:
            if id(run) in seen:
                continue
            seen.add(id(run))
            out.append(run)
        return out

    # -- exhibit layer -------------------------------------------------
    def load_cached_exhibit(self, exhibit_id: str) -> Optional["Exhibit"]:
        """A previously-built exhibit from the disk cache, if any."""
        if self.cache is None or not self.cache_exhibits:
            return None
        payload = self.cache.load(self.cache.exhibit_key(exhibit_id, self.settings))
        if payload is None:
            return None
        exhibit = payload.get("exhibit")
        return exhibit if isinstance(exhibit, Exhibit) else None

    def store_cached_exhibit(self, exhibit_id: str, exhibit: "Exhibit") -> None:
        if self.cache is not None and self.cache_exhibits:
            self.cache.store(
                self.cache.exhibit_key(exhibit_id, self.settings),
                {"exhibit": exhibit},
            )


@dataclass
class Exhibit:
    """One reproduced table or figure, measured vs paper."""

    exhibit_id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    # Sanitizer coverage of the runs behind the table (one summary line
    # per checked run); empty on unchecked runs so the default text
    # rendering stays byte-identical.
    check_coverage: List[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def add_check_coverage(self, *runs) -> None:
        """Attach the CheckReport coverage of checked ``runs``."""
        for run in runs:
            report = run.check_report
            if report is not None:
                self.check_coverage.append(report.summary())

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Render an aligned text table."""
        header = [str(c) for c in self.columns]
        body = [
            [self._fmt(value) for value in row]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.exhibit_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        # getattr: exhibits unpickled from pre-coverage cache entries
        # have no such attribute.
        for line in getattr(self, "check_coverage", ()) or ():
            lines.append(f"  check: {line}")
        return "\n".join(lines)

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)

    # ------------------------------------------------------------------
    # Structured output
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-ready structure mirroring :meth:`to_text` content."""
        payload = {
            "schema_version": EXHIBIT_SCHEMA_VERSION,
            "exhibit_id": self.exhibit_id,
            "title": self.title,
            "columns": [str(c) for c in self.columns],
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }
        coverage = getattr(self, "check_coverage", None)
        if coverage:
            payload["check_coverage"] = list(coverage)
        return payload

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Dict) -> "Exhibit":
        """Rebuild an exhibit from :meth:`to_dict` output.

        Accepts both the current schema and version-1 payloads (which
        predate the ``schema_version`` field); an unknown newer version
        raises so stale readers fail loudly instead of dropping fields.
        """
        version = payload.get("schema_version", 1)
        if not 1 <= version <= EXHIBIT_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported exhibit schema_version {version!r} "
                f"(this reader understands 1..{EXHIBIT_SCHEMA_VERSION})"
            )
        exhibit = cls(
            payload["exhibit_id"],
            payload["title"],
            tuple(payload["columns"]),
            rows=[tuple(row) for row in payload.get("rows", [])],
            notes=list(payload.get("notes", [])),
        )
        exhibit.check_coverage = list(payload.get("check_coverage", []))
        return exhibit

    def row_dict(self, key_column: int = 0) -> Dict[str, Sequence]:
        return {str(row[key_column]): row for row in self.rows}
