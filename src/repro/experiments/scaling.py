"""Scaling sweep: lock contention and OS misses past 4 CPUs.

The paper measured a 4-CPU 4D/340 and predicted that "contention for
Runqlk will be significant for machines with more CPUs" (Section 6).
This exhibit extends the Figure 11 / Table 2 measurements along the
:mod:`repro.machines` preset ladder: each row runs Multpgm on one preset
geometry (L2, memory, bus stall and run-queue count scaled together) and
reports the contended Table 11 lock families' failed-acquire rates plus
the Table 2 SHARING (ping-pong) miss rate and the OS share of all
misses.

Rows are built through the shared :class:`ExperimentContext`, so
``--check`` (sanitizers sized to each geometry), ``--shards`` (seam
crosschecks intact), ``--fidelity mixed`` and the persistent run cache
all apply to every point of the sweep.
"""

from __future__ import annotations

import os
from typing import List, Tuple

from repro.analysis.lockstats import failed_acquires_per_ms
from repro.common.types import MissClass, RefDomain
from repro.experiments._base import Exhibit, ExperimentContext, RunSettings
from repro.machines import (
    DEFAULT_MACHINE,
    LADDER,
    MACHINES,
    canonical_machine,
    machine_for_cpus,
)

EXHIBIT_ID = "figure-scaling"
TITLE = "Lock contention and OS misses vs CPU count (Multpgm)"

_COLUMNS = (
    "machine", "cpus", "runq", "runqlk/ms", "memlock/ms",
    "bfreelock/ms", "calock/ms", "pingpong/ms", "os_miss%",
)

WORKLOAD = "multpgm"
_LOCKS_SHOWN = ("runqlk", "memlock", "bfreelock", "calock")

# Shorter window than the standard settings: like Figure 11, this is a
# whole-machine-per-point sweep. An explicit --horizon-ms/--warmup-ms
# still wins (CI smoke runs the sweep at 4/40).
_SETTINGS = RunSettings(horizon_ms=30.0, warmup_ms=250.0)

# The ladder is swept up to this preset by default; pick a machine
# (``--machine cpus64`` caps the ladder there) or set REPRO_SCALING_CPUS
# (CPU counts, e.g. "4 8 32") to change the swept geometries.
_DEFAULT_TOP = "cpus16"
_ENV_SWEEP = "REPRO_SCALING_CPUS"


def sweep_machines(ctx: ExperimentContext) -> List[str]:
    """The preset names this sweep will run, smallest first."""
    env = os.environ.get(_ENV_SWEEP)
    if env:
        tokens = env.replace(",", " ").split()
        return [machine_for_cpus(int(token)) for token in tokens]
    machine = canonical_machine(
        getattr(ctx.settings, "machine", DEFAULT_MACHINE)
    )
    top = _DEFAULT_TOP
    if isinstance(machine, str) and machine in LADDER \
            and machine != DEFAULT_MACHINE:
        top = machine
    return LADDER[: LADDER.index(top) + 1]


def _window(ctx: ExperimentContext) -> Tuple[float, float]:
    """Sweep window: explicit context settings win, else the short one."""
    defaults = RunSettings()
    horizon = ctx.settings.horizon_ms
    warmup = ctx.settings.warmup_ms
    if horizon == defaults.horizon_ms:
        horizon = _SETTINGS.horizon_ms
    if warmup == defaults.warmup_ms:
        warmup = _SETTINGS.warmup_ms
    return horizon, warmup


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    horizon, warmup = _window(ctx)
    for name in sweep_machines(ctx):
        run = ctx.run(
            WORKLOAD, machine=name, horizon_ms=horizon, warmup_ms=warmup
        )
        report = ctx.report(
            WORKLOAD, machine=name, horizon_ms=horizon, warmup_ms=warmup
        )
        exhibit.add_check_coverage(run)
        rates = failed_acquires_per_ms(run.kernel, warmup + horizon)
        sharing = sum(
            count
            for (dom, _kind, cls), count in report.analysis.miss_counts.items()
            if dom is RefDomain.OS and cls is MissClass.SHARING
        )
        preset = MACHINES[name]
        exhibit.add_row(
            name,
            preset.params.num_cpus,
            preset.run_queues,
            *[round(rates.get(lock, 0.0), 3) for lock in _LOCKS_SHOWN],
            round(sharing / horizon, 3),
            round(report.os_miss_fraction_pct, 1),
        )
    exhibit.note(
        "each geometry scales L2, memory, bus stall and run-queue count "
        "together (one queue per 4-CPU cluster, Section 6); even so, "
        "sharing misses and lock traffic grow with CPU count — the "
        "paper's Runqlk prediction, extended past 8 CPUs"
    )
    return exhibit


def chart(ctx: ExperimentContext) -> str:
    """The sweep as contention-vs-CPUs series (reuses the built exhibit)."""
    from repro.analysis.charts import series_chart
    from repro.experiments.registry import run_experiment

    exhibit = run_experiment(EXHIBIT_ID, ctx)
    cpus = [int(row[1]) for row in exhibit.rows]
    series = {
        lock: [float(row[3 + i]) for row in exhibit.rows]
        for i, lock in enumerate(_LOCKS_SHOWN)
    }
    series["pingpong"] = [float(row[7]) for row in exhibit.rows]
    return series_chart(
        cpus, series,
        title="Lock contention and sharing misses vs number of CPUs",
        unit="/ms",
    )
