"""Table 3: the kernel data structures and their sizes (definitional).

Verifies our kernel data map places every structure at the paper's
reported size.
"""

from __future__ import annotations

from repro.experiments._base import Exhibit, ExperimentContext
from repro.kernel import structures as S

EXHIBIT_ID = "table3"
TITLE = "Kernel data structures (sizes from Table 3)"

_COLUMNS = ("structure", "paper_bytes", "model_bytes", "function")

ROWS = (
    ("Kernel Stack", 4096, S.KSTACK_BYTES,
     "OS stack while executing in the context of the process"),
    ("PCB section", 240, S.PCB_BYTES,
     "registers saved at context switch"),
    ("Eframe section", 172, S.EFRAME_BYTES,
     "registers saved at exceptions"),
    ("Rest of User Structure", 3684, S.USTRUCT_REST_BYTES,
     "file descriptors, system buffers, syscall return values"),
    ("Process Table", 46080, S.PROC_TABLE_BYTES,
     "process state, priority, signals, scheduling parameters"),
    ("Pfdat", 210944, S.PFDAT_BYTES,
     "array of physical page descriptors"),
    ("Buffer", 17408, S.BUFFER_TABLE_BYTES,
     "buffer-cache headers"),
    ("Inode", 68608, S.INODE_TABLE_BYTES,
     "memory-resident inodes"),
    ("Run Queue", 24, S.RUNQ_BYTES,
     "head of the run queue"),
    ("FreePgBuck", 3072, S.FREEPGBUCK_BYTES,
     "hash buckets of free physical pages"),
    ("Hi_ndproc", 4, S.HI_NDPROC_BYTES,
     "priority-scheduling flag"),
)


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    for name, paper_bytes, model_bytes, function in ROWS:
        exhibit.add_row(name, paper_bytes, model_bytes, function)
    return exhibit
