"""Table 11: the most frequently acquired kernel locks (definitional),
checked against the modelled kernel's lock table."""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext
from repro.kernel.locks import LOCK_FUNCTIONS

EXHIBIT_ID = "table11"
TITLE = "Kernel lock inventory (Table 11)"

_COLUMNS = ("lock", "protects", "acquires_across_workloads")


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    acquires = {family: 0 for family in LOCK_FUNCTIONS}
    for workload in paperdata.WORKLOADS:
        run = ctx.run(workload)
        exhibit.add_check_coverage(run)
        for family, stats in run.kernel.locks.family_stats().items():
            acquires[family] = acquires.get(family, 0) + stats.acquires
    for family, function in LOCK_FUNCTIONS.items():
        exhibit.add_row(family, function, acquires.get(family, 0))
    return exhibit
