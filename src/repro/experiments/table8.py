"""Table 8: the high-level OS operation vocabulary (definitional)."""

from __future__ import annotations

from repro.common.types import HighLevelOp
from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext

EXHIBIT_ID = "table8"
TITLE = "High-level OS operations (Table 8 vocabulary)"

_COLUMNS = ("operation", "meaning", "observed_invocations")

_MEANINGS = {
    HighLevelOp.EXPENSIVE_TLB_FAULT:
        "TLB faults that allocate a physical page (grab/copy/clear/IO)",
    HighLevelOp.CHEAP_TLB_FAULT:
        "TLB faults needing neither allocation nor I/O (incl. UTLB)",
    HighLevelOp.IO_SYSCALL: "system calls with file system reads/writes",
    HighLevelOp.SGINAP_SYSCALL:
        "reschedule after 20 unsuccessful lock spins",
    HighLevelOp.OTHER_SYSCALL: "remaining system calls",
    HighLevelOp.INTERRUPT: "disk/terminal/inter-CPU/clock interrupts",
}

_LABELS = {
    HighLevelOp.EXPENSIVE_TLB_FAULT: ("expensive_tlb_fault",),
    HighLevelOp.CHEAP_TLB_FAULT: ("cheap_tlb_fault", "utlb"),
    HighLevelOp.IO_SYSCALL: ("io_syscall",),
    HighLevelOp.SGINAP_SYSCALL: ("sginap_syscall",),
    HighLevelOp.OTHER_SYSCALL: ("other_syscall",),
    HighLevelOp.INTERRUPT: ("interrupt",),
}


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    totals = {op: 0 for op in HighLevelOp}
    for workload in paperdata.WORKLOADS:
        analysis = ctx.report(workload).analysis
        for op, labels in _LABELS.items():
            totals[op] += sum(analysis.op_counts.get(label, 0) for label in labels)
    for op, meaning in _MEANINGS.items():
        exhibit.add_row(op.value, meaning, totals[op])
    return exhibit
