"""Command-line entry point: ``python -m repro.experiments run <id|all>``."""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.base import ExperimentContext, RunSettings
from repro.experiments.registry import EXPERIMENTS, run_experiment


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run_cmd = sub.add_parser("run", help="run one or all experiments")
    run_cmd.add_argument("exhibit", help="exhibit id (e.g. table1) or 'all'")
    run_cmd.add_argument("--horizon-ms", type=float, default=80.0)
    run_cmd.add_argument("--warmup-ms", type=float, default=500.0)
    run_cmd.add_argument("--seed", type=int, default=7)
    run_cmd.add_argument(
        "--charts", action="store_true",
        help="also render the exhibit's ASCII figure, if it has one",
    )
    list_cmd = sub.add_parser("list", help="list exhibit ids")
    del list_cmd
    args = parser.parse_args(argv)

    if args.command == "list":
        for exhibit_id in EXPERIMENTS:
            print(exhibit_id)
        return 0

    ctx = ExperimentContext(
        RunSettings(
            horizon_ms=args.horizon_ms,
            warmup_ms=args.warmup_ms,
            seed=args.seed,
        )
    )
    targets = list(EXPERIMENTS) if args.exhibit == "all" else [args.exhibit]
    for exhibit_id in targets:
        start = time.time()
        exhibit = run_experiment(exhibit_id, ctx)
        print(exhibit.to_text())
        if args.charts:
            from repro.experiments.registry import render_chart

            figure = render_chart(exhibit_id, ctx)
            if figure:
                print()
                print(figure)
        print(f"  [{time.time() - start:.1f}s]")
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
