"""Command-line entry point: ``python -m repro.experiments run <id|all>``.

Exhibit tables go to **stdout**; timing and cache statistics go to
**stderr**. That split is load-bearing: CI compares the stdout of a
cold run against a warm-cache or parallel run byte for byte.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from repro.analysis.report import analyze_trace
from repro.experiments import parallel
from repro.experiments._base import ExperimentContext, RunSettings
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.fidelity import resolve_fast_forward, resolve_fidelity
from repro.machines import MACHINES, machine_for_cpus, resolve_machine_name
from repro.sanitizers import check_enabled_by_env, deep_check_enabled_by_env
from repro.sim.runcache import RunCache
from repro.sim.sharded import SHARD_STATS, resolve_shards
from repro.workloads import parse_workload_args

# argparse defaults come from the dataclass so the CLI cannot drift
# from the settings the library and fixtures use.
_DEFAULTS = RunSettings()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    run_cmd = sub.add_parser("run", help="run one or all experiments")
    run_cmd.add_argument("exhibit", help="exhibit id (e.g. table1) or 'all'")
    run_cmd.add_argument("--horizon-ms", type=float, default=_DEFAULTS.horizon_ms)
    run_cmd.add_argument("--warmup-ms", type=float, default=_DEFAULTS.warmup_ms)
    run_cmd.add_argument("--seed", type=int, default=_DEFAULTS.seed)
    run_cmd.add_argument(
        "--jobs", type=int, default=parallel.default_jobs(), metavar="N",
        help="worker processes for simulations and exhibit builds "
             "(default: min(3, cpu_count))",
    )
    run_cmd.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard the analysis pass across N processes; output is "
             "byte-identical to serial (default: $REPRO_SHARDS or 1)",
    )
    run_cmd.add_argument(
        "--fidelity", choices=("detailed", "atomic", "mixed"), default=None,
        help="engine tier: 'detailed' (exact, the default), 'atomic' "
             "(functional-first, no stall accounting), or 'mixed' "
             "(atomic warmup, detailed measured window) "
             "(default: $REPRO_FIDELITY or detailed)",
    )
    run_cmd.add_argument(
        "--fast-forward", type=int, default=None, metavar="REFS",
        help="mixed tier: hand off to the detailed engine after REFS "
             "atomic references instead of at the warmup seam "
             "(default: $REPRO_FAST_FORWARD or 0)",
    )
    machine_group = run_cmd.add_mutually_exclusive_group()
    machine_group.add_argument(
        "--machine", choices=tuple(MACHINES), default=None, metavar="NAME",
        help="machine preset from repro.machines: "
             f"{', '.join(MACHINES)} (default: $REPRO_MACHINE or 4d340)",
    )
    machine_group.add_argument(
        "--cpus", type=int, default=None, metavar="N",
        help="shorthand for --machine: the preset with exactly N CPUs",
    )
    run_cmd.add_argument(
        "--workload-arg", action="append", default=None, metavar="K=V",
        dest="workload_args",
        help="workload tuning knob (repeatable), e.g. --workload-arg "
             "skew=1.2; applies to every workload the exhibit runs and "
             "folds into the cache keys",
    )
    run_cmd.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent run-cache location (default: $REPRO_CACHE_DIR "
             "or ~/.cache/repro)",
    )
    run_cmd.add_argument(
        "--no-cache", action="store_true",
        help="neither read nor write the persistent run cache "
             "(also: REPRO_NO_CACHE=1)",
    )
    run_cmd.add_argument(
        "--charts", action="store_true",
        help="also render the exhibit's ASCII figure, if it has one",
    )
    run_cmd.add_argument(
        "--check", action="store_true",
        help="run with the repro.sanitizers invariant checkers (lockdep, "
             "races, coherence, LL/SC) and fail on any violation "
             "(also: REPRO_CHECK=1)",
    )
    run_cmd.add_argument(
        "--check-deep", action="store_true",
        help="--check plus per-block attribution of dread_block/"
             "dwrite_block sweeps (also: REPRO_CHECK=deep)",
    )
    run_cmd.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="exhibit output format on stdout (default: text)",
    )
    sub.add_parser("list", help="list exhibit ids")
    args = parser.parse_args(argv)

    if args.command == "list":
        for exhibit_id in EXPERIMENTS:
            print(exhibit_id)
        return 0

    if args.check_deep or deep_check_enabled_by_env():
        check = "deep"
    else:
        check = args.check or check_enabled_by_env()
    if check and args.jobs > 1:
        # Reports live on the simulations in this process; worker
        # processes would strand them. Checked runs are serial.
        print("[--check forces jobs=1]", file=sys.stderr)
        args.jobs = 1
    shards = resolve_shards(args.shards)
    fidelity = resolve_fidelity(args.fidelity)
    fast_forward = resolve_fast_forward(args.fast_forward)
    try:
        if args.cpus is not None:
            machine = machine_for_cpus(args.cpus)
        else:
            machine = resolve_machine_name(args.machine)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        workload_args = parse_workload_args(args.workload_args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if check and fidelity == "atomic":
        # Fail fast with the library's own message instead of dying
        # workload-by-workload inside the runs.
        print(
            "error: --check requires fidelity 'detailed' or 'mixed'",
            file=sys.stderr,
        )
        return 2
    if fidelity == "atomic":
        # Atomic runs carry no monitor trace, so every exhibit would
        # render all-zero measured rows; refuse rather than print
        # silently wrong tables.
        print(
            "error: exhibits need a traced run; use --fidelity mixed "
            "for a fast-forwarded build (atomic is for "
            "Simulation-level use)",
            file=sys.stderr,
        )
        return 2
    cache = RunCache(cache_dir=args.cache_dir, enabled=not args.no_cache)
    ctx = ExperimentContext(
        RunSettings(
            horizon_ms=args.horizon_ms,
            warmup_ms=args.warmup_ms,
            seed=args.seed,
            check=check,
            shards=shards,
            fidelity=fidelity,
            fast_forward=fast_forward,
            machine=machine,
            workload_args=workload_args,
        ),
        cache=cache,
    )
    targets = list(EXPERIMENTS) if args.exhibit == "all" else [args.exhibit]
    start = time.time()
    if args.jobs <= 1:
        # Serial: print each exhibit as it completes.
        built = ((e, run_experiment(e, ctx)) for e in targets)
    else:
        try:
            built = parallel.run_exhibits(ctx, targets, jobs=args.jobs)
        except parallel.ParallelWorkerError as exc:
            # No serial fallback: a degraded run would report wrong
            # timings as successful. Surface the worker failure and die.
            print(f"parallel run failed: {exc}", file=sys.stderr)
            return 3
    if args.format == "json":
        # One JSON array for the whole invocation; --charts is a
        # text-rendering concern and does not apply here.
        payload = [exhibit.to_dict() for _, exhibit in built]
        print(json.dumps(payload, indent=2))
    else:
        for exhibit_id, exhibit in built:
            print(exhibit.to_text())
            if args.charts:
                from repro.experiments.registry import render_chart

                figure = render_chart(exhibit_id, ctx)
                if figure:
                    print()
                    print(figure)
            print()
    print(f"[{time.time() - start:.1f}s, jobs={args.jobs}]", file=sys.stderr)
    print(cache.stats_line(), file=sys.stderr)
    if shards > 1:
        print(SHARD_STATS.stats_line(), file=sys.stderr)
        # One line per shard seam, each asserting the spliced monitor
        # counters equal the scout checkpoint; CI greps these to prove
        # the sharded run reproduced the serial stream exactly.
        for line in SHARD_STATS.seam_lines:
            print(line, file=sys.stderr)
    if check:
        return _report_checks(ctx)
    return 0


def _report_checks(ctx: ExperimentContext) -> int:
    """Summarize the sanitizer reports of every run behind the exhibits.

    Summaries go to stderr (one line per run) so checked stdout stays
    byte-identical to unchecked stdout; full violation reports are
    printed only when something fired. Exit code 2 on any violation.
    """
    reports = []
    crosscheck_failed = False
    for run in ctx.all_runs():
        report = run.check_report
        if report is not None:
            reports.append(report)
            # Cross-validate the checker's bus accounting against the
            # monitor's recorded transactions for the same run.
            analysis_report = analyze_trace(run, keep_imiss_stream=False)
            for line in analysis_report.crosscheck_lines():
                print(f"  {run.workload_name}: {line}", file=sys.stderr)
            if not analysis_report.crosscheck_ok():
                crosscheck_failed = True
    if not reports:
        # Exhibits (and their checked runs) came straight from the cache;
        # they were verified clean when stored. Use --no-cache to re-check.
        print("sanitizers: all runs served from cache (verified at store "
              "time); --no-cache re-checks", file=sys.stderr)
        return 0
    failed = crosscheck_failed
    for report in reports:
        print(report.summary(), file=sys.stderr)
        if not report.ok:
            failed = True
            print(report.to_text(), file=sys.stderr)
    return 2 if failed else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
