"""The Section 3 footnote: does database size change the OS picture?

"To see if the size of the database affects the cache performance of
the OS, we ran a subset of the experiments using a standard-sized
benchmark. We show in [18] that the characteristics of the OS misses in
the standard benchmark are qualitatively the same as the ones in
Oracle." This exhibit re-runs that check: the scaled (measured) TP1 vs
a standard-sized one, comparing the OS miss-class profile.
"""

from __future__ import annotations

from repro.analysis.report import analyze_trace
from repro.common.types import MissClass, RefDomain
from repro.experiments._base import Exhibit, ExperimentContext
from repro.sim._session import Simulation
from repro.workloads.oracle import OracleWorkload

EXHIBIT_ID = "oracle-scale"
TITLE = "Scaled vs standard-sized TP1: OS miss characteristics"

_COLUMNS = (
    "config", "OSmiss/all%", "I-share%", "cold%", "dispos%", "dispap%",
    "sharing%",
)

_CLASSES = (MissClass.COLD, MissClass.DISPOS, MissClass.DISPAP,
            MissClass.SHARING)


def _profile(report) -> tuple:
    analysis = report.analysis
    os_total = analysis.total_misses(RefDomain.OS) or 1
    i_share = 100.0 * sum(
        count for (dom, kind, _c), count in analysis.miss_counts.items()
        if dom is RefDomain.OS and kind == "I"
    ) / os_total
    class_shares = tuple(
        round(100.0 * sum(
            count for (dom, _k, cls), count in analysis.miss_counts.items()
            if dom is RefDomain.OS and cls is target
        ) / os_total, 1)
        for target in _CLASSES
    )
    return (round(report.os_miss_fraction_pct, 1), round(i_share, 1),
            *class_shares)


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    settings = ctx.settings
    for scale in ("scaled", "standard"):
        sim = Simulation(OracleWorkload(scale=scale), seed=settings.seed)
        run = sim.run(settings.horizon_ms, warmup_ms=settings.warmup_ms)
        report = analyze_trace(run, keep_imiss_stream=False)
        exhibit.add_row(scale, *_profile(report))
    exhibit.note(
        "paper (Section 3, citing its companion report): the OS miss "
        "characteristics of the standard benchmark are qualitatively the "
        "same as the scaled one"
    )
    return exhibit
