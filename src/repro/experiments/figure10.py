"""Figure 10: application misses induced by OS interference (Ap_dispos)."""

from __future__ import annotations

from repro.common.types import RefDomain
from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext

EXHIBIT_ID = "figure10"
TITLE = "Application misses induced by the OS (Ap_dispos)"

_COLUMNS = ("workload", "apdispos_D%", "apdispos_I%", "apdispos_total%")


def ap_dispos_share(analysis) -> tuple:
    app_total = analysis.total_misses(RefDomain.APP)
    if not app_total:
        return 0.0, 0.0, 0.0
    d = 100.0 * analysis.ap_dispos.get("D", 0) / app_total
    i = 100.0 * analysis.ap_dispos.get("I", 0) / app_total
    return d, i, d + i


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    for workload in paperdata.WORKLOADS:
        d, i, total = ap_dispos_share(ctx.report(workload).analysis)
        exhibit.add_row(workload, d, i, total)
    low, high = paperdata.FIGURE10["ap_dispos_range_pct"]
    exhibit.note(
        f"paper: Ap_dispos misses are {low:.0f}-{high:.0f}% of all "
        "application misses"
    )
    return exhibit
