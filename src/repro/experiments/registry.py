"""Registry mapping exhibit ids to experiment modules."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments import (
    ablation_affinity, ablation_blockops, ablation_layout,
    ablation_runqueues, figure_skew, oracle_scale, scaling,
    tr_distributions,
    figure1, figure2, figure3, figure4, figure5, figure6, figure7,
    figure8, figure9, figure10, figure11,
    table1, table2, table3, table4, table5, table6, table7, table8,
    table9, table10, table11, table12, validate_fidelity,
)
from repro.experiments._base import Exhibit, ExperimentContext

# The paper's exhibits.
PAPER_EXPERIMENTS: Dict[str, object] = {
    module.EXHIBIT_ID: module
    for module in (
        table1, figure1, figure2, figure3, table2, figure4, figure5,
        figure6, figure7, figure8, table3, table4, table5, table6,
        table7, table8, figure9, table9, figure10, table10, table11,
        table12, figure11,
    )
}

# The optimizations the paper proposes but leaves unevaluated, carried
# out as ablations.
ABLATION_EXPERIMENTS: Dict[str, object] = {
    module.EXHIBIT_ID: module
    for module in (
        ablation_layout, ablation_blockops, ablation_affinity,
        ablation_runqueues, oracle_scale, tr_distributions,
    )
}

# Self-validation exhibits: not paper content, but reproduction
# infrastructure proving its own error bounds (the fidelity tiers).
VALIDATION_EXPERIMENTS: Dict[str, object] = {
    module.EXHIBIT_ID: module for module in (validate_fidelity,)
}

# Extensions past the measured machine: sweeps over the repro.machines
# preset ladder and the server workloads' tuning knobs, probing the
# paper's scaling predictions under traffic it never saw.
EXTENSION_EXPERIMENTS: Dict[str, object] = {
    module.EXHIBIT_ID: module for module in (scaling, figure_skew)
}

EXPERIMENTS: Dict[str, object] = {
    **PAPER_EXPERIMENTS, **ABLATION_EXPERIMENTS, **VALIDATION_EXPERIMENTS,
    **EXTENSION_EXPERIMENTS,
}

# Short CLI/service spellings for exhibit ids. Resolution happens before
# any cache I/O, so an alias and its canonical id share cache entries
# and serve byte-identical payloads.
ALIASES: Dict[str, str] = {
    "scaling": scaling.EXHIBIT_ID,
    "skew": figure_skew.EXHIBIT_ID,
}


def resolve_exhibit_id(exhibit_id: str) -> str:
    """Canonical exhibit id, mapping registered aliases through."""
    return ALIASES.get(exhibit_id, exhibit_id)


def exhibit_metadata(exhibit_id: str) -> Dict[str, object]:
    """Machine-readable description of one registered exhibit.

    This is the exhibit *registry* view (title, kind, chart support) —
    static facts a service can list without building anything. Row data
    comes from :func:`run_experiment`.
    """
    module = get_experiment(exhibit_id)
    exhibit_id = resolve_exhibit_id(exhibit_id)
    if exhibit_id.startswith("table"):
        kind = "table"
    elif exhibit_id.startswith("figure"):
        kind = "figure"
    elif exhibit_id.startswith("ablation"):
        kind = "ablation"
    else:
        kind = "extra"
    doc = (module.__doc__ or "").strip().splitlines()
    return {
        "id": exhibit_id,
        "title": getattr(module, "TITLE", exhibit_id),
        "kind": kind,
        "paper": exhibit_id in PAPER_EXPERIMENTS,
        "has_chart": getattr(module, "chart", None) is not None,
        "description": doc[0] if doc else "",
    }


def list_exhibit_metadata() -> List[Dict[str, object]]:
    """Metadata for every registered exhibit, in registry order."""
    return [exhibit_metadata(exhibit_id) for exhibit_id in EXPERIMENTS]


def get_experiment(exhibit_id: str):
    try:
        return EXPERIMENTS[resolve_exhibit_id(exhibit_id)]
    except KeyError:
        raise ValueError(
            f"unknown exhibit {exhibit_id!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None


def run_experiment(
    exhibit_id: str, ctx: Optional[ExperimentContext] = None
) -> Exhibit:
    """Build one exhibit (creating a context if none is shared).

    Built exhibits are cached on the context, so charts and repeated
    requests do not repeat the expensive sweeps. When the context has a
    persistent :class:`~repro.sim.runcache.RunCache`, finished exhibit
    tables are also kept on disk — this is what lets warm
    ``repro-experiments run all`` invocations skip even the private
    simulations the ablation exhibits run outside the shared context.
    """
    if ctx is None:
        ctx = ExperimentContext()
    exhibit_id = resolve_exhibit_id(exhibit_id)
    if exhibit_id not in ctx.exhibit_cache:
        get_experiment(exhibit_id)  # reject unknown ids before cache I/O
        exhibit = ctx.load_cached_exhibit(exhibit_id)
        if exhibit is None:
            exhibit = get_experiment(exhibit_id).build(ctx)
            ctx.store_cached_exhibit(exhibit_id, exhibit)
        ctx.exhibit_cache[exhibit_id] = exhibit
    return ctx.exhibit_cache[exhibit_id]


def render_chart(exhibit_id: str, ctx: ExperimentContext) -> Optional[str]:
    """The exhibit's ASCII figure, if its module draws one."""
    module = get_experiment(exhibit_id)
    chart = getattr(module, "chart", None)
    if chart is None:
        return None
    return chart(ctx)
