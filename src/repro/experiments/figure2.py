"""Figure 2: frequency of the operations executed by the OS in Multpgm
(UTLB faults excluded)."""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext

EXHIBIT_ID = "figure2"
TITLE = "Frequency of OS operations in Multpgm (no UTLB faults)"

_COLUMNS = ("operation", "paper_share%", "measured_share%")

# Aggregate the analyzer's fine op labels into the figure's buckets.
_BUCKETS = {
    "sginap": ("sginap_syscall",),
    "tlb_faults": ("expensive_tlb_fault", "cheap_tlb_fault"),
    "io_syscalls": ("io_syscall",),
    "other_syscalls": ("other_syscall",),
    "clock_interrupts": ("intr_clock",),
    "other_interrupts": (
        "intr_disk", "intr_terminal", "intr_inter_cpu", "intr_network",
    ),
}


def operation_shares(analysis) -> dict:
    """Share of each Figure 2 bucket among all OS operations."""
    counts = {}
    for bucket, labels in _BUCKETS.items():
        counts[bucket] = sum(analysis.op_counts.get(label, 0) for label in labels)
    # The bare 'interrupt' op_count double-counts the INTR_* buckets
    # (every interrupt invocation also logs its kind); use the kinds.
    total = sum(counts.values())
    if not total:
        return {bucket: 0.0 for bucket in counts}
    return {bucket: 100.0 * count / total for bucket, count in counts.items()}


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    shares = operation_shares(ctx.report("multpgm").analysis)
    paper_shares = {
        "sginap": paperdata.FIGURE2["sginap"],
        "tlb_faults": paperdata.FIGURE2["tlb_faults"],
        "io_syscalls": paperdata.FIGURE2["io_syscalls"],
        "clock_interrupts": paperdata.FIGURE2["clock_interrupts"],
    }
    for bucket, measured in sorted(shares.items(), key=lambda kv: -kv[1]):
        exhibit.add_row(bucket, paper_shares.get(bucket, "-"), measured)
    exhibit.note("paper: ~50% sginap, ~20% TLB faults, ~20% I/O, ~5% clock")
    return exhibit


def chart(ctx: ExperimentContext) -> str:
    """Figure 2 as an ASCII bar chart."""
    from repro.analysis.charts import bar_chart

    shares = operation_shares(ctx.report("multpgm").analysis)
    items = sorted(shares.items(), key=lambda kv: -kv[1])
    return bar_chart(items, title="OS operation mix in Multpgm", unit="%")
