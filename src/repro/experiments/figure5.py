"""Figure 5: self-interference (Dispos) I-misses by OS routine address.

The paper plots Dispos misses against the physical address of the
routine where they occur (X in multiples of the 64 KB I-cache size) and
observes thin spikes — the misses concentrate in a few conflicting
routines. We report the top routines and the spike concentration.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.experiments._base import Exhibit, ExperimentContext

EXHIBIT_ID = "figure5"
TITLE = "Dispos I-misses by OS routine (Pmake)"

_COLUMNS = ("routine", "dispos_misses", "share%", "icache_offset_kb")


def address_profile(analysis) -> List[Tuple[int, int]]:
    """(address bucket, misses) — the figure's raw series."""
    return sorted(analysis.imiss_dispos_addr_hist.items())


def top_routines(analysis, layout, n: int = 10) -> List[Tuple[str, int]]:
    ranked = analysis.imiss_dispos_by_routine.most_common(n)
    return ranked


def concentration(analysis, top_n: int = 5) -> float:
    """Fraction of Dispos I-misses in the top N routines (spikiness)."""
    counts = analysis.imiss_dispos_by_routine
    total = sum(counts.values())
    if not total:
        return 0.0
    top = sum(count for _name, count in counts.most_common(top_n))
    return 100.0 * top / total


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    run = ctx.run("pmake")
    analysis = ctx.report("pmake").analysis
    total = sum(analysis.imiss_dispos_by_routine.values())
    for name, count in top_routines(analysis, run.kernel.layout):
        routine = run.kernel.layout.routine(name)
        exhibit.add_row(
            name,
            count,
            100.0 * count / total if total else 0.0,
            routine.cache_offset() / 1024.0,
        )
    exhibit.note(
        f"top-5 routines hold {concentration(analysis):.0f}% of all "
        "self-interference misses (the paper's 'thin spikes')"
    )
    return exhibit


def chart(ctx: ExperimentContext) -> str:
    """Figure 5 as an address-profile chart (X folded on the I-cache)."""
    from repro.analysis.charts import profile_chart
    from repro.analysis.decode import FIG5_BUCKET_BYTES

    analysis = ctx.report("pmake").analysis
    return profile_chart(
        address_profile(analysis),
        bucket_bytes=FIG5_BUCKET_BYTES,
        region_bytes=64 * 1024,
        title="Dispos I-misses vs OS routine physical address (Pmake)",
    )
