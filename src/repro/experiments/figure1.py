"""Figure 1: the basic OS/application interleaving pattern.

Reports the quantities the figure annotates: mean interval between OS
invocations, mean misses per OS invocation, and the UTLB fault costs.
"""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext
from repro.experiments.derive import invocation_interval_ms, mean_invocation_misses

EXHIBIT_ID = "figure1"
TITLE = "Average times and misses in the basic execution pattern"

_COLUMNS = (
    "workload", "source", "inv_interval_ms", "inv_Imiss", "inv_Dmiss",
    "utlb/app-interval", "utlb_misses_per_fault",
)


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    for workload in paperdata.WORKLOADS:
        paper_interval = paperdata.FIGURE1["invocation_interval_ms"][workload]
        if workload == "pmake":
            exhibit.add_row(
                workload, "paper", paper_interval,
                paperdata.FIGURE1["pmake_inv_imisses"],
                paperdata.FIGURE1["pmake_inv_dmisses"],
                "-", paperdata.FIGURE1["utlb_misses_per_fault"],
            )
        else:
            exhibit.add_row(workload, "paper", paper_interval, "-", "-", "-",
                            paperdata.FIGURE1["utlb_misses_per_fault"])
        analysis = ctx.report(workload).analysis
        imiss, dmiss = mean_invocation_misses(analysis)
        utlb_per_interval = (
            sum(i.utlb_faults for i in analysis.app_intervals)
            / len(analysis.app_intervals)
            if analysis.app_intervals else 0.0
        )
        utlb_miss_rate = (
            analysis.utlb_misses / analysis.utlb_count
            if analysis.utlb_count else 0.0
        )
        exhibit.add_row(
            workload, "measured",
            invocation_interval_ms(analysis),
            imiss, dmiss, utlb_per_interval, utlb_miss_rate,
        )
    exhibit.note(
        "paper reports per-invocation misses only for Pmake (154 I / 141 D); "
        "UTLB faults average < 0.1 misses each"
    )
    return exhibit
