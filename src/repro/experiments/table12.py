"""Table 12: characteristics of the most frequently acquired locks in
Pmake."""

from __future__ import annotations

from repro.analysis.lockstats import lock_table_rows
from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext

EXHIBIT_ID = "table12"
TITLE = "Lock characteristics in Pmake"

_COLUMNS = (
    "lock", "source", "kcycles_between_acq", "failed%", "waiters_if_any",
    "same_cpu_no_interv%", "cached/uncached%",
)

_SINGLETONS = ("memlock", "runqlk", "ifree", "dfbmaplk", "bfreelock", "calock")


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    run = ctx.run("pmake")
    exhibit.add_check_coverage(run)
    total_cycles = max(proc.cycles for proc in run.processors)
    rows = {
        row.name: row
        for row in lock_table_rows(
            run.kernel, total_cycles, min_acquires=1, families=list(_SINGLETONS)
        )
    }
    for lock in _SINGLETONS:
        paper = paperdata.TABLE12[lock]
        exhibit.add_row(lock, "paper", *paper)
        row = rows.get(lock)
        if row is None:
            exhibit.add_row(lock, "measured", "-", "-", "-", "-", "-")
            continue
        exhibit.add_row(
            lock, "measured",
            row.kcycles_between_acquires, row.failed_pct, row.waiters_if_any,
            row.same_cpu_no_intervening_pct, row.cached_to_uncached_pct,
        )
    exhibit.note(
        "inter-acquire cycles include idle time; failed acquires ignore "
        "spinning; cached/uncached is the LL/SC what-if bus-traffic ratio"
    )
    return exhibit
