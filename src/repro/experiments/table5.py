"""Table 5: fraction of migration misses in three common operations."""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext
from repro.experiments.derive import migration_misses

EXHIBIT_ID = "table5"
TITLE = "Migration misses by operation"

_COLUMNS = (
    "workload", "source", "runq_mgmt%", "low_level_exc%", "rw_setup%",
    "total%",
)


def operation_shares(analysis) -> dict:
    total = migration_misses(analysis)["total"]
    ops = analysis.migration_op_misses
    if not total:
        return {"run_queue_mgmt": 0.0, "low_level_exception": 0.0,
                "rw_setup": 0.0, "total": 0.0}
    shares = {
        key: 100.0 * ops.get(key, 0) / total
        for key in ("run_queue_mgmt", "low_level_exception", "rw_setup")
    }
    shares["total"] = sum(shares.values())
    return shares


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    for workload in paperdata.WORKLOADS:
        exhibit.add_row(workload, "paper", *paperdata.TABLE5[workload])
        shares = operation_shares(ctx.report(workload).analysis)
        exhibit.add_row(
            workload, "measured",
            shares["run_queue_mgmt"], shares["low_level_exception"],
            shares["rw_setup"], shares["total"],
        )
    exhibit.note(
        "operation attribution via the structures each operation touches: "
        "PCB/run-queue <-> run-queue management, Eframe <-> low-level "
        "exception handling, user-structure body in I/O calls <-> "
        "read/write setup"
    )
    return exhibit
