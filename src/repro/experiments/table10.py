"""Table 10: stall time caused by OS synchronization accesses —
the real sync-bus machine vs the cached LL/SC what-if."""

from __future__ import annotations

from repro.analysis.lockstats import sync_stall_summary
from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext

EXHIBIT_ID = "table10"
TITLE = "OS synchronization stall: sync bus vs atomic RMW + caches"

_COLUMNS = ("workload", "source", "current_machine%", "cached_rmw%")


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    for workload in paperdata.WORKLOADS:
        exhibit.add_row(workload, "paper", *paperdata.TABLE10[workload])
        run = ctx.run(workload)
        summary = sync_stall_summary(run.kernel, run.processors)
        exhibit.add_row(
            workload, "measured",
            summary.current_machine_pct, summary.cached_rmw_pct,
        )
    exhibit.note(
        "what-if assumes R4000 load-linked/store-conditional locks kept "
        "coherent by the main bus's invalidation protocol (Section 5.1)"
    )
    return exhibit
