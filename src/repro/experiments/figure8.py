"""Figure 8: Sharing misses by contributing kernel data structure."""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext
from repro.experiments.derive import USTRUCT_PARTS
from repro.kernel.structures import StructName

EXHIBIT_ID = "figure8"
TITLE = "OS Sharing misses by data structure"

_COLUMNS = ("workload", "structure", "share_of_sharing%")


def structure_shares(analysis) -> dict:
    total = sum(analysis.sharing_by_struct.values())
    if not total:
        return {}
    return {
        struct: 100.0 * count / total
        for struct, count in analysis.sharing_by_struct.items()
    }


def private_state_share(analysis) -> float:
    """Kernel Stack + User Structure + Process Table share (paper:
    together 40-65% of Sharing misses)."""
    shares = structure_shares(analysis)
    parts = (StructName.KERNEL_STACK, StructName.PROC_TABLE) + USTRUCT_PARTS
    return sum(shares.get(part, 0.0) for part in parts)


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    for workload in paperdata.WORKLOADS:
        analysis = ctx.report(workload).analysis
        shares = structure_shares(analysis)
        for struct, share in sorted(shares.items(), key=lambda kv: -kv[1]):
            if share >= 1.0:
                exhibit.add_row(workload, struct.value, share)
        exhibit.add_row(
            workload, "[private state total]", private_state_share(analysis)
        )
    low, high = paperdata.FIGURE8["private_state_share_range_pct"]
    exhibit.note(
        f"paper: per-process private state accounts for {low:.0f}-{high:.0f}% "
        "of Sharing misses — migration, not true sharing"
    )
    return exhibit


def chart(ctx: ExperimentContext) -> str:
    """Figure 8 as per-workload bar charts."""
    from repro.analysis.charts import bar_chart

    blocks = []
    for workload in paperdata.WORKLOADS:
        shares = structure_shares(ctx.report(workload).analysis)
        items = [
            (struct.value, share)
            for struct, share in sorted(shares.items(), key=lambda kv: -kv[1])
            if share >= 1.0
        ]
        blocks.append(bar_chart(
            items, title=f"{workload}: Sharing misses by structure", unit="%"
        ))
    return "\n\n".join(blocks)
