"""Figure 11: lock contention vs number of CPUs (Multpgm).

Runs Multpgm on machines with 1-8 CPUs and reports failed acquires per
millisecond for the most contended locks (spins excluded, idle time
included — exactly the figure's Y axis).
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.lockstats import failed_acquires_per_ms
from repro.common.params import MachineParams
from repro.experiments._base import Exhibit, ExperimentContext, RunSettings

EXHIBIT_ID = "figure11"
TITLE = "Failed lock acquires per ms vs number of CPUs (Multpgm)"

_COLUMNS = ("lock", "1cpu", "2cpu", "4cpu", "6cpu", "8cpu")

CPU_COUNTS = (1, 2, 4, 6, 8)
# Shorter window: five whole-machine runs are expensive.
_SETTINGS = RunSettings(horizon_ms=40.0, warmup_ms=250.0, seed=7)

_LOCKS_SHOWN = ("runqlk", "memlock", "bfreelock", "calock")


def contention_series(
    seed: int = 7, cpu_counts=CPU_COUNTS,
    horizon_ms: float = _SETTINGS.horizon_ms,
    warmup_ms: float = _SETTINGS.warmup_ms,
) -> Dict[str, List[float]]:
    """failed acquires/ms per lock family, one value per CPU count."""
    from repro.sim._session import Simulation

    series: Dict[str, List[float]] = {lock: [] for lock in _LOCKS_SHOWN}
    for ncpus in cpu_counts:
        params = MachineParams(num_cpus=ncpus)
        sim = Simulation("multpgm", params=params, seed=seed)
        sim.run(horizon_ms, warmup_ms=warmup_ms)
        wall_ms = (warmup_ms + horizon_ms)
        rates = failed_acquires_per_ms(sim.kernel, wall_ms)
        for lock in _LOCKS_SHOWN:
            series[lock].append(rates.get(lock, 0.0))
    return series


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    series = contention_series(seed=ctx.settings.seed)
    for lock, values in series.items():
        exhibit.add_row(lock, *[round(v, 3) for v in values])
    exhibit.note(
        "paper: contention rises with CPU count and Runqlk rises fastest — "
        "'contention for Runqlk will be significant for machines with more "
        "CPUs'"
    )
    return exhibit


def chart(ctx: ExperimentContext) -> str:
    """Figure 11 as contention-vs-CPUs series (reuses the built exhibit)."""
    from repro.analysis.charts import series_chart
    from repro.experiments.registry import run_experiment

    exhibit = run_experiment(EXHIBIT_ID, ctx)
    series = {row[0]: [float(v) for v in row[1:]] for row in exhibit.rows}
    return series_chart(
        list(CPU_COUNTS), series,
        title="Failed acquires per ms vs number of CPUs (Multpgm)",
        unit="/ms",
    )
