"""Ablation: distributed run queues on a larger machine (Section 6).

"The run queue should be distributed across clusters ... Processes can
then be encouraged to remain in the same run queue and therefore run
mostly on the CPUs of one cluster." Runs Multpgm on an 8-CPU machine
with one global queue vs one queue per 2-CPU cluster and compares
Runqlk contention (the Figure 11 metric) and migrations.
"""

from __future__ import annotations

from repro.analysis.lockstats import failed_acquires_per_ms
from repro.common.params import MachineParams
from repro.experiments._base import Exhibit, ExperimentContext
from repro.kernel.kernel import KernelTuning
from repro.kernel.vm import VmTuning
from repro.sim.config import CALIBRATIONS
from repro.sim._session import Simulation

EXHIBIT_ID = "ablation-runqueues"
TITLE = "Global vs distributed run queues on 8 CPUs (Multpgm)"

_COLUMNS = ("metric", "global_queue", "per_cluster_queues", "change%")

NUM_CPUS = 8
NUM_CLUSTERS = 4


def _run(ctx: ExperimentContext, num_queues: int):
    settings = ctx.settings
    calibration = CALIBRATIONS["multpgm"]
    tuning = KernelTuning(
        quantum_ms=calibration.quantum_ms,
        num_run_queues=num_queues,
        vm=VmTuning(baseline_frames=calibration.baseline_frames),
    )
    sim = Simulation(
        "multpgm", params=MachineParams(num_cpus=NUM_CPUS),
        seed=settings.seed, tuning=tuning, check=settings.check,
    )
    run = ctx.note_private_run(
        sim.run(settings.horizon_ms, warmup_ms=settings.warmup_ms)
    )
    wall_ms = settings.warmup_ms + settings.horizon_ms
    rates = failed_acquires_per_ms(sim.kernel, wall_ms)
    runqlk = sim.kernel.locks.family_stats()["runqlk"]
    sched = sim.kernel.scheduler
    return run, {
        "runqlk failed acquires/ms": round(rates.get("runqlk", 0.0), 3),
        "runqlk failed %": round(runqlk.failed_pct, 2),
        "migrations": sched.migrations,
        "cross-queue steals": sched.cross_queue_steals,
        "context switches": sched.context_switches,
    }


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    global_run, global_queue = _run(ctx, num_queues=1)
    clustered_run, clustered = _run(ctx, num_queues=NUM_CLUSTERS)
    exhibit.add_check_coverage(global_run, clustered_run)
    for metric in global_queue:
        a, b = global_queue[metric], clustered[metric]
        change = 100.0 * (b - a) / a if a else 0.0
        exhibit.add_row(metric, a, b, round(change, 1))
    exhibit.note(
        "distributing the queue splits Runqlk contention across per-cluster "
        "locks and keeps processes inside their cluster (fewer migrations), "
        "the Section 6 prediction"
    )
    return exhibit
