"""Fidelity validation exhibit: mixed-tier error report per workload.

Runs every workload once detailed and once mixed at the context's
settings, compares all Table 2/11/12 statistics from the measured
windows (:func:`repro.fidelity.validate.compare_runs`), and tabulates
each comparison with its verdict. The machine-readable JSON error
report is attached as an exhibit note, so the service and CI consume
the same artifact the text table renders.

Wall-clock speedups are deliberately absent here — exhibit output must
be deterministic (CI byte-compares cold and warm runs). Use
``python -m repro.fidelity.validate`` for the timed report.
"""

from __future__ import annotations

import json

from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext
from repro.fidelity.validate import compare_runs

EXHIBIT_ID = "validate-fidelity"
TITLE = "Mixed-fidelity bounded-error validation (Tables 2/11/12)"

_COLUMNS = (
    "workload", "table", "statistic", "detailed", "mixed", "error",
    "bound", "verdict",
)


def _num(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    # Pin the baseline to detailed when the context's default tier is
    # something else (a fast-forwarded `run all` sweep would otherwise
    # compare mixed against itself). With a detailed default the empty
    # override shares the other exhibits' in-memory runs.
    baseline = {}
    if (getattr(ctx.settings, "fidelity", "detailed") != "detailed"
            or getattr(ctx.settings, "fast_forward", 0)):
        baseline = {"fidelity": "detailed", "fast_forward": 0}
    report_blob = []
    failures = 0
    for workload in paperdata.WORKLOADS:
        detailed_run = ctx.run(workload, **baseline)
        detailed_report = ctx.report(workload, **baseline)
        mixed_run = ctx.run(workload, fidelity="mixed")
        mixed_report = ctx.report(workload, fidelity="mixed")
        checks = compare_runs(
            detailed_run, mixed_run, detailed_report, mixed_report
        )
        for check in checks:
            if not check.ok:
                failures += 1
            # Pre-format the numeric cells: the generic float rendering
            # is .1f, which would flatten errors like 0.032 to "0.0".
            exhibit.add_row(
                workload, check.table, check.name,
                _num(check.detailed), _num(check.mixed),
                f"{check.error:.3f}", _num(check.bound),
                "ok" if check.ok else "OUT OF BOUND",
            )
        report_blob.append(
            {
                "workload": workload,
                "fast_forwarded_refs": mixed_run.fast_forwarded_refs,
                "seam_cycles": mixed_run.seam_cycles,
                "ok": all(check.ok for check in checks),
                "checks": [check.to_dict() for check in checks],
            }
        )
    exhibit.note(
        "mixed-tier drift vs detailed over the same measured window; "
        "count errors are symmetric relative, share errors are "
        "percentage points (bounds sized above seed-to-seed variance)"
    )
    exhibit.note("json:" + json.dumps(report_blob, sort_keys=True))
    if failures:
        exhibit.note(f"{failures} STATISTIC(S) OUT OF BOUND")
    return exhibit
