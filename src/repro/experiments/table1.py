"""Table 1: characteristics of the workloads."""

from __future__ import annotations

from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext

EXHIBIT_ID = "table1"
TITLE = "Characteristics of the workloads"

_COLUMNS = (
    "workload", "source", "user%", "sys%", "idle%", "OSmiss/all%",
    "stall(all)%", "stall(OS)%", "stall(OS+induced)%",
)


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    for workload in paperdata.WORKLOADS:
        paper = paperdata.TABLE1[workload]
        exhibit.add_row(workload, "paper", *paper)
        report = ctx.report(workload)
        exhibit.add_row(
            workload,
            "measured",
            report.user_pct,
            report.sys_pct,
            report.idle_pct,
            report.os_miss_fraction_pct,
            report.total_stall_pct,
            report.os_stall_pct,
            report.os_plus_induced_stall_pct,
        )
    exhibit.note(
        "stall estimate: 35 cycles per bus access over non-idle time "
        "(paper Section 3.1)"
    )
    return exhibit
