"""Deprecated import path — use :mod:`repro.api`.

The experiment infrastructure lives in :mod:`repro.experiments._base`;
this module re-exports it so old deep imports keep working, but new
code should import :class:`RunSettings`/:class:`ExperimentContext`/
:class:`Exhibit` from :mod:`repro.api`.
"""

from __future__ import annotations

import warnings

from repro.experiments._base import (  # noqa: F401
    Exhibit,
    ExperimentContext,
    RunSettings,
)

warnings.warn(
    "repro.experiments.base is deprecated; import RunSettings, "
    "ExperimentContext and Exhibit from repro.api instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["Exhibit", "ExperimentContext", "RunSettings"]
