"""Experiment infrastructure: shared runs and exhibit formatting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import AnalysisReport, analyze_trace
from repro.sim.session import Simulation, TracedRun


@dataclass(frozen=True)
class RunSettings:
    """Standard simulation settings shared by the experiments.

    80 ms of traced window after 500 ms of warmup reaches the workloads'
    steady state (all binaries resident, buffer cache warm, scheduler
    mixing) while keeping a full experiment sweep to minutes of host
    time. Individual experiments override where they need to (e.g.
    Figure 11 sweeps CPU counts with a shorter window).
    """

    horizon_ms: float = 80.0
    warmup_ms: float = 500.0
    seed: int = 7


class ExperimentContext:
    """Caches one traced run + analysis per workload per settings."""

    def __init__(self, settings: Optional[RunSettings] = None):
        self.settings = settings if settings is not None else RunSettings()
        self._runs: Dict[Tuple, TracedRun] = {}
        self._reports: Dict[Tuple, AnalysisReport] = {}
        self.exhibit_cache: Dict[str, "Exhibit"] = {}

    def run(self, workload: str, **overrides) -> TracedRun:
        key = (workload, tuple(sorted(overrides.items())))
        if key not in self._runs:
            settings = self.settings
            sim_kwargs = dict(overrides)
            horizon = sim_kwargs.pop("horizon_ms", settings.horizon_ms)
            warmup = sim_kwargs.pop("warmup_ms", settings.warmup_ms)
            seed = sim_kwargs.pop("seed", settings.seed)
            sim = Simulation(workload, seed=seed, **sim_kwargs)
            self._runs[key] = sim.run(horizon, warmup_ms=warmup)
        return self._runs[key]

    def report(self, workload: str, **overrides) -> AnalysisReport:
        key = (workload, tuple(sorted(overrides.items())))
        if key not in self._reports:
            self._reports[key] = analyze_trace(self.run(workload, **overrides))
        return self._reports[key]


@dataclass
class Exhibit:
    """One reproduced table or figure, measured vs paper."""

    exhibit_id: str
    title: str
    columns: Sequence[str]
    rows: List[Sequence] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    # ------------------------------------------------------------------
    def to_text(self) -> str:
        """Render an aligned text table."""
        header = [str(c) for c in self.columns]
        body = [
            [self._fmt(value) for value in row]
            for row in self.rows
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.exhibit_id}: {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    @staticmethod
    def _fmt(value) -> str:
        if isinstance(value, float):
            return f"{value:.1f}"
        return str(value)

    def row_dict(self, key_column: int = 0) -> Dict[str, Sequence]:
        return {str(row[key_column]): row for row in self.rows}
