"""Figure 4: classification of the instruction misses in the OS.

Chart (a): each I-miss class as a fraction of ALL OS misses (normalized
to 100). Chart (b): the Dispossame share of Dispos misses.
"""

from __future__ import annotations

from repro.common.types import MissClass, RefDomain
from repro.experiments import paperdata
from repro.experiments._base import Exhibit, ExperimentContext
from repro.experiments.derive import imiss_class_shares_pct

EXHIBIT_ID = "figure4"
TITLE = "Classification of OS instruction misses (% of all OS misses)"

_COLUMNS = (
    "workload", "cold", "dispos", "dispap", "inval", "I-total",
    "dispossame/dispos%",
)


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    for workload in paperdata.WORKLOADS:
        analysis = ctx.report(workload).analysis
        shares = imiss_class_shares_pct(analysis)
        dispos = analysis.miss_counts.get((RefDomain.OS, "I", MissClass.DISPOS), 0)
        same = analysis.dispossame.get((RefDomain.OS, "I"), 0)
        exhibit.add_row(
            workload,
            shares.get(MissClass.COLD, 0.0),
            shares.get(MissClass.DISPOS, 0.0),
            shares.get(MissClass.DISPAP, 0.0),
            shares.get(MissClass.INVAL, 0.0),
            sum(shares.values()),
            100.0 * same / dispos if dispos else 0.0,
        )
    low, high = paperdata.FIGURE4["imiss_share_range_pct"]
    exhibit.note(
        f"paper: instruction misses are {low:.0f}-{high:.0f}% of all OS "
        "misses; Dispap dominates Oracle's displaced I-misses"
    )
    return exhibit
