"""Ablation: cache-affinity scheduling (Section 4.2.2's migration fix).

"Affinity scheduling is one technique that removes misses by encouraging
processes to remain in the same CPU while still tolerating process
migration for load balance." Runs Multpgm — the migration-heaviest
workload — with and without it.
"""

from __future__ import annotations

from repro.analysis.report import analyze_trace
from repro.experiments._base import Exhibit, ExperimentContext
from repro.experiments.derive import migration_misses
from repro.kernel.kernel import KernelTuning
from repro.kernel.vm import VmTuning
from repro.sim.config import CALIBRATIONS
from repro.sim._session import Simulation

EXHIBIT_ID = "ablation-affinity"
TITLE = "Cache-affinity scheduling vs the IRIX default (Multpgm)"

_COLUMNS = ("metric", "default", "affinity", "change%")


def _run(ctx: ExperimentContext, affinity: bool):
    settings = ctx.settings
    calibration = CALIBRATIONS["multpgm"]
    tuning = KernelTuning(
        quantum_ms=calibration.quantum_ms,
        affinity_scheduling=affinity,
        vm=VmTuning(baseline_frames=calibration.baseline_frames),
    )
    sim = Simulation(
        "multpgm", seed=settings.seed, tuning=tuning, check=settings.check
    )
    run = ctx.note_private_run(
        sim.run(settings.horizon_ms, warmup_ms=settings.warmup_ms)
    )
    report = analyze_trace(run, keep_imiss_stream=False)
    sched = sim.kernel.scheduler
    return run, {
        "context switches": sched.context_switches,
        "migrations": sched.migrations,
        "migration D-misses": migration_misses(report.analysis)["total"],
        "OS stall %": round(report.os_stall_pct, 1),
        "app Ap_dispos misses": sum(report.analysis.ap_dispos.values()),
    }


def build(ctx: ExperimentContext) -> Exhibit:
    exhibit = Exhibit(EXHIBIT_ID, TITLE, _COLUMNS)
    default_run, default = _run(ctx, affinity=False)
    affinity_run, affinity = _run(ctx, affinity=True)
    exhibit.add_check_coverage(default_run, affinity_run)
    for metric in default:
        a, b = default[metric], affinity[metric]
        change = 100.0 * (b - a) / a if a else 0.0
        exhibit.add_row(metric, a, b, round(change, 1))
    exhibit.note(
        "affinity keeps load balance (similar context-switch counts) while "
        "cutting migrations and their Sharing misses, as the paper predicts"
    )
    return exhibit
