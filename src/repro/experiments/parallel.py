"""Parallel experiment runner.

Fans the expensive, independent pieces of ``repro-experiments run``
across a :mod:`multiprocessing` pool:

1. **Base workload simulations** — the three traced runs (pmake,
   multpgm, oracle) every exhibit derives from are simulated and
   analyzed concurrently, one worker each.
2. **Exhibit derivations** — each exhibit's ``build`` (including the
   ablations' private simulations) runs as an independent pool task
   against a per-worker :class:`ExperimentContext` pre-warmed with the
   base runs.

Results merge back into the caller's context (runs, reports and built
exhibits alike), so downstream consumers — charts, further exhibits,
the CLI's printing loop — observe exactly the state a serial run would
have produced. Every simulation is deterministic given (workload,
settings, seed), and exhibits are emitted in request order, so parallel
output is byte-identical to serial output.

Workers share work products through the persistent
:class:`~repro.sim.runcache.RunCache` when one is configured; with the
cache disabled, base runs are shipped to workers through the pool
initializer instead (finished :class:`TracedRun` objects are picklable).
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import List, Optional, Sequence, Tuple

from repro.experiments._base import ExperimentContext, RunSettings
from repro.sim.runcache import RunCache, load_or_run

BASE_WORKLOADS = ("pmake", "multpgm", "oracle")


class ParallelWorkerError(RuntimeError):
    """A pool worker failed.

    Raised in the parent with the worker's task and traceback attached.
    Worker failures must surface and abort the invocation — a run that
    quietly degraded (to serial, or to partial results) would report
    wrong timings as successful and poison benchmark baselines.
    """


def _worker_boundary(task_label: str, fn, *args):
    """Run ``fn`` inside a worker; wrap any failure with its task label.

    The wrapped exception carries the worker-side traceback as text
    (exception *causes* do not survive the pool's pickling), so the
    parent can print what actually went wrong in the child.
    """
    try:
        return fn(*args)
    except ParallelWorkerError:
        raise
    except BaseException as exc:
        raise ParallelWorkerError(
            f"worker failed on {task_label}: {type(exc).__name__}: {exc}\n"
            f"{traceback.format_exc()}"
        ) from None


def default_jobs() -> int:
    """Default worker count: one per base workload, capped by the host."""
    return max(1, min(3, os.cpu_count() or 1))


# ----------------------------------------------------------------------
# Cache handles cross the process boundary as (dir, enabled) specs.
# ----------------------------------------------------------------------
def _cache_spec(cache: Optional[RunCache]):
    if cache is None:
        return None
    return (str(cache.cache_dir), cache.enabled)


def _cache_from_spec(spec) -> Optional[RunCache]:
    if spec is None:
        return None
    cache_dir, enabled = spec
    return RunCache(cache_dir=cache_dir, enabled=enabled)


# ----------------------------------------------------------------------
# Pool workers (top-level functions so they pickle under any start
# method).
# ----------------------------------------------------------------------
def _simulate_base_workload(task):
    workload = task[0]
    return _worker_boundary(
        f"base workload {workload!r}", _simulate_base_workload_inner, task
    )


def _simulate_base_workload_inner(task):
    workload, settings, spec = task
    cache = _cache_from_spec(spec)
    run, report = load_or_run(
        cache, workload,
        settings.horizon_ms, settings.warmup_ms, settings.seed,
        analyze=True, shards=getattr(settings, "shards", 1),
    )
    return workload, run, report


_worker_ctx: Optional[ExperimentContext] = None


def _init_exhibit_worker(settings, spec, base_entries):
    global _worker_ctx
    _worker_ctx = ExperimentContext(settings, cache=_cache_from_spec(spec))
    if base_entries:
        _worker_ctx._runs.update(base_entries["runs"])
        _worker_ctx._reports.update(base_entries["reports"])


def _build_exhibit(exhibit_id: str):
    return _worker_boundary(
        f"exhibit {exhibit_id!r}", _build_exhibit_inner, exhibit_id
    )


def _build_exhibit_inner(exhibit_id: str):
    from repro.experiments.registry import run_experiment

    ctx = _worker_ctx
    assert ctx is not None, "worker used without initializer"
    known_runs = set(ctx._runs)
    known_reports = set(ctx._reports)
    exhibit = run_experiment(exhibit_id, ctx)
    # New runs this build created (ablation variants, sweeps) travel
    # back so the parent context ends up in serial-identical state.
    runs_delta = {k: ctx._runs[k] for k in set(ctx._runs) - known_runs}
    reports_delta = {k: ctx._reports[k] for k in set(ctx._reports) - known_reports}
    return exhibit_id, exhibit, runs_delta, reports_delta


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _pool_map(pool, fn, tasks, stage: str):
    """``pool.map`` that surfaces every failure as ParallelWorkerError.

    Covers failures the worker boundary cannot catch — a worker process
    dying on import, an unpicklable result — as well as the wrapped
    task-level errors. There is deliberately no serial fallback.
    """
    try:
        return pool.map(fn, tasks, chunksize=1)
    except ParallelWorkerError:
        raise
    except Exception as exc:
        raise ParallelWorkerError(
            f"{stage} pool failed: {type(exc).__name__}: {exc}"
        ) from exc


def warm_base_runs(ctx: ExperimentContext, jobs: int) -> None:
    """Simulate + analyze the three base workloads, ``jobs`` at a time."""
    missing = [
        w for w in BASE_WORKLOADS if (w, ()) not in ctx._reports
    ]
    if not missing:
        return
    if jobs <= 1 or len(missing) == 1:
        for workload in missing:
            ctx.report(workload)
        return
    tasks = [(w, ctx.settings, _cache_spec(ctx.cache)) for w in missing]
    with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
        for workload, run, report in _pool_map(
            pool, _simulate_base_workload, tasks, "base-run simulation"
        ):
            key = (workload, ())
            ctx._runs.setdefault(key, run)
            ctx._reports.setdefault(key, report)


def run_exhibits(
    ctx: ExperimentContext,
    exhibit_ids: Sequence[str],
    jobs: Optional[int] = None,
) -> List[Tuple[str, "object"]]:
    """Build ``exhibit_ids`` with up to ``jobs`` workers.

    Returns ``[(exhibit_id, Exhibit), ...]`` in request order and leaves
    ``ctx`` holding every run, report and exhibit the builds produced —
    the same state a serial pass over the ids would leave behind.
    """
    from repro.experiments.registry import get_experiment, run_experiment

    for exhibit_id in exhibit_ids:
        get_experiment(exhibit_id)  # validate before any expensive work
    jobs = default_jobs() if jobs is None else max(1, jobs)

    # Resolve what is already built (in memory or on disk) up front, so
    # a fully warm cache never pays for base-run loading or a pool.
    todo = []
    for exhibit_id in exhibit_ids:
        if exhibit_id in ctx.exhibit_cache:
            continue
        cached = ctx.load_cached_exhibit(exhibit_id)
        if cached is not None:
            ctx.exhibit_cache[exhibit_id] = cached
        else:
            todo.append(exhibit_id)
    if jobs <= 1 or len(todo) <= 1:
        return [(e, run_experiment(e, ctx)) for e in exhibit_ids]

    warm_base_runs(ctx, jobs)

    # With a live disk cache workers re-load the base runs themselves;
    # without one the runs ship through the initializer (once per
    # worker process).
    base_entries = None
    if ctx.cache is None or not ctx.cache.enabled:
        base_keys = [(w, ()) for w in BASE_WORKLOADS]
        base_entries = {
            "runs": {k: ctx._runs[k] for k in base_keys if k in ctx._runs},
            "reports": {k: ctx._reports[k] for k in base_keys if k in ctx._reports},
        }

    with multiprocessing.Pool(
        processes=min(jobs, len(todo)),
        initializer=_init_exhibit_worker,
        initargs=(ctx.settings, _cache_spec(ctx.cache), base_entries),
    ) as pool:
        for exhibit_id, exhibit, runs_delta, reports_delta in _pool_map(
            pool, _build_exhibit, todo, "exhibit build"
        ):
            ctx.exhibit_cache[exhibit_id] = exhibit
            ctx.store_cached_exhibit(exhibit_id, exhibit)
            for key, run in runs_delta.items():
                ctx._runs.setdefault(key, run)
            for key, report in reports_delta.items():
                ctx._reports.setdefault(key, report)
    return [(e, ctx.exhibit_cache[e]) for e in exhibit_ids]
