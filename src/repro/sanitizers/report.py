"""Violation records and the per-run check report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class Violation:
    """One invariant violation, attributed to its actors.

    ``details`` carries the checker-specific attribution — the lock pair
    and both acquisition sites for lockdep, structure/slot/CPUs for the
    race checker, the cache line and CPUs for the coherence checker —
    so a report names exactly what went wrong, not just that something
    did.
    """

    checker: str            # "lockdep" | "race" | "coherence"
    kind: str               # e.g. "lock-order-cycle", "unlocked-write"
    cpu: int
    cycles: int
    message: str
    details: Dict[str, object] = field(default_factory=dict)

    def to_text(self) -> str:
        lines = [f"[{self.checker}:{self.kind}] cpu{self.cpu} @{self.cycles}: "
                 f"{self.message}"]
        for key, value in self.details.items():
            if isinstance(value, (list, tuple)):
                lines.append(f"    {key}:")
                lines.extend(f"      - {item}" for item in value)
            else:
                lines.append(f"    {key}: {value}")
        return "\n".join(lines)


@dataclass
class CheckReport:
    """Everything the sanitizers saw during one run."""

    workload: str = ""
    violations: List[Violation] = field(default_factory=list)
    # Events examined per checker (lock acquires, structure accesses,
    # bus writes, ...): evidence of coverage, not just of silence.
    counters: Dict[str, int] = field(default_factory=dict)
    # Violations beyond the per-checker cap are counted, not recorded.
    suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.suppressed

    def summary(self) -> str:
        checked = ", ".join(
            f"{name}={count}" for name, count in sorted(self.counters.items())
        )
        total = len(self.violations) + self.suppressed
        status = "clean" if self.ok else f"{total} violation(s)"
        workload = f" [{self.workload}]" if self.workload else ""
        return f"sanitizers{workload}: {status} ({checked})"

    def to_text(self) -> str:
        lines = [self.summary()]
        for violation in self.violations:
            lines.append(violation.to_text())
        if self.suppressed:
            lines.append(f"  (+{self.suppressed} further violations suppressed)")
        return "\n".join(lines)
