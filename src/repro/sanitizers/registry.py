"""The :class:`CheckRegistry` façade: build, install, finalize, report.

Design constraint: **near-zero overhead when disabled.** A simulation
built without ``check=True`` never constructs a registry; every hook
point in the kernel and memory system is a ``None``-default attribute
(``LockTable.checks``, ``Processor.access_probe``,
``MemorySystem.checker``, ``Kernel.checks``) guarded by a single
``is not None`` test, and the hooks sit only on paths that are already
expensive relative to that test (lock acquires, cache-miss handling,
word-granularity kernel structure touches — never the block-granularity
user reference stream).

Everything the registry holds is plain data or bound methods, so a
checked :class:`~repro.sim._session.TracedRun` still pickles into the
persistent run cache — a reloaded checked run keeps its
:class:`~repro.sanitizers.report.CheckReport`.
"""

from __future__ import annotations

import os

from repro.sanitizers.coherence import CoherenceChecker
from repro.sanitizers.llsc import LLSCChecker
from repro.sanitizers.lockdep import LockDep
from repro.sanitizers.races import RaceChecker
from repro.sanitizers.report import CheckReport, Violation

_ENV_CHECK = "REPRO_CHECK"

# Per-checker recording cap: a real invariant violation tends to recur
# thousands of times per run; the first few attributions are what a
# human needs, the rest only bloat the pickled run.
MAX_RECORDED_PER_CHECKER = 50


def check_enabled_by_env() -> bool:
    """``REPRO_CHECK=1`` (or any non-empty, non-false value)."""
    value = os.environ.get(_ENV_CHECK, "")
    return value not in ("", "0", "false", "no")


def deep_check_enabled_by_env() -> bool:
    """``REPRO_CHECK=deep``: also attribute block sweeps to structures."""
    return os.environ.get(_ENV_CHECK, "") == "deep"


class CheckRegistry:
    """Owns the three checkers and their shared violation sink."""

    def __init__(self, num_cpus: int, datamap, workload: str = "",
                 deep: bool = False):
        self.report_data = CheckReport(workload=workload)
        self.lockdep = LockDep(self, num_cpus)
        self.races = RaceChecker(self, datamap, num_cpus)
        self.coherence = CoherenceChecker(self)
        self.llsc = LLSCChecker(self)
        # Deep mode: also attribute dread_block/dwrite_block sweeps to
        # kernel structures (attribution-only; off by default because it
        # probes the block-granularity path).
        self.deep = deep
        self._per_checker_counts = {
            "lockdep": 0, "race": 0, "coherence": 0, "llsc": 0,
        }
        self.finalized = False

    # ------------------------------------------------------------------
    # Violation sink
    # ------------------------------------------------------------------
    def record(self, violation: Violation) -> None:
        count = self._per_checker_counts.get(violation.checker, 0)
        self._per_checker_counts[violation.checker] = count + 1
        if count < MAX_RECORDED_PER_CHECKER:
            self.report_data.violations.append(violation)
        else:
            self.report_data.suppressed += 1

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def install(self, kernel, processors, memsys) -> "CheckRegistry":
        """Attach the checkers to a built machine's hook points."""
        kernel.checks = self
        kernel.locks.checks = self
        self.races.kernel = kernel
        self.races.lockdep = self.lockdep
        for proc in processors:
            proc.access_probe = self.races.on_access
            if self.deep:
                proc.block_probe = self.races.on_block
        self.races._block_bytes = memsys.block_bytes
        self.coherence.memsys = memsys
        memsys.checker = self.coherence
        self.llsc.sim = kernel.llsc
        self.llsc.locks = kernel.locks
        self.llsc.syncbus = kernel.syncbus
        return self

    def suspend(self, kernel, processors, memsys) -> None:
        """Detach every hook point without tearing checker state down.

        The mixed fidelity schedule (repro.fidelity) fast-forwards the
        warmup atomically; the checkers assume detailed-mode event
        streams, so they are unhooked for that stretch and re-attached
        (via :meth:`resume`) at the seam.
        """
        kernel.checks = None
        kernel.locks.checks = None
        for proc in processors:
            proc.access_probe = None
            proc.block_probe = None
        memsys.checker = None

    def resume(self, kernel, processors, memsys) -> None:
        """Re-attach at the atomic→detailed seam.

        The LL/SC checker's shadow state is rebased to the simulator's
        current lock state first — its whole-run reconciliations would
        otherwise compare a detailed-window shadow against counters that
        also saw the atomic stretch.
        """
        self.llsc.rebase()
        self.install(kernel, processors, memsys)

    def finalize(self, end_cycles: int) -> CheckReport:
        """End-of-run sweeps; idempotent (cached runs re-finalize)."""
        if not self.finalized:
            self.finalized = True
            self.lockdep.finalize(end_cycles)
            self.coherence.scan(end_cycles)
            self.llsc.finalize(end_cycles)
        return self.report()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> CheckReport:
        self.report_data.counters = {
            "lock_acquires": self.lockdep.acquires_checked,
            "interrupt_entries": self.lockdep.interrupt_entries,
            "structure_accesses": self.races.accesses_checked,
            "bus_writes": self.coherence.writes_checked,
            "bus_write_transactions": self.coherence.write_transactions,
            "bus_reads": self.coherence.reads_checked,
            "icache_flushes": self.coherence.flushes_checked,
            "llsc_pairs": self.llsc.pairs_validated,
            "llsc_events": self.llsc.events_checked,
        }
        if self.deep:
            self.report_data.counters["block_sweeps"] = (
                self.races.blocks_checked
            )
        return self.report_data
