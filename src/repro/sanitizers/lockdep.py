"""Lock-order validation for the Table 11 lock inventory.

Linux-lockdep's core idea, applied to the simulated kernel: observe the
*order* in which lock classes are nested at runtime and maintain a
directed graph of "A was held while B was acquired" edges. A cycle in
that graph is a potential deadlock even if the run itself never
deadlocked — two CPUs interleaving the two recorded chains can.

Ordering is tracked at the *family* level (``shr_x``, ``ino_x``, ...),
matching how the kernel reasons about its lock arrays; a self-edge
(holding one ``shr_x`` while taking another) is reported too, since
nothing orders instances within a family.

Also enforced here, because the held-lock stacks live here:

- no spinlock may still be held when the CPU context-switches;
- the **irq dimension** (Linux lockdep's irq-safe/irq-unsafe classes):
  each family is tracked by the context — interrupt or process — it is
  acquired from. Only the declared irq-safe families
  (:data:`IRQ_SAFE_FAMILIES`: the locks the modelled handlers take with
  interrupt-level protection) may be acquired in interrupt context, and
  a lock of an irq-used family held at interrupt entry is a
  self-deadlock waiting for the right interrupt timing (the handler
  spins on the CPU that holds the lock). Locks no handler ever takes
  may be held across an interrupt freely;
- nothing may be held when the run finishes.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sanitizers.report import Violation

# Frames from these files are lock-plumbing, not acquisition sites.
_SKIP_BASENAMES = {"locks.py", "lockdep.py", "registry.py", "contextlib.py"}

#: Families the interrupt handlers take (``calock`` from the clock tick,
#: ``runqlk`` from wakeups/setrq, ``streams_x`` from terminal input).
#: These follow the irq-safe discipline — the modelled kernel raises
#: interrupt level around them — so acquiring them in interrupt context
#: is legal; any *other* family acquired with an interrupt on the stack
#: is irq-unsafe and gets flagged.
IRQ_SAFE_FAMILIES = frozenset({"calock", "runqlk", "streams_x"})


def acquisition_site() -> str:
    """``file.py:line (function)`` of the frame that took the lock."""
    frame = sys._getframe(1)
    while frame is not None:
        base = os.path.basename(frame.f_code.co_filename)
        if base not in _SKIP_BASENAMES:
            return f"{base}:{frame.f_lineno} ({frame.f_code.co_name})"
        frame = frame.f_back
    return "<unknown>"


@dataclass
class HeldLock:
    """One entry of a CPU's held-lock stack."""

    name: str
    family: str
    site: str
    cycles: int

    def __str__(self) -> str:
        return f"{self.name} (acquired at {self.site})"


@dataclass
class LockOrderEdge:
    """First observation of family ``a`` held while ``b`` was acquired."""

    held_name: str
    held_site: str
    acquire_name: str
    acquire_site: str
    cpu: int
    cycles: int

    def describe(self, a: str, b: str) -> str:
        return (f"{a} -> {b}: held {self.held_name} at {self.held_site}, "
                f"then acquired {self.acquire_name} at {self.acquire_site} "
                f"(cpu{self.cpu} @{self.cycles})")


class LockDep:
    """Online lock-order graph + held-lock assertions."""

    def __init__(self, registry, num_cpus: int):
        self.registry = registry
        self.held: List[List[HeldLock]] = [[] for _ in range(num_cpus)]
        # family -> {family -> first edge observation}
        self.edges: Dict[str, Dict[str, LockOrderEdge]] = {}
        self.acquires_checked = 0
        self._reported_pairs: set = set()
        # The irq dimension: per-CPU interrupt nesting depth and, per
        # family, the first acquisition site seen in each context.
        self.irq_depth: List[int] = [0] * num_cpus
        self.family_irq_site: Dict[str, str] = {}
        self.family_proc_site: Dict[str, str] = {}
        self._irq_unsafe_reported: set = set()
        self.interrupt_entries = 0

    # ------------------------------------------------------------------
    # Acquire / release hooks (called by LockTable when installed)
    # ------------------------------------------------------------------
    def on_acquire(self, cpu: int, cycles: int, lock) -> None:
        self.acquires_checked += 1
        site = acquisition_site()
        stack = self.held[cpu]
        for entry in stack:
            if entry.name == lock.name:
                self.registry.record(Violation(
                    "lockdep", "recursive-acquire", cpu, cycles,
                    f"{lock.name} acquired while already held on this CPU",
                    {"first": str(entry), "second": f"at {site}"},
                ))
                break
        for entry in stack:
            self._add_edge(entry, lock, cpu, cycles, site)
        self._note_context(cpu, cycles, lock, site)
        stack.append(HeldLock(lock.name, lock.family, site, cycles))

    def _note_context(self, cpu: int, cycles: int, lock, site: str) -> None:
        """Track the irq/process context a family is acquired from."""
        if self.irq_depth[cpu] > 0:
            self.family_irq_site.setdefault(lock.family, site)
            if (
                lock.family not in IRQ_SAFE_FAMILIES
                and lock.family not in self._irq_unsafe_reported
            ):
                self._irq_unsafe_reported.add(lock.family)
                self.registry.record(Violation(
                    "lockdep", "irq-unsafe-acquire-in-irq", cpu, cycles,
                    f"{lock.name} ({lock.family}) acquired in interrupt "
                    "context but is not an irq-safe family",
                    {
                        "family": lock.family,
                        "irq_site": site,
                        "process_site": self.family_proc_site.get(
                            lock.family, "(never in process context)"
                        ),
                        "irq_safe_families": sorted(IRQ_SAFE_FAMILIES),
                    },
                ))
        else:
            self.family_proc_site.setdefault(lock.family, site)

    def on_release(self, cpu: int, cycles: int, lock) -> None:
        stack = self.held[cpu]
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].name == lock.name:
                del stack[index]
                return
        self.registry.record(Violation(
            "lockdep", "release-of-unheld", cpu, cycles,
            f"{lock.name} released but not in this CPU's held set",
        ))

    # ------------------------------------------------------------------
    # Lock-order graph
    # ------------------------------------------------------------------
    def _add_edge(self, held: HeldLock, lock, cpu: int, cycles: int,
                  site: str) -> None:
        a, b = held.family, lock.family
        outgoing = self.edges.setdefault(a, {})
        if b in outgoing:
            return  # edge already known; its cycle check already ran
        edge = LockOrderEdge(held.name, held.site, lock.name, site, cpu, cycles)
        # Would a -> b close a cycle? (b -> ... -> a via recorded edges;
        # a == b is the degenerate self-cycle.)
        reverse_path = [] if a == b else self._find_path(b, a)
        outgoing[b] = edge
        if reverse_path is None:
            return
        pair = (a, b)
        if pair in self._reported_pairs or (b, a) in self._reported_pairs:
            return
        self._reported_pairs.add(pair)
        chain = [edge.describe(a, b)]
        chain.extend(e.describe(x, y) for x, y, e in reverse_path)
        self.registry.record(Violation(
            "lockdep", "lock-order-cycle", cpu, cycles,
            f"acquiring {lock.name} ({b}) while holding {held.name} ({a}) "
            f"inverts the recorded order {b} -> {a}",
            {
                "new_edge": f"{a} -> {b}",
                "held_at": held.site,
                "acquired_at": site,
                "cycle": chain,
            },
        ))

    def _find_path(
        self, src: str, dst: str
    ) -> Optional[List[Tuple[str, str, LockOrderEdge]]]:
        """BFS ``src -> ... -> dst`` over recorded edges, or None."""
        if src == dst:
            return []
        parents: Dict[str, Tuple[str, LockOrderEdge]] = {}
        frontier = [src]
        seen = {src}
        while frontier:
            node = frontier.pop(0)
            for succ, edge in self.edges.get(node, {}).items():
                if succ in seen:
                    continue
                parents[succ] = (node, edge)
                if succ == dst:
                    path = []
                    walk = dst
                    while walk != src:
                        prev, prev_edge = parents[walk]
                        path.append((prev, walk, prev_edge))
                        walk = prev
                    path.reverse()
                    return path
                seen.add(succ)
                frontier.append(succ)
        return None

    # ------------------------------------------------------------------
    # Held-lock assertions
    # ------------------------------------------------------------------
    def on_context_switch(self, cpu: int, cycles: int) -> None:
        stack = self.held[cpu]
        if stack:
            self.registry.record(Violation(
                "lockdep", "held-at-context-switch", cpu, cycles,
                "context switch with spinlock(s) held",
                {"held": [str(entry) for entry in stack]},
            ))

    def on_interrupt_entry(self, cpu: int, cycles: int, kind: str) -> None:
        self.interrupt_entries += 1
        self.irq_depth[cpu] += 1
        # Only locks a handler may itself take are a deadlock hazard
        # here; families no handler touches may be held across an
        # interrupt (this replaces the old blanket nothing-held assert).
        hazards = [
            entry for entry in self.held[cpu]
            if entry.family in IRQ_SAFE_FAMILIES
            or entry.family in self.family_irq_site
        ]
        if hazards:
            self.registry.record(Violation(
                "lockdep", "held-at-interrupt-entry", cpu, cycles,
                f"{kind} interrupt entered with irq-used spinlock(s) "
                "held (the handler can spin on them forever)",
                {"held": [str(entry) for entry in hazards],
                 "interrupt": kind},
            ))

    def on_interrupt_exit(self, cpu: int, cycles: int) -> None:
        if self.irq_depth[cpu] > 0:
            self.irq_depth[cpu] -= 1

    def finalize(self, end_cycles: int) -> None:
        for cpu, stack in enumerate(self.held):
            if stack:
                self.registry.record(Violation(
                    "lockdep", "held-at-finish", cpu, end_cycles,
                    "run finished with spinlock(s) held",
                    {"held": [str(entry) for entry in stack]},
                ))

    # ------------------------------------------------------------------
    # Queries (the race checker's view of lock state)
    # ------------------------------------------------------------------
    def holds_family(self, cpu: int, families) -> bool:
        for entry in self.held[cpu]:
            if entry.family in families:
                return True
        return False

    def held_names(self, cpu: int) -> List[str]:
        return [entry.name for entry in self.held[cpu]]
