"""Lock-order validation for the Table 11 lock inventory.

Linux-lockdep's core idea, applied to the simulated kernel: observe the
*order* in which lock classes are nested at runtime and maintain a
directed graph of "A was held while B was acquired" edges. A cycle in
that graph is a potential deadlock even if the run itself never
deadlocked — two CPUs interleaving the two recorded chains can.

Ordering is tracked at the *family* level (``shr_x``, ``ino_x``, ...),
matching how the kernel reasons about its lock arrays; a self-edge
(holding one ``shr_x`` while taking another) is reported too, since
nothing orders instances within a family.

Also enforced here, because the held-lock stacks live here:

- no spinlock may still be held when the CPU context-switches;
- no spinlock may be held at interrupt entry (the modelled handlers
  take ``calock``/``runqlk``/``streams_x`` themselves, so a held lock at
  entry is a self-deadlock waiting for the right interrupt timing);
- nothing may be held when the run finishes.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sanitizers.report import Violation

# Frames from these files are lock-plumbing, not acquisition sites.
_SKIP_BASENAMES = {"locks.py", "lockdep.py", "registry.py", "contextlib.py"}


def acquisition_site() -> str:
    """``file.py:line (function)`` of the frame that took the lock."""
    frame = sys._getframe(1)
    while frame is not None:
        base = os.path.basename(frame.f_code.co_filename)
        if base not in _SKIP_BASENAMES:
            return f"{base}:{frame.f_lineno} ({frame.f_code.co_name})"
        frame = frame.f_back
    return "<unknown>"


@dataclass
class HeldLock:
    """One entry of a CPU's held-lock stack."""

    name: str
    family: str
    site: str
    cycles: int

    def __str__(self) -> str:
        return f"{self.name} (acquired at {self.site})"


@dataclass
class LockOrderEdge:
    """First observation of family ``a`` held while ``b`` was acquired."""

    held_name: str
    held_site: str
    acquire_name: str
    acquire_site: str
    cpu: int
    cycles: int

    def describe(self, a: str, b: str) -> str:
        return (f"{a} -> {b}: held {self.held_name} at {self.held_site}, "
                f"then acquired {self.acquire_name} at {self.acquire_site} "
                f"(cpu{self.cpu} @{self.cycles})")


class LockDep:
    """Online lock-order graph + held-lock assertions."""

    def __init__(self, registry, num_cpus: int):
        self.registry = registry
        self.held: List[List[HeldLock]] = [[] for _ in range(num_cpus)]
        # family -> {family -> first edge observation}
        self.edges: Dict[str, Dict[str, LockOrderEdge]] = {}
        self.acquires_checked = 0
        self._reported_pairs: set = set()

    # ------------------------------------------------------------------
    # Acquire / release hooks (called by LockTable when installed)
    # ------------------------------------------------------------------
    def on_acquire(self, cpu: int, cycles: int, lock) -> None:
        self.acquires_checked += 1
        site = acquisition_site()
        stack = self.held[cpu]
        for entry in stack:
            if entry.name == lock.name:
                self.registry.record(Violation(
                    "lockdep", "recursive-acquire", cpu, cycles,
                    f"{lock.name} acquired while already held on this CPU",
                    {"first": str(entry), "second": f"at {site}"},
                ))
                break
        for entry in stack:
            self._add_edge(entry, lock, cpu, cycles, site)
        stack.append(HeldLock(lock.name, lock.family, site, cycles))

    def on_release(self, cpu: int, cycles: int, lock) -> None:
        stack = self.held[cpu]
        for index in range(len(stack) - 1, -1, -1):
            if stack[index].name == lock.name:
                del stack[index]
                return
        self.registry.record(Violation(
            "lockdep", "release-of-unheld", cpu, cycles,
            f"{lock.name} released but not in this CPU's held set",
        ))

    # ------------------------------------------------------------------
    # Lock-order graph
    # ------------------------------------------------------------------
    def _add_edge(self, held: HeldLock, lock, cpu: int, cycles: int,
                  site: str) -> None:
        a, b = held.family, lock.family
        outgoing = self.edges.setdefault(a, {})
        if b in outgoing:
            return  # edge already known; its cycle check already ran
        edge = LockOrderEdge(held.name, held.site, lock.name, site, cpu, cycles)
        # Would a -> b close a cycle? (b -> ... -> a via recorded edges;
        # a == b is the degenerate self-cycle.)
        reverse_path = [] if a == b else self._find_path(b, a)
        outgoing[b] = edge
        if reverse_path is None:
            return
        pair = (a, b)
        if pair in self._reported_pairs or (b, a) in self._reported_pairs:
            return
        self._reported_pairs.add(pair)
        chain = [edge.describe(a, b)]
        chain.extend(e.describe(x, y) for x, y, e in reverse_path)
        self.registry.record(Violation(
            "lockdep", "lock-order-cycle", cpu, cycles,
            f"acquiring {lock.name} ({b}) while holding {held.name} ({a}) "
            f"inverts the recorded order {b} -> {a}",
            {
                "new_edge": f"{a} -> {b}",
                "held_at": held.site,
                "acquired_at": site,
                "cycle": chain,
            },
        ))

    def _find_path(
        self, src: str, dst: str
    ) -> Optional[List[Tuple[str, str, LockOrderEdge]]]:
        """BFS ``src -> ... -> dst`` over recorded edges, or None."""
        if src == dst:
            return []
        parents: Dict[str, Tuple[str, LockOrderEdge]] = {}
        frontier = [src]
        seen = {src}
        while frontier:
            node = frontier.pop(0)
            for succ, edge in self.edges.get(node, {}).items():
                if succ in seen:
                    continue
                parents[succ] = (node, edge)
                if succ == dst:
                    path = []
                    walk = dst
                    while walk != src:
                        prev, prev_edge = parents[walk]
                        path.append((prev, walk, prev_edge))
                        walk = prev
                    path.reverse()
                    return path
                seen.add(succ)
                frontier.append(succ)
        return None

    # ------------------------------------------------------------------
    # Held-lock assertions
    # ------------------------------------------------------------------
    def on_context_switch(self, cpu: int, cycles: int) -> None:
        stack = self.held[cpu]
        if stack:
            self.registry.record(Violation(
                "lockdep", "held-at-context-switch", cpu, cycles,
                "context switch with spinlock(s) held",
                {"held": [str(entry) for entry in stack]},
            ))

    def on_interrupt_entry(self, cpu: int, cycles: int, kind: str) -> None:
        stack = self.held[cpu]
        if stack:
            self.registry.record(Violation(
                "lockdep", "held-at-interrupt-entry", cpu, cycles,
                f"{kind} interrupt entered with spinlock(s) held",
                {"held": [str(entry) for entry in stack]},
            ))

    def finalize(self, end_cycles: int) -> None:
        for cpu, stack in enumerate(self.held):
            if stack:
                self.registry.record(Violation(
                    "lockdep", "held-at-finish", cpu, end_cycles,
                    "run finished with spinlock(s) held",
                    {"held": [str(entry) for entry in stack]},
                ))

    # ------------------------------------------------------------------
    # Queries (the race checker's view of lock state)
    # ------------------------------------------------------------------
    def holds_family(self, cpu: int, families) -> bool:
        for entry in self.held[cpu]:
            if entry.family in families:
                return True
        return False

    def held_names(self, cpu: int) -> List[str]:
        return [entry.name for entry in self.held[cpu]]
