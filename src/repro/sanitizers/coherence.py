"""Coherence invariants on the memory system.

The 4D/340's data caches follow a write-invalidate snooping protocol;
its instruction caches are incoherent and flushed only by software
(Table 2's *Inval* miss class exists because of exactly that). The
checker asserts the protocol's observable invariants at the points the
memory system mutates shared state:

- **single writer** — after a write gains ownership of a line, no other
  CPU's data cache may still hold it (the snoop-invalidate must really
  have cleared the remote tags), and the owner map must agree;
- **no silent fills** — a write that misses L2 must put a transaction
  on the bus: a fill that the monitor cannot see would silently corrupt
  the paper's trace-driven cache reconstruction;
- **reads downgrade** — after a read fill, the line may not remain
  exclusively owned by a *different* CPU;
- **I-cache isolation** — a data-write invalidation must leave every
  I-cache untouched (only explicit flushes may invalidate instruction
  lines), and an explicit flush must actually remove the range;
- **final sweep** — at end of run, every owned line is verified to have
  no remote cached copy (the never-two-dirty-copies invariant).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sanitizers.report import Violation


class CoherenceChecker:
    """Asserts snooping-protocol invariants on :class:`MemorySystem`."""

    def __init__(self, registry):
        self.registry = registry
        self.memsys = None   # bound by CheckRegistry.install
        self.writes_checked = 0
        self.reads_checked = 0
        self.flushes_checked = 0
        # Write events that actually put a transaction on the bus (the
        # ownership-gaining subset of writes_checked). This is the
        # checker-side number the monitor's recorded WRITE entries must
        # reproduce exactly — see AnalysisReport.crosscheck().
        self.write_transactions = 0

    # ------------------------------------------------------------------
    # Hooks called from MemorySystem (only on miss/upgrade/flush paths)
    # ------------------------------------------------------------------
    def snapshot_icaches(self, block: int) -> Tuple[int, ...]:
        """CPUs whose I-cache holds ``block`` (before an invalidation)."""
        return tuple(
            h.cpu for h in self.memsys.hierarchies if h.icache.lookup(block)
        )

    def after_data_write(
        self,
        time_cycles: int,
        cpu: int,
        block: int,
        missed: bool,
        transacted: bool,
        icache_before: Tuple[int, ...],
    ) -> None:
        self.writes_checked += 1
        if transacted:
            self.write_transactions += 1
        memsys = self.memsys
        if missed and not transacted:
            self.registry.record(Violation(
                "coherence", "silent-write-fill", cpu, time_cycles,
                f"write fill of line {hex(block * memsys.block_bytes)} "
                "issued no bus transaction (stale ownership state)",
                {"line": hex(block * memsys.block_bytes), "owner_map":
                 memsys._owner.get(block, "absent")},
            ))
        owner = memsys._owner.get(block)
        if owner != cpu:
            self.registry.record(Violation(
                "coherence", "owner-map-mismatch", cpu, time_cycles,
                f"after write, line {hex(block * memsys.block_bytes)} "
                f"owned by {owner!r} instead of cpu{cpu}",
                {"line": hex(block * memsys.block_bytes)},
            ))
        for hierarchy in memsys.hierarchies:
            if hierarchy.cpu != cpu and hierarchy.dl2.lookup(block):
                self.registry.record(Violation(
                    "coherence", "double-dirty", cpu, time_cycles,
                    f"line {hex(block * memsys.block_bytes)} written by "
                    f"cpu{cpu} but still cached by cpu{hierarchy.cpu} "
                    "(snoop-invalidate failed)",
                    {"line": hex(block * memsys.block_bytes),
                     "writer": f"cpu{cpu}",
                     "stale_copy": f"cpu{hierarchy.cpu}"},
                ))
        if transacted:
            icache_after = self.snapshot_icaches(block)
            if icache_after != icache_before:
                self.registry.record(Violation(
                    "coherence", "icache-snooped", cpu, time_cycles,
                    f"data-write invalidation of line "
                    f"{hex(block * memsys.block_bytes)} changed I-cache "
                    "state (I-caches must only be invalidated by "
                    "explicit flush)",
                    {"before": list(icache_before),
                     "after": list(icache_after)},
                ))

    def after_data_read(self, time_cycles: int, cpu: int, block: int) -> None:
        self.reads_checked += 1
        memsys = self.memsys
        owner = memsys._owner.get(block)
        if owner is not None and owner != cpu:
            self.registry.record(Violation(
                "coherence", "read-no-downgrade", cpu, time_cycles,
                f"read fill of line {hex(block * memsys.block_bytes)} left "
                f"it exclusively owned by cpu{owner}",
                {"line": hex(block * memsys.block_bytes)},
            ))
        hierarchy = memsys.hierarchies[cpu]
        if not hierarchy.dl2.lookup(block):
            self.registry.record(Violation(
                "coherence", "fill-not-resident", cpu, time_cycles,
                f"read fill of line {hex(block * memsys.block_bytes)} not "
                "resident in the reader's L2",
                {"line": hex(block * memsys.block_bytes)},
            ))

    def after_bypass_invalidate(
        self, cpu: int, time_cycles: int, first_block: int, num_blocks: int
    ) -> None:
        """A cache-bypassing block write leaves memory as the only copy.

        The blockop-bypass variant (``blockop_cache_bypass``) updates
        memory around the caches, so after its invalidation sweep no
        data cache may still hold any destination line and the owner map
        must be empty for the range — a line that survives here is the
        stale-copy bug the PR-2 fix in ``_invalidate_stale`` addressed.
        """
        self.flushes_checked += 1
        memsys = self.memsys
        for block in range(first_block, first_block + num_blocks):
            owner = memsys._owner.get(block)
            if owner is not None:
                self.registry.record(Violation(
                    "coherence", "bypass-stale-owner", cpu, time_cycles,
                    f"line {hex(block * memsys.block_bytes)} still owned "
                    f"by cpu{owner} after a cache-bypassing block write",
                    {"line": hex(block * memsys.block_bytes),
                     "owner": f"cpu{owner}"},
                ))
            for hierarchy in memsys.hierarchies:
                if hierarchy.dl2.lookup(block):
                    self.registry.record(Violation(
                        "coherence", "bypass-stale-copy", cpu, time_cycles,
                        f"line {hex(block * memsys.block_bytes)} survived "
                        "the bypass-invalidate sweep in "
                        f"cpu{hierarchy.cpu}'s data cache",
                        {"line": hex(block * memsys.block_bytes),
                         "stale_copy": f"cpu{hierarchy.cpu}"},
                    ))

    def after_icache_flush(self, first_block: int, num_blocks: int) -> None:
        """An explicit flush must leave no line of the range resident."""
        self.flushes_checked += 1
        memsys = self.memsys
        for hierarchy in memsys.hierarchies:
            for block in range(first_block, first_block + num_blocks):
                if hierarchy.icache.lookup(block):
                    self.registry.record(Violation(
                        "coherence", "icache-flush-incomplete",
                        hierarchy.cpu, 0,
                        f"line {hex(block * memsys.block_bytes)} survived "
                        "an explicit I-cache flush",
                        {"line": hex(block * memsys.block_bytes)},
                    ))

    def after_full_icache_flush(self) -> None:
        """A full flush (frame-reuse path) must empty every I-cache."""
        self.flushes_checked += 1
        for hierarchy in self.memsys.hierarchies:
            leftover = hierarchy.icache.occupancy()
            if leftover:
                self.registry.record(Violation(
                    "coherence", "icache-flush-incomplete",
                    hierarchy.cpu, 0,
                    f"{leftover} line(s) survived a full I-cache flush "
                    f"on cpu{hierarchy.cpu}",
                    {"resident": leftover},
                ))

    # ------------------------------------------------------------------
    # Final sweep
    # ------------------------------------------------------------------
    def scan(self, end_cycles: int) -> List[Violation]:
        """Never-two-dirty-copies over the whole owner map."""
        found = []
        memsys = self.memsys
        for block, owner in memsys._owner.items():
            for hierarchy in memsys.hierarchies:
                if hierarchy.cpu != owner and hierarchy.dl2.lookup(block):
                    violation = Violation(
                        "coherence", "double-dirty", owner, end_cycles,
                        f"line {hex(block * memsys.block_bytes)} owned by "
                        f"cpu{owner} also cached by cpu{hierarchy.cpu}",
                        {"line": hex(block * memsys.block_bytes),
                         "owner": f"cpu{owner}",
                         "stale_copy": f"cpu{hierarchy.cpu}"},
                    )
                    self.registry.record(violation)
                    found.append(violation)
        return found
