"""Runtime invariant checking for the simulated kernel and memory system.

The paper's subject is OS synchronization and coherence behaviour; a
silent modelling bug in either would skew every exhibit without failing
a single test. This package plays the role lockdep/TSan-style tooling
plays in production kernels: it watches a run from the inside and
reports invariant violations instead of wrong numbers.

Three checkers, one façade:

- :mod:`~repro.sanitizers.lockdep` — online lock-order graph over the
  Table 11 lock inventory with cycle detection, plus held-lock checks
  at context switch and interrupt entry;
- :mod:`~repro.sanitizers.races` — maps each Table 3 kernel structure
  to its protecting lock and flags accesses made without that lock held
  on the accessing CPU;
- :mod:`~repro.sanitizers.coherence` — MESI-style invariants on the
  memory system (single writer, snoop-invalidate really clears remote
  tags, I-caches only invalidated by explicit software flush);
- :class:`~repro.sanitizers.registry.CheckRegistry` — builds, installs
  and finalizes the checkers; near-zero overhead when absent (every
  hook is a ``None``-default attribute test);
- :mod:`~repro.sanitizers.seams` — shard-seam crosscheck for the
  sharded analysis core: every splice boundary must reproduce the
  serial scout pass's cumulative monitor counters exactly.

Enable with ``Simulation(..., check=True)``, ``--check`` on the
experiments CLI, or ``REPRO_CHECK=1`` in the environment.
"""

from repro.sanitizers.registry import (
    CheckRegistry,
    check_enabled_by_env,
    deep_check_enabled_by_env,
)
from repro.sanitizers.report import CheckReport, Violation
from repro.sanitizers.seams import SeamMismatch, SeamRecord, verify_seams

__all__ = [
    "CheckRegistry",
    "CheckReport",
    "SeamMismatch",
    "SeamRecord",
    "Violation",
    "check_enabled_by_env",
    "deep_check_enabled_by_env",
    "verify_seams",
]
