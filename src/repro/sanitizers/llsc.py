"""LL/SC invariants on the cached-lock what-if machine.

:class:`~repro.sync.llsc.CachedLockSimulator` replays the lock access
stream under an invalidation protocol with MIPS-style load-linked /
store-conditional atomicity (Section 5.1). Its numbers are only as
trustworthy as that replay, so the checker runs an *independent* shadow
model of the same protocol and compares the two before every event:

- **reservations clear on remote stores** — an LL reservation (and the
  cached copy backing it) must be invalidated by any other CPU's store
  to the lock line; a copy the simulator still considers valid when the
  shadow model says a remote store hit it is a stale reservation;
- **no SC after invalidation** — a successful acquire whose SC the
  simulator services from a copy the shadow model invalidated is the
  classic broken-LL/SC bug (lock taken on stale data);
- **traffic reconciles** — per family, the simulator's uncached-machine
  access count must equal ``2*acquires + releases + spin_iterations``
  from the OS-kept lock statistics, its cached-miss count must match
  the shadow model's replay, and the sync-bus counters must agree with
  the acquire/release totals (each acquire is a read + a write, each
  release a write; spins never reach the sync bus).

The hooks are called from :class:`~repro.kernel.locks.LockTable`
*before* it feeds the simulator, so a corruption injected between
events is caught at the victim's next access with full attribution.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.sanitizers.report import Violation


class LLSCChecker:
    """Shadow-model validation of :class:`CachedLockSimulator`."""

    def __init__(self, registry):
        self.registry = registry
        self.sim = None       # CachedLockSimulator, bound by install
        self.locks = None     # LockTable, bound by install
        self.syncbus = None   # SyncBus, bound by install
        # Shadow protocol state, evolved independently of the simulator:
        # per-family per-CPU copy validity and the CPU holding an LL
        # reservation on the lock line (None once a store consumed or
        # cleared it).
        self._valid: Dict[str, Dict[int, bool]] = {}
        self._reservation: Dict[str, Optional[int]] = {}
        self._model_misses: Dict[str, int] = {}
        self.events_checked = 0
        self.pairs_validated = 0   # LL/SC acquire pairs

    # ------------------------------------------------------------------
    # Event hooks (called before the simulator processes the event)
    # ------------------------------------------------------------------
    def on_spin(self, lock, cpu: int, iterations: int, cycles: int) -> None:
        """Spin = repeated LL (read) of the lock line."""
        if iterations <= 0:
            return
        self.events_checked += 1
        self._compare(lock, cpu, cycles, write=False)
        valid = self._valid.setdefault(lock.family, {})
        if not valid.get(cpu, False):
            self._model_misses[lock.family] = (
                self._model_misses.get(lock.family, 0) + 1
            )
            valid[cpu] = True
        self._reservation[lock.family] = cpu

    def on_acquire(self, lock, cpu: int, cycles: int) -> None:
        """Successful acquire = LL + SC pair; the SC is a store."""
        self.events_checked += 1
        self.pairs_validated += 1
        self._compare(lock, cpu, cycles, write=True)
        valid = self._valid.setdefault(lock.family, {})
        if not valid.get(cpu, False):
            # The LL refetches the line; the SC then succeeds against a
            # fresh reservation.
            self._model_misses[lock.family] = (
                self._model_misses.get(lock.family, 0) + 1
            )
            valid[cpu] = True
        self._store(lock.family, cpu)

    def on_release(self, lock, cpu: int, cycles: int) -> None:
        """Release = plain store to the lock line."""
        self.events_checked += 1
        self._compare(lock, cpu, cycles, write=True)
        valid = self._valid.setdefault(lock.family, {})
        if not valid.get(cpu, False):
            self._model_misses[lock.family] = (
                self._model_misses.get(lock.family, 0) + 1
            )
            valid[cpu] = True
        self._store(lock.family, cpu)

    def _store(self, family: str, cpu: int) -> None:
        """A store invalidates every remote copy and reservation."""
        valid = self._valid.setdefault(family, {})
        for other in list(valid):
            if other != cpu:
                valid[other] = False
        if self._reservation.get(family) not in (None, cpu):
            self._reservation[family] = None   # remote store clears it
        elif self._reservation.get(family) == cpu:
            self._reservation[family] = None   # consumed by the SC

    # ------------------------------------------------------------------
    # Fidelity seam
    # ------------------------------------------------------------------
    def rebase(self) -> None:
        """Resynchronize the shadow model to the simulator's state.

        Called at a mixed-fidelity run's atomic→detailed seam
        (repro.fidelity): the what-if machines kept running through the
        atomic stretch while this checker's hooks were detached, so the
        shadow copy-validity map and the per-family miss baseline are
        re-seeded from the simulator before checking resumes. Any open
        reservation from before the stretch is stale and dropped.
        """
        sim = self.sim
        if sim is None:
            return
        self._valid = {
            family: dict(copies) for family, copies in sim._valid_copy.items()
        }
        self._reservation = {}
        self._model_misses = {
            family: counts.cached_misses
            for family, counts in sim.per_lock.items()
        }

    # ------------------------------------------------------------------
    # Divergence detection
    # ------------------------------------------------------------------
    def _compare(self, lock, cpu: int, cycles: int, write: bool) -> None:
        """Diff the simulator's copy-validity map against the shadow model."""
        sim_map = self.sim._valid_copy.get(lock.family, {})
        model_map = self._valid.get(lock.family, {})
        for owner in set(sim_map) | set(model_map):
            sim_valid = sim_map.get(owner, False)
            model_valid = model_map.get(owner, False)
            if sim_valid == model_valid:
                continue
            if sim_valid and owner == cpu and write:
                # The simulator is about to service this CPU's SC from a
                # copy a remote store invalidated.
                kind = "sc-after-invalidation"
                message = (
                    f"SC on {lock.name} by cpu{cpu} allowed to succeed on "
                    "a copy invalidated by a remote store (reservation "
                    "not cleared)"
                )
            elif sim_valid:
                kind = "reservation-not-cleared"
                message = (
                    f"cpu{owner}'s copy of {lock.name} survived a remote "
                    "store (snoop-invalidate missed the lock line)"
                )
            else:
                kind = "spurious-invalidation"
                message = (
                    f"cpu{owner}'s copy of {lock.name} invalidated with "
                    "no intervening remote store (cached-machine miss "
                    "overcounted)"
                )
            self.registry.record(Violation(
                "llsc", kind, cpu, cycles, message,
                {"lock": lock.name, "family": lock.family,
                 "copy_owner": f"cpu{owner}",
                 "simulator_valid": sim_valid, "model_valid": model_valid,
                 "reservation": self._reservation.get(lock.family)},
            ))
            # Resynchronize so one corruption reports once, not forever.
            model_map = self._valid.setdefault(lock.family, {})
            model_map[owner] = sim_valid

    # ------------------------------------------------------------------
    # Final reconciliation
    # ------------------------------------------------------------------
    def finalize(self, end_cycles: int) -> None:
        """Reconcile traffic accounting with the OS-kept lock statistics."""
        sim = self.sim
        if sim is None:
            return
        family_stats = self.locks.family_stats()
        total_acquires = 0
        total_releases = 0
        for family, stats in family_stats.items():
            total_acquires += stats.acquires
            total_releases += stats.releases
            counts = sim.per_lock.get(family)
            if counts is None:
                if stats.acquires or stats.releases or stats.spin_iterations:
                    self.registry.record(Violation(
                        "llsc", "traffic-mismatch", -1, end_cycles,
                        f"family {family} has lock statistics but no "
                        "simulator traffic entry",
                        {"family": family, "acquires": stats.acquires},
                    ))
                continue
            expected = (
                2 * stats.acquires + stats.releases + stats.spin_iterations
            )
            if counts.uncached_accesses != expected:
                self.registry.record(Violation(
                    "llsc", "traffic-mismatch", -1, end_cycles,
                    f"family {family}: uncached-machine accesses "
                    f"{counts.uncached_accesses} != 2*acquires + releases "
                    f"+ spins = {expected}",
                    {"family": family,
                     "uncached_accesses": counts.uncached_accesses,
                     "acquires": stats.acquires,
                     "releases": stats.releases,
                     "spin_iterations": stats.spin_iterations},
                ))
            model_misses = self._model_misses.get(family, 0)
            if counts.cached_misses != model_misses:
                self.registry.record(Violation(
                    "llsc", "cached-miss-divergence", -1, end_cycles,
                    f"family {family}: simulator counted "
                    f"{counts.cached_misses} cached-machine misses, the "
                    f"shadow replay {model_misses}",
                    {"family": family,
                     "simulator_misses": counts.cached_misses,
                     "model_misses": model_misses},
                ))
        bus = self.syncbus.stats
        if bus.reads != total_acquires or (
            bus.writes != total_acquires + total_releases
        ):
            self.registry.record(Violation(
                "llsc", "syncbus-mismatch", -1, end_cycles,
                f"sync-bus counters (reads={bus.reads}, "
                f"writes={bus.writes}) disagree with lock statistics "
                f"(acquires={total_acquires}, releases={total_releases}; "
                "expected reads=acquires, writes=acquires+releases)",
                {"reads": bus.reads, "writes": bus.writes,
                 "acquires": total_acquires, "releases": total_releases},
            ))
