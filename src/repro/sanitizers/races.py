"""Structure-access race checking: the structure → lock protection map.

Every kernel data reference goes through :class:`~repro.cpu.processor.
Processor`; when checking is enabled, a probe on the word-granularity
reference paths attributes each kernel-data address to its Table 3
structure (:class:`~repro.kernel.structures.KernelDataMap`) and asserts
the access was legal under that structure's locking discipline:

- **lock-protected** structures require a lock of the protecting family
  held on the accessing CPU (``writes_only`` rules allow lock-free
  reads — the kernel's optimistic read paths: run-queue peeks, pfdat
  traversals, priority scans);
- **CPU-private** structures (Kernel Stack, PCB, Eframe, rest of User
  Structure — the paper's migration-miss trio) may only be touched while
  their process is *not running on some other CPU*: the owner CPU,
  a CPU that just dequeued the process, or anyone while it sleeps;
- the **Process Table** combines both: a write is legal under ``runqlk``
  *or* while the slot's process is not running elsewhere (its own
  syscalls update its entry locklessly, as IRIX did).

Intentional lock-free accesses that a naive rule would flag — the clock
interrupt's priority-decay sweep over other CPUs' proc entries, the disk
interrupt's buffer-header completion writes (interrupt-level ``spl``
protection, pre-dating fine-grain locks) — are annotated at the access
site via :meth:`RaceChecker.allow` (the kernel's ``data_race()``-style
escape hatch, reached through ``Kernel.race_exempt``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.kernel.structures import (
    NPROC,
    PROC_ENTRY_BYTES,
    USTRUCT_BYTES,
    KSTACK_BYTES,
    StructName,
)
from repro.memsys.memory import KDATA_BASE, KHEAP_BASE, KHEAP_SIZE
from repro.sanitizers.report import Violation


@dataclass(frozen=True)
class Protection:
    """Locking discipline of one kernel structure."""

    families: Tuple[str, ...] = ()
    writes_only: bool = False    # reads may go lock-free
    cpu_private: bool = False    # per-slot; owner-CPU-only access


#: The structure → lock protection map (see module docstring). Table 3
#: structures absent from this map (Kernel Heap scratch, Other) have no
#: asserted discipline.
STRUCT_PROTECTION: Dict[StructName, Protection] = {
    StructName.RUN_QUEUE: Protection(families=("runqlk",)),
    StructName.HI_NDPROC: Protection(families=("runqlk",), writes_only=True),
    StructName.FREEPGBUCK: Protection(families=("memlock",)),
    StructName.PFDAT: Protection(families=("memlock",), writes_only=True),
    StructName.CALLOUT: Protection(families=("calock",)),
    StructName.SEM_TABLE: Protection(families=("semlock",)),
    StructName.BUFFER: Protection(
        families=("bfreelock", "ino_x"), writes_only=True
    ),
    StructName.INODE: Protection(families=("ino_x", "ifree"), writes_only=True),
    StructName.PAGE_TABLE: Protection(families=("shr_x",), writes_only=True),
    StructName.PROC_TABLE: Protection(
        families=("runqlk",), writes_only=True, cpu_private=True
    ),
    StructName.KERNEL_STACK: Protection(cpu_private=True),
    StructName.PCB: Protection(cpu_private=True),
    StructName.EFRAME: Protection(cpu_private=True),
    StructName.USTRUCT_REST: Protection(cpu_private=True),
}


class _Allow:
    """Context manager suspending one structure's rule on one CPU."""

    __slots__ = ("checker", "cpu", "structs")

    def __init__(self, checker: "RaceChecker", cpu: int, structs):
        self.checker = checker
        self.cpu = cpu
        self.structs = structs

    def __enter__(self):
        allowed = self.checker._allowed[self.cpu]
        for struct in self.structs:
            allowed[struct] = allowed.get(struct, 0) + 1
        return self

    def __exit__(self, *exc):
        allowed = self.checker._allowed[self.cpu]
        for struct in self.structs:
            remaining = allowed.get(struct, 0) - 1
            if remaining > 0:
                allowed[struct] = remaining
            else:
                allowed.pop(struct, None)
        return False


class RaceChecker:
    """Flags structure accesses made without their protecting lock."""

    def __init__(self, registry, datamap, num_cpus: int):
        self.registry = registry
        self.datamap = datamap
        self.lockdep = None   # bound by CheckRegistry.install
        self.kernel = None    # bound by CheckRegistry.install
        # Kernel structures live in [kdata, end of kheap); everything
        # else (frames, kernel text) is filtered out with two compares.
        self._lo = KDATA_BASE
        self._hi = KHEAP_BASE + KHEAP_SIZE
        self._block_bytes = 16   # rebound from the machine at install
        self._allowed: List[Dict[StructName, int]] = [
            {} for _ in range(num_cpus)
        ]
        self.accesses_checked = 0
        self.queue_ops_checked = 0
        # Deep mode (check="deep"): dread_block/dwrite_block sweeps
        # attributed to the structure they cross, per structure name.
        self.blocks_checked = 0
        self.block_sweeps: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Annotation API
    # ------------------------------------------------------------------
    def allow(self, cpu: int, *structs: StructName) -> _Allow:
        """Suspend checking of ``structs`` on ``cpu`` for a with-block."""
        return _Allow(self, cpu, structs)

    # ------------------------------------------------------------------
    # The probe (Processor.access_probe)
    # ------------------------------------------------------------------
    def on_access(self, cpu: int, addr: int, write: bool) -> None:
        if addr < self._lo or addr >= self._hi:
            return
        name = self.datamap.structure_at(addr)
        rule = STRUCT_PROTECTION.get(name)
        if rule is None:
            return
        self.accesses_checked += 1
        if rule.writes_only and not write:
            return
        if self._allowed[cpu].get(name):
            return
        if rule.families and self.lockdep.holds_family(cpu, rule.families):
            return
        if rule.cpu_private:
            slot = self._slot_of(name, addr)
            runner = self._running_elsewhere(slot, cpu)
            if runner is None:
                return
            self._report(cpu, addr, write, name, rule, slot=slot, runner=runner)
            return
        self._report(cpu, addr, write, name, rule)

    # ------------------------------------------------------------------
    # Run-queue membership (distributed-run-queue variant)
    # ------------------------------------------------------------------
    def on_queue_op(self, cpu: int, cycles: int, queue_index: int,
                    op: str) -> None:
        """A scheduler queue mutation must hold *that queue's* lock.

        The address-level rule cannot tell the distributed queues apart
        (they share ``runq_base``), so the scheduler reports mutations
        at the object level: enqueue/dequeue on queue ``i`` is only
        legal under the ``runqlk_i`` instance (or the single global
        ``runqlk``) — holding a *different* cluster's run-queue lock is
        exactly the bug the per-cluster split can introduce.
        """
        self.queue_ops_checked += 1
        expected = self.kernel.locks.runq(queue_index).name
        held = self.lockdep.held_names(cpu)
        if expected in held:
            return
        self.registry.record(Violation(
            "race", "runq-wrong-lock", cpu, cycles, (
                f"{op} on run queue {queue_index} from cpu{cpu} without "
                f"{expected} held"
            ),
            {
                "structure": StructName.RUN_QUEUE.value,
                "queue": queue_index,
                "required": expected,
                "held_locks": held or "(none)",
            },
        ))

    # ------------------------------------------------------------------
    # Deep mode: block-sweep attribution (Processor.block_probe)
    # ------------------------------------------------------------------
    def on_block(self, cpu: int, block: int, write: bool) -> None:
        """Attribute one block-granularity touch to its structure.

        Attribution only — block sweeps (bcopy/bclear, PCB save/restore,
        kernel-stack touches) run under disciplines the word-level probe
        already checks at their base address; the deep probe exists so a
        checked run can document *which* structures the sweeps crossed.
        """
        addr = block * self._block_bytes
        if addr < self._lo or addr >= self._hi:
            return
        name = self.datamap.structure_at(addr)
        self.blocks_checked += 1
        self.block_sweeps[name.value] = self.block_sweeps.get(name.value, 0) + 1

    # ------------------------------------------------------------------
    def _slot_of(self, name: StructName, addr: int) -> int:
        datamap = self.datamap
        if name is StructName.PROC_TABLE:
            return (addr - datamap.proc_table_base) // PROC_ENTRY_BYTES
        if name is StructName.KERNEL_STACK:
            return (addr - datamap.kstack_base0) // KSTACK_BYTES
        return (addr - datamap.ustruct_base0) // USTRUCT_BYTES

    def _running_elsewhere(self, slot: int, cpu: int) -> Optional[int]:
        """CPU currently running the process in ``slot``, if another."""
        if not 0 <= slot < NPROC:
            return None
        for other_cpu, process in enumerate(self.kernel.current):
            if (
                process is not None
                and process.slot == slot
                and other_cpu != cpu
            ):
                return other_cpu
        return None

    def _report(self, cpu, addr, write, name, rule, slot=None, runner=None):
        kind = "unlocked-write" if write else "unlocked-read"
        details = {
            "structure": name.value,
            "address": hex(addr),
            "held_locks": self.lockdep.held_names(cpu) or "(none)",
        }
        if rule.families:
            details["required"] = " or ".join(rule.families)
        if slot is not None:
            details["slot"] = slot
            details["running_on"] = f"cpu{runner}"
            message = (
                f"{'write to' if write else 'read of'} {name.value} "
                f"slot {slot} from cpu{cpu} while its process runs on "
                f"cpu{runner}"
            )
        else:
            message = (
                f"{'write to' if write else 'read of'} {name.value} at "
                f"{hex(addr)} without {' or '.join(rule.families)} held"
            )
        proc = self.kernel.processors[cpu]
        self.registry.record(Violation(
            "race", kind, cpu, proc.cycles, message, details
        ))
