"""Shard-seam crosscheck for the sharded analysis core.

The sharded analyzer (:mod:`repro.sim.sharded`) splits a trace into
chunks at checkpointed boundaries and splices the per-chunk results.
Every checkpoint records the cumulative monitor transaction counters
(instruction reads, data reads, writes, uncached escapes) at its entry
index — the same quantities the monitor/checker crosscheck already
validates end-to-end (``DREADs == bus_reads``, ``WRITEs ==
bus_write_transactions``).

:func:`verify_seams` asserts that the running sum of each chunk's
counters lands exactly on the next checkpoint's cumulative values. A
mismatch means a chunk saw a different entry stream than the serial
scout pass did — a splice bug — and raises :class:`SeamMismatch`
rather than letting a silently-divergent result escape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.analysis.decode import MONITOR_FIELDS


@dataclass(frozen=True)
class SeamRecord:
    """One shard boundary: where it is and what must be true there."""

    index: int                        # seam number (1-based chunk boundary)
    entry_index: int                  # flat trace-entry index of the boundary
    cumulative: Dict[str, int]        # monitor counters for entries [0, entry_index)


class SeamMismatch(AssertionError):
    """A spliced chunk's counters disagree with the scout checkpoint."""


def verify_seams(
    seams: Sequence[SeamRecord],
    chunk_counters: Sequence[Dict[str, int]],
) -> List[str]:
    """Check every seam; return human-readable ``ok`` lines.

    ``chunk_counters[i]`` holds the per-chunk monitor counters of chunk
    ``i``; seam ``k`` sits between chunk ``k-1`` and chunk ``k``, so the
    sum of chunks ``0..k-1`` must equal the checkpoint cumulative.
    """
    lines: List[str] = []
    running = {name: 0 for name in MONITOR_FIELDS}
    position = 0
    for seam in seams:
        while position < seam.index:
            for name in MONITOR_FIELDS:
                running[name] += chunk_counters[position].get(name, 0)
            position += 1
        for name in MONITOR_FIELDS:
            expected = seam.cumulative.get(name, 0)
            if running[name] != expected:
                raise SeamMismatch(
                    f"seam {seam.index} (entry {seam.entry_index}): "
                    f"{name} spliced={running[name]} checkpoint={expected}"
                )
        lines.append(
            f"seam {seam.index} @entry {seam.entry_index}: "
            + " ".join(f"{name}={running[name]}" for name in MONITOR_FIELDS)
            + " ok"
        )
    return lines
