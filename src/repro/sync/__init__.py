"""Synchronization substrate.

The 4D/340 diverts synchronization accesses to a dedicated
synchronization bus, invisible to the main-bus hardware monitor
(paper Section 2.1). :mod:`repro.sync.syncbus` models that bus and its
cost (the protocol has no atomic read-modify-write, which is what makes
it expensive — Section 5.1).

:mod:`repro.sync.llsc` models the paper's what-if machine: locks are
ordinary cached data kept coherent by the main bus's invalidation
protocol, with MIPS R4000 load-linked/store-conditional providing
atomicity (Table 10 and the last column of Table 12).
"""

from repro.sync.syncbus import SyncBus, SyncBusStats
from repro.sync.llsc import CachedLockSimulator

__all__ = ["SyncBus", "SyncBusStats", "CachedLockSimulator"]
