"""The dedicated synchronization bus of the 4D/340.

Synchronizing accesses bypass the caches and travel on this bus, so the
main-bus monitor cannot see them (Section 2.1). The paper measures their
cost through OS-kept statistics instead (Section 2.2); we model the bus
as a per-access stall plus the same style of statistics counters.

The protocol "suffers from the processor's lack of support for an atomic
read-modify-write operation" (Section 5.1): taking a lock is a separate
uncached read plus write, each a bus round trip, and every spin iteration
is a further uncached read.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SyncBusStats:
    """Counters the modelled OS keeps about synchronization traffic.

    ``stall_cycles_by_cpu`` mirrors the paper's technique of exporting
    OS-kept statistics through pages mapped into a user process
    (Section 2.2): the experiment harness reads them before and after a
    run.
    """

    reads: int = 0
    writes: int = 0
    stall_cycles_by_cpu: dict = field(default_factory=dict)

    @property
    def total_ops(self) -> int:
        return self.reads + self.writes

    def total_stall_cycles(self) -> int:
        return sum(self.stall_cycles_by_cpu.values())


class SyncBus:
    """Uncached synchronization bus.

    Each operation stalls the issuing CPU for ``op_cycles`` (a bus round
    trip without caching). The acquire sequence on the real machine is a
    read (test) plus a write (set) because there is no atomic RMW;
    callers issue those as separate operations.
    """

    def __init__(self, op_cycles: int = 25):
        if op_cycles < 1:
            raise ValueError("op_cycles must be positive")
        self.op_cycles = op_cycles
        self.stats = SyncBusStats()

    def read(self, cpu_id: int) -> int:
        """One uncached read (test of a lock, spin iteration).

        Returns the stall cycles the CPU must charge itself.
        """
        self.stats.reads += 1
        self.stats.stall_cycles_by_cpu[cpu_id] = (
            self.stats.stall_cycles_by_cpu.get(cpu_id, 0) + self.op_cycles
        )
        return self.op_cycles

    def write(self, cpu_id: int) -> int:
        """One uncached write (setting or clearing a lock)."""
        self.stats.writes += 1
        self.stats.stall_cycles_by_cpu[cpu_id] = (
            self.stats.stall_cycles_by_cpu.get(cpu_id, 0) + self.op_cycles
        )
        return self.op_cycles
