"""What-if model: cachable locks with LL/SC atomicity.

Section 5.1 simulates "a machine where synchronization accesses use the
main bus and the same cache coherence protocol as regular accesses",
with MIPS R4000 load-linked / store-conditional providing the atomic
read-modify-write. Under that protocol a CPU re-acquiring a lock that
nobody else touched since its own release hits in its cache and needs
**no** bus access; any other access pattern costs an invalidation-protocol
miss.

:class:`CachedLockSimulator` replays the lock access stream online. The
simulator feeds it every lock event (acquire attempt, successful acquire,
release, spin); it counts the bus accesses each of the two machines would
make:

- *uncached machine* (the real 4D/340): every event is a sync-bus access;
- *cached machine* (the what-if): an access misses only when another CPU
  touched the lock word since this CPU last had it, and spinning is local
  (spin-on-read in the cache) except for the first read after an
  invalidation.

The ratio of the two is the last column of Table 12; the stall times are
Table 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass
class LockBusCounts:
    """Bus accesses attributed to one lock under both machines."""

    uncached_accesses: int = 0
    cached_misses: int = 0

    @property
    def cached_to_uncached_pct(self) -> float:
        """Misses-cached / misses-uncached, in percent (Table 12)."""
        if not self.uncached_accesses:
            return 0.0
        return 100.0 * self.cached_misses / self.uncached_accesses


class CachedLockSimulator:
    """Online two-machine lock-traffic simulation."""

    def __init__(self, bus_stall_cycles: int = 35, sync_op_cycles: int = 25):
        self.bus_stall_cycles = bus_stall_cycles
        self.sync_op_cycles = sync_op_cycles
        self._last_toucher: Dict[str, int] = {}
        # lock name -> per-CPU "my cached copy is valid" map
        self._valid_copy: Dict[str, Dict[int, bool]] = {}
        self.per_lock: Dict[str, LockBusCounts] = {}
        self.cached_stall_by_cpu: Dict[int, int] = {}
        self.uncached_stall_by_cpu: Dict[int, int] = {}

    def _counts(self, lock: str) -> LockBusCounts:
        counts = self.per_lock.get(lock)
        if counts is None:
            counts = LockBusCounts()
            self.per_lock[lock] = counts
        return counts

    def _touch(self, lock: str, cpu: int, writes: bool, uncached_ops: int) -> None:
        counts = self._counts(lock)
        counts.uncached_accesses += uncached_ops
        self.uncached_stall_by_cpu[cpu] = (
            self.uncached_stall_by_cpu.get(cpu, 0)
            + uncached_ops * self.sync_op_cycles
        )
        valid = self._valid_copy.setdefault(lock, {})
        if not valid.get(cpu, False):
            # Cached machine: fetch the lock line once.
            counts.cached_misses += 1
            self.cached_stall_by_cpu[cpu] = (
                self.cached_stall_by_cpu.get(cpu, 0) + self.bus_stall_cycles
            )
            valid[cpu] = True
        if writes:
            # SC / release invalidates every other copy.
            for other in list(valid):
                if other != cpu:
                    valid[other] = False
        self._last_toucher[lock] = cpu

    # ------------------------------------------------------------------
    # Event feed
    # ------------------------------------------------------------------
    def on_acquire(self, lock: str, cpu: int) -> None:
        """Successful acquire: uncached machine pays a read + a write
        (no atomic RMW); cached machine pays at most one miss (LL/SC
        on the cached line)."""
        self._touch(lock, cpu, writes=True, uncached_ops=2)

    def on_spin(self, lock: str, cpu: int, iterations: int) -> None:
        """Spinning: every iteration is an uncached read on the real
        machine; on the cached machine the CPU spins in its cache and
        pays one miss to fetch the line (handled by `_touch`)."""
        if iterations <= 0:
            return
        self._touch(lock, cpu, writes=False, uncached_ops=iterations)

    def on_release(self, lock: str, cpu: int) -> None:
        """Release: one uncached write; on the cached machine the line is
        normally still held exclusive by the releaser (zero or one miss)."""
        self._touch(lock, cpu, writes=True, uncached_ops=1)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def cached_stall_cycles(self) -> int:
        return sum(self.cached_stall_by_cpu.values())

    def uncached_stall_cycles(self) -> int:
        return sum(self.uncached_stall_by_cpu.values())
