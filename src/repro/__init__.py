"""repro — a full-system reproduction of Torrellas, Gupta & Hennessy,
"Characterizing the Caching and Synchronization Performance of a
Multiprocessor Operating System" (ASPLOS 1992).

The package models the complete measured system:

- :mod:`repro.memsys` — the SGI 4D/340 memory system (per-CPU caches,
  snooping bus, physical memory).
- :mod:`repro.cpu` — processors and TLBs.
- :mod:`repro.kernel` — a synthetic IRIX-like System V kernel (scheduler,
  TLB fault handlers, system calls, interrupts, block operations, locks).
- :mod:`repro.sync` — the dedicated synchronization bus and the LL/SC
  cached-lock what-if protocol.
- :mod:`repro.workloads` — generative models of the paper's three
  workloads (Pmake, Multpgm, Oracle).
- :mod:`repro.monitor` — the bus-snooping hardware monitor, escape
  reference encoding, and the master tracing process.
- :mod:`repro.analysis` — the trace postprocessing pipeline (decoding,
  miss classification, attribution, stall accounting, cache sweeps,
  lock statistics).
- :mod:`repro.sim` — top-level simulation sessions and per-workload
  calibration.
- :mod:`repro.experiments` — one module per paper table/figure.

Quickstart (the stable entry point is :mod:`repro.api`)::

    from repro import api

    run = api.run("pmake", horizon_ms=50.0, seed=1)
    report = api.report("pmake", run=run)
    print(report.stall.os_stall_fraction)
"""

from repro.common.params import MachineParams
from repro.sim._session import Simulation, TracedRun, run_traced_workload
from repro.analysis.report import AnalysisReport, analyze_trace
from repro.kernel.kernel import KernelTuning
from repro.workloads import make_workload

__version__ = "1.0.0"

__all__ = [
    "MachineParams",
    "KernelTuning",
    "Simulation",
    "TracedRun",
    "run_traced_workload",
    "make_workload",
    "AnalysisReport",
    "analyze_trace",
    "__version__",
]
