"""The shared snooping bus.

Every second-level cache miss, coherence upgrade, and uncached access
becomes a :class:`BusTransaction`. The hardware monitor
(:mod:`repro.monitor.hwmonitor`) attaches as a listener and records the
(time, CPU, physical address) triple of each transaction — exactly what
the paper's monitor stored (Section 2.1).

Synchronization accesses do *not* travel on this bus: the 4D/340 diverts
them to a dedicated synchronization bus (modelled in
:mod:`repro.sync.syncbus`), which is why the paper's monitor could not see
them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List


class BusOp(enum.Enum):
    """Bus transaction kinds distinguishable by a bus snooper."""

    READ = "read"            # cache fill for a read / instruction fetch
    WRITE = "write"          # cache fill for a write, or ownership upgrade
    UNCACHED_READ = "uncached_read"  # cache-bypassing read (escapes, PIO)

    # Members are singletons; the C-level identity hash beats Enum's
    # Python-level hash on the per-transaction monitor/analysis paths.
    __hash__ = object.__hash__


@dataclass(frozen=True)
class BusTransaction:
    """One observable bus transaction.

    ``time_cycles`` is in 30 ns processor cycles; the monitor quantizes to
    its own 60 ns tick when recording.
    """

    time_cycles: int
    cpu: int
    addr: int
    op: BusOp


Listener = Callable[[BusTransaction], None]


class Bus:
    """Broadcast medium connecting the CPUs, memory and the monitor."""

    def __init__(self) -> None:
        self._listeners: List[Listener] = []
        self.transaction_count = 0

    def attach(self, listener: Listener) -> None:
        """Attach a snooper called on every transaction."""
        self._listeners.append(listener)

    def detach(self, listener: Listener) -> None:
        self._listeners.remove(listener)

    def transaction(self, time_cycles: int, cpu: int, addr: int, op: BusOp) -> None:
        """Issue one transaction and notify all snoopers."""
        self.transaction_count += 1
        if self._listeners:
            txn = BusTransaction(time_cycles, cpu, addr, op)
            for listener in self._listeners:
                listener(txn)
