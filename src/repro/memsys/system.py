"""The complete memory system: caches + coherence + bus + memory.

:class:`MemorySystem` is the single entry point through which CPUs touch
memory. It

- walks the per-CPU cache hierarchies,
- maintains write-invalidate coherence between the data caches (the
  4D/340's snooping protocol), issuing bus transactions for fills and
  ownership upgrades,
- leaves instruction caches incoherent (software-flushed on page
  reallocation, per Table 2's *Inval* class),
- reports every bus transaction to attached listeners (the hardware
  monitor), and
- feeds the ground-truth classifier.

Return values are CPU stall cycles, using the paper's own cost model:
35 cycles per bus access, ~15 cycles for an L1 data miss that hits in L2
(Section 3.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.params import MachineParams
from repro.common.types import RefDomain
from repro.memsys.bus import Bus, BusOp
from repro.memsys.cache import EMPTY
from repro.memsys.hierarchy import AccessOutcome, CpuCacheHierarchy
from repro.memsys.memory import PhysicalMemory
from repro.memsys.tracking import DATA, INSTR, GroundTruth

# Sentinel meaning "block owned by no single CPU" (shared or uncached).
SHARED = -1


class MemorySystem:
    """All CPUs' caches plus the bus, memory and coherence state."""

    def __init__(
        self,
        params: MachineParams,
        bus: Optional[Bus] = None,
        record_events: bool = False,
    ):
        self.params = params
        self.bus = bus if bus is not None else Bus()
        self.memory = PhysicalMemory(params)
        self.hierarchies: List[CpuCacheHierarchy] = [
            CpuCacheHierarchy(cpu, params) for cpu in range(params.num_cpus)
        ]
        self.truth = GroundTruth(params.num_cpus, record_events=record_events)
        # block -> owning CPU for exclusively-held (written) blocks.
        self._owner: Dict[int, int] = {}
        # Fidelity tier (repro.fidelity): when ``atomic`` is True the
        # memory system services references *functionally* — cache tags,
        # coherence ownership and ground-truth warmth state keep
        # evolving, and misses still cost their model latency — but no
        # bus transactions are issued, no monitor sees anything, and no
        # statistics counters advance. Only the bus-visible levels are
        # kept warm (I-cache and L2): the first-level data cache is
        # invisible to the bus and is flushed at the atomic→detailed
        # seam, so a resident data block costs nothing here and a miss
        # costs the bus latency (the ≤15-cycle L1/L2 refinement is the
        # tier's one timing approximation). ``atomic_refs`` counts
        # references served this way (the ``fast_forward`` budget of a
        # mixed-fidelity run).
        self.atomic = False
        self.atomic_refs = 0
        # Direct-mapped caches (the default geometry) make a hit a pure
        # membership test — `access()` cannot reorder a one-way set — so
        # the atomic paths shortcut it. Associative variants (Figure 6)
        # fall back to the full access for exact LRU.
        self._dl2_dm = params.dcache_l2.associativity == 1
        self._icache_dm = params.icache.associativity == 1
        # Prebound per-CPU state for the scalar atomic paths (the
        # batched sweeps rebuild the same bindings per call): truth
        # handles, and each CPU's snoop targets with their present-sets
        # so the dwrite invalidation loop can pre-test membership
        # instead of calling into every other hierarchy. All referenced
        # containers are mutated in place, never replaced, so the
        # bindings stay valid for the system's lifetime.
        self._itruth = [self.truth.cpu_truth(c, INSTR) for c in range(params.num_cpus)]
        self._dtruth = [self.truth.cpu_truth(c, DATA) for c in range(params.num_cpus)]
        self._snoop = [
            [
                (h, h.dl1._present, h.dl2._present)
                for h in self.hierarchies if h.cpu != cpu
            ]
            for cpu in range(params.num_cpus)
        ]
        # Sanitizer hook: a CoherenceChecker when invariant checking is
        # on (repro.sanitizers); None-guarded on miss/upgrade paths only.
        self.checker = None
        self.block_bytes = params.block_bytes
        # Counters the experiments use directly.
        self.bus_reads = 0
        self.bus_writes = 0
        self.bus_uncached = 0

    # ------------------------------------------------------------------
    # Instruction fetch
    # ------------------------------------------------------------------
    def ifetch(
        self, time_cycles: int, cpu: int, block: int, domain: RefDomain, app_epoch: int
    ) -> int:
        """Fetch one instruction block; returns stall cycles."""
        if self.atomic:
            self.atomic_refs += 1
            icache = self.hierarchies[cpu].icache
            if self._icache_dm:
                if block in icache._present:
                    return 0
                victim = icache.fill(block)
            else:
                victim = icache.access(block)
                if victim is None:
                    return 0
            truth = self._itruth[cpu]
            if victim != EMPTY:
                truth.evicted_by[victim] = (domain, app_epoch)
                truth.invalidated.discard(victim)
            truth.ever_cached.add(block)
            truth.evicted_by.pop(block, None)
            truth.invalidated.discard(block)
            return self.params.bus_stall_cycles
        victim = self.hierarchies[cpu].ifetch(block)
        if victim is None:
            return 0
        if victim != EMPTY:
            self.truth.record_eviction(cpu, INSTR, victim, domain, app_epoch)
        self.truth.classify_and_record(time_cycles, cpu, INSTR, block, domain, app_epoch)
        self.bus_reads += 1
        self.bus.transaction(time_cycles, cpu, block * self.block_bytes, BusOp.READ)
        return self.params.bus_stall_cycles

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    def dread(
        self, time_cycles: int, cpu: int, block: int, domain: RefDomain, app_epoch: int
    ) -> int:
        """Read one data block; returns stall cycles."""
        if self.atomic:
            # Functional tier: L2 tags, ownership and warmth state keep
            # moving and the bus latency is charged on a miss, but there
            # is no bus transaction, no checker and no counter traffic.
            self.atomic_refs += 1
            dl2 = self.hierarchies[cpu].dl2
            if self._dl2_dm:
                if block in dl2._present:
                    return 0
                victim = dl2.fill(block)
            else:
                victim = dl2.access(block)
                if victim is None:
                    return 0
            owner = self._owner
            truth = self._dtruth[cpu]
            if victim != EMPTY:
                truth.evicted_by[victim] = (domain, app_epoch)
                truth.invalidated.discard(victim)
                if owner.get(victim) == cpu:
                    del owner[victim]
            truth.ever_cached.add(block)
            truth.evicted_by.pop(block, None)
            truth.invalidated.discard(block)
            own = owner.get(block, SHARED)
            if own != SHARED and own != cpu:
                owner.pop(block, None)
            return self.params.bus_stall_cycles
        outcome, victim = self.hierarchies[cpu].daccess(block)
        if outcome is AccessOutcome.L1_HIT:
            return 0
        if outcome is AccessOutcome.L2_HIT:
            return self.params.l2_hit_stall_cycles
        if victim != EMPTY:
            self.truth.record_eviction(cpu, DATA, victim, domain, app_epoch)
            if self._owner.get(victim) == cpu:
                del self._owner[victim]
        self.truth.classify_and_record(time_cycles, cpu, DATA, block, domain, app_epoch)
        # Reading a block exclusively held elsewhere downgrades it to shared.
        owner = self._owner.get(block, SHARED)
        if owner != SHARED and owner != cpu:
            self._owner.pop(block, None)
        self.bus_reads += 1
        self.bus.transaction(time_cycles, cpu, block * self.block_bytes, BusOp.READ)
        if self.checker is not None:
            self.checker.after_data_read(time_cycles, cpu, block)
        return self.params.bus_stall_cycles

    def dwrite(
        self, time_cycles: int, cpu: int, block: int, domain: RefDomain, app_epoch: int
    ) -> int:
        """Write one data block; returns stall cycles.

        Writing a block not exclusively owned issues a bus transaction
        that invalidates every other CPU's copy — those invalidations are
        what later surface as *Sharing* misses (Table 2).
        """
        if self.atomic:
            self.atomic_refs += 1
            dl2 = self.hierarchies[cpu].dl2
            owner = self._owner
            if self._dl2_dm:
                # Reaching here with the block resident means only the
                # ownership test failed — resident is NOT proven absent
                # (unlike the read paths), so fill() needs its own
                # presence check.
                if block in dl2._present:
                    if owner.get(block) == cpu:
                        return 0
                    victim = None
                else:
                    victim = dl2.fill(block)
            else:
                victim = dl2.access(block)
            stall = 0
            if victim is not None:
                truth = self._dtruth[cpu]
                if victim != EMPTY:
                    truth.evicted_by[victim] = (domain, app_epoch)
                    truth.invalidated.discard(victim)
                    if owner.get(victim) == cpu:
                        del owner[victim]
                truth.ever_cached.add(block)
                truth.evicted_by.pop(block, None)
                truth.invalidated.discard(block)
            if owner.get(block, SHARED) != cpu:
                record_inval = self.truth.record_invalidation
                for other, o_dl1p, o_dl2p in self._snoop[cpu]:
                    if (
                        (block in o_dl2p or block in o_dl1p)
                        and other.invalidate_data(block)
                    ):
                        record_inval(other.cpu, DATA, block)
                owner[block] = cpu
                stall += self.params.bus_stall_cycles
            return stall
        outcome, victim = self.hierarchies[cpu].daccess(block)
        stall = 0
        if outcome is AccessOutcome.L2_HIT:
            stall += self.params.l2_hit_stall_cycles
        if outcome is AccessOutcome.MISS:
            if victim != EMPTY:
                self.truth.record_eviction(cpu, DATA, victim, domain, app_epoch)
                if self._owner.get(victim) == cpu:
                    # Evicting an owned line writes it back: nobody owns
                    # it any more. (Without this, a later write to the
                    # victim by this CPU would fill the cache with no
                    # bus transaction — a fill the monitor cannot see.)
                    del self._owner[victim]
            self.truth.classify_and_record(
                time_cycles, cpu, DATA, block, domain, app_epoch
            )
        transacted = False
        icache_before = ()
        if self._owner.get(block, SHARED) != cpu:
            if self.checker is not None:
                icache_before = self.checker.snapshot_icaches(block)
            # Gain ownership: one bus transaction invalidating other copies.
            for other in self.hierarchies:
                if other.cpu != cpu and other.invalidate_data(block):
                    self.truth.record_invalidation(other.cpu, DATA, block)
            self._owner[block] = cpu
            self.bus_writes += 1
            self.bus.transaction(
                time_cycles, cpu, block * self.block_bytes, BusOp.WRITE
            )
            stall += self.params.bus_stall_cycles
            transacted = True
        if self.checker is not None and (
            transacted or outcome is AccessOutcome.MISS
        ):
            self.checker.after_data_write(
                time_cycles, cpu, block, outcome is AccessOutcome.MISS,
                transacted, icache_before,
            )
        return stall

    # ------------------------------------------------------------------
    # Atomic-tier batched sweeps
    # ------------------------------------------------------------------
    # Block sweeps (bcopy, bclear, structure touches) dominate the
    # fast-forward's wall clock; these loops evolve exactly the same
    # state and charge exactly the same latency as issuing the per-block
    # dread/dwrite/ifetch sequence through the atomic paths above, with
    # the per-reference call overhead amortized. They reach into Cache
    # and GroundTruth internals deliberately — this is the one sanctioned
    # performance seam, kept adjacent to the methods it mirrors.

    def atomic_sweep(
        self,
        cpu: int,
        dst_block: int,
        nblocks: int,
        loop_block: int,
        refetch_every: int,
        domain: RefDomain,
        app_epoch: int,
        src_block: Optional[int] = None,
    ) -> int:
        """bcopy/bclear inner loop; returns total stall cycles.

        Writes ``nblocks`` blocks from ``dst_block``, reading the
        corresponding source block first when ``src_block`` is given,
        with the loop-body refetch folded in (the loop block is fetched
        by the preceding ``ifetch_range``, so at most the first refetch
        can miss; data sweeps cannot evict I-cache lines).
        """
        hier = self.hierarchies[cpu]
        dl2 = hier.dl2
        dm = self._dl2_dm
        dl2_access = dl2.fill if dm else dl2.access
        present = dl2._present
        truth = self.truth.cpu_truth(cpu, DATA)
        ever_add = truth.ever_cached.add
        evicted = truth.evicted_by
        evicted_pop = evicted.pop
        inval_discard = truth.invalidated.discard
        owner = self._owner
        owner_get = owner.get
        record_inval = self.truth.record_invalidation
        others = self._snoop[cpu]
        bus = self.params.bus_stall_cycles
        ev = (domain, app_epoch)
        stall = 0
        n_if = (nblocks + refetch_every - 1) // refetch_every
        for i in range(nblocks):
            if src_block is not None:
                b = src_block + i
                if not (dm and b in present):
                    victim = dl2_access(b)
                    if victim is not None:
                        if victim != EMPTY:
                            evicted[victim] = ev
                            inval_discard(victim)
                            if owner_get(victim) == cpu:
                                del owner[victim]
                        ever_add(b)
                        evicted_pop(b, None)
                        inval_discard(b)
                        own = owner_get(b)
                        if own is not None and own != cpu:
                            del owner[b]
                        stall += bus
            b = dst_block + i
            if not (dm and b in present):
                victim = dl2_access(b)
                if victim is not None:
                    if victim != EMPTY:
                        evicted[victim] = ev
                        inval_discard(victim)
                        if owner_get(victim) == cpu:
                            del owner[victim]
                    ever_add(b)
                    evicted_pop(b, None)
                    inval_discard(b)
            if owner_get(b) != cpu:
                for other, o_dl1p, o_dl2p in others:
                    if (b in o_dl2p or b in o_dl1p) and other.invalidate_data(b):
                        record_inval(other.cpu, DATA, b)
                owner[b] = cpu
                stall += bus
        if n_if > 0:
            stall += self.ifetch(0, cpu, loop_block, domain, app_epoch)
            self.atomic_refs += n_if - 1
        reads = nblocks if src_block is not None else 0
        self.atomic_refs += nblocks + reads
        return stall

    def atomic_dtouch(
        self,
        cpu: int,
        first_block: int,
        nblocks: int,
        write: bool,
        domain: RefDomain,
        app_epoch: int,
    ) -> int:
        """``dtouch_range``'s loop in one call; returns stall cycles."""
        hier = self.hierarchies[cpu]
        dl2 = hier.dl2
        dm = self._dl2_dm
        dl2_access = dl2.fill if dm else dl2.access
        present = dl2._present
        truth = self.truth.cpu_truth(cpu, DATA)
        ever_add = truth.ever_cached.add
        evicted = truth.evicted_by
        evicted_pop = evicted.pop
        inval_discard = truth.invalidated.discard
        owner = self._owner
        owner_get = owner.get
        record_inval = self.truth.record_invalidation
        others = self._snoop[cpu]
        bus = self.params.bus_stall_cycles
        ev = (domain, app_epoch)
        stall = 0
        for b in range(first_block, first_block + nblocks):
            if not (dm and b in present):
                victim = dl2_access(b)
                if victim is not None:
                    if victim != EMPTY:
                        evicted[victim] = ev
                        inval_discard(victim)
                        if owner_get(victim) == cpu:
                            del owner[victim]
                    ever_add(b)
                    evicted_pop(b, None)
                    inval_discard(b)
                    if not write:
                        own = owner_get(b)
                        if own is not None and own != cpu:
                            del owner[b]
                        stall += bus
            if write and owner_get(b) != cpu:
                for other, o_dl1p, o_dl2p in others:
                    if (b in o_dl2p or b in o_dl1p) and other.invalidate_data(b):
                        record_inval(other.cpu, DATA, b)
                owner[b] = cpu
                stall += bus
        self.atomic_refs += nblocks
        return stall

    def atomic_ifetch_range(
        self, cpu: int, first_block: int, nblocks: int,
        domain: RefDomain, app_epoch: int,
    ) -> int:
        """``ifetch_range``'s loop in one call; returns stall cycles."""
        icache = self.hierarchies[cpu].icache
        dm = self._icache_dm
        icache_access = icache.fill if dm else icache.access
        present = icache._present
        truth = self.truth.cpu_truth(cpu, INSTR)
        ever_add = truth.ever_cached.add
        evicted = truth.evicted_by
        evicted_pop = evicted.pop
        inval_discard = truth.invalidated.discard
        ev = (domain, app_epoch)
        bus = self.params.bus_stall_cycles
        stall = 0
        for b in range(first_block, first_block + nblocks):
            if dm and b in present:
                continue
            victim = icache_access(b)
            if victim is None:
                continue
            if victim != EMPTY:
                evicted[victim] = ev
                inval_discard(victim)
            ever_add(b)
            evicted_pop(b, None)
            inval_discard(b)
            stall += bus
        self.atomic_refs += nblocks
        return stall

    # ------------------------------------------------------------------
    # Uncached accesses (escape references)
    # ------------------------------------------------------------------
    def uncached_read(
        self, time_cycles: int, cpu: int, addr: int, domain: RefDomain = RefDomain.OS
    ) -> int:
        """Cache-bypassing byte read; always one bus transaction.

        The paper's instrumentation transfers information to the trace
        through these (Section 2.2); they cost "as cheaply ... as one or
        more cache misses".
        """
        if self.atomic:
            self.atomic_refs += 1
            return self.params.bus_stall_cycles
        self.truth.record_uncached(domain)
        self.bus_uncached += 1
        self.bus.transaction(time_cycles, cpu, addr, BusOp.UNCACHED_READ)
        return self.params.bus_stall_cycles

    # ------------------------------------------------------------------
    # Instruction-cache invalidation (page reallocation)
    # ------------------------------------------------------------------
    def flush_icache_range(self, base_addr: int, size: int) -> int:
        """Invalidate an address range from every CPU's I-cache.

        Called by the kernel when a physical page that contained code is
        reallocated. Returns the number of lines invalidated across all
        CPUs (the seeds of future *Inval* misses).
        """
        first_block = base_addr // self.block_bytes
        num_blocks = -(-size // self.block_bytes)
        flushed = 0
        for hierarchy in self.hierarchies:
            for block in hierarchy.invalidate_instr_range(first_block, num_blocks):
                self.truth.record_invalidation(hierarchy.cpu, INSTR, block)
                flushed += 1
        if self.checker is not None:
            self.checker.after_icache_flush(first_block, num_blocks)
        return flushed

    def flush_all_icaches(self) -> int:
        """Invalidate every CPU's entire I-cache.

        The R3000 has no selective I-cache coherence; reallocating a
        frame that held code forces a full flush, whose re-fetches become
        *Inval* misses (Table 2, Figure 6).
        """
        flushed = 0
        for hierarchy in self.hierarchies:
            for block in hierarchy.icache.invalidate_all():
                self.truth.record_invalidation(hierarchy.cpu, INSTR, block)
                flushed += 1
        if self.checker is not None:
            self.checker.after_full_icache_flush()
        return flushed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_bus_transactions(self) -> int:
        return self.bus_reads + self.bus_writes + self.bus_uncached
