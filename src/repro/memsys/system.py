"""The complete memory system: caches + coherence + bus + memory.

:class:`MemorySystem` is the single entry point through which CPUs touch
memory. It

- walks the per-CPU cache hierarchies,
- maintains write-invalidate coherence between the data caches (the
  4D/340's snooping protocol), issuing bus transactions for fills and
  ownership upgrades,
- leaves instruction caches incoherent (software-flushed on page
  reallocation, per Table 2's *Inval* class),
- reports every bus transaction to attached listeners (the hardware
  monitor), and
- feeds the ground-truth classifier.

Return values are CPU stall cycles, using the paper's own cost model:
35 cycles per bus access, ~15 cycles for an L1 data miss that hits in L2
(Section 3.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.params import MachineParams
from repro.common.types import RefDomain
from repro.memsys.bus import Bus, BusOp
from repro.memsys.cache import EMPTY
from repro.memsys.hierarchy import AccessOutcome, CpuCacheHierarchy
from repro.memsys.memory import PhysicalMemory
from repro.memsys.tracking import DATA, INSTR, GroundTruth

# Sentinel meaning "block owned by no single CPU" (shared or uncached).
SHARED = -1


class MemorySystem:
    """All CPUs' caches plus the bus, memory and coherence state."""

    def __init__(
        self,
        params: MachineParams,
        bus: Optional[Bus] = None,
        record_events: bool = False,
    ):
        self.params = params
        self.bus = bus if bus is not None else Bus()
        self.memory = PhysicalMemory(params)
        self.hierarchies: List[CpuCacheHierarchy] = [
            CpuCacheHierarchy(cpu, params) for cpu in range(params.num_cpus)
        ]
        self.truth = GroundTruth(params.num_cpus, record_events=record_events)
        # block -> owning CPU for exclusively-held (written) blocks.
        self._owner: Dict[int, int] = {}
        # Sanitizer hook: a CoherenceChecker when invariant checking is
        # on (repro.sanitizers); None-guarded on miss/upgrade paths only.
        self.checker = None
        self.block_bytes = params.block_bytes
        # Counters the experiments use directly.
        self.bus_reads = 0
        self.bus_writes = 0
        self.bus_uncached = 0

    # ------------------------------------------------------------------
    # Instruction fetch
    # ------------------------------------------------------------------
    def ifetch(
        self, time_cycles: int, cpu: int, block: int, domain: RefDomain, app_epoch: int
    ) -> int:
        """Fetch one instruction block; returns stall cycles."""
        victim = self.hierarchies[cpu].ifetch(block)
        if victim is None:
            return 0
        if victim != EMPTY:
            self.truth.record_eviction(cpu, INSTR, victim, domain, app_epoch)
        self.truth.classify_and_record(time_cycles, cpu, INSTR, block, domain, app_epoch)
        self.bus_reads += 1
        self.bus.transaction(time_cycles, cpu, block * self.block_bytes, BusOp.READ)
        return self.params.bus_stall_cycles

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    def dread(
        self, time_cycles: int, cpu: int, block: int, domain: RefDomain, app_epoch: int
    ) -> int:
        """Read one data block; returns stall cycles."""
        outcome, victim = self.hierarchies[cpu].daccess(block)
        if outcome is AccessOutcome.L1_HIT:
            return 0
        if outcome is AccessOutcome.L2_HIT:
            return self.params.l2_hit_stall_cycles
        if victim != EMPTY:
            self.truth.record_eviction(cpu, DATA, victim, domain, app_epoch)
            if self._owner.get(victim) == cpu:
                del self._owner[victim]
        self.truth.classify_and_record(time_cycles, cpu, DATA, block, domain, app_epoch)
        # Reading a block exclusively held elsewhere downgrades it to shared.
        owner = self._owner.get(block, SHARED)
        if owner != SHARED and owner != cpu:
            self._owner.pop(block, None)
        self.bus_reads += 1
        self.bus.transaction(time_cycles, cpu, block * self.block_bytes, BusOp.READ)
        if self.checker is not None:
            self.checker.after_data_read(time_cycles, cpu, block)
        return self.params.bus_stall_cycles

    def dwrite(
        self, time_cycles: int, cpu: int, block: int, domain: RefDomain, app_epoch: int
    ) -> int:
        """Write one data block; returns stall cycles.

        Writing a block not exclusively owned issues a bus transaction
        that invalidates every other CPU's copy — those invalidations are
        what later surface as *Sharing* misses (Table 2).
        """
        outcome, victim = self.hierarchies[cpu].daccess(block)
        stall = 0
        if outcome is AccessOutcome.L2_HIT:
            stall += self.params.l2_hit_stall_cycles
        if outcome is AccessOutcome.MISS:
            if victim != EMPTY:
                self.truth.record_eviction(cpu, DATA, victim, domain, app_epoch)
                if self._owner.get(victim) == cpu:
                    # Evicting an owned line writes it back: nobody owns
                    # it any more. (Without this, a later write to the
                    # victim by this CPU would fill the cache with no
                    # bus transaction — a fill the monitor cannot see.)
                    del self._owner[victim]
            self.truth.classify_and_record(
                time_cycles, cpu, DATA, block, domain, app_epoch
            )
        transacted = False
        icache_before = ()
        if self._owner.get(block, SHARED) != cpu:
            if self.checker is not None:
                icache_before = self.checker.snapshot_icaches(block)
            # Gain ownership: one bus transaction invalidating other copies.
            for other in self.hierarchies:
                if other.cpu != cpu and other.invalidate_data(block):
                    self.truth.record_invalidation(other.cpu, DATA, block)
            self._owner[block] = cpu
            self.bus_writes += 1
            self.bus.transaction(
                time_cycles, cpu, block * self.block_bytes, BusOp.WRITE
            )
            stall += self.params.bus_stall_cycles
            transacted = True
        if self.checker is not None and (
            transacted or outcome is AccessOutcome.MISS
        ):
            self.checker.after_data_write(
                time_cycles, cpu, block, outcome is AccessOutcome.MISS,
                transacted, icache_before,
            )
        return stall

    # ------------------------------------------------------------------
    # Uncached accesses (escape references)
    # ------------------------------------------------------------------
    def uncached_read(
        self, time_cycles: int, cpu: int, addr: int, domain: RefDomain = RefDomain.OS
    ) -> int:
        """Cache-bypassing byte read; always one bus transaction.

        The paper's instrumentation transfers information to the trace
        through these (Section 2.2); they cost "as cheaply ... as one or
        more cache misses".
        """
        self.truth.record_uncached(domain)
        self.bus_uncached += 1
        self.bus.transaction(time_cycles, cpu, addr, BusOp.UNCACHED_READ)
        return self.params.bus_stall_cycles

    # ------------------------------------------------------------------
    # Instruction-cache invalidation (page reallocation)
    # ------------------------------------------------------------------
    def flush_icache_range(self, base_addr: int, size: int) -> int:
        """Invalidate an address range from every CPU's I-cache.

        Called by the kernel when a physical page that contained code is
        reallocated. Returns the number of lines invalidated across all
        CPUs (the seeds of future *Inval* misses).
        """
        first_block = base_addr // self.block_bytes
        num_blocks = -(-size // self.block_bytes)
        flushed = 0
        for hierarchy in self.hierarchies:
            for block in hierarchy.invalidate_instr_range(first_block, num_blocks):
                self.truth.record_invalidation(hierarchy.cpu, INSTR, block)
                flushed += 1
        if self.checker is not None:
            self.checker.after_icache_flush(first_block, num_blocks)
        return flushed

    def flush_all_icaches(self) -> int:
        """Invalidate every CPU's entire I-cache.

        The R3000 has no selective I-cache coherence; reallocating a
        frame that held code forces a full flush, whose re-fetches become
        *Inval* misses (Table 2, Figure 6).
        """
        flushed = 0
        for hierarchy in self.hierarchies:
            for block in hierarchy.icache.invalidate_all():
                self.truth.record_invalidation(hierarchy.cpu, INSTR, block)
                flushed += 1
        if self.checker is not None:
            self.checker.after_full_icache_flush()
        return flushed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_bus_transactions(self) -> int:
        return self.bus_reads + self.bus_writes + self.bus_uncached
