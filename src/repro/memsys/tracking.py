"""Simulator-side ground truth for miss classification.

The paper classifies every OS miss into the Table 2 taxonomy by
reconstructing cache contents from the monitor's miss stream. Our
analysis pipeline (:mod:`repro.analysis.classify`) does the same from the
recorded trace. This module keeps the *simulator's own* answer for every
miss, so tests can verify that the trace-driven reconstruction agrees
with what actually happened.

Per CPU and per cache kind (instruction / bus-visible data level) we
remember, for every block:

- whether this CPU has ever cached it (otherwise a miss is *Cold*),
- if it was displaced, whether the displacing reference was an OS or an
  application reference, and the CPU's "application epoch" at that moment
  (so *Dispossame* — displaced by the OS with no intervening application
  run — can be told apart),
- whether it was removed by an invalidation (coherence write for data →
  *Sharing*; explicit I-cache flush on page reallocation → *Inval*).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.types import MissClass, RefDomain

INSTR = "I"
DATA = "D"


@dataclass(frozen=True)
class MissEvent:
    """One classified miss (ground truth)."""

    time_cycles: int
    cpu: int
    block: int
    kind: str                 # INSTR or DATA
    domain: RefDomain         # who missed
    miss_class: MissClass
    dispossame: bool          # subset flag of DISPOS (Table 2)


class _CpuCacheTruth:
    """Classification state for one (cpu, cache kind)."""

    __slots__ = ("ever_cached", "evicted_by", "invalidated")

    def __init__(self) -> None:
        self.ever_cached: set = set()
        # block -> (displacing domain, app_epoch at displacement)
        self.evicted_by: Dict[int, Tuple[RefDomain, int]] = {}
        self.invalidated: set = set()

    def classify(self, block: int, app_epoch: int) -> Tuple[MissClass, bool]:
        if block in self.invalidated:
            # Caller maps this to SHARING (data) or INVAL (instructions).
            return MissClass.SHARING, False
        if block not in self.ever_cached:
            return MissClass.COLD, False
        displaced = self.evicted_by.get(block)
        if displaced is None:
            # Was cached, never explicitly displaced or invalidated. This
            # happens only if classification state was reset; treat as cold.
            return MissClass.COLD, False
        domain, epoch = displaced
        if domain is RefDomain.OS:
            return MissClass.DISPOS, epoch == app_epoch
        return MissClass.DISPAP, False

    def on_fill(self, block: int) -> None:
        self.ever_cached.add(block)
        self.evicted_by.pop(block, None)
        self.invalidated.discard(block)

    def on_eviction(self, block: int, domain: RefDomain, app_epoch: int) -> None:
        self.evicted_by[block] = (domain, app_epoch)
        self.invalidated.discard(block)

    def on_invalidation(self, block: int) -> None:
        self.invalidated.add(block)
        self.evicted_by.pop(block, None)


class GroundTruth:
    """Classification bookkeeping for every CPU.

    Aggregate per-class counters are always kept; full per-miss events are
    collected only when ``record_events`` is set (tests and small runs —
    a full workload trace generates hundreds of thousands of events).
    """

    def __init__(self, num_cpus: int, record_events: bool = False):
        self._instr = [_CpuCacheTruth() for _ in range(num_cpus)]
        self._data = [_CpuCacheTruth() for _ in range(num_cpus)]
        self.record_events = record_events
        self.events: List[MissEvent] = []
        # (domain, kind, miss_class) -> count ; dispossame counted separately
        self.counts: Counter = Counter()
        self.dispossame_counts: Counter = Counter()  # (domain, kind) -> count

    def _table(self, kind: str) -> List[_CpuCacheTruth]:
        return self._instr if kind == INSTR else self._data

    def cpu_truth(self, cpu: int, kind: str) -> _CpuCacheTruth:
        """Direct handle on one CPU's classification state.

        Used by the atomic tier's batched sweeps (which inline the
        ``on_fill``/``on_eviction`` updates) and by the mixed-fidelity
        seam dump that seeds the trace-side reconstruction.
        """
        return self._table(kind)[cpu]

    # ------------------------------------------------------------------
    # Hooks called by MemorySystem
    # ------------------------------------------------------------------
    def classify_and_record(
        self,
        time_cycles: int,
        cpu: int,
        kind: str,
        block: int,
        domain: RefDomain,
        app_epoch: int,
    ) -> Tuple[MissClass, bool]:
        truth = self._table(kind)[cpu]
        miss_class, dispossame = truth.classify(block, app_epoch)
        if miss_class is MissClass.SHARING and kind == INSTR:
            miss_class = MissClass.INVAL
        self.counts[(domain, kind, miss_class)] += 1
        if dispossame:
            self.dispossame_counts[(domain, kind)] += 1
        if self.record_events:
            self.events.append(
                MissEvent(time_cycles, cpu, block, kind, domain, miss_class, dispossame)
            )
        truth.on_fill(block)
        return miss_class, dispossame

    def record_uncached(self, domain: RefDomain) -> None:
        self.counts[(domain, DATA, MissClass.UNCACHED)] += 1

    def warm_fill(self, cpu: int, kind: str, block: int) -> None:
        """State-only fill: the atomic fidelity tier warming a cache.

        Updates the warmth state exactly like :meth:`classify_and_record`
        but classifies nothing and counts nothing, so fast-forwarded
        references leave the Table 2 counters untouched while the
        post-seam detailed window still classifies against true history.
        """
        self._table(kind)[cpu].on_fill(block)

    def record_eviction(
        self, cpu: int, kind: str, block: int, domain: RefDomain, app_epoch: int
    ) -> None:
        self._table(kind)[cpu].on_eviction(block, domain, app_epoch)

    def record_invalidation(self, cpu: int, kind: str, block: int) -> None:
        self._table(kind)[cpu].on_invalidation(block)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def class_counts(
        self, domain: Optional[RefDomain] = None, kind: Optional[str] = None
    ) -> Counter:
        """Aggregate miss counts by :class:`MissClass`, optionally filtered."""
        out: Counter = Counter()
        for (dom, knd, cls), count in self.counts.items():
            if domain is not None and dom is not domain:
                continue
            if kind is not None and knd != kind:
                continue
            out[cls] += count
        return out

    def total_misses(self, domain: Optional[RefDomain] = None) -> int:
        return sum(self.class_counts(domain=domain).values())
