"""A physically-addressed cache with per-line tags.

The machine's caches are all direct-mapped with 16-byte blocks
(paper Section 2.1); the Figure 6 experiments additionally simulate
two-way set-associative variants, so this class supports arbitrary
associativity with LRU replacement.

The cache works on *block numbers* (byte address // block size), which is
the granularity at which the whole simulator operates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.params import CacheGeometry

EMPTY = -1


def set_index(block, num_sets):
    """The set ``block`` maps to.

    Shared by :class:`Cache` and the vectorized Figure 6 replay in
    :mod:`repro.sim.sharded` (it works elementwise on numpy arrays), so
    the two can never disagree about the mapping.
    """
    return block % num_sets


@dataclass
class EvictionInfo:
    """What `access` evicted, if anything."""

    block: int


class Cache:
    """One level of cache.

    Blocks map to set ``block % num_sets``; within a set, replacement is
    LRU (trivially so for the direct-mapped default).
    """

    __slots__ = ("geometry", "num_sets", "assoc", "_ways", "_present")

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self.num_sets = geometry.num_sets
        self.assoc = geometry.associativity
        # _ways[s] holds the blocks resident in set s, MRU first.
        self._ways: List[List[int]] = [[] for _ in range(self.num_sets)]
        # Fast membership test across the whole cache.
        self._present: set = set()

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def lookup(self, block: int) -> bool:
        """True if ``block`` is resident (does not update LRU)."""
        return block in self._present

    def access(self, block: int) -> Optional[int]:
        """Reference ``block``; fill it on a miss.

        Returns ``None`` on a hit. On a miss, fills the block and returns
        the evicted block number, or ``EMPTY`` (-1) if the set had a free
        way.
        """
        ways = self._ways[set_index(block, self.num_sets)]
        if block in self._present:
            # Hit: refresh LRU position (skip the list juggling when the
            # block is already MRU, the common case).
            if ways[0] != block:
                ways.remove(block)
                ways.insert(0, block)
            return None
        # Miss: fill, evicting LRU if the set is full.
        victim = EMPTY
        if len(ways) >= self.assoc:
            victim = ways.pop()
            self._present.discard(victim)
        ways.insert(0, block)
        self._present.add(block)
        return victim

    def fill(self, block: int) -> int:
        """Fill a block the caller has already proven absent.

        The atomic tier's batched paths test ``block in _present``
        themselves before deciding a reference missed; this skips
        ``access``'s redundant hit check. Returns the evicted block
        number or ``EMPTY``.
        """
        ways = self._ways[block % self.num_sets]
        if self.assoc == 1:
            # Direct-mapped (the machine's own geometry): replace in
            # place, no LRU juggling.
            if ways:
                victim = ways[0]
                ways[0] = block
                self._present.discard(victim)
            else:
                ways.append(block)
                victim = EMPTY
            self._present.add(block)
            return victim
        victim = EMPTY
        if len(ways) >= self.assoc:
            victim = ways.pop()
            self._present.discard(victim)
        ways.insert(0, block)
        self._present.add(block)
        return victim

    def invalidate(self, block: int) -> bool:
        """Remove ``block`` if resident; True if it was."""
        if block not in self._present:
            return False
        self._ways[set_index(block, self.num_sets)].remove(block)
        self._present.discard(block)
        return True

    def invalidate_all(self) -> List[int]:
        """Flush the whole cache, returning the blocks that were resident."""
        flushed = sorted(self._present)
        for ways in self._ways:
            ways.clear()
        self._present.clear()
        return flushed

    def invalidate_range(self, first_block: int, num_blocks: int) -> List[int]:
        """Flush every resident block in ``[first_block, first_block+num_blocks)``."""
        flushed = []
        for block in range(first_block, first_block + num_blocks):
            if self.invalidate(block):
                flushed.append(block)
        return flushed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def resident_blocks(self) -> frozenset:
        return frozenset(self._present)

    def occupancy(self) -> int:
        return len(self._present)

    def __contains__(self, block: int) -> bool:
        return block in self._present

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Cache({self.geometry.size_bytes // 1024}KB, "
            f"{self.assoc}-way, {self.occupancy()}/{self.geometry.num_blocks} blocks)"
        )
