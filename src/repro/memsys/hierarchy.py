"""Per-CPU cache hierarchy.

Each R3000 CPU in the 4D/340 has a 64 KB instruction cache and a two-level
data cache (64 KB first level, 256 KB second level); all physically
addressed, direct mapped, with 16-byte blocks (paper Section 2.1).

Only second-level data misses and instruction misses reach the bus; a
first-level data miss that hits in the second level stalls the CPU for
about 15 cycles without a bus access (Section 3.1) — which is why the
paper's monitor, and our modelled monitor, cannot see those.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.common.params import MachineParams
from repro.memsys.cache import Cache, EMPTY


class AccessOutcome(enum.Enum):
    """Result of a data-cache access."""

    L1_HIT = "l1_hit"
    L2_HIT = "l2_hit"   # L1 miss satisfied by L2; no bus transaction
    MISS = "miss"       # misses both levels; goes to the bus


class CpuCacheHierarchy:
    """The caches of one CPU."""

    __slots__ = ("cpu", "icache", "dl1", "dl2")

    def __init__(self, cpu: int, params: MachineParams):
        self.cpu = cpu
        self.icache = Cache(params.icache)
        self.dl1 = Cache(params.dcache_l1)
        self.dl2 = Cache(params.dcache_l2)

    # ------------------------------------------------------------------
    # Instruction side
    # ------------------------------------------------------------------
    def ifetch(self, block: int) -> Optional[int]:
        """Fetch one instruction block.

        Returns ``None`` on a hit; on a miss, the evicted I-cache block
        (or ``EMPTY`` if the line was free).
        """
        return self.icache.access(block)

    # ------------------------------------------------------------------
    # Data side
    # ------------------------------------------------------------------
    def daccess(self, block: int) -> "tuple[AccessOutcome, int]":
        """Access one data block through both levels.

        Returns ``(outcome, l2_victim)`` where ``l2_victim`` is the block
        evicted from the second level on a full miss (``EMPTY`` if none;
        only meaningful when ``outcome`` is ``MISS``).

        Inclusion is enforced: a block evicted from L2 is also removed
        from L1, so L2 state alone describes what the bus-level
        reconstruction (the paper's postprocessing approach) can see.
        """
        if self.dl1.lookup(block):
            self.dl1.access(block)  # refresh LRU
            return AccessOutcome.L1_HIT, EMPTY
        if self.dl2.lookup(block):
            self.dl2.access(block)
            self.dl1.access(block)
            return AccessOutcome.L2_HIT, EMPTY
        l2_victim = self.dl2.access(block)
        if l2_victim is None:  # pragma: no cover - lookup said miss
            raise AssertionError("L2 lookup/access disagree")
        if l2_victim != EMPTY:
            self.dl1.invalidate(l2_victim)  # keep L1 subset of L2
        self.dl1.access(block)
        return AccessOutcome.MISS, l2_victim

    def invalidate_data(self, block: int) -> bool:
        """Coherence invalidation of a data block (both levels).

        Returns True if the block was resident in L2 (the bus-visible
        level).
        """
        self.dl1.invalidate(block)
        return self.dl2.invalidate(block)

    def invalidate_instr_range(self, first_block: int, num_blocks: int) -> List[int]:
        """Flush an address range from the I-cache (page reallocation).

        The 4D/340 keeps I-caches coherent in software only: when a
        physical page that contained code is reallocated, the OS must
        invalidate the I-caches, producing the paper's *Inval* misses
        (Table 2).
        """
        return self.icache.invalidate_range(first_block, num_blocks)

    def data_resident(self, block: int) -> bool:
        return self.dl2.lookup(block)

    def instr_resident(self, block: int) -> bool:
        return self.icache.lookup(block)
