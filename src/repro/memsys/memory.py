"""Physical memory map and page-frame allocator.

The 4D/340 under measurement had 32 MB of physical memory
(paper Section 2.1). We lay it out as:

====================  ======================  ===========================
Region                Physical range          Holds
====================  ======================  ===========================
kernel text           0x000000 - 0x0F0000     OS routines (repro.kernel.layout)
escape window         0x0F0000 - 0x100000     odd-address escape reads
kernel static data    0x100000 - 0x300000     Table 3 structures
kernel heap           0x300000 - 0x400000     dynamic kernel allocations
page frames           0x400000 - 0x2000000    user pages, buffer cache pages
====================  ======================  ===========================

The escape window mirrors the paper's instrumentation trick: a range of
physical addresses where only OS code ever lives, so uncached byte reads
of *odd* addresses there can never be confused with real references
(Section 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.params import MachineParams

KTEXT_BASE = 0x000000
KTEXT_SIZE = 0x0F0000
ESCAPE_BASE = 0x0F0000
ESCAPE_SIZE = 0x010000
KDATA_BASE = 0x100000
KDATA_SIZE = 0x200000
KHEAP_BASE = 0x300000
KHEAP_SIZE = 0x100000
FRAMES_BASE = 0x400000


@dataclass(frozen=True)
class MemoryRegion:
    """A named physical address range."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end


class OutOfMemoryError(RuntimeError):
    """The frame pool is exhausted."""


class PhysicalMemory:
    """The machine's physical address space and frame allocator.

    Frames are allocated from a free list kept in FIFO order so that a
    freed frame is not immediately reused — which is what lets reuse of a
    frame that held code actually hit a *different* process later and
    force the I-cache invalidations the paper observes.
    """

    def __init__(self, params: MachineParams):
        self.params = params
        if FRAMES_BASE >= params.memory_bytes:
            raise ValueError("memory too small for the fixed kernel regions")
        self.regions: Dict[str, MemoryRegion] = {
            "ktext": MemoryRegion("ktext", KTEXT_BASE, KTEXT_SIZE),
            "escape": MemoryRegion("escape", ESCAPE_BASE, ESCAPE_SIZE),
            "kdata": MemoryRegion("kdata", KDATA_BASE, KDATA_SIZE),
            "kheap": MemoryRegion("kheap", KHEAP_BASE, KHEAP_SIZE),
            "frames": MemoryRegion(
                "frames", FRAMES_BASE, params.memory_bytes - FRAMES_BASE
            ),
        }
        first_frame = FRAMES_BASE // params.page_bytes
        self.num_frames = (params.memory_bytes - FRAMES_BASE) // params.page_bytes
        self._free: List[int] = list(range(first_frame, first_frame + self.num_frames))
        self._free_head = 0  # index into _free (amortized O(1) FIFO pop)
        self._allocated: set = set()

    # ------------------------------------------------------------------
    # Frame allocation
    # ------------------------------------------------------------------
    def alloc_frame(self) -> int:
        """Allocate one physical page frame (frame number)."""
        if self._free_head >= len(self._free):
            raise OutOfMemoryError("no free page frames")
        frame = self._free[self._free_head]
        self._free_head += 1
        if self._free_head > 4096 and self._free_head * 2 > len(self._free):
            del self._free[: self._free_head]
            self._free_head = 0
        self._allocated.add(frame)
        return frame

    def free_frame(self, frame: int) -> None:
        if frame not in self._allocated:
            raise ValueError(f"frame {frame} is not allocated")
        self._allocated.discard(frame)
        self._free.append(frame)

    def free_frame_count(self) -> int:
        return len(self._free) - self._free_head

    def frame_base(self, frame: int) -> int:
        return frame * self.params.page_bytes

    # ------------------------------------------------------------------
    # Region queries
    # ------------------------------------------------------------------
    def region_of(self, addr: int) -> Optional[MemoryRegion]:
        for region in self.regions.values():
            if region.contains(addr):
                return region
        return None

    def is_kernel_text(self, addr: int) -> bool:
        return self.regions["ktext"].contains(addr)

    def is_kernel_static(self, addr: int) -> bool:
        return self.regions["kdata"].contains(addr) or self.regions[
            "kheap"
        ].contains(addr)

    def is_escape(self, addr: int) -> bool:
        return self.regions["escape"].contains(addr)
