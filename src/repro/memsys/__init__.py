"""Memory-system simulator for the modelled SGI 4D/340.

The pieces:

- :class:`~repro.memsys.cache.Cache` — one physically-addressed,
  direct-mapped or set-associative cache.
- :class:`~repro.memsys.hierarchy.CpuCacheHierarchy` — per-CPU 64 KB
  I-cache plus two-level (64 KB + 256 KB) D-cache.
- :class:`~repro.memsys.bus.Bus` — the shared snooping bus; every
  bus transaction is visible to attached listeners (the hardware monitor).
- :class:`~repro.memsys.memory.PhysicalMemory` — the 32 MB physical
  address map (kernel text, kernel data, page frames) and frame allocator.
- :class:`~repro.memsys.tracking.GroundTruth` — simulator-side
  per-miss classification used to validate the trace-driven classifier.
"""

from repro.memsys.cache import Cache, EvictionInfo
from repro.memsys.bus import Bus, BusTransaction, BusOp
from repro.memsys.hierarchy import CpuCacheHierarchy, AccessOutcome
from repro.memsys.memory import PhysicalMemory, MemoryRegion
from repro.memsys.system import MemorySystem
from repro.memsys.tracking import GroundTruth, MissEvent

__all__ = [
    "Cache",
    "EvictionInfo",
    "Bus",
    "BusTransaction",
    "BusOp",
    "CpuCacheHierarchy",
    "AccessOutcome",
    "PhysicalMemory",
    "MemoryRegion",
    "MemorySystem",
    "GroundTruth",
    "MissEvent",
]
