"""The master tracing process (paper Section 2.1).

To trace an unbounded stretch of workload with a bounded hardware buffer,
the paper runs a real-time-priority master process that wakes at regular
intervals, checks how full the trace buffer is and, past a threshold,
suspends every workload process (sending the CPUs to the idle loop),
dumps the buffer to a remote disk, and resumes the workload. The modified
kernel forces an immediate reschedule on the suspend signal so no trace
is lost.

:class:`MasterTracer` reproduces that control loop. The simulation
session calls :meth:`service` whenever simulated time passes the master's
next wake-up; a dump closes the current trace segment, costs the
suspend/dump duration (during which the session idles all CPUs), and
starts a new segment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.monitor.hwmonitor import HardwareMonitor


@dataclass
class MasterConfig:
    """Tunables of the master's control loop."""

    check_interval_ms: float = 20.0
    dump_threshold: float = 0.75       # fraction full that triggers a dump
    dump_ms_per_k_entries: float = 0.5  # remote-disk transfer cost
    suspend_overhead_ms: float = 0.2    # forced reschedule + wakeup cost


class MasterTracer:
    """The master process: threshold check, suspend, dump, resume."""

    def __init__(
        self,
        monitor: HardwareMonitor,
        cycles_per_ms: float,
        config: MasterConfig = MasterConfig(),
    ):
        self.monitor = monitor
        self.config = config
        self._cycles_per_ms = cycles_per_ms
        self.next_check_cycles = 0
        self.dumps = 0
        self.dumped_entries = 0

    def start(self, now_cycles: int) -> None:
        self.monitor.start(now_cycles)
        self.next_check_cycles = now_cycles + int(
            self.config.check_interval_ms * self._cycles_per_ms
        )

    def due(self, now_cycles: int) -> bool:
        return now_cycles >= self.next_check_cycles

    def service(self, now_cycles: int) -> int:
        """Run one master wake-up.

        Returns the number of cycles the workload must stay suspended
        (0 when the buffer was below threshold and no dump happened).
        """
        self.next_check_cycles = now_cycles + int(
            self.config.check_interval_ms * self._cycles_per_ms
        )
        if self.monitor.fill_fraction() < self.config.dump_threshold:
            return 0
        # Suspend: close the segment (nothing recorded while dumping —
        # the postprocessing machine is remote, so it cannot pollute the
        # caches of the system under measure).
        segment = self.monitor.stop(now_cycles)
        self.dumps += 1
        self.dumped_entries += len(segment)
        dump_ms = (
            self.config.suspend_overhead_ms
            + self.config.dump_ms_per_k_entries * len(segment) / 1000.0
        )
        suspend_cycles = int(dump_ms * self._cycles_per_ms)
        self.monitor.start(now_cycles + suspend_cycles)
        return suspend_cycles

    def finish(self, now_cycles: int) -> None:
        """Stop tracing at the end of the run."""
        if self.monitor.recording:
            self.monitor.stop(now_cycles)
