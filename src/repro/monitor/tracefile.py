"""Trace persistence: dump the monitor's buffer the way the master did.

The real master process shipped each buffer segment to a remote disk for
offline postprocessing (Section 2.1). This module is that disk format: a
compact NumPy container holding every segment's entries, so traces can
be captured once and analyzed many times (or elsewhere).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.monitor.hwmonitor import Trace, TraceSegment

_FORMAT_VERSION = 1


def save_trace(trace: Trace, path: Union[str, Path]) -> None:
    """Write a trace to ``path`` (.npz)."""
    arrays = {
        "version": np.array([_FORMAT_VERSION], dtype=np.int64),
        "num_segments": np.array([len(trace.segments)], dtype=np.int64),
    }
    for index, segment in enumerate(trace.segments):
        entries = np.asarray(segment.entries, dtype=np.int64)
        if entries.size == 0:
            entries = entries.reshape(0, 4)
        arrays[f"segment_{index}_entries"] = entries
        arrays[f"segment_{index}_span"] = np.array(
            [segment.start_cycles, segment.end_cycles], dtype=np.int64
        )
    np.savez_compressed(str(path), **arrays)


def load_trace(path: Union[str, Path]) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(str(path)) as data:
        version = int(data["version"][0])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported trace format version {version}")
        trace = Trace()
        for index in range(int(data["num_segments"][0])):
            start, end = (int(v) for v in data[f"segment_{index}_span"])
            segment = TraceSegment(start_cycles=start, end_cycles=end)
            entries = data[f"segment_{index}_entries"]
            segment.entries = [tuple(int(v) for v in row) for row in entries]
            trace.segments.append(segment)
        return trace
