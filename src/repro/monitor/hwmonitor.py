"""The bus-snooping hardware monitor.

The real monitor "stores the physical address and ID of the originating
processor for over 2 million bus transactions" and measures time "with a
granularity of 60 ns" (Section 2.1). Synchronization accesses are
diverted to the synchronization bus and are invisible to it.

Trace entries are 4-tuples ``(tick, cpu, addr, op)`` — ``tick`` in 60 ns
monitor ticks, ``op`` one of :data:`OP_READ` / :data:`OP_WRITE` /
:data:`OP_UNCACHED`. Plain tuples keep multi-hundred-thousand-entry
traces cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from repro.memsys.bus import Bus, BusOp, BusTransaction

OP_READ = 0
OP_WRITE = 1
OP_UNCACHED = 2

_OP_CODE = {
    BusOp.READ: OP_READ,
    BusOp.WRITE: OP_WRITE,
    BusOp.UNCACHED_READ: OP_UNCACHED,
}

TraceEntry = Tuple[int, int, int, int]  # (tick, cpu, addr, op)


@dataclass
class TraceSegment:
    """One continuous stretch of recorded bus activity.

    The master process (Section 2.1) starts a new segment after every
    buffer dump; analysis treats segments independently and sums.
    """

    start_cycles: int
    entries: List[TraceEntry] = field(default_factory=list)
    end_cycles: int = 0

    def __len__(self) -> int:
        return len(self.entries)

    def duration_cycles(self) -> int:
        return max(0, self.end_cycles - self.start_cycles)


@dataclass
class Trace:
    """A complete monitor trace: all recorded segments."""

    segments: List[TraceSegment] = field(default_factory=list)

    def all_entries(self) -> Iterator[TraceEntry]:
        for segment in self.segments:
            yield from segment.entries

    def __len__(self) -> int:
        return sum(len(s) for s in self.segments)

    def duration_cycles(self) -> int:
        return sum(s.duration_cycles() for s in self.segments)


class BufferOverflow(RuntimeError):
    """The trace buffer filled before the master could dump it."""


class HardwareMonitor:
    """Attachable bus snooper with a bounded trace buffer.

    ``strict_capacity`` makes the buffer behave like the real hardware —
    transactions beyond capacity raise :class:`BufferOverflow` — which is
    how tests demonstrate that the master's threshold protocol is actually
    needed. The default is forgiving (the entry is still recorded) so
    analysis never silently loses data.
    """

    def __init__(
        self,
        bus: Bus,
        capacity: int = 2 * 1024 * 1024,
        cycle_ns: float = 30.0,
        tick_ns: float = 60.0,
        strict_capacity: bool = False,
    ):
        self.bus = bus
        self.capacity = capacity
        self.strict_capacity = strict_capacity
        self._cycles_per_tick = tick_ns / cycle_ns
        self.recording = False
        self.trace = Trace()
        self._segment: TraceSegment = TraceSegment(start_cycles=0)
        self.dropped = 0
        # Provenance of a mixed-fidelity run (repro.fidelity): the cycle
        # at which recording switched from the atomic fast-forward tier
        # to the detailed tier. None for pure detailed/atomic runs.
        self.seam_cycles = None
        bus.attach(self._snoop)

    # ------------------------------------------------------------------
    # Bus listener
    # ------------------------------------------------------------------
    def _snoop(self, txn: BusTransaction) -> None:
        if not self.recording:
            return
        buffer = self._segment.entries
        if len(buffer) >= self.capacity:
            if self.strict_capacity:
                raise BufferOverflow(
                    f"trace buffer overflowed at {self.capacity} entries"
                )
            self.dropped += 1
        tick = int(txn.time_cycles / self._cycles_per_tick)
        buffer.append((tick, txn.cpu, txn.addr, _OP_CODE[txn.op]))
        self._segment.end_cycles = txn.time_cycles

    # ------------------------------------------------------------------
    # Control (exercised by the master process)
    # ------------------------------------------------------------------
    def start(self, now_cycles: int) -> None:
        """Begin recording a new segment."""
        self._segment = TraceSegment(start_cycles=now_cycles, end_cycles=now_cycles)
        self.recording = True

    def stop(self, now_cycles: int) -> TraceSegment:
        """Stop recording; archive and return the finished segment."""
        self.recording = False
        self._segment.end_cycles = max(self._segment.end_cycles, now_cycles)
        segment = self._segment
        self.trace.segments.append(segment)
        return segment

    def note_seam(self, now_cycles: int) -> None:
        """Record the atomic→detailed hand-off point of a mixed run."""
        self.seam_cycles = now_cycles

    def fill_fraction(self) -> float:
        """How full the current buffer is (the master's threshold test)."""
        return len(self._segment.entries) / self.capacity if self.capacity else 1.0

    def buffered_entries(self) -> int:
        return len(self._segment.entries)
