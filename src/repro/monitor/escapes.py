"""Escape-reference encoding: how the instrumented OS talks to the trace.

The paper's scheme (Section 2.2): the OS owns a range of physical
addresses where only OS code lives, and transfers information by issuing
**uncached byte reads of odd addresses**. A read of a distinguished odd
address in the escape window *signals* an event; the data payload is sent
as further uncached reads whose addresses are the payload values shifted
left one bit with the least-significant bit set (hence odd, hence never
confusable with real code fetches, which are block aligned). The
postprocessor pairs each signal with the next N uncached reads from the
same CPU.

We encode the same event vocabulary the paper lists: entries/exits from
the OS, the ID of the running processes, TLB changes (needed to translate
physical back to virtual), entries/exits from interrupts, and cache
flushes — plus block-operation markers, which stand in for the paper's
per-subroutine instrumentation used to attribute dynamically-allocated
data (Section 2.2, last paragraph).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Union

from repro.memsys.memory import ESCAPE_BASE

ESCAPE_SIGNAL_BASE = ESCAPE_BASE


class EventType(enum.IntEnum):
    """Escape event vocabulary. Values index the signal address."""

    TRACE_START = 1      # payloads: none
    OS_ENTER = 2         # payloads: high-level op code (HighLevelOp index)
    OS_EXIT = 3          # payloads: none
    IDLE_ENTER = 4       # payloads: none
    IDLE_EXIT = 5        # payloads: none
    PID_SET = 6          # payloads: pid
    TLB_UPDATE = 7       # payloads: index, vpage, frame, pid*2 + is_text
    ICACHE_FLUSH = 8     # payloads: frame
    BLOCKOP_BEGIN = 9    # payloads: kind code, first block, block count
    BLOCKOP_END = 10     # payloads: none
    INTR_ENTER = 11      # payloads: interrupt kind code
    INTR_EXIT = 12       # payloads: none


PAYLOAD_COUNT: Dict[EventType, int] = {
    EventType.TRACE_START: 0,
    EventType.OS_ENTER: 1,
    EventType.OS_EXIT: 0,
    EventType.IDLE_ENTER: 0,
    EventType.IDLE_EXIT: 0,
    EventType.PID_SET: 1,
    EventType.TLB_UPDATE: 4,
    EventType.ICACHE_FLUSH: 1,
    EventType.BLOCKOP_BEGIN: 3,
    EventType.BLOCKOP_END: 0,
    EventType.INTR_ENTER: 1,
    EventType.INTR_EXIT: 0,
}


def signal_address(event: EventType) -> int:
    """The odd escape-window address that announces ``event``."""
    return ESCAPE_SIGNAL_BASE + 2 * int(event) + 1


def payload_address(value: int) -> int:
    """Encode a payload value as an odd byte address (shift left, set LSB)."""
    if value < 0:
        raise ValueError("escape payloads must be non-negative")
    return (value << 1) | 1


def decode_payload(addr: int) -> int:
    return addr >> 1


def signal_event(addr: int) -> Optional[EventType]:
    """The event a signal address announces, or None if not a signal."""
    if addr < ESCAPE_SIGNAL_BASE or not addr & 1:
        return None
    code = (addr - ESCAPE_SIGNAL_BASE - 1) // 2
    try:
        return EventType(code)
    except ValueError:
        return None


@dataclass(frozen=True)
class EscapeEvent:
    """One decoded escape sequence."""

    tick: int
    cpu: int
    type: EventType
    payloads: Tuple[int, ...]


class Instrumentation:
    """OS-side emitter of escape sequences.

    Emission goes through the issuing CPU's :class:`Processor` so each
    escape costs exactly what the paper says: one uncached bus access per
    signal or payload read. When ``enabled`` is False the methods are
    no-ops — the uninstrumented kernel.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled

    def _emit(self, proc, event: EventType, *payloads: int) -> None:
        if not self.enabled:
            return
        if len(payloads) != PAYLOAD_COUNT[event]:
            raise ValueError(
                f"{event.name} needs {PAYLOAD_COUNT[event]} payloads, got {len(payloads)}"
            )
        proc.uncached_read(signal_address(event))
        for value in payloads:
            proc.uncached_read(payload_address(value))

    # ------------------------------------------------------------------
    # The event vocabulary (Section 2.2)
    # ------------------------------------------------------------------
    def trace_start(self, proc) -> None:
        self._emit(proc, EventType.TRACE_START)

    def os_enter(self, proc, op_code: int) -> None:
        self._emit(proc, EventType.OS_ENTER, op_code)

    def os_exit(self, proc) -> None:
        self._emit(proc, EventType.OS_EXIT)

    def idle_enter(self, proc) -> None:
        self._emit(proc, EventType.IDLE_ENTER)

    def idle_exit(self, proc) -> None:
        self._emit(proc, EventType.IDLE_EXIT)

    def pid_set(self, proc, pid: int) -> None:
        self._emit(proc, EventType.PID_SET, pid)

    def tlb_update(
        self, proc, index: int, vpage: int, frame: int, pid: int, is_text: bool
    ) -> None:
        self._emit(
            proc, EventType.TLB_UPDATE, index, vpage, frame, pid * 2 + int(is_text)
        )

    def icache_flush(self, proc, frame: int) -> None:
        self._emit(proc, EventType.ICACHE_FLUSH, frame)

    def blockop_begin(self, proc, kind_code: int, first_block: int, count: int) -> None:
        self._emit(proc, EventType.BLOCKOP_BEGIN, kind_code, first_block, count)

    def blockop_end(self, proc) -> None:
        self._emit(proc, EventType.BLOCKOP_END)

    def intr_enter(self, proc, kind_code: int) -> None:
        self._emit(proc, EventType.INTR_ENTER, kind_code)

    def intr_exit(self, proc) -> None:
        self._emit(proc, EventType.INTR_EXIT)


class NullInstrumentation(Instrumentation):
    """Always-off instrumentation (zero perturbation)."""

    def __init__(self) -> None:
        super().__init__(enabled=False)


class EscapeDecoder:
    """Per-CPU state machine pairing signals with their payload reads."""

    def __init__(self, num_cpus: int):
        # per CPU: (pending event, tick, collected payloads) or None
        self._pending: List[Optional[Tuple[EventType, int, List[int]]]] = [
            None
        ] * num_cpus

    def feed(self, tick: int, cpu: int, addr: int) -> Optional[EscapeEvent]:
        """Feed one uncached read; returns a completed event, if any."""
        pending = self._pending[cpu]
        if pending is None:
            event = signal_event(addr)
            if event is None:
                # A stray odd uncached read with no pending signal: the
                # real postprocessor would flag this; we surface it.
                raise ValueError(
                    f"uncached read of {addr:#x} by CPU {cpu} is not a valid escape signal"
                )
            if PAYLOAD_COUNT[event] == 0:
                return EscapeEvent(tick, cpu, event, ())
            self._pending[cpu] = (event, tick, [])
            return None
        event, start_tick, payloads = pending
        payloads.append(decode_payload(addr))
        if len(payloads) == PAYLOAD_COUNT[event]:
            self._pending[cpu] = None
            return EscapeEvent(start_tick, cpu, event, tuple(payloads))
        return None


def decode_escape_stream(
    entries: Iterable[Tuple[int, int, int, int]], num_cpus: int
) -> Iterator[Union[EscapeEvent, Tuple[int, int, int, int]]]:
    """Split a raw trace into escape events and ordinary transactions.

    Yields :class:`EscapeEvent` objects for completed escape sequences and
    passes every non-escape entry through unchanged, preserving order.
    """
    from repro.monitor.hwmonitor import OP_UNCACHED

    decoder = EscapeDecoder(num_cpus)
    for entry in entries:
        tick, cpu, addr, op = entry
        if op == OP_UNCACHED:
            event = decoder.feed(tick, cpu, addr)
            if event is not None:
                yield event
        else:
            yield entry
