"""The measurement apparatus of the paper, modelled faithfully:

- :class:`~repro.monitor.hwmonitor.HardwareMonitor` — the bus-attached
  trace buffer (2 M entries, 60 ns timestamps, physical address + CPU id
  per transaction; Section 2.1).
- :class:`~repro.monitor.escapes.Instrumentation` — the odd-address
  uncached *escape reference* encoding through which the instrumented OS
  transfers events (OS entry/exit, pid changes, TLB updates, I-cache
  flushes, block operations) into the trace (Section 2.2).
- :class:`~repro.monitor.master.MasterTracer` — the real-time master
  process that suspends the workload, dumps the buffer and resumes it, so
  an unbounded stretch can be traced without overflow (Section 2.1).
"""

from repro.monitor.hwmonitor import (
    HardwareMonitor,
    Trace,
    TraceSegment,
    OP_READ,
    OP_WRITE,
    OP_UNCACHED,
)
from repro.monitor.escapes import (
    Instrumentation,
    EscapeEvent,
    EventType,
    decode_escape_stream,
    ESCAPE_SIGNAL_BASE,
)
from repro.monitor.master import MasterTracer
from repro.monitor.tracefile import load_trace, save_trace

__all__ = [
    "load_trace",
    "save_trace",
    "HardwareMonitor",
    "Trace",
    "TraceSegment",
    "OP_READ",
    "OP_WRITE",
    "OP_UNCACHED",
    "Instrumentation",
    "EscapeEvent",
    "EventType",
    "decode_escape_stream",
    "ESCAPE_SIGNAL_BASE",
    "MasterTracer",
]
