"""Synchronization statistics: Tables 10-12 and Figure 11.

Lock accesses travel on the synchronization bus, invisible to the
hardware monitor; the paper reads statistics the OS keeps about its own
locks through pages mapped into a user process (Section 2.2). Our
equivalent reads the kernel's :class:`LockTable`, the sync-bus counters,
and the LL/SC what-if simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.types import Mode


@dataclass
class LockRow:
    """One Table 12 row."""

    name: str
    kcycles_between_acquires: float
    failed_pct: float
    waiters_if_any: float
    same_cpu_no_intervening_pct: float
    cached_to_uncached_pct: float
    acquires: int


def lock_table_rows(
    kernel,
    total_cycles: int,
    min_acquires: int = 10,
    families: Optional[List[str]] = None,
) -> List[LockRow]:
    """Per-lock-family statistics (Table 12).

    ``total_cycles`` should be the run's wall-clock cycles (the paper's
    inter-acquire cycles "include CPU idle time").
    """
    stats_by_family = kernel.locks.family_stats()
    rows = []
    for family, stats in stats_by_family.items():
        if families is not None and family not in families:
            continue
        if stats.acquires < min_acquires:
            continue
        llsc = kernel.llsc.per_lock.get(family)
        rows.append(
            LockRow(
                name=family,
                kcycles_between_acquires=(
                    stats.cycles_between_acquires(total_cycles) / 1000.0
                ),
                failed_pct=stats.failed_pct,
                waiters_if_any=stats.mean_waiters_if_any,
                same_cpu_no_intervening_pct=stats.locality_pct,
                cached_to_uncached_pct=(
                    llsc.cached_to_uncached_pct if llsc is not None else 0.0
                ),
                acquires=stats.acquires,
            )
        )
    rows.sort(key=lambda row: row.kcycles_between_acquires)
    return rows


@dataclass
class SyncStallSummary:
    """Table 10: sync stall on the real machine vs the LL/SC what-if."""

    current_machine_pct: float
    cached_rmw_pct: float
    sync_ops: int


def sync_stall_summary(kernel, processors) -> SyncStallSummary:
    """Stall time due to OS synchronization / non-idle execution time."""
    non_idle = sum(
        proc.mode_cycles[Mode.USER] + proc.mode_cycles[Mode.KERNEL]
        for proc in processors
    )
    if not non_idle:
        return SyncStallSummary(0.0, 0.0, 0)
    current = kernel.syncbus.stats.total_stall_cycles()
    cached = kernel.llsc.cached_stall_cycles()
    return SyncStallSummary(
        current_machine_pct=100.0 * current / non_idle,
        cached_rmw_pct=100.0 * cached / non_idle,
        sync_ops=kernel.syncbus.stats.total_ops,
    )


def failed_acquires_per_ms(kernel, wall_ms: float) -> Dict[str, float]:
    """Figure 11's Y axis, per lock family ("the Y-axis includes idle
    time": rates are over wall time)."""
    if wall_ms <= 0:
        return {}
    return {
        family: stats.failed_acquires / wall_ms
        for family, stats in kernel.locks.family_stats().items()
        if stats.acquires > 0
    }
