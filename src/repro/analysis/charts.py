"""ASCII chart rendering for the figure experiments.

The paper's figures are bar charts, address profiles and line series;
these helpers render terminal equivalents so
``python -m repro.experiments run figure8 --charts`` can actually draw
the figure it reproduces.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

_FULL = "█"
_PART = ("", "▏", "▎", "▍", "▌", "▋", "▊", "▉")


def _bar(value: float, max_value: float, width: int) -> str:
    if max_value <= 0:
        return ""
    scaled = value / max_value * width
    whole = int(scaled)
    frac = int((scaled - whole) * len(_PART))
    return _FULL * whole + (_PART[frac] if whole < width else "")


def bar_chart(
    items: Sequence[Tuple[str, float]],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one row per (label, value)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not items:
        lines.append("  (no data)")
        return "\n".join(lines)
    label_width = max(len(label) for label, _v in items)
    max_value = max(value for _l, value in items)
    for label, value in items:
        bar = _bar(value, max_value, width)
        lines.append(f"  {label:<{label_width}} |{bar} {value:.1f}{unit}")
    return "\n".join(lines)


def series_chart(
    x_labels: Sequence,
    series: Dict[str, Sequence[float]],
    title: str = "",
    width: int = 44,
    unit: str = "",
) -> str:
    """Several named series over a shared X axis, bars per point."""
    lines: List[str] = []
    if title:
        lines.append(title)
    flat = [v for values in series.values() for v in values]
    if not flat:
        lines.append("  (no data)")
        return "\n".join(lines)
    max_value = max(flat) or 1.0
    x_width = max(len(str(x)) for x in x_labels)
    for name, values in series.items():
        lines.append(f"  {name}:")
        for x, value in zip(x_labels, values):
            bar = _bar(value, max_value, width)
            lines.append(f"    {str(x):>{x_width}} |{bar} {value:.2f}{unit}")
    return "\n".join(lines)


def profile_chart(
    buckets: Sequence[Tuple[int, int]],
    bucket_bytes: int,
    region_bytes: int,
    title: str = "",
    height: int = 8,
) -> str:
    """Figure 5 style: misses vs address, X in multiples of a region.

    ``buckets`` are (bucket index, count) pairs; the X axis is folded to
    show absolute position with region boundaries marked.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not buckets:
        lines.append("  (no data)")
        return "\n".join(lines)
    max_bucket = max(index for index, _c in buckets)
    counts = [0] * (max_bucket + 1)
    for index, count in buckets:
        counts[index] = count
    peak = max(counts) or 1
    # Vertical bars, `height` rows tall.
    for row in range(height, 0, -1):
        threshold = peak * row / height
        cells = "".join(
            _FULL if count >= threshold else " " for count in counts
        )
        lines.append(f"  {cells}")
    # Region boundary ruler.
    per_region = region_bytes // bucket_bytes
    ruler = "".join(
        "|" if (i % per_region) == 0 else "-" for i in range(len(counts))
    )
    lines.append(f"  {ruler}")
    lines.append(
        f"  one column = {bucket_bytes} B; '|' marks every "
        f"{region_bytes // 1024} KB (the I-cache image size)"
    )
    return "\n".join(lines)
