"""Cache what-if sweeps: the Figure 6 methodology.

"In our simulations, we use the references that miss in the caches of
the real machine to simulate larger caches." Because the real caches are
direct mapped, any cache at least as large with at least the same
associativity contains a superset of the blocks — so replaying the miss
stream through a bigger/more associative cache yields its exact miss
stream. Announced I-cache flushes are replayed too, which is what lets
the sweep expose the *Inval* floor ("the figure assumes that the
algorithm used to invalidate caches does not change as caches increase
in size").

"Note that both application and OS instruction traces are simulated,
although only OS misses are plotted in the figure."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.common.params import CacheGeometry
from repro.memsys.cache import Cache

# Stream element: (cpu, block, domain_is_os, in_window); cpu == -1 is a
# full-flush marker (see TraceAnalysis.imiss_stream).
StreamEntry = Tuple[int, int, bool, bool]

FLUSH_CPU = -1


@dataclass(frozen=True)
class SweepPoint:
    """Result of replaying the I-miss stream against one configuration."""

    size_bytes: int
    associativity: int
    os_misses: int
    os_inval_misses: int
    app_misses: int

    @property
    def total_misses(self) -> int:
        return self.os_misses + self.app_misses


def simulate_icache_config(
    stream: Sequence[StreamEntry],
    num_cpus: int,
    size_bytes: int,
    associativity: int = 1,
    block_bytes: int = 16,
) -> SweepPoint:
    """Replay the miss stream through one I-cache configuration."""
    geometry = CacheGeometry(size_bytes, block_bytes, associativity)
    caches = [Cache(geometry) for _ in range(num_cpus)]
    invalidated: List[set] = [set() for _ in range(num_cpus)]
    os_misses = 0
    os_inval = 0
    app_misses = 0
    for cpu, block, is_os, in_window in stream:
        if cpu == FLUSH_CPU:
            for i, cache in enumerate(caches):
                invalidated[i].update(cache.invalidate_all())
            continue
        cache = caches[cpu]
        if cache.lookup(block):
            cache.access(block)  # LRU refresh; a hit in the bigger cache
            continue
        cache.access(block)
        if not in_window:
            invalidated[cpu].discard(block)
            continue
        if is_os:
            os_misses += 1
            if block in invalidated[cpu]:
                os_inval += 1
        else:
            app_misses += 1
        invalidated[cpu].discard(block)
    return SweepPoint(size_bytes, associativity, os_misses, os_inval, app_misses)


def sweep_configs(
    sizes: Iterable[int],
    associativities: Iterable[int],
) -> List[Tuple[int, int]]:
    """The derivable ``(size_bytes, associativity)`` grid, in sweep order.

    A two-way cache of the base size (64 KB) cannot be simulated from the
    miss stream of a direct-mapped 64 KB cache (the paper notes the same
    limitation), so that point is skipped. Single-sourced so the serial
    and sharded sweeps can never disagree about coverage.
    """
    base_size = 64 * 1024
    return [
        (size, assoc)
        for assoc in associativities
        for size in sizes
        if not (assoc > 1 and size <= base_size)
    ]


def simulate_icache_sweep(
    stream: Sequence[StreamEntry],
    num_cpus: int,
    sizes: Iterable[int] = (64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024,
                            1024 * 1024),
    associativities: Iterable[int] = (1, 2),
    block_bytes: int = 16,
) -> List[SweepPoint]:
    """The Figure 6 grid (see :func:`sweep_configs` for the skip rule)."""
    return [
        simulate_icache_config(stream, num_cpus, size, assoc, block_bytes)
        for size, assoc in sweep_configs(sizes, associativities)
    ]
