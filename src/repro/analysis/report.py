"""Derived metrics: Table 1-style rollups from a trace analysis.

The stall model is the paper's (Section 3.1): every bus access stalls
the issuing CPU for 35 cycles, and stall time is compared against
non-idle execution time.

For checked runs the report also carries the sanitizers' event
counters (``check_counters``) so the two independent accountings of
bus traffic — what the hardware monitor recorded versus what the
coherence checker was shown by the memory system — can be compared
line by line via :meth:`AnalysisReport.crosscheck`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.common.types import MissClass, RefDomain
from repro.analysis.decode import TraceAnalysis, TraceAnalyzer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim._session import TracedRun

# Monitor ticks are 60 ns = 2 processor cycles.
CYCLES_PER_TICK = 2


@dataclass
class AnalysisReport:
    """Table 1 style summary of one traced run."""

    analysis: TraceAnalysis
    bus_stall_cycles: int = 35
    # Sanitizer event counters (CheckReport.counters) for checked runs;
    # None when the run was built without check=True.
    check_counters: Optional[Dict[str, int]] = field(default=None)

    # ------------------------------------------------------------------
    # Execution-time split (Table 1 columns 2-4)
    # ------------------------------------------------------------------
    @property
    def user_pct(self) -> float:
        return self._time_pct(self.analysis.user_ticks)

    @property
    def sys_pct(self) -> float:
        return self._time_pct(self.analysis.sys_ticks)

    @property
    def idle_pct(self) -> float:
        return self._time_pct(self.analysis.idle_ticks)

    def _time_pct(self, ticks: int) -> float:
        total = (
            self.analysis.user_ticks
            + self.analysis.sys_ticks
            + self.analysis.idle_ticks
        )
        return 100.0 * ticks / total if total else 0.0

    # ------------------------------------------------------------------
    # Miss shares (Table 1 column 5)
    # ------------------------------------------------------------------
    @property
    def os_miss_fraction_pct(self) -> float:
        total = self.analysis.total_misses()
        if not total:
            return 0.0
        return 100.0 * self.analysis.total_misses(RefDomain.OS) / total

    # ------------------------------------------------------------------
    # Stall fractions (Table 1 columns 6-8)
    # ------------------------------------------------------------------
    def _stall_pct(self, misses: int) -> float:
        non_idle_cycles = self.analysis.non_idle_ticks() * CYCLES_PER_TICK
        if not non_idle_cycles:
            return 0.0
        return 100.0 * misses * self.bus_stall_cycles / non_idle_cycles

    @property
    def total_stall_pct(self) -> float:
        """Application + OS miss stall / non-idle time."""
        return self._stall_pct(self.analysis.total_misses())

    @property
    def os_stall_pct(self) -> float:
        """OS miss stall / non-idle time."""
        return self._stall_pct(self.analysis.total_misses(RefDomain.OS))

    @property
    def os_plus_induced_stall_pct(self) -> float:
        """OS misses plus the application misses the OS induced
        (Ap_dispos) / non-idle time."""
        induced = sum(self.analysis.ap_dispos.values())
        return self._stall_pct(self.analysis.total_misses(RefDomain.OS) + induced)

    def stall_pct_for(self, misses: int) -> float:
        """Stall fraction for an arbitrary miss count (component rows)."""
        return self._stall_pct(misses)

    # ------------------------------------------------------------------
    # OS miss class shares normalized to 100 (Figures 4/7 convention)
    # ------------------------------------------------------------------
    def os_class_share_pct(self, kind: str, miss_class: MissClass) -> float:
        total = self.analysis.total_misses(RefDomain.OS)
        if not total:
            return 0.0
        count = self.analysis.miss_counts.get(
            (RefDomain.OS, kind, miss_class), 0
        )
        return 100.0 * count / total

    # ------------------------------------------------------------------
    # Trace-vs-checker cross-validation (checked runs only)
    # ------------------------------------------------------------------
    def crosscheck(self) -> Optional[Dict[str, Tuple[int, int, bool]]]:
        """Compare monitor-side and checker-side bus accounting.

        The hardware monitor and the coherence checker count the same
        bus transactions from opposite ends of the machine: the monitor
        records what appears on the bus, the checker is handed every
        miss/upgrade event by the memory system. For a checked run this
        returns ``{quantity: (monitor, checker, matched)}`` for the two
        quantities that must agree exactly:

        - ``data_reads`` — recorded DREAD transactions vs
          ``bus_reads`` (one ``after_data_read`` hook per dread fill);
        - ``write_transactions`` — recorded WRITE transactions vs
          ``bus_write_transactions`` (the ownership-gaining subset of
          write events; plain ``bus_writes`` also fires on the
          silent-fill check path and so over-counts by design).

        Returns ``None`` for unchecked runs. Instruction fetches are
        deliberately excluded: the monitor keeps recording IFETCH
        entries while a CPU spins in the idle loop during master buffer
        dumps, but those fetches are outside the checker's hook points.
        """
        if not self.check_counters:
            return None
        monitor = self.analysis
        pairs = {
            "data_reads": (
                monitor.monitor_data_reads,
                self.check_counters.get("bus_reads", 0),
            ),
            "write_transactions": (
                monitor.monitor_writes,
                self.check_counters.get("bus_write_transactions", 0),
            ),
        }
        return {
            name: (seen, checked, seen == checked)
            for name, (seen, checked) in pairs.items()
        }

    def crosscheck_lines(self) -> List[str]:
        """Human-readable rendering of :meth:`crosscheck` (may be [])."""
        comparison = self.crosscheck()
        if comparison is None:
            return []
        lines = []
        for name, (seen, checked, matched) in sorted(comparison.items()):
            verdict = "ok" if matched else "MISMATCH"
            lines.append(
                f"crosscheck {name}: monitor={seen} checker={checked} "
                f"[{verdict}]"
            )
        return lines

    def crosscheck_ok(self) -> bool:
        """True when unchecked or every compared quantity matches."""
        comparison = self.crosscheck()
        if comparison is None:
            return True
        return all(matched for _, _, matched in comparison.values())


def analyze_trace(
    run: "TracedRun",
    keep_imiss_stream: bool = True,
    shards: int = 1,
) -> AnalysisReport:
    """Run the full postprocessing pipeline on a traced run.

    ``shards > 1`` routes through the sharded core
    (:func:`repro.sim.sharded.sharded_analysis`), which is byte-identical
    to the serial pass — the shard count is a wall-clock knob only.
    """
    params = run.params
    if shards > 1:
        from repro.sim.sharded import sharded_analysis

        analysis = sharded_analysis(
            run, shards, keep_imiss_stream=keep_imiss_stream
        )
    else:
        analyzer = TraceAnalyzer(
            run.workload_name,
            params.num_cpus,
            icache_bytes=params.icache.size_bytes,
            dcache_bytes=params.dcache_l2.size_bytes,
            layout=run.kernel.layout,
            datamap=run.kernel.datamap,
            block_bytes=params.block_bytes,
            keep_imiss_stream=keep_imiss_stream,
        )
        # Mixed-fidelity runs: seed the reconstruction with the
        # simulator's warm-state dump from the atomic→detailed seam.
        analyzer.seed_seam(getattr(run, "seam_state", None))
        analysis = analyzer.analyze(
            run.trace, stats_from_tick=run.measure_from_cycles // CYCLES_PER_TICK
        )
    check_report = getattr(run, "check_report", None)
    counters = dict(check_report.counters) if check_report else None
    return AnalysisReport(
        analysis,
        bus_stall_cycles=params.bus_stall_cycles,
        check_counters=counters,
    )
