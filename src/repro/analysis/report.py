"""Derived metrics: Table 1-style rollups from a trace analysis.

The stall model is the paper's (Section 3.1): every bus access stalls
the issuing CPU for 35 cycles, and stall time is compared against
non-idle execution time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.common.types import MissClass, RefDomain
from repro.analysis.decode import TraceAnalysis, TraceAnalyzer

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim._session import TracedRun

# Monitor ticks are 60 ns = 2 processor cycles.
CYCLES_PER_TICK = 2


@dataclass
class AnalysisReport:
    """Table 1 style summary of one traced run."""

    analysis: TraceAnalysis
    bus_stall_cycles: int = 35

    # ------------------------------------------------------------------
    # Execution-time split (Table 1 columns 2-4)
    # ------------------------------------------------------------------
    @property
    def user_pct(self) -> float:
        return self._time_pct(self.analysis.user_ticks)

    @property
    def sys_pct(self) -> float:
        return self._time_pct(self.analysis.sys_ticks)

    @property
    def idle_pct(self) -> float:
        return self._time_pct(self.analysis.idle_ticks)

    def _time_pct(self, ticks: int) -> float:
        total = (
            self.analysis.user_ticks
            + self.analysis.sys_ticks
            + self.analysis.idle_ticks
        )
        return 100.0 * ticks / total if total else 0.0

    # ------------------------------------------------------------------
    # Miss shares (Table 1 column 5)
    # ------------------------------------------------------------------
    @property
    def os_miss_fraction_pct(self) -> float:
        total = self.analysis.total_misses()
        if not total:
            return 0.0
        return 100.0 * self.analysis.total_misses(RefDomain.OS) / total

    # ------------------------------------------------------------------
    # Stall fractions (Table 1 columns 6-8)
    # ------------------------------------------------------------------
    def _stall_pct(self, misses: int) -> float:
        non_idle_cycles = self.analysis.non_idle_ticks() * CYCLES_PER_TICK
        if not non_idle_cycles:
            return 0.0
        return 100.0 * misses * self.bus_stall_cycles / non_idle_cycles

    @property
    def total_stall_pct(self) -> float:
        """Application + OS miss stall / non-idle time."""
        return self._stall_pct(self.analysis.total_misses())

    @property
    def os_stall_pct(self) -> float:
        """OS miss stall / non-idle time."""
        return self._stall_pct(self.analysis.total_misses(RefDomain.OS))

    @property
    def os_plus_induced_stall_pct(self) -> float:
        """OS misses plus the application misses the OS induced
        (Ap_dispos) / non-idle time."""
        induced = sum(self.analysis.ap_dispos.values())
        return self._stall_pct(self.analysis.total_misses(RefDomain.OS) + induced)

    def stall_pct_for(self, misses: int) -> float:
        """Stall fraction for an arbitrary miss count (component rows)."""
        return self._stall_pct(misses)

    # ------------------------------------------------------------------
    # OS miss class shares normalized to 100 (Figures 4/7 convention)
    # ------------------------------------------------------------------
    def os_class_share_pct(self, kind: str, miss_class: MissClass) -> float:
        total = self.analysis.total_misses(RefDomain.OS)
        if not total:
            return 0.0
        count = self.analysis.miss_counts.get(
            (RefDomain.OS, kind, miss_class), 0
        )
        return 100.0 * count / total


def analyze_trace(
    run: "TracedRun",
    keep_imiss_stream: bool = True,
) -> AnalysisReport:
    """Run the full postprocessing pipeline on a traced run."""
    params = run.params
    analyzer = TraceAnalyzer(
        run.workload_name,
        params.num_cpus,
        icache_bytes=params.icache.size_bytes,
        dcache_bytes=params.dcache_l2.size_bytes,
        layout=run.kernel.layout,
        datamap=run.kernel.datamap,
        block_bytes=params.block_bytes,
        keep_imiss_stream=keep_imiss_stream,
    )
    analysis = analyzer.analyze(
        run.trace, stats_from_tick=run.measure_from_cycles // CYCLES_PER_TICK
    )
    return AnalysisReport(analysis, bus_stall_cycles=params.bus_stall_cycles)
