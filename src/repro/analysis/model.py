"""Analytic model of OS/application interleaving.

Figure 1/3's stated purpose: "This data is also useful to build analytic
models of OS and application referencing activity." This module builds
that model — an alternating-renewal process of application intervals and
OS invocations, parameterized from a measured trace — and closes the
loop by predicting aggregate quantities (OS time share, miss rates, the
Table 1 stall fractions) that can be checked against the direct
measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.decode import TraceAnalysis

CYCLES_PER_TICK = 2


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _cv(values: Sequence[float]) -> float:
    """Coefficient of variation (std/mean); 1.0 for exponential."""
    if len(values) < 2:
        return 0.0
    mean = _mean(values)
    if mean == 0:
        return 0.0
    var = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(var) / mean


@dataclass(frozen=True)
class PhaseModel:
    """One phase of the alternating process."""

    mean_cycles: float
    cv_cycles: float        # shape: 1.0 = exponential-like
    mean_imisses: float
    mean_dmisses: float

    @property
    def miss_rate_per_cycle(self) -> float:
        if self.mean_cycles <= 0:
            return 0.0
        return (self.mean_imisses + self.mean_dmisses) / self.mean_cycles


@dataclass(frozen=True)
class OsActivityModel:
    """Alternating renewal model: application interval -> OS invocation.

    UTLB faults ride inside application intervals as near-free spikes
    (Figure 1), contributing their (small) cost to the application
    phase's cycle count.
    """

    os_phase: PhaseModel
    app_phase: PhaseModel
    utlb_per_app_interval: float
    utlb_misses_per_fault: float
    bus_stall_cycles: int = 35

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    @classmethod
    def from_analysis(
        cls, analysis: TraceAnalysis, bus_stall_cycles: int = 35
    ) -> "OsActivityModel":
        invocations = analysis.invocations
        intervals = analysis.app_intervals
        if not invocations or not intervals:
            raise ValueError("analysis holds no invocation structure to fit")
        os_cycles = [inv.duration_ticks * CYCLES_PER_TICK for inv in invocations]
        app_cycles = [iv.duration_ticks * CYCLES_PER_TICK for iv in intervals]
        os_phase = PhaseModel(
            mean_cycles=_mean(os_cycles),
            cv_cycles=_cv(os_cycles),
            mean_imisses=_mean([inv.imisses for inv in invocations]),
            mean_dmisses=_mean([inv.dmisses for inv in invocations]),
        )
        app_phase = PhaseModel(
            mean_cycles=_mean(app_cycles),
            cv_cycles=_cv(app_cycles),
            mean_imisses=_mean([iv.imisses for iv in intervals]),
            mean_dmisses=_mean([iv.dmisses for iv in intervals]),
        )
        utlb_rate = _mean([iv.utlb_faults for iv in intervals])
        utlb_miss = (
            analysis.utlb_misses / analysis.utlb_count
            if analysis.utlb_count else 0.0
        )
        return cls(os_phase, app_phase, utlb_rate, utlb_miss, bus_stall_cycles)

    # ------------------------------------------------------------------
    # Predictions
    # ------------------------------------------------------------------
    @property
    def cycle_length(self) -> float:
        """Mean cycles of one app-interval + OS-invocation period."""
        return self.os_phase.mean_cycles + self.app_phase.mean_cycles

    @property
    def os_time_share(self) -> float:
        """Predicted fraction of non-idle time spent in the OS."""
        if self.cycle_length <= 0:
            return 0.0
        return self.os_phase.mean_cycles / self.cycle_length

    @property
    def invocation_interval_cycles(self) -> float:
        """Mean cycles between OS invocations (the Figure 1 quantity)."""
        return self.cycle_length

    def predicted_os_miss_share(self) -> float:
        """OS misses / all misses (Table 1 column 5)."""
        os_misses = self.os_phase.mean_imisses + self.os_phase.mean_dmisses
        app_misses = (
            self.app_phase.mean_imisses + self.app_phase.mean_dmisses
            + self.utlb_per_app_interval * self.utlb_misses_per_fault
        )
        total = os_misses + app_misses
        return os_misses / total if total else 0.0

    def predicted_os_stall_pct(self) -> float:
        """OS-miss stall as % of non-idle time (Table 1 column 7)."""
        if self.cycle_length <= 0:
            return 0.0
        os_misses = self.os_phase.mean_imisses + self.os_phase.mean_dmisses
        return 100.0 * os_misses * self.bus_stall_cycles / self.cycle_length

    def predicted_total_stall_pct(self) -> float:
        """All-miss stall as % of non-idle time (Table 1 column 6)."""
        if self.cycle_length <= 0:
            return 0.0
        misses = (
            self.os_phase.mean_imisses + self.os_phase.mean_dmisses
            + self.app_phase.mean_imisses + self.app_phase.mean_dmisses
            + self.utlb_per_app_interval * self.utlb_misses_per_fault
        )
        return 100.0 * misses * self.bus_stall_cycles / self.cycle_length

    # ------------------------------------------------------------------
    # Synthetic generation (for model-based what-ifs)
    # ------------------------------------------------------------------
    def generate(self, rng, periods: int) -> List[Tuple[float, float]]:
        """Draw ``periods`` (app_cycles, os_cycles) pairs.

        Phases are drawn from gamma distributions matched to each
        phase's mean and CV (an exponential when CV == 1), the standard
        renewal-model fit for this kind of data.
        """
        out = []
        for _ in range(periods):
            out.append((
                self._draw(rng, self.app_phase),
                self._draw(rng, self.os_phase),
            ))
        return out

    @staticmethod
    def _draw(rng, phase: PhaseModel) -> float:
        if phase.mean_cycles <= 0:
            return 0.0
        cv = max(phase.cv_cycles, 0.05)
        shape = 1.0 / (cv * cv)
        scale = phase.mean_cycles / shape
        return rng.gammavariate(shape, scale)


def validate_model(
    model: OsActivityModel, analysis: TraceAnalysis
) -> dict:
    """Model-predicted vs directly-measured aggregates."""
    measured_share = (
        analysis.sys_ticks / analysis.non_idle_ticks()
        if analysis.non_idle_ticks() else 0.0
    )
    total_misses = analysis.total_misses()
    from repro.common.types import RefDomain

    measured_os_share = (
        analysis.total_misses(RefDomain.OS) / total_misses
        if total_misses else 0.0
    )
    return {
        "os_time_share": (model.os_time_share, measured_share),
        "os_miss_share": (model.predicted_os_miss_share(), measured_os_share),
    }
