"""Cache-content reconstruction from the bus miss stream.

The machine's caches are physically addressed and direct mapped, so
their contents are fully determined by the sequence of fills the monitor
observed: every miss fills the line ``block % num_sets``, evicting the
previous occupant; hits change nothing. This is how the paper's
postprocessing can classify misses (Table 2) and re-simulate bigger
caches (Figure 6) from nothing but the trace.

The reconstruction also tracks the classification state per block:
who displaced it (OS or application, and whether the application ran in
between → ``Dispossame``), and whether it was removed by an invalidation
(a bus write from another CPU for data; an announced I-cache flush for
instructions).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.common.types import MissClass, RefDomain

EMPTY = -1


class ReconstructedCache:
    """One direct-mapped cache rebuilt from its fill sequence, with
    Table 2 classification state."""

    __slots__ = ("num_sets", "lines", "ever_cached", "evicted_by", "invalidated")

    def __init__(self, size_bytes: int, block_bytes: int = 16):
        self.num_sets = size_bytes // block_bytes
        self.lines: List[int] = [EMPTY] * self.num_sets
        self.ever_cached: set = set()
        # block -> (displacing domain, app epoch at displacement)
        self.evicted_by: Dict[int, Tuple[RefDomain, int]] = {}
        self.invalidated: set = set()

    def classify_fill(
        self, block: int, domain: RefDomain, app_epoch: int
    ) -> Tuple[MissClass, bool]:
        """Classify the observed miss on ``block`` and apply its fill.

        Returns (class, dispossame). SHARING is returned for any
        invalidation-induced miss; the caller maps it to INVAL for
        instruction caches.
        """
        if block in self.invalidated:
            miss_class, dispossame = MissClass.SHARING, False
        elif block not in self.ever_cached:
            miss_class, dispossame = MissClass.COLD, False
        else:
            displaced = self.evicted_by.get(block)
            if displaced is None:
                # Was cached and never displaced yet misses: the line was
                # lost to something the trace did not show (cannot happen
                # with a complete trace; defensively treat as cold).
                miss_class, dispossame = MissClass.COLD, False
            elif displaced[0] is RefDomain.OS:
                miss_class, dispossame = MissClass.DISPOS, displaced[1] == app_epoch
            else:
                miss_class, dispossame = MissClass.DISPAP, False
        # Apply the fill.
        index = block % self.num_sets
        victim = self.lines[index]
        if victim != EMPTY and victim != block:
            self.evicted_by[victim] = (domain, app_epoch)
            self.invalidated.discard(victim)
        self.lines[index] = block
        self.ever_cached.add(block)
        self.evicted_by.pop(block, None)
        self.invalidated.discard(block)
        return miss_class, dispossame

    def invalidate(self, block: int) -> bool:
        """Coherence/flush removal of one block, if resident."""
        index = block % self.num_sets
        if self.lines[index] != block:
            return False
        self.lines[index] = EMPTY
        self.invalidated.add(block)
        self.evicted_by.pop(block, None)
        return True

    def invalidate_all(self) -> int:
        """Full flush (announced I-cache invalidation)."""
        count = 0
        for index, block in enumerate(self.lines):
            if block != EMPTY:
                self.lines[index] = EMPTY
                self.invalidated.add(block)
                self.evicted_by.pop(block, None)
                count += 1
        return count

    def resident(self, block: int) -> bool:
        return self.lines[block % self.num_sets] == block


class CpuReconstruction:
    """Both caches of one CPU, as reconstructible from the bus.

    Only the bus-visible data level (L2) can be rebuilt — L1 misses that
    hit in L2 never reach the bus, exactly as on the real machine.
    """

    __slots__ = ("icache", "dcache", "app_epoch")

    def __init__(self, icache_bytes: int, dcache_bytes: int, block_bytes: int = 16):
        self.icache = ReconstructedCache(icache_bytes, block_bytes)
        self.dcache = ReconstructedCache(dcache_bytes, block_bytes)
        self.app_epoch = 0
