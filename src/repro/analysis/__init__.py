"""Trace postprocessing: the paper's analysis methodology.

- :mod:`repro.analysis.reconstruct` — cache contents rebuilt from the
  miss stream (direct-mapped caches make this exact).
- :mod:`repro.analysis.decode` — the single-pass analyzer: escape
  decoding, Table 2 classification, attribution, invocation
  segmentation, time accounting.
- :mod:`repro.analysis.report` — Table 1 style rollups.
- :mod:`repro.analysis.sweeps` — the Figure 6 what-if: replay the I-miss
  stream against larger / set-associative caches.
- :mod:`repro.analysis.lockstats` — Tables 10-12 and Figure 11 from the
  OS-kept synchronization statistics.
"""

from repro.analysis.decode import TraceAnalysis, TraceAnalyzer, OsInvocation
from repro.analysis.report import AnalysisReport, analyze_trace
from repro.analysis.reconstruct import ReconstructedCache, CpuReconstruction
from repro.analysis.sweeps import (
    SweepPoint,
    simulate_icache_config,
    simulate_icache_sweep,
)
from repro.analysis.lockstats import (
    LockRow,
    SyncStallSummary,
    failed_acquires_per_ms,
    lock_table_rows,
    sync_stall_summary,
)
from repro.analysis.model import OsActivityModel, PhaseModel, validate_model
from repro.analysis.charts import bar_chart, profile_chart, series_chart

__all__ = [
    "TraceAnalysis",
    "TraceAnalyzer",
    "OsInvocation",
    "AnalysisReport",
    "analyze_trace",
    "ReconstructedCache",
    "CpuReconstruction",
    "SweepPoint",
    "simulate_icache_config",
    "simulate_icache_sweep",
    "LockRow",
    "SyncStallSummary",
    "failed_acquires_per_ms",
    "lock_table_rows",
    "sync_stall_summary",
    "OsActivityModel",
    "PhaseModel",
    "validate_model",
    "bar_chart",
    "profile_chart",
    "series_chart",
]
