"""Single-pass trace analysis: the paper's postprocessing program.

Consumes nothing but what the hardware monitor recorded — bus
transactions with (60 ns tick, CPU id, physical address, read/write/
uncached kind) — and rebuilds everything the paper reports:

- escape decoding (Section 2.2): OS entries/exits, running pids, TLB
  changes (physical→virtual page typing), I-cache flushes, block
  operations, interrupts;
- cache-content reconstruction (the caches are direct mapped and
  physically addressed, so the fill sequence determines the contents);
- Table 2 miss classification, including Dispossame;
- attribution of data misses to kernel structures (Figure 8, Tables 4/6)
  and instruction misses to routines (Figure 5);
- functional attribution to the Table 8 operation vocabulary (Figures
  2/9);
- OS-invocation segmentation (Figures 1/3) and UTLB fault accounting;
- user/system/idle time accounting from the escape timestamps (Table 1).

Statistics are accumulated only inside the measurement window
(``stats_from_tick``); everything before it still drives the
reconstruction, mirroring the paper's tracing of a long-running system.
"""

from __future__ import annotations

import pickle
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common.types import MissClass, RefDomain
from repro.kernel.blockops import KIND_NAMES
from repro.kernel.kernel import CODE_OP
from repro.kernel.layout import KernelLayout
from repro.kernel.structures import KernelDataMap, StructName
from repro.kernel.tlbfault import UTLB_OP_CODE
from repro.common.types import InterruptKind
from repro.memsys.memory import KTEXT_BASE, KTEXT_SIZE
from repro.monitor.escapes import (
    EventType,
    PAYLOAD_COUNT,
    decode_payload,
    signal_event,
)
from repro.monitor.hwmonitor import OP_UNCACHED, OP_WRITE, Trace
from repro.analysis.reconstruct import CpuReconstruction

_KTEXT_END = KTEXT_BASE + KTEXT_SIZE
_INSTR = "I"
_DATA = "D"

_INTR_KINDS = list(InterruptKind)

# Figure 5's X-axis granularity: address buckets of 1 KB.
FIG5_BUCKET_BYTES = 1024


@dataclass
class OsInvocation:
    """One OS invocation (Figure 1/3 unit)."""

    op: str
    start_tick: int
    duration_ticks: int
    imisses: int
    dmisses: int


@dataclass
class AppInterval:
    """One application invocation between OS invocations (Figure 1)."""

    duration_ticks: int
    imisses: int
    dmisses: int
    utlb_faults: int


@dataclass
class TraceAnalysis:
    """Everything extracted from one trace."""

    workload: str
    num_cpus: int
    measured_ticks: int = 0
    # Time split (ticks) per mode, summed over CPUs.
    user_ticks: int = 0
    sys_ticks: int = 0
    idle_ticks: int = 0
    # Misses: (domain, 'I'/'D', MissClass) -> count.
    miss_counts: Counter = field(default_factory=Counter)
    dispossame: Counter = field(default_factory=Counter)  # (domain, kind)
    upgrades: int = 0          # bus ownership upgrades (stall, not misses)
    escape_reads: int = 0      # instrumentation bus traffic
    # Raw monitor transaction counts over the FULL trace (warmup
    # included, unlike the windowed statistics above). These are the
    # trace-level side of the checker cross-validation: every recorded
    # bus transaction, bucketed the way the memory system issues them.
    monitor_instr_reads: int = 0
    monitor_data_reads: int = 0
    monitor_writes: int = 0
    monitor_uncached: int = 0
    # Attribution.
    sharing_by_struct: Counter = field(default_factory=Counter)
    dmiss_by_struct_class: Counter = field(default_factory=Counter)
    imiss_dispos_by_routine: Counter = field(default_factory=Counter)
    imiss_dispos_addr_hist: Counter = field(default_factory=Counter)
    # All OS I-misses per routine (any class): the heat profile the
    # code-layout optimizer consumes.
    imiss_by_routine: Counter = field(default_factory=Counter)
    # Functional attribution: (op_label, kind) -> misses; op_label counts.
    op_misses: Counter = field(default_factory=Counter)
    op_counts: Counter = field(default_factory=Counter)
    # Block operations.
    blockop_misses: Counter = field(default_factory=Counter)   # kind -> D misses
    blockop_log: List[Tuple[str, int]] = field(default_factory=list)
    # Migration misses by operation (Table 5): Sharing misses on the
    # per-process structures, bucketed by the operation that touches
    # them — Eframe <-> low-level exception handling, PCB/Run Queue <->
    # run-queue management, user-structure body inside an I/O system
    # call <-> read/write recognition & setup.
    migration_op_misses: Counter = field(default_factory=Counter)
    # Invocation structure.
    invocations: List[OsInvocation] = field(default_factory=list)
    app_intervals: List[AppInterval] = field(default_factory=list)
    utlb_count: int = 0
    utlb_ticks: int = 0
    utlb_misses: int = 0
    # The OS-induced application misses (Figure 10).
    ap_dispos: Counter = field(default_factory=Counter)  # kind -> count
    # I-miss stream for the Figure 6 re-simulation:
    # (cpu, block, domain_is_os, in_window); cpu == -1 marks a full flush.
    imiss_stream: List[Tuple[int, int, bool, bool]] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Convenience queries
    # ------------------------------------------------------------------
    def monitor_transactions(self) -> int:
        """All recorded bus transactions (full trace, any op)."""
        return (
            self.monitor_instr_reads + self.monitor_data_reads
            + self.monitor_writes + self.monitor_uncached
        )

    def total_misses(self, domain: Optional[RefDomain] = None) -> int:
        return sum(
            count for (dom, _k, _c), count in self.miss_counts.items()
            if domain is None or dom is domain
        )

    def class_counts(
        self, domain: Optional[RefDomain] = None, kind: Optional[str] = None
    ) -> Counter:
        out: Counter = Counter()
        for (dom, knd, cls), count in self.miss_counts.items():
            if domain is not None and dom is not domain:
                continue
            if kind is not None and knd != kind:
                continue
            out[cls] += count
        return out

    def non_idle_ticks(self) -> int:
        return self.user_ticks + self.sys_ticks


# The cumulative full-trace transaction counters carried by every
# checkpoint; the sharded seam crosscheck sums per-chunk counters and
# compares against these.
MONITOR_FIELDS = (
    "monitor_instr_reads",
    "monitor_data_reads",
    "monitor_writes",
    "monitor_uncached",
)


@dataclass
class AnalyzerState:
    """Resumable decoder state at a trace-entry boundary.

    Everything the analyzer carries *between* entries lives here: the
    per-CPU escape-decoder state (including half-decoded multi-payload
    escapes), the reconstructed cache contents, and the physical-frame
    typing map. ``monitor_counters`` additionally records the cumulative
    bus-transaction counts up to ``entry_index`` so shard seams can be
    cross-checked against the per-chunk sums.
    """

    entry_index: int
    cpus: List["_CpuState"]
    recons: List[CpuReconstruction]
    frame_is_text: Dict[int, bool]
    monitor_counters: Dict[str, int]


class _CpuState:
    """Decoder state for one CPU."""

    __slots__ = (
        "os_depth", "idle", "pid", "op_stack", "blockop", "pending",
        "last_tick", "state", "inv_start", "inv_imiss", "inv_dmiss",
        "inv_is_utlb", "app_start", "app_imiss", "app_dmiss", "app_utlb",
        "intr_depth",
    )

    def __init__(self) -> None:
        self.os_depth = 0
        self.idle = False
        self.pid = 0
        self.op_stack: List[str] = []
        self.blockop: Optional[str] = None
        self.pending: Optional[Tuple[EventType, int, List[int]]] = None
        self.last_tick = 0
        self.state = "user"
        self.inv_start = -1
        self.inv_imiss = 0
        self.inv_dmiss = 0
        self.inv_is_utlb = False
        self.app_start = -1
        self.app_imiss = 0
        self.app_dmiss = 0
        self.app_utlb = 0
        self.intr_depth = 0

    def mode(self) -> str:
        if self.idle:
            return "idle"
        if self.os_depth > 0:
            return "os"
        return "user"


def _op_label(code: int) -> str:
    if code == UTLB_OP_CODE:
        return "utlb"
    return CODE_OP[code].value


class TraceAnalyzer:
    """The postprocessor."""

    def __init__(
        self,
        workload: str,
        num_cpus: int,
        icache_bytes: int,
        dcache_bytes: int,
        layout: Optional[KernelLayout] = None,
        datamap: Optional[KernelDataMap] = None,
        block_bytes: int = 16,
        keep_imiss_stream: bool = True,
        state_only: bool = False,
        stats_from_tick: int = 0,
    ):
        self.layout = layout if layout is not None else KernelLayout()
        self.datamap = datamap if datamap is not None else KernelDataMap()
        self.block_bytes = block_bytes
        # ``state_only`` analyzers are the sharded scout pass: they drive
        # the reconstruction and escape decoding (everything a checkpoint
        # must capture) but skip every windowed statistic, including the
        # imiss stream. Monitor transaction counters stay on — they are
        # cheap and feed the seam crosscheck.
        self.stats = not state_only
        self.keep_imiss_stream = keep_imiss_stream and self.stats
        self.result = TraceAnalysis(workload, num_cpus)
        self._cpus = [_CpuState() for _ in range(num_cpus)]
        self._recons = [
            CpuReconstruction(icache_bytes, dcache_bytes, block_bytes)
            for _ in range(num_cpus)
        ]
        self._frame_is_text: Dict[int, bool] = {}
        self._window_start = stats_from_tick
        self._end_tick = 0

    # ------------------------------------------------------------------
    def analyze(self, trace: Trace, stats_from_tick: int = 0) -> TraceAnalysis:
        self._window_start = stats_from_tick
        for segment in trace.segments:
            self.feed(segment.entries)
            self._end_tick = max(self._end_tick, segment.end_cycles // 2)
        return self.finish(self._end_tick)

    # ------------------------------------------------------------------
    # Incremental driving (the sharded core's entry points)
    # ------------------------------------------------------------------
    def feed(self, entries) -> None:
        """Process a run of trace entries without finalizing."""
        for entry in entries:
            if entry[3] == OP_UNCACHED:
                self._escape(entry)
            else:
                self._reference(entry)

    def finish(self, end_tick: int) -> TraceAnalysis:
        """Flush trailing time and close the analysis at ``end_tick``."""
        self._end_tick = max(self._end_tick, end_tick)
        for cpu_state in self._cpus:
            self._account_time(cpu_state, self._end_tick)
        self.result.measured_ticks = max(0, self._end_tick - self._window_start)
        return self.result

    def snapshot(self, entry_index: int) -> AnalyzerState:
        """Checkpoint the full inter-entry state at ``entry_index``.

        Copies go through pickle rather than ``copy.deepcopy`` — the
        states cross a process boundary pickled anyway, and the
        round-trip is several times faster on the reconstruction maps.
        """
        return AnalyzerState(
            entry_index=entry_index,
            cpus=pickle.loads(pickle.dumps(self._cpus, -1)),
            recons=pickle.loads(pickle.dumps(self._recons, -1)),
            frame_is_text=dict(self._frame_is_text),
            monitor_counters={
                name: getattr(self.result, name) for name in MONITOR_FIELDS
            },
        )

    def restore(self, state: AnalyzerState) -> None:
        """Adopt a checkpoint's decoder state.

        Statistics are *not* restored: a restored analyzer accumulates
        per-chunk counts from zero so shard results can be summed (and
        seam-checked against the checkpoint cumulatives).
        """
        self._cpus = pickle.loads(pickle.dumps(state.cpus, -1))
        self._recons = pickle.loads(pickle.dumps(state.recons, -1))
        self._frame_is_text = dict(state.frame_is_text)

    def seed_seam(self, seam_state: Optional[list]) -> None:
        """Adopt a mixed-fidelity run's warm-state dump
        (``TracedRun.seam_state``) before feeding its trace.

        The trace of a mixed run begins at the atomic→detailed seam;
        without the dump the reconstruction starts from empty caches and
        blank classification history, so the first post-seam miss on
        every block the atomic tier warmed would be classed COLD. The
        dump carries exactly what :class:`ReconstructedCache` tracks —
        resident blocks, ``ever_cached``, ``evicted_by``, ``invalidated``
        — plus each CPU's application epoch, straight from the
        simulator's own bookkeeping. Call on a freshly built analyzer
        only (the structures are merged with ``update``, which assumes
        they start empty).
        """
        if not seam_state:
            return
        for recon, entry in zip(self._recons, seam_state):
            recon.app_epoch = entry["app_epoch"]
            for cache, key in ((recon.icache, "icache"), (recon.dcache, "dcache")):
                dump = entry[key]
                for block in dump["resident"]:
                    cache.lines[block % cache.num_sets] = block
                cache.ever_cached.update(dump["ever_cached"])
                cache.evicted_by.update(dump["evicted_by"])
                cache.invalidated.update(dump["invalidated"])

    # ------------------------------------------------------------------
    # Time accounting
    # ------------------------------------------------------------------
    def _account_time(self, cpu_state: _CpuState, now_tick: int) -> None:
        start = max(cpu_state.last_tick, self._window_start)
        span = now_tick - start
        if span > 0 and self.stats:
            if cpu_state.state == "user":
                self.result.user_ticks += span
            elif cpu_state.state == "os":
                self.result.sys_ticks += span
            else:
                self.result.idle_ticks += span
        cpu_state.last_tick = max(cpu_state.last_tick, now_tick)
        cpu_state.state = cpu_state.mode()

    # ------------------------------------------------------------------
    # Escape events
    # ------------------------------------------------------------------
    def _escape(self, entry) -> None:
        tick, cpu, addr, _op = entry
        self.result.monitor_uncached += 1
        if self.stats and tick >= self._window_start:
            self.result.escape_reads += 1
        cpu_state = self._cpus[cpu]
        pending = cpu_state.pending
        if pending is None:
            event = signal_event(addr)
            if event is None:
                raise ValueError(
                    f"stray uncached read {addr:#x} by CPU {cpu}: not an escape signal"
                )
            if PAYLOAD_COUNT[event] == 0:
                self._event(tick, cpu, event, ())
            else:
                cpu_state.pending = (event, tick, [])
            return
        event, start_tick, payloads = pending
        payloads.append(decode_payload(addr))
        if len(payloads) == PAYLOAD_COUNT[event]:
            cpu_state.pending = None
            self._event(start_tick, cpu, event, tuple(payloads))

    def _event(self, tick: int, cpu: int, event: EventType, payloads) -> None:
        cpu_state = self._cpus[cpu]
        result = self.result
        in_window = tick >= self._window_start
        if event is EventType.OS_ENTER:
            self._account_time(cpu_state, tick)
            label = _op_label(payloads[0])
            cpu_state.op_stack.append(label)
            cpu_state.os_depth += 1
            if self.stats and in_window:
                result.op_counts[label] += 1
            if cpu_state.os_depth == 1:
                # Close the application interval (UTLB spikes don't).
                if label == "utlb":
                    cpu_state.app_utlb += 1
                    cpu_state.inv_is_utlb = True
                else:
                    self._close_app_interval(cpu_state, tick)
                    cpu_state.inv_is_utlb = False
                cpu_state.inv_start = tick
                cpu_state.inv_imiss = 0
                cpu_state.inv_dmiss = 0
            cpu_state.state = cpu_state.mode()
        elif event is EventType.OS_EXIT:
            self._account_time(cpu_state, tick)
            label = cpu_state.op_stack.pop() if cpu_state.op_stack else "?"
            cpu_state.os_depth = max(0, cpu_state.os_depth - 1)
            if cpu_state.os_depth == 0:
                started_in_window = cpu_state.inv_start >= self._window_start
                if cpu_state.inv_is_utlb:
                    if self.stats and started_in_window:
                        result.utlb_count += 1
                        result.utlb_ticks += tick - cpu_state.inv_start
                        result.utlb_misses += (
                            cpu_state.inv_imiss + cpu_state.inv_dmiss
                        )
                else:
                    if self.stats and started_in_window:
                        result.invocations.append(
                            OsInvocation(
                                label,
                                cpu_state.inv_start,
                                tick - cpu_state.inv_start,
                                cpu_state.inv_imiss,
                                cpu_state.inv_dmiss,
                            )
                        )
                    # A fresh application interval begins.
                    cpu_state.app_start = tick
                    cpu_state.app_imiss = 0
                    cpu_state.app_dmiss = 0
                    cpu_state.app_utlb = 0
                if cpu_state.pid:
                    self._recons[cpu].app_epoch += 1
            cpu_state.state = cpu_state.mode()
        elif event is EventType.IDLE_ENTER:
            self._account_time(cpu_state, tick)
            cpu_state.idle = True
            cpu_state.state = "idle"
        elif event is EventType.IDLE_EXIT:
            self._account_time(cpu_state, tick)
            cpu_state.idle = False
            cpu_state.state = cpu_state.mode()
        elif event is EventType.PID_SET:
            cpu_state.pid = payloads[0]
        elif event is EventType.TLB_UPDATE:
            _index, _vpage, frame, pid_text = payloads
            self._frame_is_text[frame] = bool(pid_text & 1)
        elif event is EventType.ICACHE_FLUSH:
            for recon in self._recons:
                recon.icache.invalidate_all()
            if self.keep_imiss_stream:
                result.imiss_stream.append((-1, 0, False, False))
        elif event is EventType.BLOCKOP_BEGIN:
            kind_code, _first, count = payloads
            kind = KIND_NAMES.get(kind_code, "?")
            cpu_state.blockop = kind
            if self.stats and in_window:
                result.blockop_log.append((kind, count * self.block_bytes))
        elif event is EventType.BLOCKOP_END:
            cpu_state.blockop = None
        elif event is EventType.INTR_ENTER:
            kind = _INTR_KINDS[payloads[0]]
            cpu_state.intr_depth += 1
            if self.stats and in_window:
                result.op_counts[f"intr_{kind.value}"] += 1
        elif event is EventType.INTR_EXIT:
            cpu_state.intr_depth = max(0, cpu_state.intr_depth - 1)
        # TRACE_START needs no action.

    def _close_app_interval(self, cpu_state: _CpuState, tick: int) -> None:
        if self.stats and cpu_state.app_start >= self._window_start and not cpu_state.idle:
            self.result.app_intervals.append(
                AppInterval(
                    tick - cpu_state.app_start,
                    cpu_state.app_imiss,
                    cpu_state.app_dmiss,
                    cpu_state.app_utlb,
                )
            )
        cpu_state.app_start = -1

    # ------------------------------------------------------------------
    # Cacheable references (the miss stream)
    # ------------------------------------------------------------------
    def _reference(self, entry) -> None:
        tick, cpu, addr, op = entry
        cpu_state = self._cpus[cpu]
        recon = self._recons[cpu]
        result = self.result
        in_window = tick >= self._window_start
        block = addr // self.block_bytes
        is_instr = self._is_instr(addr)
        domain = (
            RefDomain.OS
            if (cpu_state.os_depth > 0 or cpu_state.idle)
            else RefDomain.APP
        )
        if op == OP_WRITE:
            result.monitor_writes += 1
            # Write-invalidate coherence: every other copy dies.
            for other, other_recon in enumerate(self._recons):
                if other != cpu:
                    other_recon.dcache.invalidate(block)
            if recon.dcache.resident(block):
                # Ownership upgrade, not a miss.
                if self.stats and in_window:
                    result.upgrades += 1
                return
        elif is_instr:
            result.monitor_instr_reads += 1
        else:
            result.monitor_data_reads += 1
        cache = recon.icache if is_instr else recon.dcache
        miss_class, dispossame = cache.classify_fill(
            block, domain, recon.app_epoch
        )
        if is_instr and miss_class is MissClass.SHARING:
            miss_class = MissClass.INVAL
        kind = _INSTR if is_instr else _DATA
        if is_instr and self.keep_imiss_stream:
            result.imiss_stream.append(
                (cpu, block, domain is RefDomain.OS, in_window)
            )
        # Per-invocation counters (window filtering happens at close).
        if domain is RefDomain.OS:
            if is_instr:
                cpu_state.inv_imiss += 1
            else:
                cpu_state.inv_dmiss += 1
        else:
            if is_instr:
                cpu_state.app_imiss += 1
            else:
                cpu_state.app_dmiss += 1
        if not (self.stats and in_window):
            return
        result.miss_counts[(domain, kind, miss_class)] += 1
        if dispossame:
            result.dispossame[(domain, kind)] += 1
        # Functional attribution (innermost op label).
        if domain is RefDomain.OS and cpu_state.op_stack:
            result.op_misses[(cpu_state.op_stack[-1], kind)] += 1
        # Structure / routine attribution.
        if domain is RefDomain.OS:
            if is_instr:
                routine_name = self.layout.routine_at(addr)
                if routine_name is not None:
                    result.imiss_by_routine[routine_name] += 1
                if miss_class is MissClass.DISPOS:
                    if routine_name is not None:
                        result.imiss_dispos_by_routine[routine_name] += 1
                    result.imiss_dispos_addr_hist[addr // FIG5_BUCKET_BYTES] += 1
            else:
                struct = self.datamap.structure_at(addr)
                result.dmiss_by_struct_class[(struct, miss_class)] += 1
                if miss_class is MissClass.SHARING:
                    result.sharing_by_struct[struct] += 1
                    if struct is StructName.EFRAME:
                        result.migration_op_misses["low_level_exception"] += 1
                    elif struct in (StructName.PCB, StructName.RUN_QUEUE):
                        result.migration_op_misses["run_queue_mgmt"] += 1
                    elif (
                        struct is StructName.USTRUCT_REST
                        and cpu_state.op_stack
                        and cpu_state.op_stack[-1] == "io_syscall"
                    ):
                        result.migration_op_misses["rw_setup"] += 1
                if cpu_state.blockop is not None:
                    result.blockop_misses[cpu_state.blockop] += 1
        else:
            if miss_class is MissClass.DISPOS:
                result.ap_dispos[kind] += 1

    def _is_instr(self, addr: int) -> bool:
        if addr < _KTEXT_END:
            return True
        return self._frame_is_text.get(addr >> 12, False)
