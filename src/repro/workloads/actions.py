"""The action vocabulary workload processes are written in.

A process driver is a generator yielding these objects; the user-mode
engine (:mod:`repro.sim.usermode`) executes each one against the kernel.
Actions are mutable: the engine stores results (e.g. the forked child, a
read's progress) back into the yielded object, where the generator can
read them after resuming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass
class Compute:
    """User-mode computation over the process's working set."""

    cycles: int
    done_cycles: int = 0
    # Fraction of data touches that are writes (text touches never are).
    write_fraction: float = 0.25


@dataclass
class OpenFile:
    ino: int


@dataclass
class ReadFile:
    ino: int
    offset: int
    nbytes: int
    progress: int = 0   # engine-maintained; survives sleeps


@dataclass
class WriteFile:
    ino: int
    offset: int
    nbytes: int


@dataclass
class Sginap:
    """Voluntary reschedule (the synchronization library's backoff)."""


@dataclass
class Fork:
    """Fork a child running ``driver_factory()``; engine sets ``child``."""

    name: str
    driver_factory: Callable
    child: Optional[object] = None  # kernel Process, set by the engine


@dataclass
class Exec:
    """Replace the address space with ``image``."""

    image: object  # kernel.process.Image
    data_pages: int = 16


@dataclass
class ExitProc:
    """Terminate (also implied by the driver ending)."""


@dataclass
class WaitChild:
    """Block until the child process exits."""

    child: object  # kernel Process (from a prior Fork action)


@dataclass
class SleepFor:
    """Timed sleep (think time); delivered by the clock's callout run."""

    ms: float


@dataclass
class TermWait:
    """Block until terminal input arrives for this session."""

    session_id: int


@dataclass
class TermWrite:
    """Write characters to the terminal (echo, screen updates)."""

    session_id: int
    nchars: int


@dataclass
class Brk:
    """Grow the heap to ``data_pages`` pages."""

    data_pages: int


@dataclass
class SemOp:
    """Kernel semaphore operation: P (delta=-1) or V (delta=+1)."""

    sem_id: int
    delta: int


@dataclass
class UserLockAcquire:
    """User-level spinlock acquire: spin up to 20 times, then sginap
    (the library protocol of Table 8) until the lock is obtained."""

    lock_id: int
    spins_done: int = 0


@dataclass
class UserLockRelease:
    lock_id: int


@dataclass
class Misc:
    """A cheap system call (gettimeofday, stat, signal, ioctl, pipe...)."""

    flavor: str = "misc"
