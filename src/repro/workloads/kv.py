"""KV: a key-value / TP-style server with Zipf-skewed keys.

The paper's workloads leave the buffer cache comfortable: Oracle's
database fits in memory and Pmake re-reads a small set of sources. A
modern KV/TP server does the opposite — the keyspace is far larger than
the buffer cache and the traffic is Zipf-skewed, so residency is decided
by the skew knob, not the cache size. N worker processes each draw keys
from their own :class:`~repro.workloads.zipf.ZipfGenerator` over a
keyspace sharded across store files totalling ~32 MB against a ~272 KB
buffer cache; gets read through the cache (missing to disk), puts
write through it, and each worker accounts its own buffer-cache misses
and the cycles those reads cost (the Midas harness's miss-penalty
accounting).

What this stresses that the paper's trio never does: ``bfreelock`` (all
workers churn buffer headers at once), the buffer-cache hash chains
under a miss-heavy mix, and disk-wait idle driven by cache skew rather
than program structure.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.kernel.fs import BUFFER_BYTES as _BUFFER_BYTES
from repro.kernel.process import Image, ProcState
from repro.workloads import actions as A
from repro.workloads.base import Workload, preload_image
from repro.workloads.zipf import ZipfGenerator

_KV_BIN_INO = 500
_STORE_INO0 = 510
_NUM_STORES = 16

# Per-operation server compute (request parse, hash probe, reply).
_OP_COMPUTE = 16_000


class KvWorkload(Workload):
    """Zipf-keyed get/put traffic over a cache-dwarfing keyspace.

    ``workers``       worker processes issuing requests
    ``keys``          keyspace size (ranks, most-popular first)
    ``skew``          Zipf exponent (0 = uniform, 0.99 = YCSB-style)
    ``get_fraction``  share of operations that are gets (rest are puts)
    ``value_bytes``   value size per key (the unit of each read/write)
    """

    name = "kv"

    def __init__(
        self,
        workers: int = 6,
        keys: int = 16384,
        skew: float = 0.99,
        get_fraction: float = 0.9,
        value_bytes: int = 2048,
    ):
        super().__init__()
        workers = int(workers)
        keys = int(keys)
        skew = float(skew)
        get_fraction = float(get_fraction)
        value_bytes = int(value_bytes)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if keys < 1:
            raise ValueError(f"keys must be >= 1, got {keys}")
        if skew < 0.0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        if not 0.0 <= get_fraction <= 1.0:
            raise ValueError(
                f"get_fraction must be in [0, 1], got {get_fraction}"
            )
        if value_bytes < 1:
            raise ValueError(f"value_bytes must be >= 1, got {value_bytes}")
        self.workers = workers
        self.keys = keys
        self.skew = skew
        self.get_fraction = get_fraction
        self.value_bytes = value_bytes
        self.kv_image = Image("kvd", text_pages=48, file_ino=_KV_BIN_INO)
        # rank -> {"gets", "puts", "bc_misses", "miss_cycles"}: the
        # Midas-style per-worker miss-penalty ledger, filled by drivers.
        self.worker_stats: Dict[int, Dict[str, int]] = {}
        self._rng = None
        self._kernel = None
        self._procs: Dict[int, object] = {}
        self._zipf: Dict[int, ZipfGenerator] = {}

    def _locate(self, key: int) -> Tuple[int, int]:
        """Map a key rank onto (store inode, byte offset)."""
        ino = _STORE_INO0 + key % _NUM_STORES
        return ino, (key // _NUM_STORES) * self.value_bytes

    # ------------------------------------------------------------------
    def setup(self, kernel, rng) -> None:
        self._rng = rng
        self._kernel = kernel
        fs = kernel.fs
        fs.register_file(
            _KV_BIN_INO, self.kv_image.text_pages * 4096, "kvd"
        )
        slots = (self.keys + _NUM_STORES - 1) // _NUM_STORES
        for s in range(_NUM_STORES):
            fs.register_file(
                _STORE_INO0 + s, slots * self.value_bytes, f"store{s}.kv"
            )
        preload_image(kernel, self.kv_image)
        for w in range(self.workers):
            # Per-worker generator instances over one shared table.
            self._zipf[w] = ZipfGenerator(
                self.keys, self.skew, seed=rng.randrange(1 << 30)
            )
            self.worker_stats[w] = {
                "gets": 0, "puts": 0, "bc_misses": 0, "miss_cycles": 0,
            }
            process = kernel.create_process(
                f"kvd-{w}", self.kv_image, self.worker_driver(w)
            )
            process.data_pages = 48
            process.state = ProcState.RUNNABLE
            kernel.scheduler.run_queue.append(process)
            self._procs[w] = process

    # ------------------------------------------------------------------
    # One worker: Zipf-keyed gets and write-through puts forever
    # ------------------------------------------------------------------
    def _now(self) -> int:
        """Latest per-CPU clock: monotone even across migrations."""
        return max(p.cycles for p in self._kernel.processors)

    def worker_driver(self, rank: int) -> Iterator:
        rng = self._rng
        gen = self._zipf[rank]
        stats = self.worker_stats[rank]
        bcache = self._kernel.fs.buffer_cache
        op = 0
        while True:
            key = gen.sample()
            ino, offset = self._locate(key)
            if rng.random() < self.get_fraction:
                # Blocks of this request not resident right now: the
                # misses attributable to THIS get (a global hits/misses
                # delta would absorb concurrent workers' traffic).
                first = offset // _BUFFER_BYTES
                last = (offset + self.value_bytes - 1) // _BUFFER_BYTES
                missing = sum(
                    1 for fb in range(first, last + 1)
                    if (ino, fb) not in bcache._entries
                )
                cycles0 = self._now()
                yield A.ReadFile(ino, offset, self.value_bytes)
                stats["gets"] += 1
                if missing:
                    # Miss penalty: elapsed cycles this get cost, disk
                    # wait included (vs ~free on a full hit).
                    stats["bc_misses"] += missing
                    stats["miss_cycles"] += max(0, self._now() - cycles0)
            else:
                # Write-through: the put lands in the buffer cache
                # immediately (delayed write flushes to disk later).
                yield A.WriteFile(ino, offset, self.value_bytes)
                stats["puts"] += 1
            yield A.Compute(_OP_COMPUTE, write_fraction=0.3)
            op += 1
            if op % 64 == 63:
                yield A.Misc("time")

    # ------------------------------------------------------------------
    def total_stats(self) -> Dict[str, int]:
        """Summed per-worker ledger (ops, misses, miss cycles)."""
        totals = {"gets": 0, "puts": 0, "bc_misses": 0, "miss_cycles": 0}
        for stats in self.worker_stats.values():
            for field, value in stats.items():
                totals[field] += value
        return totals

    def baseline_frames(self) -> int:
        return 5600
