"""Generative models of the paper's three workloads (Section 3).

- :mod:`repro.workloads.pmake` — *Pmake*: a parallel make of 56 C files,
  at most 8 jobs at once; I/O heavy with compute-intensive compiler
  phases.
- :mod:`repro.workloads.multpgm` — *Multpgm*: Mp3d (a 4-process particle
  simulator with heavy lock traffic) + Pmake + five scripted ``ed``
  sessions fed by a simulated typist.
- :mod:`repro.workloads.oracle` — *Oracle*: a scaled-down TP1 database
  benchmark (10 branches, 100 tellers, 10,000 accounts) that fits in
  main memory.

Workload processes are generators yielding :mod:`~repro.workloads.actions`
objects; the user-mode engine (:mod:`repro.sim.usermode`) executes them.
"""

from repro.workloads.base import Workload, TtyEvent
from repro.workloads.pmake import PmakeWorkload
from repro.workloads.multpgm import MultpgmWorkload
from repro.workloads.oracle import OracleWorkload

WORKLOADS = {
    "pmake": PmakeWorkload,
    "multpgm": MultpgmWorkload,
    "oracle": OracleWorkload,
}


def make_workload(name: str, **kwargs) -> Workload:
    """Instantiate a workload by its paper name."""
    try:
        cls = WORKLOADS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "Workload",
    "TtyEvent",
    "PmakeWorkload",
    "MultpgmWorkload",
    "OracleWorkload",
    "WORKLOADS",
    "make_workload",
]
