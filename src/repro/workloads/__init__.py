"""Generative models of the paper's workloads (Section 3) and beyond.

The paper's trio:

- :mod:`repro.workloads.pmake` — *Pmake*: a parallel make of 56 C files,
  at most 8 jobs at once; I/O heavy with compute-intensive compiler
  phases.
- :mod:`repro.workloads.multpgm` — *Multpgm*: Mp3d (a 4-process particle
  simulator with heavy lock traffic) + Pmake + five scripted ``ed``
  sessions fed by a simulated typist.
- :mod:`repro.workloads.oracle` — *Oracle*: a scaled-down TP1 database
  benchmark (10 branches, 100 tellers, 10,000 accounts) that fits in
  main memory.

Server-style extensions (Section 6's "different traffic shapes"):

- :mod:`repro.workloads.kv` — *KV*: Zipf-skewed get/put traffic over a
  keyspace far larger than the buffer cache.
- :mod:`repro.workloads.netserver` — *Netserver*: connection arrivals on
  the network CPU driving streams locks and file-serving reads.

Workload processes are generators yielding :mod:`~repro.workloads.actions`
objects; the user-mode engine (:mod:`repro.sim.usermode`) executes them.
"""

from repro.workloads.base import NetEvent, TtyEvent, Workload
from repro.workloads.pmake import PmakeWorkload
from repro.workloads.multpgm import MultpgmWorkload
from repro.workloads.oracle import OracleWorkload
from repro.workloads.kv import KvWorkload
from repro.workloads.netserver import NetserverWorkload

WORKLOADS = {}


def register_workload(name: str, cls) -> None:
    """Add a workload class under ``name`` (lowercase, unique).

    Rejects duplicates: silently shadowing an existing workload would
    redefine cached runs' meaning without changing their keys.
    """
    if name != name.lower():
        raise ValueError(f"workload names are lowercase; got {name!r}")
    if name in WORKLOADS:
        raise ValueError(
            f"workload {name!r} is already registered "
            f"({WORKLOADS[name].__module__}.{WORKLOADS[name].__qualname__})"
        )
    WORKLOADS[name] = cls


register_workload("pmake", PmakeWorkload)
register_workload("multpgm", MultpgmWorkload)
register_workload("oracle", OracleWorkload)
register_workload("kv", KvWorkload)
register_workload("netserver", NetserverWorkload)


def canonical_workload_args(args) -> tuple:
    """Workload kwargs as a sorted ``(name, value)`` pair tuple.

    The canonical form is hashable, orderable and has a deterministic
    ``repr`` — the three properties the run/exhibit cache keys and the
    in-memory experiment caches need. Accepts a dict, any iterable of
    pairs, or None/empty (canonicalized to ``()``, which every cache
    key normalizes away).
    """
    if not args:
        return ()
    items = dict(args).items() if not isinstance(args, dict) else args.items()
    return tuple(sorted(((str(k), v) for k, v in items), key=lambda kv: kv[0]))


def parse_workload_args(pairs) -> tuple:
    """Parse ``["k=v", ...]`` strings into canonical workload args.

    The shared parser behind the CLI's ``--workload-arg`` and the
    service's ``?workload_arg=`` query parameter. Values parse as int,
    then float, then stay strings, so ``skew=1.2`` and ``scale=standard``
    both do what they look like. Raises :class:`ValueError` on a pair
    without ``=`` or with an empty name.
    """
    parsed = {}
    for pair in pairs or ():
        name, sep, value = str(pair).partition("=")
        if not sep or not name:
            raise ValueError(
                f"workload arg {pair!r} is not of the form name=value"
            )
        for convert in (int, float):
            try:
                value = convert(value)
                break
            except ValueError:
                continue
        parsed[name] = value
    return canonical_workload_args(parsed)


def make_workload(name: str, **kwargs) -> Workload:
    """Instantiate a registered workload by name (case-insensitive).

    ``kwargs`` are the workload's tuning knobs (``KvWorkload(skew=...)``
    and friends); an unknown name raises :class:`ValueError` listing
    every registered workload.
    """
    cls = WORKLOADS.get(name.lower() if isinstance(name, str) else name)
    if cls is None:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        )
    return cls(**kwargs)


__all__ = [
    "Workload",
    "TtyEvent",
    "NetEvent",
    "PmakeWorkload",
    "MultpgmWorkload",
    "OracleWorkload",
    "KvWorkload",
    "NetserverWorkload",
    "WORKLOADS",
    "canonical_workload_args",
    "make_workload",
    "parse_workload_args",
    "register_workload",
]
