"""Netserver: connection arrivals driving streams + buffer-cache load.

The paper's machine ran its network functions on a dedicated CPU
(Section 2.2) but the trio of workloads barely exercises that path. This
workload models a file-serving network daemon: request arrivals land as
network interrupts *on the network CPU* (see
:meth:`repro.kernel.interrupts.Interrupts.network`), each taking the
session's ``streams_x`` lock in interrupt context before waking the
server process; the servers then read the request off the stream, serve
a Zipf-popular document through the buffer cache, and write the response
back through the same streams lock in process context.

That interrupt-vs-process tug-of-war over ``streams_x`` is precisely
the contention Table 11 could not show — and the hostile load the
IRQ-aware lockdep rules (``IRQ_SAFE_FAMILIES``) were built for.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.kernel.process import Image, ProcState
from repro.workloads import actions as A
from repro.workloads.base import NetEvent, Workload, preload_image
from repro.workloads.zipf import ZipfGenerator

_NS_BIN_INO = 540
_DOC_INO0 = 550

_DOC_BYTES = 256 * 1024

# Per-request protocol processing (parse, route, format response).
_REQ_COMPUTE = 20_000

# Request and response sizes on the stream (characters through the
# session's queue; the response body goes through the buffer cache).
_REQ_CHARS = 12
_RESP_CHARS = 48


class NetserverWorkload(Workload):
    """A network file server under interrupt-heavy arrivals.

    ``servers``         server processes (one stream session each)
    ``docs``            documents served (each 256 KB)
    ``skew``            Zipf exponent over document popularity
    ``arrivals_per_ms`` mean connection-arrival rate at the NIC
    ``read_bytes``      bytes of the document served per request
    """

    name = "netserver"

    def __init__(
        self,
        servers: int = 4,
        docs: int = 24,
        skew: float = 0.7,
        arrivals_per_ms: float = 3.0,
        read_bytes: int = 8192,
    ):
        super().__init__()
        servers = int(servers)
        docs = int(docs)
        skew = float(skew)
        arrivals_per_ms = float(arrivals_per_ms)
        read_bytes = int(read_bytes)
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        if docs < 1:
            raise ValueError(f"docs must be >= 1, got {docs}")
        if skew < 0.0:
            raise ValueError(f"skew must be >= 0, got {skew}")
        if arrivals_per_ms <= 0.0:
            raise ValueError(
                f"arrivals_per_ms must be > 0, got {arrivals_per_ms}"
            )
        if not 1 <= read_bytes <= _DOC_BYTES:
            raise ValueError(
                f"read_bytes must be in [1, {_DOC_BYTES}], got {read_bytes}"
            )
        self.servers = servers
        self.docs = docs
        self.skew = skew
        self.arrivals_per_ms = arrivals_per_ms
        self.read_bytes = read_bytes
        self.ns_image = Image("netserver", text_pages=64, file_ino=_NS_BIN_INO)
        # session -> requests served, filled by the server drivers.
        self.served: Dict[int, int] = {}
        self._rng = None
        self._zipf: Dict[int, ZipfGenerator] = {}

    # ------------------------------------------------------------------
    def setup(self, kernel, rng) -> None:
        self._rng = rng
        fs = kernel.fs
        fs.register_file(
            _NS_BIN_INO, self.ns_image.text_pages * 4096, "netserver"
        )
        for d in range(self.docs):
            fs.register_file(_DOC_INO0 + d, _DOC_BYTES, f"doc{d}.dat")
        preload_image(kernel, self.ns_image)
        for s in range(self.servers):
            self._zipf[s] = ZipfGenerator(
                self.docs, self.skew, seed=rng.randrange(1 << 30)
            )
            self.served[s] = 0
            process = kernel.create_process(
                f"netd-{s}", self.ns_image, self.server_driver(s)
            )
            process.data_pages = 40
            process.state = ProcState.RUNNABLE
            kernel.scheduler.run_queue.append(process)

    # ------------------------------------------------------------------
    # One server: accept, read request, serve document, respond
    # ------------------------------------------------------------------
    def server_driver(self, session: int) -> Iterator:
        rng = self._rng
        gen = self._zipf[session]
        while True:
            # Block until the NIC delivers a request on this session
            # (the network interrupt took streams_x to queue it).
            yield A.TermWait(session)
            yield A.Compute(_REQ_COMPUTE, write_fraction=0.3)
            doc = gen.sample()
            span = _DOC_BYTES - self.read_bytes
            offset = rng.randrange(span // 1024 + 1) * 1024 if span else 0
            yield A.ReadFile(_DOC_INO0 + doc, offset, self.read_bytes)
            # Response back down the stream: streams_x again, now from
            # process context against the interrupt-side acquires.
            yield A.TermWrite(session, _RESP_CHARS)
            self.served[session] += 1

    # ------------------------------------------------------------------
    # Connection arrivals at the NIC (delivered on the network CPU)
    # ------------------------------------------------------------------
    def net_events(self, horizon_cycles: int, rng) -> List[NetEvent]:
        """Poisson-ish request arrivals, round-robined over sessions."""
        cycles_per_ms = 1e6 / 30.0
        events: List[NetEvent] = []
        t = rng.uniform(0.1, 1.0) * cycles_per_ms
        arrival = 0
        while t < horizon_cycles:
            session = arrival % self.servers
            events.append((int(t), session, _REQ_CHARS))
            arrival += 1
            t += rng.expovariate(self.arrivals_per_ms) * cycles_per_ms
        return events

    def baseline_frames(self) -> int:
        return 5600
