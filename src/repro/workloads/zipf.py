"""Seedable table-based Zipf generator for skewed workloads.

Modelled on the Midas synthetic-application harness (SNIPPETS.md): a
``zipf_table_distribution`` builds one cumulative table for a keyspace,
and every worker thread samples from its own generator instance so the
draw sequences are independent and reproducible. Rank ``k`` (0-based)
is drawn with probability proportional to ``1 / (k + 1) ** skew``;
``skew=0`` degenerates to the uniform distribution and larger skews
concentrate traffic on the low ranks (``skew=0.99`` is the classic
YCSB/Midas setting).

The table is O(keys) floats and is shared across generator instances
via a per-process memo, so a workload with many workers builds it once.
"""

from __future__ import annotations

import bisect
import random
from typing import Dict, List, Tuple

# (keys, skew) -> cumulative distribution table, shared by all
# generators in the process; the table is immutable once built.
_table_memo: Dict[Tuple[int, float], List[float]] = {}


def zipf_table_distribution(keys: int, skew: float) -> List[float]:
    """The cumulative distribution table over ``keys`` ranks.

    ``table[k]`` is ``P(rank <= k)``; the last entry is exactly 1.0.
    Ranks are 0-based and ordered most-popular first.
    """
    if keys < 1:
        raise ValueError(f"keys must be >= 1, got {keys}")
    if skew < 0.0:
        raise ValueError(f"skew must be >= 0, got {skew}")
    memo_key = (keys, float(skew))
    table = _table_memo.get(memo_key)
    if table is not None:
        return table
    weights = [1.0 / float(k + 1) ** skew for k in range(keys)]
    total = sum(weights)
    table = []
    acc = 0.0
    for w in weights:
        acc += w
        table.append(acc / total)
    table[-1] = 1.0  # guard against accumulated rounding
    _table_memo[memo_key] = table
    return table


def zipf_pmf(keys: int, skew: float) -> List[float]:
    """The analytic probability mass function over the ranks."""
    table = zipf_table_distribution(keys, skew)
    pmf = [table[0]]
    for k in range(1, keys):
        pmf.append(table[k] - table[k - 1])
    return pmf


class ZipfGenerator:
    """One worker's sampling stream over a shared Zipf table.

    Each worker gets its own instance (Midas's per-thread generators):
    the cumulative table is shared, the :class:`random.Random` stream is
    private, so draw sequences are independent yet fully determined by
    ``seed``.
    """

    def __init__(self, keys: int, skew: float, seed: int):
        self.keys = keys
        self.skew = float(skew)
        self._table = zipf_table_distribution(keys, skew)
        self._rng = random.Random(seed)

    def sample(self) -> int:
        """Draw one 0-based rank (0 is the most popular)."""
        u = self._rng.random()
        return bisect.bisect_right(self._table, u)

    def pmf(self, rank: int) -> float:
        """Analytic ``P(rank)`` for the frequency-sanity tests."""
        if rank == 0:
            return self._table[0]
        return self._table[rank] - self._table[rank - 1]
