"""Multpgm: a multiprogrammed timesharing load (Section 3).

"Multpgm is a timesharing load composed of a numeric program plus Pmake
and five screen edit sessions. All programs are started at the same
time. The numeric program, called Mp3d, is a 3-D particle simulator ...
run using four processes and 50000 particles."

The ed sessions are fed by a simulated typist: "bursts of 1-15
characters at a time ... at the most, 25 characters can be sent every
five seconds", with think times compressed to our traced window the same
way compute is (DESIGN.md).

Mp3d's processes share the particle arrays and guard cells with
user-level spinlocks; with more runnable processes than CPUs, lock
holders get preempted and waiters fall into the library's
20-spins-then-``sginap`` backoff — producing the sginap-dominated OS
operation mix of Figure 2.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List

from repro.kernel.process import Image, ProcState
from repro.workloads import actions as A
from repro.workloads.base import TtyEvent, Workload, map_shared_region, preload_image
from repro.workloads.pmake import PmakeWorkload

_MP3D_BIN_INO = 300
_ED_BIN_INO = 301
_ED_FILE_INO0 = 310

_NUM_MP3D = 4
_NUM_ED = 5

# Mp3d shared region: 50,000 particles x ~36 bytes ~ 1.8 MB -> 440 pages.
_MP3D_SHARED_PAGES = 440
_MP3D_SHARED_VBASE = 0x110   # above the user I/O staging pages
_NUM_CELL_LOCKS = 6

# Barrier semaphores.
_SEM_ARRIVE = 1
_SEM_GO = 2

# Compressed per-step compute (cycles).
_MP3D_CELL_WORK = 4000
_MP3D_CELLS_PER_STEP = 400
_ED_PROCESS_CYCLES = 9000

# Typist model: compressed think time between bursts (ms of sim time).
_ED_BURST_GAP_MS = (6.0, 28.0)


class MultpgmWorkload(Workload):
    """Mp3d + Pmake + five ed sessions."""

    name = "multpgm"

    def __init__(self) -> None:
        super().__init__()
        self.pmake = PmakeWorkload()
        self.mp3d_image = Image("mp3d", text_pages=30, file_ino=_MP3D_BIN_INO)
        self.ed_image = Image("ed", text_pages=12, file_ino=_ED_BIN_INO)
        self._rng = None

    # ------------------------------------------------------------------
    def setup(self, kernel, rng) -> None:
        self._rng = rng
        # The embedded Pmake (its own files + make process).
        self.pmake.setup(kernel, rng)
        fs = kernel.fs
        fs.register_file(_MP3D_BIN_INO, self.mp3d_image.text_pages * 4096, "mp3d")
        fs.register_file(_ED_BIN_INO, self.ed_image.text_pages * 4096, "ed")
        for s in range(_NUM_ED):
            fs.register_file(_ED_FILE_INO0 + s, 30 * 1024, f"edit{s}.txt")

        preload_image(kernel, self.mp3d_image)
        preload_image(kernel, self.ed_image)
        mp3d_procs = []
        for p in range(_NUM_MP3D):
            process = kernel.create_process(
                f"mp3d-{p}", self.mp3d_image, self.mp3d_driver(p)
            )
            process.data_pages = _MP3D_SHARED_VBASE - 0x100 + _MP3D_SHARED_PAGES + 8
            process.state = ProcState.RUNNABLE
            kernel.scheduler.run_queue.append(process)
            mp3d_procs.append(process)
        map_shared_region(kernel, mp3d_procs, _MP3D_SHARED_VBASE, _MP3D_SHARED_PAGES)

        for s in range(_NUM_ED):
            process = kernel.create_process(
                f"ed-{s}", self.ed_image, self.ed_driver(s)
            )
            process.data_pages = 12
            process.state = ProcState.RUNNABLE
            kernel.scheduler.run_queue.append(process)

    # ------------------------------------------------------------------
    # Mp3d: move particles cell by cell under cell locks; barrier per step
    # ------------------------------------------------------------------
    def mp3d_driver(self, rank: int) -> Iterator:
        rng = self._rng
        for _step in itertools.count():
            for _ in range(_MP3D_CELLS_PER_STEP):
                cell = rng.randrange(_NUM_CELL_LOCKS)
                yield A.UserLockAcquire(cell)
                yield A.Compute(_MP3D_CELL_WORK, write_fraction=0.5)
                yield A.UserLockRelease(cell)
                yield A.Compute(_MP3D_CELL_WORK // 5, write_fraction=0.2)
            # Barrier: everyone Vs arrive; rank 0 collects and releases.
            yield A.SemOp(_SEM_ARRIVE, +1)
            if rank == 0:
                for _ in range(_NUM_MP3D):
                    yield A.SemOp(_SEM_ARRIVE, -1)
                for _ in range(_NUM_MP3D - 1):
                    yield A.SemOp(_SEM_GO, +1)
            else:
                yield A.SemOp(_SEM_GO, -1)

    # ------------------------------------------------------------------
    # ed: wait for typed input, search/edit, echo to the screen
    # ------------------------------------------------------------------
    def ed_driver(self, session: int) -> Iterator:
        rng = self._rng
        ino = _ED_FILE_INO0 + session
        yield A.OpenFile(ino)
        yield A.ReadFile(ino, 0, 8 * 1024)   # load the file
        for n in itertools.count():
            yield A.TermWait(session)
            # Character search / text editing over the buffer.
            yield A.Compute(int(_ED_PROCESS_CYCLES * (0.5 + rng.random())),
                            write_fraction=0.3)
            yield A.TermWrite(session, rng.randint(4, 30))
            if n % 12 == 11:
                yield A.WriteFile(ino, rng.randrange(8) * 2048, 2048)  # :w

    # ------------------------------------------------------------------
    def tty_events(self, horizon_cycles: int, rng) -> List[TtyEvent]:
        """The simulated typists: bursts of 1-15 characters."""
        cycles_per_ms = 1e6 / 30.0
        events: List[TtyEvent] = []
        for session in range(_NUM_ED):
            t = rng.uniform(1.0, 8.0) * cycles_per_ms
            while t < horizon_cycles:
                nchars = rng.randint(1, 15)
                events.append((int(t), session, nchars))
                gap_ms = rng.uniform(*_ED_BURST_GAP_MS)
                t += gap_ms * cycles_per_ms
        return events

    def baseline_frames(self) -> int:
        return 5900
