"""Oracle: a scaled-down TP1 database benchmark (Section 3).

"Oracle is a scaled down instance of the TP1 database benchmark running
on an Oracle database ... 10 branches, 100 tellers, 10,000 accounts, and
achieves 59 transactions per second." The database fits in main memory,
so data-file reads mostly hit the SGA buffer pool; the redo log is
written at every commit.

Modelled as a set of server processes sharing a large SGA (shared
memory) plus a log-writer, all running the same large database binary —
the big instruction working set is what makes *Dispap* dominate Oracle's
OS instruction misses (Figure 4) and keeps its I-miss-rate curve falling
all the way to 1 MB caches (Figure 6). The database "requests allocation
of pages itself and manages its own file activity", so kernel
expensive-TLB activity is minimal and the I/O shows up as read/write
system calls (Section 4.2.3).
"""

from __future__ import annotations

import itertools
from typing import Iterator

from repro.kernel.process import Image, ProcState
from repro.workloads import actions as A
from repro.workloads.base import Workload, map_shared_region, preload_image

_ORACLE_BIN_INO = 400
_DATAFILE_INO0 = 410     # one per branch
_NUM_DATAFILES = 10      # the 10 branches
_REDO_INO = 430

_NUM_SERVERS = 5

# The SGA buffer pool: in-memory database -> a few MB shared.
_SGA_PAGES = 700
_SGA_VBASE = 0x110

# Latches guarding the buffer pool / library cache.
_NUM_LATCHES = 24
_COMMIT_SEM = 9

# Per-transaction compute (compressed, cycles): TP1 reads/updates the
# teller, branch and account rows, then commits.
_TXN_COMPUTE = 42_000
_DATAFILE_BYTES = 1024 * 1024


class OracleWorkload(Workload):
    """The TP1 database.

    ``scale="scaled"`` is the paper's measured configuration (10
    branches / 100 tellers / 10,000 accounts, sized to fit in memory);
    ``scale="standard"`` approximates the standard-sized benchmark the
    paper's companion report re-ran to confirm "the characteristics of
    the OS misses ... are qualitatively the same" (Section 3): ten times
    the branches and a larger SGA/datafile footprint.
    """

    name = "oracle"

    def __init__(self, num_servers: int = _NUM_SERVERS, scale: str = "scaled"):
        super().__init__()
        if scale not in ("scaled", "standard"):
            raise ValueError("scale must be 'scaled' or 'standard'")
        self.scale = scale
        self.num_servers = num_servers
        self.num_datafiles = _NUM_DATAFILES if scale == "scaled" else 40
        self.sga_pages = _SGA_PAGES if scale == "scaled" else 1000
        # A database binary measured in megabytes: 290 text pages.
        self.oracle_image = Image("oracle", text_pages=290,
                                  file_ino=_ORACLE_BIN_INO)
        self._rng = None

    # ------------------------------------------------------------------
    def setup(self, kernel, rng) -> None:
        self._rng = rng
        fs = kernel.fs
        fs.register_file(
            _ORACLE_BIN_INO, self.oracle_image.text_pages * 4096, "oracle"
        )
        for b in range(self.num_datafiles):
            fs.register_file(_DATAFILE_INO0 + b, _DATAFILE_BYTES, f"branch{b}.dbf")
        fs.register_file(_REDO_INO, 0, "redo.log")

        preload_image(kernel, self.oracle_image)
        servers = []
        for s in range(self.num_servers):
            process = kernel.create_process(
                f"oracle-{s}", self.oracle_image, self.server_driver(s)
            )
            process.data_pages = _SGA_VBASE - 0x100 + self.sga_pages + 16
            process.state = ProcState.RUNNABLE
            kernel.scheduler.run_queue.append(process)
            servers.append(process)
        map_shared_region(kernel, servers, _SGA_VBASE, self.sga_pages)
        lgwr = kernel.create_process(
            "oracle-lgwr", self.oracle_image, self.lgwr_driver()
        )
        lgwr.data_pages = _SGA_VBASE - 0x100 + self.sga_pages + 16
        lgwr.state = ProcState.RUNNABLE
        kernel.scheduler.run_queue.append(lgwr)
        # lgwr shares the SGA too.
        for i in range(self.sga_pages):
            vpage = _SGA_VBASE + i
            frame = servers[0].data_frames[vpage]
            lgwr.data_frames[vpage] = frame
            kernel.share_frame(frame)

    # ------------------------------------------------------------------
    # One server process: TP1 transactions forever
    # ------------------------------------------------------------------
    def server_driver(self, rank: int) -> Iterator:
        rng = self._rng
        for txn in itertools.count():
            # Buffer-pool latches around row updates (teller, branch,
            # account); short hold times, occasionally contended.
            for _ in range(3):
                latch = rng.randrange(_NUM_LATCHES)
                yield A.UserLockAcquire(1000 + latch)
                yield A.Compute(_TXN_COMPUTE // 6, write_fraction=0.45)
                yield A.UserLockRelease(1000 + latch)
            yield A.Compute(_TXN_COMPUTE // 2, write_fraction=0.25)
            if rng.random() < 0.65:
                # Data-file read through the kernel (the DB manages its
                # own file activity). The benchmark fits in memory, so
                # reads concentrate on a hot region and mostly hit the
                # buffer cache.
                branch = rng.randrange(self.num_datafiles)
                hot = rng.random() < 0.95
                limit = 16 * 1024 if hot else _DATAFILE_BYTES
                yield A.ReadFile(
                    _DATAFILE_INO0 + branch,
                    rng.randrange(limit // 2048) * 2048,
                    2048,
                )
            # Commit: wake the log writer.
            yield A.SemOp(_COMMIT_SEM, +1)
            if rng.random() < 0.10:
                # Client round-trip: the benchmark driver thinks briefly
                # (the scaled benchmark paces at 59 TPS, Section 3).
                yield A.SleepFor(rng.uniform(1.0, 3.0))
            if txn % 40 == 39:
                yield A.Misc("time")

    # ------------------------------------------------------------------
    # The log writer: group-commits the redo log
    # ------------------------------------------------------------------
    def lgwr_driver(self) -> Iterator:
        offset = 0
        for i in itertools.count():
            yield A.SemOp(_COMMIT_SEM, -1)
            yield A.Compute(3000, write_fraction=0.4)
            if i % 8 == 7:
                # Group commit: one redo write covers several commits.
                yield A.WriteFile(_REDO_INO, offset, 2048)
                offset += 2048

    def baseline_frames(self) -> int:
        return 5400
