"""Pmake: a parallel make of 56 C files (Section 3).

"Pmake is a parallel make of 56 C files with, on average, 480 lines of
code each. The files are compiled such that, at the most, 8 jobs can run
at once (-J flag is 8). While this workload has some compute-intensive
periods when the optimizing phase of the compiler runs, it usually
exhibits heavy I/O activity."

Model: a ``make`` coordinator forks compile jobs (fork → exec of the
compiler image → open/read the source and shared headers → parse →
optimize → write the object file → exit), keeping up to 8 in flight.

Time scale: the real compile of a 480-line file takes seconds on a
33 MHz R3000; we compress compute phases (documented in DESIGN.md) so a
sub-second traced window sees the same steady-state *mix* of operations
the paper traced over 1-2 minutes.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.kernel.process import Image, ProcState
from repro.workloads import actions as A
from repro.workloads.base import Workload, preload_image

NUM_FILES = 56
MAX_JOBS = 8

# Inode numbering.
_MAKE_BIN_INO = 10
_CC_BIN_INO = 11
_CC1_BIN_INO = 12
_AS_BIN_INO = 13
_HEADER_INO0 = 20          # 6 shared headers
_NUM_HEADERS = 6
_SRC_INO0 = 40             # 56 sources
_TMP_INO0 = 240            # per-job pipeline temporaries (two per job)
_OBJ_INO0 = 140            # 56 objects

_SRC_BYTES = 17 * 1024     # ~480 lines x ~35 chars
_HEADER_BYTES = 24 * 1024
_OBJ_BYTES = 9 * 1024

# Compressed compute budgets (cycles).
_PARSE_CYCLES = 560_000
_OPTIMIZE_CYCLES = 950_000
_CODEGEN_CYCLES = 560_000
_MAKE_THINK_CYCLES = 50_000


class PmakeWorkload(Workload):
    """The parallel compile."""

    name = "pmake"

    def __init__(self, num_files: int = NUM_FILES, max_jobs: int = MAX_JOBS):
        super().__init__()
        self.num_files = num_files
        self.max_jobs = max_jobs
        self.make_image = Image("make", text_pages=18, file_ino=_MAKE_BIN_INO)
        # The compile pipeline: driver/front end, optimizer, assembler.
        # Separate binaries whose images come and go is what recycles
        # code frames and produces the Inval misses of Table 2/Figure 6.
        self.cc_image = Image("cc", text_pages=26, file_ino=_CC_BIN_INO)
        self.cc1_image = Image("cc1", text_pages=36, file_ino=_CC1_BIN_INO)
        self.as_image = Image("as", text_pages=14, file_ino=_AS_BIN_INO)
        self._rng = None

    # ------------------------------------------------------------------
    def setup(self, kernel, rng) -> None:
        self._rng = rng
        fs = kernel.fs
        fs.register_file(_MAKE_BIN_INO, self.make_image.text_pages * 4096, "make")
        fs.register_file(_CC_BIN_INO, self.cc_image.text_pages * 4096, "cc")
        fs.register_file(_CC1_BIN_INO, self.cc1_image.text_pages * 4096, "cc1")
        fs.register_file(_AS_BIN_INO, self.as_image.text_pages * 4096, "as")
        for h in range(_NUM_HEADERS):
            fs.register_file(_HEADER_INO0 + h, _HEADER_BYTES, f"hdr{h}.h")
        for i in range(self.num_files):
            size = int(_SRC_BYTES * (0.6 + 0.8 * rng.random()))
            fs.register_file(_SRC_INO0 + i, size, f"src{i}.c")
            fs.register_file(_OBJ_INO0 + i, 0, f"src{i}.o")
            fs.register_file(_TMP_INO0 + 2 * i, 0, f"cc{i}.i")
            fs.register_file(_TMP_INO0 + 2 * i + 1, 0, f"cc{i}.s")
        preload_image(kernel, self.make_image)
        make = kernel.create_process("make", self.make_image, self.make_driver())
        make.data_pages = 12
        make.state = ProcState.RUNNABLE
        kernel.scheduler.run_queue.append(make)

    # ------------------------------------------------------------------
    # The make coordinator
    # ------------------------------------------------------------------
    def make_driver(self) -> Iterator:
        running: List = []
        for i in range(self.num_files):
            while len(running) >= self.max_jobs:
                wait = A.WaitChild(running.pop(0))
                yield wait
            yield A.Misc("stat")           # dependency check
            yield A.Compute(_MAKE_THINK_CYCLES)
            fork = A.Fork(f"cc-{i}", self._job_factory(i))
            yield fork
            running.append(fork.child)
        while running:
            yield A.WaitChild(running.pop(0))
        # All compiles done: make prints a summary and lingers.
        yield A.WriteFile(_OBJ_INO0, 0, 256)
        while True:
            yield A.SleepFor(50.0)
            yield A.Misc("time")

    def _job_factory(self, index: int):
        def factory() -> Iterator:
            return self.compile_job(index)
        return factory

    # ------------------------------------------------------------------
    # One compile job: sh-ish fork child that execs the compiler
    # ------------------------------------------------------------------
    def compile_job(self, index: int) -> Iterator:
        rng = self._rng
        src_ino = _SRC_INO0 + index
        obj_ino = _OBJ_INO0 + index
        # A little post-fork shell work in the parent's COW image: this
        # is what produces the copy-on-write page updates of Table 7.
        yield A.Compute(6000 + rng.randrange(40_000), write_fraction=0.5)
        yield A.Exec(self.cc_image, data_pages=12)
        # Front end: read the source and the shared headers, parsing as
        # the text streams in.
        yield A.OpenFile(src_ino)
        chunk = 4096
        offset = 0
        read = A.ReadFile(src_ino, 0, chunk)
        yield read
        headers = rng.sample(range(_NUM_HEADERS), 3)
        for h in headers:
            yield A.OpenFile(_HEADER_INO0 + h)
            yield A.ReadFile(_HEADER_INO0 + h, 0, _HEADER_BYTES // 2)
            yield A.Compute(int(_PARSE_CYCLES * (0.5 + rng.random()) / 6))
        for offset in range(chunk, _SRC_BYTES, chunk):
            yield A.ReadFile(src_ino, offset, chunk)
            yield A.Compute(int(_PARSE_CYCLES * (0.5 + rng.random()) / 4))
        # The front end leaves the preprocessed source in a temp file
        # for the optimizer (the classic cc | cc1 | as pipeline through
        # /tmp), then the optimizer hands assembly to the assembler.
        tmp_i = _TMP_INO0 + 2 * index
        tmp_s = _TMP_INO0 + 2 * index + 1
        yield A.OpenFile(tmp_i)
        for off in range(0, 3 * 4096, 2048):
            yield A.WriteFile(tmp_i, off, 2048)
        # Middle end: exec the optimizer, grow the heap, crunch.
        yield A.Exec(self.cc1_image, data_pages=14)
        yield A.OpenFile(tmp_i)
        yield A.ReadFile(tmp_i, 0, 3 * 4096)
        yield A.Brk(22)
        yield A.Compute(int(_OPTIMIZE_CYCLES * (0.4 + 1.3 * rng.random())),
                        write_fraction=0.35)
        yield A.OpenFile(tmp_s)
        for off in range(0, 2 * 4096, 2048):
            yield A.WriteFile(tmp_s, off, 2048)
        # Back end: exec the assembler and emit the object file.
        yield A.Exec(self.as_image, data_pages=10)
        yield A.OpenFile(tmp_s)
        yield A.ReadFile(tmp_s, 0, 2 * 4096)
        yield A.OpenFile(obj_ino)
        for offset in range(0, _OBJ_BYTES, 2048):
            yield A.Compute(_CODEGEN_CYCLES // 5)
            yield A.WriteFile(obj_ino, offset, 2048)
        yield A.Misc("signal")  # tell make we are done (SIGCHLD path)
    # driver end -> implicit exit()

    def baseline_frames(self) -> int:
        return 5900
