"""Workload base class and engine-facing configuration."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List, Tuple

# (cycles, session_id, nchars): one burst of simulated typing arriving at
# a terminal (Section 3's "program that simulates a user typing").
TtyEvent = Tuple[int, int, int]

# (cycles, session_id, nchars): one request arriving at the NIC; the
# network CPU delivers it as a network interrupt that queues the bytes
# on the session's stream (repro.workloads.netserver).
NetEvent = Tuple[int, int, int]


@dataclass
class EngineConfig:
    """User-mode engine knobs (see DESIGN.md on sampled app references).

    ``touches_per_kcycle`` is the sampled application reference rate: how
    many cache-block touches the engine issues per 1000 user cycles. The
    full R3000 rate would be ~250/kcycle at block granularity; sampling
    keeps Python runs tractable while preserving cache residency
    behaviour. It scales application miss counts and is a per-workload
    calibration constant (Table 1's OS/total miss split).
    """

    touches_per_kcycle: float = 40.0
    slice_ms: float = 0.25          # max user execution per engine slice
    idle_step_ms: float = 0.05      # idle-loop poll period
    text_touch_fraction: float = 0.55  # share of touches that are ifetches
    jump_probability: float = 0.02  # working-set random jump per touch
    hot_text_fraction: float = 0.5  # of each text page that is hot
    hot_data_fraction: float = 0.6  # of each data page that is hot


def preload_image(kernel, image) -> None:
    """Make a program image resident before tracing starts.

    The paper traced a system that had been running for a while: the
    binaries of long-running programs (the database, the simulator, the
    editors, make itself) were long since paged in. Setup-time loading
    has no reference traffic; demand paging still covers everything
    exec'd afterwards (the compiler image under Pmake) and anything the
    page stealer later evicts.
    """
    from repro.kernel.vm import USE_TEXT

    if image.frames:
        return
    image.frames = []
    for _ in range(image.text_pages):
        frame = kernel.memsys.memory.alloc_frame()
        kernel.vm.frame_use[frame] = (USE_TEXT, image.name)
        image.frames.append(frame)


def map_shared_region(kernel, processes, first_vpage: int, npages: int) -> None:
    """Map a shared-memory segment into several address spaces.

    Frames are allocated directly (setup time, no reference traffic) and
    refcounted so teardown and page steal behave; writes to these pages
    by different CPUs produce application *Sharing* coherence traffic,
    which is what makes Mp3d and the Oracle SGA behave like the paper's
    versions.
    """
    from repro.kernel.vm import USE_DATA

    if not processes:
        return
    owner = processes[0]
    for i in range(npages):
        vpage = first_vpage + i
        frame = kernel.memsys.memory.alloc_frame()
        kernel.vm.frame_use[frame] = (USE_DATA, (owner.pid, vpage))
        for idx, process in enumerate(processes):
            process.data_frames[vpage] = frame
            if idx > 0:
                kernel.share_frame(frame)


class Workload(ABC):
    """One of the paper's three workloads."""

    name: str = "abstract"

    def __init__(self) -> None:
        self.engine_config = EngineConfig()

    @abstractmethod
    def setup(self, kernel, rng) -> None:
        """Create images, files and the initial processes."""

    def tty_events(self, horizon_cycles: int, rng) -> List[TtyEvent]:
        """Terminal input schedule (empty unless the workload has one)."""
        return []

    def net_events(self, horizon_cycles: int, rng) -> List[NetEvent]:
        """Network-arrival schedule, delivered on the network CPU."""
        return []

    def baseline_frames(self) -> int:
        """Frames held by untraced residents (see VmTuning)."""
        return 5120
