"""Profile-driven kernel code layout.

The paper (Section 4.2.1) observes that OS self-interference misses
concentrate in a few routines whose addresses conflict in the
direct-mapped I-cache, and suggests relaying out the code — noting that
loop-oriented techniques (McFarling) don't fit "commonly-executed OS
paths [that] often contain a long series of loop-less operations".

This optimizer implements the suggestion for whole routines:

1. **Heat** comes from a measured trace: OS I-misses per routine
   (``TraceAnalysis.imiss_by_routine``) — routines that miss are the
   ones fighting for cache sets.
2. Routines are placed hottest-first. Each placement scans candidate
   offsets within the I-cache image and picks the one minimizing the
   heat-weighted overlap with already-placed hot routines; the absolute
   address is the first 64 KB region of kernel text where that offset
   is free.
3. Cold routines are packed first-fit into the remaining space.

The result is a drop-in :class:`~repro.kernel.layout.KernelLayout` spec:
run a workload, optimize, re-run with the new layout, and the Dispos
spikes of Figure 5 shrink (see ``examples/layout_optimization.py`` and
``benchmarks/test_bench_ablation_layout.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.kernel.layout import ICACHE_BYTES, KernelLayout
from repro.memsys.memory import KTEXT_BASE, KTEXT_SIZE

# Candidate-offset granularity when scanning for a low-conflict slot.
_OFFSET_STEP = 1024
# Routines with at least this share of total heat are placed carefully.
_HOT_SHARE = 0.002


@dataclass
class LayoutPlan:
    """An optimized placement, convertible to a KernelLayout."""

    spec: List[Tuple[str, int, Optional[int]]]
    hot_routines: List[str]
    predicted_cost_before: float
    predicted_cost_after: float

    def build(self) -> KernelLayout:
        return KernelLayout(spec=self.spec)

    def summary(self) -> str:
        saved = self.predicted_cost_before - self.predicted_cost_after
        pct = (
            100.0 * saved / self.predicted_cost_before
            if self.predicted_cost_before else 0.0
        )
        return (
            f"{len(self.hot_routines)} hot routines repacked; predicted "
            f"conflict cost {self.predicted_cost_before:.0f} -> "
            f"{self.predicted_cost_after:.0f} (-{pct:.0f}%)"
        )


def routine_heat_from_analysis(analysis) -> Dict[str, float]:
    """Heat profile: OS I-misses per routine from a trace analysis."""
    return dict(analysis.imiss_by_routine)


def conflict_cost(layout: KernelLayout, heat: Dict[str, float]) -> float:
    """Heat-weighted pairwise overlap of the layout's routines.

    The metric the optimizer minimizes: for each pair of routines whose
    cache-set spans overlap, the overlap size times the smaller heat
    (misses happen at the rate the colder of two fighters runs).
    """
    hot = [
        (layout.routine(name), h) for name, h in heat.items()
        if h > 0 and name in layout.routines
    ]
    total = 0.0
    for i, (a, ha) in enumerate(hot):
        spans_a = a._set_spans(ICACHE_BYTES)
        for b, hb in hot[i + 1:]:
            overlap = 0
            for a0, a1 in spans_a:
                for b0, b1 in b._set_spans(ICACHE_BYTES):
                    overlap += max(0, min(a1, b1) - max(a0, b0))
            if overlap:
                total += overlap * min(ha, hb)
    return total


class _OffsetMap:
    """Heat already placed at each cache-image offset bucket."""

    def __init__(self) -> None:
        buckets = ICACHE_BYTES // _OFFSET_STEP
        self.heat = [0.0] * buckets

    def cost_at(self, offset: int, size: int) -> float:
        first = offset // _OFFSET_STEP
        last = (offset + size - 1) // _OFFSET_STEP
        total = 0.0
        for bucket in range(first, last + 1):
            total += self.heat[bucket % len(self.heat)]
        return total

    def add(self, offset: int, size: int, heat: float) -> None:
        first = offset // _OFFSET_STEP
        last = (offset + size - 1) // _OFFSET_STEP
        for bucket in range(first, last + 1):
            self.heat[bucket % len(self.heat)] += heat


class _AddressSpace:
    """Free-interval tracking over the kernel text region."""

    def __init__(self) -> None:
        self.placed: List[Tuple[int, int]] = []  # (base, end), sorted

    def fits(self, base: int, size: int) -> bool:
        if base < KTEXT_BASE or base + size > KTEXT_BASE + KTEXT_SIZE:
            return False
        return all(
            base + size <= b or e <= base for b, e in self.placed
        )

    def place(self, base: int, size: int) -> None:
        self.placed.append((base, base + size))
        self.placed.sort()

    def first_fit(self, size: int, align: int = 64) -> int:
        cursor = KTEXT_BASE
        for base, end in self.placed:
            aligned = -(-cursor // align) * align
            if aligned + size <= base:
                return aligned
            cursor = max(cursor, end)
        aligned = -(-cursor // align) * align
        if aligned + size > KTEXT_BASE + KTEXT_SIZE:
            raise ValueError("kernel text exhausted during layout")
        return aligned

    def at_offset(self, offset: int, size: int) -> Optional[int]:
        """First absolute address with ``base % ICACHE == offset``."""
        regions = KTEXT_SIZE // ICACHE_BYTES + 1
        for region in range(regions):
            base = KTEXT_BASE + region * ICACHE_BYTES + offset
            if self.fits(base, size):
                return base
        return None


def optimize_layout(
    layout: KernelLayout,
    heat: Dict[str, float],
    hot_share: float = _HOT_SHARE,
) -> LayoutPlan:
    """Repack the kernel text to minimize hot-routine conflicts."""
    total_heat = sum(heat.values()) or 1.0
    routines = sorted(
        layout.routines.values(), key=lambda r: -heat.get(r.name, 0.0)
    )
    hot = [
        r for r in routines
        if heat.get(r.name, 0.0) / total_heat >= hot_share
    ]
    cold = [r for r in routines if r not in hot]

    space = _AddressSpace()
    offsets = _OffsetMap()
    spec: List[Tuple[str, int, Optional[int]]] = []

    for routine in hot:
        best_offset = None
        best_cost = None
        for offset in range(0, ICACHE_BYTES, _OFFSET_STEP):
            if space.at_offset(offset, routine.size) is None:
                continue
            cost = offsets.cost_at(offset, routine.size)
            if best_cost is None or cost < best_cost:
                best_cost = cost
                best_offset = offset
                if cost == 0.0:
                    break
        if best_offset is None:  # pragma: no cover - text far from full
            base = space.first_fit(routine.size)
            best_offset = base % ICACHE_BYTES
        else:
            base = space.at_offset(best_offset, routine.size)
        space.place(base, routine.size)
        offsets.add(best_offset, routine.size, heat.get(routine.name, 0.0))
        spec.append((routine.name, routine.size, base - KTEXT_BASE))

    for routine in cold:
        base = space.first_fit(routine.size)
        space.place(base, routine.size)
        spec.append((routine.name, routine.size, base - KTEXT_BASE))

    plan = LayoutPlan(
        spec=spec,
        hot_routines=[r.name for r in hot],
        predicted_cost_before=conflict_cost(layout, heat),
        predicted_cost_after=0.0,
    )
    plan.predicted_cost_after = conflict_cost(plan.build(), heat)
    return plan
