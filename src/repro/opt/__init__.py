"""Optimizations the paper proposes but leaves unevaluated.

- :mod:`repro.opt.codelayout` — profile-driven OS code layout
  ("purposely laying out the basic blocks in the OS object code to
  avoid cache conflicts", Section 4.2.1). The paper notes existing
  loop-oriented techniques don't fit loop-less OS paths and declares new
  ones "beyond the scope of this paper"; this module builds one and the
  ablation experiments measure it.

The other proposed optimizations live as kernel tuning flags:
cache-affinity scheduling (`KernelTuning.affinity_scheduling`),
block-operation cache bypass / prefetch
(`KernelTuning.blockop_cache_bypass` / `.blockop_prefetch`), and
distributed run queues (`KernelTuning.num_run_queues`).
"""

from repro.opt.codelayout import (
    LayoutPlan,
    conflict_cost,
    optimize_layout,
    routine_heat_from_analysis,
)

__all__ = [
    "LayoutPlan",
    "conflict_cost",
    "optimize_layout",
    "routine_heat_from_analysis",
]
