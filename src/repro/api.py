"""Stable public API for the reproduction.

Everything a user (or an in-repo test/example/benchmark) needs lives
behind this one module, so the internal layout — ``repro.sim._session``,
``repro.experiments._base`` and friends — can keep moving without
breaking callers:

>>> from repro import api
>>> run = api.run("pmake", horizon_ms=5.0, warmup_ms=30.0)
>>> report = api.report("pmake", horizon_ms=5.0, warmup_ms=30.0)

:func:`run` and :func:`report` validate their keyword arguments against
:class:`RunSettings` plus the :class:`Simulation` constructor, so a typo
fails loudly instead of being swallowed. For checked runs pass
``check=True`` (or ``check="deep"`` for block-sweep attribution) and
inspect ``run.check_report``.

The old deep-import paths (``repro.sim.session``,
``repro.experiments.base``) still work but emit ``DeprecationWarning``.
"""

from __future__ import annotations

import inspect
from typing import Optional, Union

from repro.analysis.report import AnalysisReport, analyze_trace
from repro.common.params import MachineParams
from repro.experiments._base import Exhibit, ExperimentContext, RunSettings
from repro.kernel.kernel import KernelTuning
from repro.sanitizers import CheckReport, CheckRegistry
from repro.sim._session import Simulation, TracedRun, run_traced_workload
from repro.sim.runcache import RunCache
from repro.workloads import Workload, make_workload

__all__ = [
    "AnalysisReport",
    "CheckReport",
    "CheckRegistry",
    "Exhibit",
    "ExperimentContext",
    "KernelTuning",
    "MachineParams",
    "RunCache",
    "RunSettings",
    "Simulation",
    "TracedRun",
    "Workload",
    "analyze_trace",
    "make_workload",
    "report",
    "run",
    "run_traced_workload",
]

# Keywords run()/report() accept: the RunSettings fields (horizon_ms,
# warmup_ms, seed, check) plus the Simulation constructor's keyword
# parameters (params, tuning, layout, ...). Computed once at import.
_SETTINGS_FIELDS = frozenset(RunSettings.__dataclass_fields__)
_SIM_KWARGS = frozenset(
    name
    for name, p in inspect.signature(Simulation.__init__).parameters.items()
    if name not in ("self", "workload", "seed")
    and p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
)
_VALID_KWARGS = _SETTINGS_FIELDS | _SIM_KWARGS


def _validate(settings: dict) -> None:
    unknown = sorted(set(settings) - _VALID_KWARGS)
    if unknown:
        raise TypeError(
            f"unknown setting(s) {', '.join(map(repr, unknown))}; "
            f"valid names: {', '.join(sorted(_VALID_KWARGS))}"
        )


def run(
    workload: Union[str, Workload],
    *,
    check: Union[bool, str] = False,
    **settings,
) -> TracedRun:
    """Build a machine, run ``workload`` under the monitor, return the run.

    Accepts the :class:`RunSettings` fields (``horizon_ms``,
    ``warmup_ms``, ``seed``) and the :class:`Simulation` keyword
    arguments (``params``, ``tuning``, ``layout``, ...); anything else
    raises :class:`TypeError` listing the valid names. With
    ``check=True`` the sanitizers run and ``run.check_report`` carries
    their verdict; ``check="deep"`` additionally attributes
    ``dread_block``/``dwrite_block`` sweeps to kernel structures.
    """
    _validate(settings)
    defaults = RunSettings()
    horizon = settings.pop("horizon_ms", defaults.horizon_ms)
    warmup = settings.pop("warmup_ms", defaults.warmup_ms)
    seed = settings.pop("seed", defaults.seed)
    if check:
        settings["check"] = check
    return run_traced_workload(
        workload, horizon_ms=horizon, warmup_ms=warmup, seed=seed, **settings
    )


def report(
    workload: Union[str, Workload],
    *,
    run: Optional[TracedRun] = None,
    **settings,
) -> AnalysisReport:
    """Run ``workload`` (or analyze ``run``) and return its analysis.

    Same keyword validation as :func:`run`; pass an existing
    :class:`TracedRun` as ``run=`` to analyze it without re-simulating.
    """
    if run is None:
        _validate(settings)
        check = settings.pop("check", False)
        run = _run(workload, check=check, **settings)
    return analyze_trace(run)


_run = run  # `report` shadows the name with its keyword argument
