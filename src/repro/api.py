"""Stable public API for the reproduction.

Everything a user (or an in-repo test/example/benchmark) needs lives
behind this one module, so the internal layout — ``repro.sim._session``,
``repro.experiments._base`` and friends — can keep moving without
breaking callers:

>>> from repro import api
>>> run = api.run("pmake", horizon_ms=5.0, warmup_ms=30.0)
>>> report = api.report("pmake", horizon_ms=5.0, warmup_ms=30.0)

Machine selection is first-class: pass ``machine="cpus16"`` (a preset
name from :mod:`repro.machines`, or a full :class:`MachineParams`) to
:func:`run`, :func:`report` and :func:`exhibit` to target a scaled
geometry; the 4D/340 (``"4d340"``) stays the default and keys
identically to pre-preset runs. Bare ``params=`` still works but emits
``DeprecationWarning`` — it bypasses the preset registry and therefore
the named cache keys.

:func:`run` and :func:`report` validate their keyword arguments against
:class:`RunSettings` plus the :class:`Simulation` constructor, so a typo
fails loudly instead of being swallowed. For checked runs pass
``check=True`` (or ``check="deep"`` for block-sweep attribution) and
inspect ``run.check_report``.

:func:`exhibit` builds (or loads, cache-warm) one of the paper's
tables/figures; ``exhibit("table1").to_json()`` is byte-identical to
what ``repro.service`` serves for ``GET /exhibits/table1``.

Engine fidelity tiers: pass ``fidelity="mixed"`` (optionally with
``fast_forward=N`` atomic references) to fast-forward warmup on the
functional-first engine and hand off to the detailed engine at the
measurement seam; ``fidelity="atomic"`` runs functional-first
throughout (no stall accounting, incompatible with ``check=``, raises
:class:`UnsupportedFidelityError`). :func:`validate_workload` measures
the mixed tier's statistical drift against a detailed run and asserts
the configured error bounds.

The old deep-import paths (``repro.sim.session``,
``repro.experiments.base``) still work but emit ``DeprecationWarning``.
"""

from __future__ import annotations

import inspect
import warnings
from typing import Optional, Union

from repro.analysis.report import AnalysisReport, analyze_trace
from repro.common.params import MachineParams
from repro.experiments._base import Exhibit, ExperimentContext, RunSettings
from repro.fidelity import (
    FIDELITY_LEVELS,
    UnsupportedFidelityError,
    resolve_fast_forward,
    resolve_fidelity,
)
from repro.fidelity.checkpoint import EngineCheckpoint
from repro.fidelity.validate import FidelityValidation, validate_workload
from repro.kernel.kernel import KernelTuning
from repro.machines import (
    MACHINES,
    MachinePreset,
    machine_for_cpus,
    resolve_machine,
)
from repro.sanitizers import CheckReport, CheckRegistry
from repro.service import (
    JobManager,
    MetricsRegistry,
    ServiceApp,
    ServiceConfig,
    serve,
)
from repro.sim._session import Simulation, TracedRun, run_traced_workload
from repro.sim.runcache import RunCache
from repro.workloads import Workload, make_workload

__all__ = [
    "AnalysisReport",
    "CheckReport",
    "CheckRegistry",
    "EngineCheckpoint",
    "Exhibit",
    "ExperimentContext",
    "FIDELITY_LEVELS",
    "FidelityValidation",
    "JobManager",
    "KernelTuning",
    "MACHINES",
    "MachineParams",
    "MachinePreset",
    "MetricsRegistry",
    "RunCache",
    "RunSettings",
    "ServiceApp",
    "ServiceConfig",
    "Simulation",
    "TracedRun",
    "UnsupportedFidelityError",
    "Workload",
    "analyze_trace",
    "exhibit",
    "list_exhibits",
    "machine_for_cpus",
    "make_workload",
    "report",
    "resolve_fast_forward",
    "resolve_fidelity",
    "resolve_machine",
    "run",
    "run_traced_workload",
    "serve",
    "validate_workload",
]

# Keywords run()/report() accept: the RunSettings fields (horizon_ms,
# warmup_ms, seed, check) plus the Simulation constructor's keyword
# parameters (params, tuning, layout, ...). Computed once at import.
_SETTINGS_FIELDS = frozenset(RunSettings.__dataclass_fields__)
_SIM_KWARGS = frozenset(
    name
    for name, p in inspect.signature(Simulation.__init__).parameters.items()
    if name not in ("self", "workload", "seed")
    and p.kind in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
)
_VALID_KWARGS = _SETTINGS_FIELDS | _SIM_KWARGS


def _validate(settings: dict) -> None:
    unknown = sorted(set(settings) - _VALID_KWARGS)
    if unknown:
        raise TypeError(
            f"unknown setting(s) {', '.join(map(repr, unknown))}; "
            f"valid names: {', '.join(sorted(_VALID_KWARGS))}"
        )


def run(
    workload: Union[str, Workload],
    *,
    check: Union[bool, str] = False,
    machine: Optional[Union[str, MachineParams]] = None,
    **settings,
) -> TracedRun:
    """Build a machine, run ``workload`` under the monitor, return the run.

    Accepts the :class:`RunSettings` fields (``horizon_ms``,
    ``warmup_ms``, ``seed``) and the :class:`Simulation` keyword
    arguments (``machine``, ``tuning``, ``layout``, ...); anything else
    raises :class:`TypeError` listing the valid names. ``machine`` is a
    preset name from :data:`MACHINES` (``"cpus16"``) or a full
    :class:`MachineParams`; bare ``params=`` is deprecated. With
    ``check=True`` the sanitizers run and ``run.check_report`` carries
    their verdict; ``check="deep"`` additionally attributes
    ``dread_block``/``dwrite_block`` sweeps to kernel structures.
    """
    _validate(settings)
    if "params" in settings:
        warnings.warn(
            "params= is deprecated; pass machine= "
            "(a preset name or MachineParams)",
            DeprecationWarning,
            stacklevel=2,
        )
        if machine is not None:
            raise TypeError("pass machine= or params=, not both")
    if machine is not None:
        settings["machine"] = machine
    defaults = RunSettings()
    horizon = settings.pop("horizon_ms", defaults.horizon_ms)
    warmup = settings.pop("warmup_ms", defaults.warmup_ms)
    seed = settings.pop("seed", defaults.seed)
    # An analysis-only knob: a traced run is shard-independent.
    settings.pop("shards", None)
    if check:
        settings["check"] = check
    return run_traced_workload(
        workload, horizon_ms=horizon, warmup_ms=warmup, seed=seed, **settings
    )


def report(
    workload: Union[str, Workload],
    *,
    run: Optional[TracedRun] = None,
    machine: Optional[Union[str, MachineParams]] = None,
    **settings,
) -> AnalysisReport:
    """Run ``workload`` (or analyze ``run``) and return its analysis.

    Same keyword validation (and ``machine=`` selection) as :func:`run`;
    pass an existing :class:`TracedRun` as ``run=`` to analyze it
    without re-simulating. ``shards=N`` parallelizes the analysis pass
    (byte-identical output).
    """
    shards = settings.pop("shards", 1)
    if run is None:
        _validate(settings)
        check = settings.pop("check", False)
        run = _run(workload, check=check, machine=machine, **settings)
    elif machine is not None:
        raise TypeError("machine= selects a run; pass either run= or machine=")
    return analyze_trace(run, shards=shards)


_run = run  # `report` shadows the name with its keyword argument


def exhibit(
    exhibit_id: str,
    *,
    ctx: Optional[ExperimentContext] = None,
    cache: Optional[Union[RunCache, bool]] = None,
    **settings,
) -> Exhibit:
    """Build (or load, cache-warm) one of the paper's exhibits.

    Accepts the :class:`RunSettings` fields as keyword arguments —
    including ``machine="cpus16"`` (a preset name or
    :class:`MachineParams`) to build the exhibit on a scaled geometry;
    an unknown name raises :class:`TypeError`. By default the persistent
    run cache is used, so a previously built exhibit loads in
    milliseconds — the same storage and key the ``repro-experiments``
    CLI and ``repro.service`` use, which is what makes
    ``exhibit("table1").to_json()`` byte-identical to the service's
    ``GET /exhibits/table1`` body. Pass ``cache=False`` to force a
    fresh build, or share a prepared ``ctx`` across calls.
    """
    from repro.experiments.registry import run_experiment

    if ctx is None:
        valid = frozenset(RunSettings.__dataclass_fields__)
        unknown = sorted(set(settings) - valid)
        if unknown:
            raise TypeError(
                f"unknown setting(s) {', '.join(map(repr, unknown))}; "
                f"valid names: {', '.join(sorted(valid))}"
            )
        if cache is None or cache is True:
            cache = RunCache()
        elif cache is False:
            cache = RunCache(enabled=False)
        ctx = ExperimentContext(RunSettings(**settings), cache=cache)
    elif settings or cache is not None:
        raise TypeError("pass either ctx= or settings/cache, not both")
    return run_experiment(exhibit_id, ctx)


def list_exhibits() -> "list[dict]":
    """Machine-readable metadata for every registered exhibit."""
    from repro.experiments.registry import list_exhibit_metadata

    return list_exhibit_metadata()
