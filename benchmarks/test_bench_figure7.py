"""Benchmark regenerating Figure 7: OS data-miss classification."""

from benchmarks.conftest import run_exhibit


def test_bench_figure7(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "figure7")
    assert exhibit.rows
