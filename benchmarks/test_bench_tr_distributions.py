"""Benchmark regenerating the companion report's per-invocation
distributions for all three workloads."""

from benchmarks.conftest import run_exhibit


def test_bench_tr_distributions(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "tr-distributions")
    assert exhibit.rows
