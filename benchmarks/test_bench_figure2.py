"""Benchmark regenerating Figure 2: OS operation frequencies in Multpgm."""

from benchmarks.conftest import run_exhibit


def test_bench_figure2(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "figure2")
    assert exhibit.rows
