"""Benchmark regenerating Figure 11: lock contention vs CPU count.

Runs Multpgm on 1-8 CPU machines; by far the most expensive exhibit.
"""

from benchmarks.conftest import run_exhibit


def test_bench_figure11(benchmark, ctx):
    exhibit = run_exhibit(benchmark, ctx, "figure11")
    assert exhibit.rows
