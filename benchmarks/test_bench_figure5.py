"""Benchmark regenerating Figure 5: self-interference I-misses by routine (Pmake)."""

from benchmarks.conftest import run_exhibit


def test_bench_figure5(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "figure5")
    assert exhibit.rows
