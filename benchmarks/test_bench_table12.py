"""Benchmark regenerating Table 12: per-lock statistics in Pmake."""

from benchmarks.conftest import run_exhibit


def test_bench_table12(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "table12")
    assert exhibit.rows
