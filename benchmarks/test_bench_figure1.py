"""Benchmark regenerating Figure 1: the basic OS/application interleaving pattern."""

from benchmarks.conftest import run_exhibit


def test_bench_figure1(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "figure1")
    assert exhibit.rows
