"""Benchmark regenerating Table 8: high-level OS operation vocabulary."""

from benchmarks.conftest import run_exhibit


def test_bench_table8(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "table8")
    assert exhibit.rows
