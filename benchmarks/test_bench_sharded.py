"""Benchmark the sharded, vectorized analysis core against the serial path.

Four measurements on the same pmake trace: the full postprocessing pass
(serial vs sharded) and the Figure 6 cache sweep (scalar vs
vectorized+pooled). The serial numbers are the denominators of the
speedup the sharded core exists for; both variants are asserted
result-identical before timing, so a benchmark can never "win" by
drifting from the reference output.

``REPRO_BENCH_SHARDS`` (default 4) sets the shard count.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.report import analyze_trace
from repro.analysis.sweeps import simulate_icache_sweep
from repro.sim.sharded import simulate_icache_sweep_sharded

SHARDS = int(os.environ.get("REPRO_BENCH_SHARDS", "4"))


@pytest.fixture(scope="module")
def pmake_run(warm_ctx):
    return warm_ctx.run("pmake")


@pytest.fixture(scope="module")
def imiss_stream(warm_ctx):
    return warm_ctx.report("pmake").analysis.imiss_stream


def _entries(run) -> int:
    return sum(len(segment.entries) for segment in run.trace.segments)


def _time_analysis(benchmark, run, shards: int):
    result = benchmark.pedantic(
        analyze_trace, args=(run,), kwargs={"shards": shards},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["trace_entries"] = _entries(run)
    benchmark.extra_info["refs_per_sec"] = round(
        _entries(run) / benchmark.stats.stats.median
    )
    benchmark.extra_info["shards"] = shards
    return result


def test_bench_analysis_serial(benchmark, pmake_run):
    report = _time_analysis(benchmark, pmake_run, shards=1)
    assert report.analysis.measured_ticks > 0


def test_bench_analysis_sharded(benchmark, pmake_run):
    serial = analyze_trace(pmake_run).analysis
    report = _time_analysis(benchmark, pmake_run, shards=SHARDS)
    assert report.analysis == serial  # identical or the timing is void


def test_bench_sweep_serial(benchmark, imiss_stream):
    points = benchmark.pedantic(
        simulate_icache_sweep, args=(imiss_stream, 4), rounds=1, iterations=1
    )
    benchmark.extra_info["stream_entries"] = len(imiss_stream)
    assert points


def test_bench_sweep_sharded(benchmark, imiss_stream):
    serial = simulate_icache_sweep(imiss_stream, 4)
    points = benchmark.pedantic(
        simulate_icache_sweep_sharded, args=(imiss_stream, 4),
        rounds=1, iterations=1,
    )
    benchmark.extra_info["stream_entries"] = len(imiss_stream)
    assert points == serial  # identical or the timing is void
