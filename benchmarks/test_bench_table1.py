"""Benchmark regenerating Table 1: workload characteristics (time split,
miss shares, stall fractions)."""

from benchmarks.conftest import run_exhibit


def test_bench_table1(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "table1")
    assert exhibit.rows
