"""Benchmark regenerating Table 11: kernel lock inventory."""

from benchmarks.conftest import run_exhibit


def test_bench_table11(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "table11")
    assert exhibit.rows
