"""Benchmark regenerating the code-layout ablation (Section 4.2.1 proposal)."""

from benchmarks.conftest import run_exhibit


def test_bench_ablation_layout(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "ablation-layout")
    assert exhibit.rows
