"""Compare two pytest-benchmark JSON files; fail on regressions.

The CI perf-trajectory gate: ``bench-baseline`` runs the benchmark
suite, writes ``BENCH_<sha>.json``, and compares it against the
committed ``BENCH_baseline.json``::

    python benchmarks/compare.py BENCH_baseline.json BENCH_new.json

Exit status 1 when any benchmark regressed beyond the threshold
(default 25%).

CI runners and developer machines differ in raw speed, so the default
comparison is **relative**: each benchmark's median is first normalized
by the geometric mean of the medians common to both files, which
cancels a uniform host-speed factor and leaves per-benchmark *shape*
changes — exactly what a code change alters. ``--absolute`` compares
raw medians instead (meaningful when both files come from the same
host, e.g. the same CI runner class).

Benchmarks present only in the candidate are reported but never fail
the gate (new benchmarks must be able to land together with their
code). Benchmarks present in the baseline but **missing from the
candidate** are a hard failure listing the missing names — a silently
shrinking suite would let regressions hide by deleting their gate; use
``--allow-missing`` when a benchmark is intentionally removed (land it
together with the regenerated baseline).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Dict


def load_medians(path: str) -> Dict[str, float]:
    with open(path) as fh:
        payload = json.load(fh)
    medians = {}
    for bench in payload.get("benchmarks", []):
        medians[bench["name"]] = float(bench["stats"]["median"])
    return medians


def normalize(medians: Dict[str, float], common) -> Dict[str, float]:
    """Divide every median by the geometric mean over ``common`` names."""
    logs = [math.log(medians[name]) for name in common if medians[name] > 0]
    if not logs:
        return dict(medians)
    scale = math.exp(sum(logs) / len(logs))
    return {name: value / scale for name, value in medians.items()}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed BENCH_baseline.json")
    parser.add_argument("candidate", help="freshly generated benchmark JSON")
    parser.add_argument(
        "--threshold", type=float, default=0.25, metavar="FRACTION",
        help="allowed slowdown before failing (default: 0.25 = 25%%)",
    )
    parser.add_argument(
        "--absolute", action="store_true",
        help="compare raw medians instead of host-normalized ones",
    )
    parser.add_argument(
        "--allow-missing", action="store_true",
        help="tolerate benchmarks present in the baseline but absent "
             "from the candidate (intentional suite removals)",
    )
    args = parser.parse_args(argv)

    base = load_medians(args.baseline)
    cand = load_medians(args.candidate)
    common = sorted(set(base) & set(cand))
    if not common:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 1
    if not args.absolute:
        base = normalize(base, common)
        cand = normalize(cand, common)

    mode = "absolute" if args.absolute else "host-normalized"
    print(f"{len(common)} common benchmark(s), {mode} medians, "
          f"threshold +{args.threshold:.0%}")
    regressions = []
    width = max(len(name) for name in common)
    for name in common:
        ratio = cand[name] / base[name] if base[name] else float("inf")
        flag = ""
        if ratio > 1 + args.threshold:
            flag = "  REGRESSION"
            regressions.append((name, ratio))
        elif ratio < 1 / (1 + args.threshold):
            flag = "  improved"
        print(f"  {name:<{width}}  {ratio:7.2f}x{flag}")
    for name in sorted(set(cand) - set(base)):
        print(f"  {name:<{width}}  (new, not gated)")
    missing = sorted(set(base) - set(cand))
    for name in missing:
        note = "(removed from suite)" if args.allow_missing \
            else "MISSING from candidate"
        print(f"  {name:<{width}}  {note}")

    failed = False
    if regressions:
        failed = True
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed beyond "
              f"+{args.threshold:.0%}:", file=sys.stderr)
        for name, ratio in regressions:
            print(f"  {name}: {ratio:.2f}x slower", file=sys.stderr)
    if missing and not args.allow_missing:
        failed = True
        print(f"\nFAIL: {len(missing)} baseline benchmark(s) missing from "
              f"the candidate run:", file=sys.stderr)
        for name in missing:
            print(f"  {name}", file=sys.stderr)
        print("  (pass --allow-missing if the removal is intentional)",
              file=sys.stderr)
    if failed:
        return 1
    print("\nOK: no benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
