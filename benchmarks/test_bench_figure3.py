"""Benchmark regenerating Figure 3: per-invocation miss/cycle distributions (Pmake)."""

from benchmarks.conftest import run_exhibit


def test_bench_figure3(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "figure3")
    assert exhibit.rows
