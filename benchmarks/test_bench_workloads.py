"""Benchmark the server workloads: kv, netserver, and the skew sweep.

The two simulations gate the new workload family's cost through the
perf-trajectory comparison (a regression in the interrupt-delivery or
buffer-cache paths shows up here first); the figure-skew benchmark
times the whole sweep the way the exhibit benchmarks time the paper's
tables.
"""

from __future__ import annotations

from benchmarks.conftest import SETTINGS, run_exhibit
from repro.api import Simulation


def _simulate(name: str):
    sim = Simulation(name, seed=SETTINGS.seed)
    return sim.run(SETTINGS.horizon_ms, warmup_ms=SETTINGS.warmup_ms)


def test_bench_sim_kv(benchmark):
    run = benchmark.pedantic(_simulate, args=("kv",), rounds=1, iterations=1)
    bcache = run.kernel.fs.buffer_cache
    assert bcache.hits + bcache.misses > 0


def test_bench_sim_netserver(benchmark):
    run = benchmark.pedantic(
        _simulate, args=("netserver",), rounds=1, iterations=1
    )
    from repro.common.types import InterruptKind

    assert run.kernel.interrupts.counts[InterruptKind.NETWORK] > 0


def test_bench_figure_skew(benchmark, ctx):
    exhibit = run_exhibit(benchmark, ctx, "figure-skew")
    assert [row[0] for row in exhibit.rows] == \
        ["kv", "kv", "kv", "kv", "netserver"]
