"""Benchmark the CPU-scaling sweep: Multpgm across machine presets.

The sweep is pinned to the 4- and 8-CPU geometries so the benchmark
times a fixed amount of work regardless of the default ladder top.
"""

from benchmarks.conftest import run_exhibit


def test_bench_scaling_8cpu(benchmark, ctx, monkeypatch):
    monkeypatch.setenv("REPRO_SCALING_CPUS", "4 8")
    exhibit = run_exhibit(benchmark, ctx, "figure-scaling")
    assert [row[1] for row in exhibit.rows] == [4, 8]
