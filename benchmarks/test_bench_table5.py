"""Benchmark regenerating Table 5: migration misses by operation."""

from benchmarks.conftest import run_exhibit


def test_bench_table5(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "table5")
    assert exhibit.rows
