"""Benchmark regenerating Figure 9: OS misses by high-level operation."""

from benchmarks.conftest import run_exhibit


def test_bench_figure9(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "figure9")
    assert exhibit.rows
