"""Shared state for the benchmark harness.

One :class:`ExperimentContext` is shared by every benchmark, so the
three workload simulations run once per session; each exhibit benchmark
then measures its own derivation work and prints the paper-vs-measured
table it regenerates.
"""

from __future__ import annotations

import pytest

from repro.experiments.base import ExperimentContext, RunSettings

# Full-quality settings (the same steady-state window the experiments
# CLI uses by default).
SETTINGS = RunSettings(horizon_ms=80.0, warmup_ms=500.0, seed=7)


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(SETTINGS)


@pytest.fixture(scope="session")
def warm_ctx(ctx) -> ExperimentContext:
    """Context with all three workloads already simulated and analyzed,
    so individual benchmarks time only their own derivation."""
    for workload in ("pmake", "multpgm", "oracle"):
        ctx.report(workload)
    return ctx


def run_exhibit(benchmark, ctx, exhibit_id: str):
    """Benchmark one exhibit build and print its table."""
    from repro.experiments.registry import run_experiment

    exhibit = benchmark.pedantic(
        run_experiment, args=(exhibit_id, ctx), rounds=1, iterations=1
    )
    print()
    print(exhibit.to_text())
    return exhibit
