"""Shared state for the benchmark harness.

One :class:`ExperimentContext` is shared by every benchmark, so the
three workload simulations run once per session; each exhibit benchmark
then measures its own derivation work and prints the paper-vs-measured
table it regenerates.
"""

from __future__ import annotations

import os

import pytest

from repro.api import ExperimentContext, RunSettings
from repro.sim.runcache import RunCache

# Full-quality settings (the same steady-state window the experiments
# CLI uses by default). CI shrinks the window via the environment to
# keep its benchmark-artifact job fast; local runs keep full fidelity.
_DEFAULTS = RunSettings()
SETTINGS = RunSettings(
    horizon_ms=float(os.environ.get("REPRO_BENCH_HORIZON_MS", _DEFAULTS.horizon_ms)),
    warmup_ms=float(os.environ.get("REPRO_BENCH_WARMUP_MS", _DEFAULTS.warmup_ms)),
    seed=_DEFAULTS.seed,
)


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    # The persistent run cache means only the first benchmark session on
    # a given source tree pays for the three base simulations; exhibit
    # derivation (what the benchmarks measure) is never cached, so the
    # numbers stay honest. REPRO_NO_CACHE=1 opts out.
    context = ExperimentContext(SETTINGS, cache=RunCache())
    # Exhibit-level disk hits would short-circuit the very work the
    # benchmarks exist to time; keep this context run/report-only.
    context.cache_exhibits = False
    return context


@pytest.fixture(scope="session")
def warm_ctx(ctx) -> ExperimentContext:
    """Context with all three workloads already simulated and analyzed,
    so individual benchmarks time only their own derivation."""
    for workload in ("pmake", "multpgm", "oracle"):
        ctx.report(workload)
    return ctx


def run_exhibit(benchmark, ctx, exhibit_id: str):
    """Benchmark one exhibit build and print its table."""
    from repro.experiments.registry import run_experiment

    exhibit = benchmark.pedantic(
        run_experiment, args=(exhibit_id, ctx), rounds=1, iterations=1
    )
    print()
    print(exhibit.to_text())
    return exhibit
