"""Benchmark regenerating Figure 6: I-cache size/associativity sweep."""

from benchmarks.conftest import run_exhibit


def test_bench_figure6(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "figure6")
    assert exhibit.rows
