"""Benchmark regenerating Table 9: OS miss stall decomposition."""

from benchmarks.conftest import run_exhibit


def test_bench_table9(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "table9")
    assert exhibit.rows
