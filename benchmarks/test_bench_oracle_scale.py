"""Benchmark regenerating the Section 3 footnote: scaled vs
standard-sized TP1 have qualitatively the same OS miss profile."""

from benchmarks.conftest import run_exhibit


def test_bench_oracle_scale(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "oracle-scale")
    assert exhibit.rows
