"""Benchmark regenerating Table 10: synchronization stall, sync bus vs cached RMW."""

from benchmarks.conftest import run_exhibit


def test_bench_table10(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "table10")
    assert exhibit.rows
