"""Benchmark regenerating the block-op bypass/prefetch ablation (Section 4.2.2)."""

from benchmarks.conftest import run_exhibit


def test_bench_ablation_blockops(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "ablation-blockops")
    assert exhibit.rows
