"""Benchmark regenerating Figure 8: Sharing misses by kernel data structure."""

from benchmarks.conftest import run_exhibit


def test_bench_figure8(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "figure8")
    assert exhibit.rows
