"""Benchmark regenerating Figure 10: OS-induced application misses (Ap_dispos)."""

from benchmarks.conftest import run_exhibit


def test_bench_figure10(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "figure10")
    assert exhibit.rows
