"""Benchmark the engine tiers: detailed vs atomic vs mixed simulation.

These gate the fidelity subsystem's raison d'être through the
perf-trajectory comparison: the atomic tier's median must keep its
distance below the detailed tier's, or ``benchmarks/compare.py`` flags
the shape change. ``test_atomic_is_faster`` additionally asserts the
ordering outright, so the speedup is checked even where the baseline
comparison is skipped.
"""

from __future__ import annotations

import time

from benchmarks.conftest import SETTINGS
from repro.api import Simulation


def _simulate(fidelity: str):
    sim = Simulation("pmake", seed=SETTINGS.seed, fidelity=fidelity)
    return sim.run(SETTINGS.horizon_ms, warmup_ms=SETTINGS.warmup_ms)


def test_bench_sim_detailed(benchmark):
    run = benchmark.pedantic(
        _simulate, args=("detailed",), rounds=1, iterations=1
    )
    assert run.fidelity == "detailed"


def test_bench_sim_atomic(benchmark):
    run = benchmark.pedantic(
        _simulate, args=("atomic",), rounds=1, iterations=1
    )
    assert run.fidelity == "atomic"
    assert run.fast_forwarded_refs > 0


def test_bench_sim_mixed(benchmark):
    run = benchmark.pedantic(
        _simulate, args=("mixed",), rounds=1, iterations=1
    )
    assert run.fidelity == "mixed"
    assert run.fast_forwarded_refs > 0


def test_atomic_is_faster():
    """The functional-first tier must beat the detailed engine on the
    same window — gated here, not just claimed in the docs."""
    start = time.perf_counter()
    _simulate("detailed")
    detailed_s = time.perf_counter() - start
    start = time.perf_counter()
    _simulate("atomic")
    atomic_s = time.perf_counter() - start
    assert atomic_s < detailed_s, (
        f"atomic {atomic_s:.3f}s not faster than detailed {detailed_s:.3f}s"
    )
