"""Benchmark regenerating Table 7: copied/cleared block size distribution (Pmake)."""

from benchmarks.conftest import run_exhibit


def test_bench_table7(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "table7")
    assert exhibit.rows
