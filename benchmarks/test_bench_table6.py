"""Benchmark regenerating Table 6: block-operation misses and stall."""

from benchmarks.conftest import run_exhibit


def test_bench_table6(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "table6")
    assert exhibit.rows
