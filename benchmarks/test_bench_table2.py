"""Benchmark regenerating Table 2: the miss-class taxonomy, observed end to end."""

from benchmarks.conftest import run_exhibit


def test_bench_table2(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "table2")
    assert exhibit.rows
