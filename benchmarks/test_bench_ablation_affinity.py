"""Benchmark regenerating the affinity-scheduling ablation (Section 4.2.2)."""

from benchmarks.conftest import run_exhibit


def test_bench_ablation_affinity(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "ablation-affinity")
    assert exhibit.rows
