"""Benchmark regenerating Table 4: process-migration misses and stall."""

from benchmarks.conftest import run_exhibit


def test_bench_table4(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "table4")
    assert exhibit.rows
