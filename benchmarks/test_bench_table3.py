"""Benchmark regenerating Table 3: kernel structure inventory at paper sizes."""

from benchmarks.conftest import run_exhibit


def test_bench_table3(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "table3")
    assert exhibit.rows
