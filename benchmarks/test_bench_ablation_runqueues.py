"""Benchmark regenerating the distributed run-queue ablation (Section 6)."""

from benchmarks.conftest import run_exhibit


def test_bench_ablation_runqueues(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "ablation-runqueues")
    assert exhibit.rows
