"""Benchmark regenerating Figure 4: OS instruction-miss classification."""

from benchmarks.conftest import run_exhibit


def test_bench_figure4(benchmark, warm_ctx):
    exhibit = run_exhibit(benchmark, warm_ctx, "figure4")
    assert exhibit.rows
