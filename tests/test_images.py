"""Image lifecycle: System V text release and frame recycling."""

import pytest

from repro.common.types import Mode
from repro.kernel.process import Image, ProcState
from repro.workloads.base import preload_image
from tests.test_kernel_core import dummy_driver, make_kernel


@pytest.fixture
def env():
    kernel, cpus = make_kernel()
    kernel.fs.register_file(50, 8 * 4096, "prog")
    kernel.fs.register_file(51, 4 * 4096, "other")
    return kernel, cpus


class TestTextRelease:
    def test_exit_of_last_user_frees_text(self, env):
        kernel, cpus = env
        image = Image("prog", text_pages=4, file_ino=50)
        preload_image(kernel, image)
        process = kernel.create_process("p", image, dummy_driver())
        kernel.current[0] = process
        process.state = ProcState.RUNNING
        frames = list(image.frames)
        free_before = kernel.memsys.memory.free_frame_count()
        kernel.syscalls.exit(cpus[0], process)
        assert all(f == -1 for f in image.frames)
        assert kernel.memsys.memory.free_frame_count() == free_before + 4
        # The freed frames are flagged as having contained code.
        assert set(frames) <= kernel.vm.frame_was_text

    def test_exit_with_sibling_keeps_text(self, env):
        kernel, cpus = env
        image = Image("prog", text_pages=4, file_ino=50)
        preload_image(kernel, image)
        a = kernel.create_process("a", image, dummy_driver())
        kernel.create_process("b", image, dummy_driver())
        kernel.current[0] = a
        a.state = ProcState.RUNNING
        kernel.syscalls.exit(cpus[0], a)
        assert all(f >= 0 for f in image.frames)
        assert image.refcount == 1

    def test_exec_away_releases_old_image(self, env):
        kernel, cpus = env
        old = Image("prog", text_pages=4, file_ino=50)
        new = Image("other", text_pages=4, file_ino=51)
        preload_image(kernel, old)
        process = kernel.create_process("p", old, dummy_driver())
        kernel.current[0] = process
        process.state = ProcState.RUNNING
        cpus[0].set_mode(Mode.USER)
        kernel.syscalls.exec(cpus[0], process, new, data_pages=4)
        assert all(f == -1 for f in old.frames)
        assert old.refcount == 0

    def test_reused_code_frame_flushes_icaches(self, env):
        kernel, cpus = env
        image = Image("prog", text_pages=1, file_ino=50)
        preload_image(kernel, image)
        process = kernel.create_process("p", image, dummy_driver())
        kernel.current[0] = process
        process.state = ProcState.RUNNING
        frame = image.frames[0]
        kernel.syscalls.exit(cpus[0], process)
        flushes = kernel.vm.stats_icache_flushes
        # Drain the FIFO until the code frame is reallocated.
        for _ in range(kernel.memsys.memory.free_frame_count()):
            if kernel.vm.alloc_frame(cpus[0], "data", None) == frame:
                break
        assert kernel.vm.stats_icache_flushes == flushes + 1

    def test_registry_tracks_images(self, env):
        kernel, _cpus = env
        image = Image("prog", text_pages=1, file_ino=50)
        kernel.create_process("p", image, dummy_driver())
        assert kernel.images["prog"] is image

    def test_release_noop_while_referenced(self, env):
        kernel, cpus = env
        image = Image("prog", text_pages=2, file_ino=50)
        preload_image(kernel, image)
        kernel.create_process("p", image, dummy_driver())
        assert kernel.release_image_if_dead(cpus[0], image) == 0
