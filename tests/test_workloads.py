"""Workload models: setup invariants and driver progression."""

import pytest

from repro.common.rng import substream
from repro.api import Simulation
from repro.workloads import WORKLOADS, make_workload
from repro.workloads.multpgm import MultpgmWorkload
from repro.workloads.oracle import OracleWorkload
from repro.workloads.pmake import PmakeWorkload


class TestFactory:
    def test_known_names(self):
        for name in ("pmake", "multpgm", "oracle"):
            assert make_workload(name).name == name

    def test_case_insensitive(self):
        assert make_workload("PMAKE").name == "pmake"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_workload("doom")

    def test_registry_complete(self):
        assert set(WORKLOADS) == {"pmake", "multpgm", "oracle"}


class TestPmakeSetup:
    @pytest.fixture(scope="class")
    def sim(self):
        return Simulation("pmake", seed=1)

    def test_56_sources_registered(self, sim):
        sources = [f for f in sim.kernel.fs.files.values()
                   if f.name.endswith(".c")]
        assert len(sources) == 56

    def test_make_process_created(self, sim):
        names = [p.name for p in sim.kernel.processes.values()]
        assert "make" in names

    def test_make_image_preloaded(self, sim):
        workload = sim.workload
        assert workload.make_image.resident()
        # The compiler is demand-paged, not preloaded.
        assert not workload.cc_image.resident()


class TestMultpgmSetup:
    @pytest.fixture(scope="class")
    def sim(self):
        return Simulation("multpgm", seed=1)

    def test_component_processes(self, sim):
        names = [p.name for p in sim.kernel.processes.values()]
        assert sum(1 for n in names if n.startswith("mp3d")) == 4
        assert sum(1 for n in names if n.startswith("ed")) == 5
        assert "make" in names  # the embedded Pmake

    def test_mp3d_shares_particle_pages(self, sim):
        mp3d = [p for p in sim.kernel.processes.values()
                if p.name.startswith("mp3d")]
        shared_vpage = 0x110
        frames = {p.data_frames[shared_vpage] for p in mp3d}
        assert len(frames) == 1
        assert sim.kernel.frame_shared(frames.pop())

    def test_tty_events_respect_horizon(self, sim):
        events = sim.workload.tty_events(10**7, substream(0, "tty"))
        assert events
        assert all(0 <= t < 10**7 for t, _sid, _n in events)
        assert all(1 <= n <= 15 for _t, _sid, n in events)  # paper bursts
        assert {sid for _t, sid, _n in events} == set(range(5))


class TestOracleSetup:
    @pytest.fixture(scope="class")
    def sim(self):
        return Simulation("oracle", seed=1)

    def test_servers_plus_lgwr(self, sim):
        names = [p.name for p in sim.kernel.processes.values()]
        assert sum(1 for n in names if n.startswith("oracle-")) >= 6
        assert "oracle-lgwr" in names

    def test_sga_shared_by_all(self, sim):
        procs = [p for p in sim.kernel.processes.values()]
        vpage = 0x110
        frames = {p.data_frames[vpage] for p in procs}
        assert len(frames) == 1

    def test_tp1_files(self, sim):
        dbf = [f for f in sim.kernel.fs.files.values()
               if f.name.endswith(".dbf")]
        assert len(dbf) == 10  # the 10 branches

    def test_big_binary(self, sim):
        assert sim.workload.oracle_image.text_pages * 4096 > 1024 * 1024


class TestDriversMakeProgress:
    @pytest.mark.parametrize("name", ["pmake", "multpgm", "oracle"])
    def test_syscalls_issued_within_short_run(self, name):
        sim = Simulation(name, seed=2)
        sim.run(8.0, warmup_ms=0.0)
        assert sim.kernel.os_invocations > 0
        assert sum(sim.kernel.syscalls.counts.values()) > 0
