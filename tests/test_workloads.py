"""Workload models: setup invariants and driver progression."""

import pytest

from repro.common.rng import substream
from repro.api import Simulation
from repro.workloads import (
    WORKLOADS, canonical_workload_args, make_workload, parse_workload_args,
    register_workload,
)
from repro.workloads.kv import KvWorkload
from repro.workloads.multpgm import MultpgmWorkload
from repro.workloads.netserver import NetserverWorkload
from repro.workloads.oracle import OracleWorkload
from repro.workloads.pmake import PmakeWorkload

ALL_WORKLOADS = ("pmake", "multpgm", "oracle", "kv", "netserver")


class TestFactory:
    def test_known_names(self):
        for name in ALL_WORKLOADS:
            assert make_workload(name).name == name

    def test_case_insensitive(self):
        assert make_workload("PMAKE").name == "pmake"

    def test_unknown_rejected_listing_all(self):
        with pytest.raises(ValueError) as excinfo:
            make_workload("doom")
        for name in ALL_WORKLOADS:
            assert name in str(excinfo.value)

    def test_registry_complete(self):
        assert set(WORKLOADS) == set(ALL_WORKLOADS)

    def test_kwargs_reach_the_workload(self):
        workload = make_workload("kv", skew=1.2, workers=3)
        assert workload.skew == 1.2
        assert workload.workers == 3

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError) as excinfo:
            register_workload("kv", KvWorkload)
        assert "already registered" in str(excinfo.value)

    def test_uppercase_registration_rejected(self):
        with pytest.raises(ValueError):
            register_workload("Doom", KvWorkload)


class TestWorkloadArgs:
    def test_canonical_sorts_and_stringifies_names(self):
        assert canonical_workload_args({"skew": 1.2, "keys": 64}) == (
            ("keys", 64), ("skew", 1.2),
        )

    def test_canonical_empty_forms(self):
        assert canonical_workload_args(None) == ()
        assert canonical_workload_args({}) == ()
        assert canonical_workload_args(()) == ()

    def test_canonical_accepts_pair_iterables(self):
        pairs = (("skew", 1.2), ("keys", 64))
        assert canonical_workload_args(pairs) == (
            ("keys", 64), ("skew", 1.2),
        )

    def test_parse_coerces_int_float_str(self):
        parsed = parse_workload_args(["keys=64", "skew=1.2", "mode=fast"])
        assert parsed == (("keys", 64), ("mode", "fast"), ("skew", 1.2))
        assert isinstance(parsed[0][1], int)
        assert isinstance(parsed[2][1], float)

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_workload_args(["skew"])
        with pytest.raises(ValueError):
            parse_workload_args(["=1.2"])

    def test_simulation_applies_args_by_name(self):
        sim = Simulation("kv", seed=1, workload_args=(("skew", 1.2),))
        assert sim.workload.skew == 1.2

    def test_simulation_rejects_args_with_instance(self):
        with pytest.raises(TypeError):
            Simulation(KvWorkload(), seed=1, workload_args=(("skew", 1.2),))

    def test_bad_knob_value_raises(self):
        with pytest.raises(ValueError):
            make_workload("kv", workers=0)
        with pytest.raises(ValueError):
            make_workload("kv", skew=-0.5)
        with pytest.raises(ValueError):
            make_workload("kv", get_fraction=1.5)
        with pytest.raises(ValueError):
            make_workload("netserver", servers=0)
        with pytest.raises(ValueError):
            make_workload("netserver", arrivals_per_ms=0.0)
        with pytest.raises(ValueError):
            make_workload("netserver", read_bytes=10**9)


class TestPmakeSetup:
    @pytest.fixture(scope="class")
    def sim(self):
        return Simulation("pmake", seed=1)

    def test_56_sources_registered(self, sim):
        sources = [f for f in sim.kernel.fs.files.values()
                   if f.name.endswith(".c")]
        assert len(sources) == 56

    def test_make_process_created(self, sim):
        names = [p.name for p in sim.kernel.processes.values()]
        assert "make" in names

    def test_make_image_preloaded(self, sim):
        workload = sim.workload
        assert workload.make_image.resident()
        # The compiler is demand-paged, not preloaded.
        assert not workload.cc_image.resident()


class TestMultpgmSetup:
    @pytest.fixture(scope="class")
    def sim(self):
        return Simulation("multpgm", seed=1)

    def test_component_processes(self, sim):
        names = [p.name for p in sim.kernel.processes.values()]
        assert sum(1 for n in names if n.startswith("mp3d")) == 4
        assert sum(1 for n in names if n.startswith("ed")) == 5
        assert "make" in names  # the embedded Pmake

    def test_mp3d_shares_particle_pages(self, sim):
        mp3d = [p for p in sim.kernel.processes.values()
                if p.name.startswith("mp3d")]
        shared_vpage = 0x110
        frames = {p.data_frames[shared_vpage] for p in mp3d}
        assert len(frames) == 1
        assert sim.kernel.frame_shared(frames.pop())

    def test_tty_events_respect_horizon(self, sim):
        events = sim.workload.tty_events(10**7, substream(0, "tty"))
        assert events
        assert all(0 <= t < 10**7 for t, _sid, _n in events)
        assert all(1 <= n <= 15 for _t, _sid, n in events)  # paper bursts
        assert {sid for _t, sid, _n in events} == set(range(5))


class TestOracleSetup:
    @pytest.fixture(scope="class")
    def sim(self):
        return Simulation("oracle", seed=1)

    def test_servers_plus_lgwr(self, sim):
        names = [p.name for p in sim.kernel.processes.values()]
        assert sum(1 for n in names if n.startswith("oracle-")) >= 6
        assert "oracle-lgwr" in names

    def test_sga_shared_by_all(self, sim):
        procs = [p for p in sim.kernel.processes.values()]
        vpage = 0x110
        frames = {p.data_frames[vpage] for p in procs}
        assert len(frames) == 1

    def test_tp1_files(self, sim):
        dbf = [f for f in sim.kernel.fs.files.values()
               if f.name.endswith(".dbf")]
        assert len(dbf) == 10  # the 10 branches

    def test_big_binary(self, sim):
        assert sim.workload.oracle_image.text_pages * 4096 > 1024 * 1024


class TestKvSetup:
    @pytest.fixture(scope="class")
    def sim(self):
        return Simulation("kv", seed=1)

    def test_store_files_registered(self, sim):
        stores = [f for f in sim.kernel.fs.files.values()
                  if f.name.endswith(".kv")]
        assert len(stores) == 16

    def test_keyspace_dwarfs_buffer_cache(self, sim):
        from repro.kernel.fs import BUFFER_BYTES, NBUF

        workload = sim.workload
        keyspace = sum(f.size for f in sim.kernel.fs.files.values()
                       if f.name.endswith(".kv"))
        assert keyspace >= workload.keys * workload.value_bytes
        assert keyspace > 50 * NBUF * BUFFER_BYTES

    def test_worker_processes(self, sim):
        names = [p.name for p in sim.kernel.processes.values()]
        assert sum(1 for n in names if n.startswith("kvd-")) == 6

    def test_image_preloaded(self, sim):
        assert sim.workload.kv_image.resident()


class TestNetserverSetup:
    @pytest.fixture(scope="class")
    def sim(self):
        return Simulation("netserver", seed=1)

    def test_documents_registered(self, sim):
        docs = [f for f in sim.kernel.fs.files.values()
                if f.name.endswith(".dat")]
        assert len(docs) == 24

    def test_server_processes(self, sim):
        names = [p.name for p in sim.kernel.processes.values()]
        assert sum(1 for n in names if n.startswith("netd-")) == 4

    def test_net_events_respect_horizon(self, sim):
        events = sim.workload.net_events(10**7, substream(0, "net"))
        assert events
        assert all(0 <= t < 10**7 for t, _sid, _n in events)
        assert {sid for _t, sid, _n in events} == set(range(4))

    def test_arrival_rate_scales(self):
        slow = NetserverWorkload(arrivals_per_ms=1.0)
        fast = NetserverWorkload(arrivals_per_ms=8.0)
        horizon = 5 * 10**6
        n_slow = len(slow.net_events(horizon, substream(0, "net")))
        n_fast = len(fast.net_events(horizon, substream(0, "net")))
        assert n_fast > 2 * n_slow


class TestDriversMakeProgress:
    @pytest.mark.parametrize("name", list(ALL_WORKLOADS))
    def test_syscalls_issued_within_short_run(self, name):
        sim = Simulation(name, seed=2)
        sim.run(8.0, warmup_ms=0.0)
        assert sim.kernel.os_invocations > 0
        assert sum(sim.kernel.syscalls.counts.values()) > 0


class TestServerWorkloadDeterminism:
    @pytest.mark.parametrize("name", ["kv", "netserver"])
    def test_same_seed_same_counters(self, name):
        def fingerprint():
            sim = Simulation(name, seed=5)
            sim.run(5.0, warmup_ms=10.0)
            bc = sim.kernel.fs.buffer_cache
            return (
                sim.kernel.os_invocations,
                bc.hits, bc.misses,
                dict(sim.kernel.syscalls.counts),
                max(p.cycles for p in sim.kernel.processors),
            )
        assert fingerprint() == fingerprint()

    def test_kv_skew_moves_hit_rate(self):
        def hit_rate(skew):
            sim = Simulation("kv", seed=7, workload_args=(("skew", skew),))
            sim.run(10.0, warmup_ms=100.0)
            bc = sim.kernel.fs.buffer_cache
            return bc.hits / (bc.hits + bc.misses)
        assert hit_rate(1.2) > hit_rate(0.0) + 0.05

    def test_netserver_interrupts_delivered(self):
        from repro.common.types import InterruptKind

        sim = Simulation("netserver", seed=5)
        sim.run(5.0, warmup_ms=10.0)
        assert sim.kernel.interrupts.counts[InterruptKind.NETWORK] > 0
        assert sum(sim.workload.served.values()) >= 0  # ledger exists
        assert sim.kernel.tty_input  # requests queued on the streams
