"""Persistent run-cache behaviour: hits, invalidation, corruption, escape hatches."""

from __future__ import annotations

import pickle

import pytest

from repro.analysis.report import AnalysisReport
from repro.sim.runcache import (
    RunCache,
    cache_disabled_by_env,
    default_cache_dir,
    load_or_run,
    source_digest,
)
from repro.api import TracedRun

# Tiny windows: these tests exercise cache plumbing, not the simulator.
HORIZON, WARMUP, SEED = 2.0, 5.0, 11


@pytest.fixture
def cache(tmp_path) -> RunCache:
    return RunCache(cache_dir=tmp_path / "cache")


def _get(cache, **kwargs):
    defaults = dict(
        workload="pmake", horizon_ms=HORIZON, warmup_ms=WARMUP, seed=SEED
    )
    defaults.update(kwargs)
    return load_or_run(cache, **defaults)


class TestHitMiss:
    def test_cold_miss_then_warm_hit(self, cache):
        run, _ = _get(cache)
        assert isinstance(run, TracedRun)
        assert (cache.hits, cache.misses, cache.stores) == (0, 1, 1)

        run2, _ = _get(cache)
        assert cache.hits == 1
        # The reloaded run carries the same measured state.
        assert run2.workload_name == run.workload_name
        assert run2.measure_from_cycles == run.measure_from_cycles
        assert list(run2.trace.all_entries()) == list(run.trace.all_entries())

    def test_report_upgrade_persists(self, cache):
        _get(cache)  # stores run with report=None
        _, report = _get(cache, analyze=True)  # hit; upgrades entry in place
        assert isinstance(report, AnalysisReport)
        fresh = RunCache(cache_dir=cache.cache_dir)
        _, report2 = _get(fresh, analyze=True)
        assert (fresh.hits, fresh.misses) == (1, 0)
        assert report2.analysis.user_ticks == report.analysis.user_ticks

    def test_run_equivalent_to_fresh_simulation(self, cache):
        """A cache round-trip and a fresh simulation record the same trace."""
        run, _ = _get(cache)
        cached, _ = _get(RunCache(cache_dir=cache.cache_dir))
        fresh, _ = _get(None)
        reference = list(run.trace.all_entries())
        assert list(cached.trace.all_entries()) == reference
        assert list(fresh.trace.all_entries()) == reference


class TestInvalidation:
    def test_settings_change_misses(self, cache):
        _get(cache)
        _get(cache, horizon_ms=HORIZON + 1.0)
        assert cache.hits == 0 and cache.misses == 2

    def test_seed_and_workload_in_key(self, cache):
        base = cache.run_key("pmake", HORIZON, WARMUP, SEED)
        assert base == cache.run_key("pmake", HORIZON, WARMUP, SEED)
        assert base != cache.run_key("pmake", HORIZON, WARMUP, SEED + 1)
        assert base != cache.run_key("multpgm", HORIZON, WARMUP, SEED)

    def test_overrides_in_key(self, cache):
        base = cache.run_key("pmake", HORIZON, WARMUP, SEED)
        over = cache.run_key(
            "pmake", HORIZON, WARMUP, SEED, {"monitor_strict": True}
        )
        assert base != over

    def test_source_digest_stable_and_split(self):
        assert source_digest(False) == source_digest(False)
        assert source_digest(False) != source_digest(True)

    def test_check_flag_in_key(self, cache):
        """Checked and unchecked runs must never cross-reuse."""
        base = cache.run_key("pmake", HORIZON, WARMUP, SEED)
        checked = cache.run_key("pmake", HORIZON, WARMUP, SEED, {"check": True})
        assert base != checked

    def test_checked_run_misses_unchecked_entry(self, cache, monkeypatch):
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        _get(cache)  # unchecked entry
        run, _ = _get(cache, sim_kwargs={"check": True})
        assert cache.hits == 0 and cache.misses == 2
        assert run.check_report is not None and run.check_report.ok
        # The checked entry round-trips with its report attached.
        fresh = RunCache(cache_dir=cache.cache_dir)
        reloaded, _ = load_or_run(
            fresh, "pmake", HORIZON, WARMUP, SEED, sim_kwargs={"check": True}
        )
        assert fresh.hits == 1
        assert reloaded.check_report is not None and reloaded.check_report.ok

    def test_explicit_check_false_matches_default(self, cache, monkeypatch):
        """check=False is normalized away: old unchecked entries stay valid."""
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        _get(cache)
        _get(cache, sim_kwargs={"check": False})
        assert cache.hits == 1 and cache.misses == 1

    def test_env_check_enters_key(self, cache, monkeypatch):
        """REPRO_CHECK=1 resolves into the key (and into the simulation)."""
        monkeypatch.delenv("REPRO_CHECK", raising=False)
        _get(cache)
        monkeypatch.setenv("REPRO_CHECK", "1")
        run, _ = _get(cache)
        assert cache.hits == 0 and cache.misses == 2
        assert run.check_report is not None
        # Same env, second call: hits the checked entry, not the plain one.
        _get(cache)
        assert cache.hits == 1


class TestCorruption:
    def test_corrupt_entry_falls_back_to_simulation(self, cache):
        run, _ = _get(cache)
        key = cache.run_key("pmake", HORIZON, WARMUP, SEED)
        path = cache._path(key)
        path.write_bytes(b"not a pickle at all")

        fresh = RunCache(cache_dir=cache.cache_dir)
        run2, _ = _get(fresh)
        assert fresh.hits == 0 and fresh.misses == 1
        assert list(run2.trace.all_entries()) == list(run.trace.all_entries())
        # The poisoned file was replaced by a good entry.
        with open(path, "rb") as fh:
            assert pickle.load(fh)["run"].workload_name == "pmake"

    def test_wrong_payload_type_is_a_miss(self, cache):
        key = "run-" + "0" * 40
        cache.cache_dir.mkdir(parents=True, exist_ok=True)
        cache._path(key).write_bytes(pickle.dumps([1, 2, 3]))
        assert cache.load(key) is None
        assert not cache._path(key).exists()


class TestEscapeHatches:
    def test_disabled_cache_never_touches_disk(self, tmp_path):
        cache = RunCache(cache_dir=tmp_path / "c", enabled=False)
        _get(cache)
        _get(cache)
        assert not (tmp_path / "c").exists()
        assert (cache.hits, cache.misses, cache.stores) == (0, 0, 0)

    def test_env_no_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache_disabled_by_env()
        cache = RunCache(cache_dir=tmp_path / "c")
        assert not cache.enabled
        monkeypatch.setenv("REPRO_NO_CACHE", "0")
        assert not cache_disabled_by_env()

    def test_env_cache_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        assert RunCache().cache_dir == tmp_path / "elsewhere"

    def test_cli_no_cache_flag(self, tmp_path, capsys):
        from repro.experiments.cli import main

        assert main([
            "run", "table3",
            "--horizon-ms", "1", "--warmup-ms", "2",
            "--jobs", "1", "--no-cache", "--cache-dir", str(tmp_path / "c"),
        ]) == 0
        assert not (tmp_path / "c").exists()
        assert "table3" in capsys.readouterr().out


class TestClaimLock:
    """Advisory cold-run dedup: one claimant populates, waiters reuse."""

    def test_claim_is_exclusive_until_released(self, cache):
        key = cache.run_key("pmake", HORIZON, WARMUP, SEED)
        assert cache.claim(key)
        other = RunCache(cache_dir=cache.cache_dir)
        assert not other.claim(key)
        cache.release(key)
        assert other.claim(key)
        other.release(key)

    def test_claim_always_wins_when_disabled(self, tmp_path):
        disabled = RunCache(cache_dir=tmp_path / "c", enabled=False)
        key = "run-deadbeef"
        assert disabled.claim(key)
        assert disabled.claim(key)  # no claim file exists to collide with
        assert not (tmp_path / "c").exists()

    def test_stale_claim_is_broken(self, cache):
        import os
        import time as _time

        from repro.sim.runcache import STALE_CLAIM_S

        key = cache.run_key("pmake", HORIZON, WARMUP, SEED)
        assert cache.claim(key)
        lock = cache.cache_dir / f"{key}.lock"
        old = _time.time() - STALE_CLAIM_S - 60
        os.utime(lock, (old, old))
        # A fresh contender presumes the holder dead and takes over.
        other = RunCache(cache_dir=cache.cache_dir)
        assert other.claim(key)
        other.release(key)

    def test_release_is_idempotent(self, cache):
        key = cache.run_key("pmake", HORIZON, WARMUP, SEED)
        cache.release(key)  # nothing claimed: no error
        assert cache.claim(key)
        cache.release(key)
        cache.release(key)

    def test_wait_for_returns_none_when_claim_released_empty(self, cache):
        """Claim released without an entry: the waiter gives up and
        simulates itself (returns None immediately, no timeout burn)."""
        key = cache.run_key("pmake", HORIZON, WARMUP, SEED)
        assert cache.wait_for(key, timeout_s=5.0) is None
        assert cache.dedup_hits == 0

    def test_wait_for_times_out(self, cache):
        key = cache.run_key("pmake", HORIZON, WARMUP, SEED)
        other = RunCache(cache_dir=cache.cache_dir)
        assert other.claim(key)
        try:
            assert cache.wait_for(key, timeout_s=0.3, poll_s=0.05) is None
        finally:
            other.release(key)

    def test_wait_for_counts_dedup_hit(self, cache):
        import threading

        run, _ = _get(None)  # simulate once, outside any cache
        key = cache.run_key("pmake", HORIZON, WARMUP, SEED)
        winner = RunCache(cache_dir=cache.cache_dir)
        assert winner.claim(key)

        def publish():
            winner.store(key, {"run": run, "report": None})
            winner.release(key)

        timer = threading.Timer(0.3, publish)
        timer.start()
        try:
            payload = cache.wait_for(key, timeout_s=10.0, poll_s=0.05)
        finally:
            timer.join()
        assert payload is not None and payload["run"] is not None
        assert cache.dedup_hits == 1 and cache.hits == 1
        assert "1 dedup" in cache.stats_line()
        assert cache.stats()["dedup_hits"] == 1

    def test_load_or_run_dedups_against_claim_holder(self, cache):
        import threading

        run, _ = _get(None)
        key = cache.run_key("pmake", HORIZON, WARMUP, SEED)
        winner = RunCache(cache_dir=cache.cache_dir)
        assert winner.claim(key)

        def publish():
            winner.store(key, {"run": run, "report": None})
            winner.release(key)

        timer = threading.Timer(0.3, publish)
        timer.start()
        try:
            reused, _ = _get(cache)
        finally:
            timer.join()
        # The loser never simulated: it waited out the winner's claim.
        assert cache.dedup_hits == 1 and cache.stores == 0
        assert list(reused.trace.all_entries()) == list(run.trace.all_entries())
        # And the claim file is gone, so the next cold run is unclaimed.
        assert not (cache.cache_dir / f"{key}.lock").exists()

    def test_load_or_run_releases_claim_after_store(self, cache):
        run, _ = _get(cache)
        assert cache.stores == 1
        assert not list(cache.cache_dir.glob("*.lock"))

    def test_stats_shape(self, cache):
        _get(cache)
        _get(cache)
        stats = cache.stats()
        assert stats == {
            "hits": 1, "misses": 1, "stores": 1, "probes": 2,
            "dedup_hits": 0,
        }
        assert "dedup" not in cache.stats_line()


class TestShardInvariance:
    """The shard count is output-neutral, so it must never enter a key."""

    def test_sharded_load_hits_serial_entry(self, cache):
        _get(cache)  # populate with the (implicitly serial) entry
        _get(cache, shards=4)
        assert cache.hits == 1 and cache.misses == 1

    def test_sharded_analysis_upgrade_matches_serial(self, cache):
        _, serial = _get(cache, analyze=True)
        _, sharded = _get(None, analyze=True, shards=2)
        assert sharded.analysis == serial.analysis

    def test_exhibit_key_excludes_shards(self, cache):
        from repro.api import RunSettings

        base = cache.exhibit_key("table1", RunSettings())
        assert base == cache.exhibit_key("table1", RunSettings(shards=4))
        assert base == cache.exhibit_key("table1", RunSettings(shards=16))
        # Output-affecting fields still invalidate.
        assert base != cache.exhibit_key("table1", RunSettings(seed=8))

    def test_cache_repr_is_byte_compatible_with_legacy_repr(self):
        """cache_repr() must render exactly the pre-shards dataclass repr,
        so existing on-disk exhibit entries stay valid."""
        from repro.api import RunSettings

        legacy = "RunSettings(horizon_ms=80.0, warmup_ms=500.0, seed=7, check=False)"
        assert RunSettings().cache_repr() == legacy
        assert RunSettings(shards=8).cache_repr() == legacy
        assert "shards" not in RunSettings(shards=3).cache_repr()
