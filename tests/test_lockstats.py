"""Lock statistics reporting (Tables 10/12, Figure 11 inputs)."""

import pytest

from repro.analysis.lockstats import (
    failed_acquires_per_ms,
    lock_table_rows,
    sync_stall_summary,
)


class TestLockTableRows:
    def test_rows_for_active_locks(self, pmake_run):
        total_cycles = max(p.cycles for p in pmake_run.processors)
        rows = lock_table_rows(pmake_run.kernel, total_cycles, min_acquires=1)
        names = {row.name for row in rows}
        assert "memlock" in names
        assert "runqlk" in names

    def test_rows_sorted_by_frequency(self, pmake_run):
        total_cycles = max(p.cycles for p in pmake_run.processors)
        rows = lock_table_rows(pmake_run.kernel, total_cycles, min_acquires=1)
        values = [row.kcycles_between_acquires for row in rows]
        assert values == sorted(values)

    def test_percentages_in_range(self, pmake_run):
        total_cycles = max(p.cycles for p in pmake_run.processors)
        for row in lock_table_rows(pmake_run.kernel, total_cycles, 1):
            assert 0.0 <= row.failed_pct <= 100.0
            assert 0.0 <= row.same_cpu_no_intervening_pct <= 100.0
            assert row.waiters_if_any >= 1.0
            assert row.cached_to_uncached_pct >= 0.0

    def test_family_filter(self, pmake_run):
        total_cycles = max(p.cycles for p in pmake_run.processors)
        rows = lock_table_rows(
            pmake_run.kernel, total_cycles, 1, families=["memlock"]
        )
        assert {row.name for row in rows} == {"memlock"}


class TestSyncStall:
    def test_cached_cheaper_than_uncached(self, any_run):
        """Table 10's point: with cachable LL/SC locks the sync stall is a
        small fraction of the sync-bus machine's."""
        summary = sync_stall_summary(any_run.kernel, any_run.processors)
        assert summary.current_machine_pct > 0
        assert summary.cached_rmw_pct < summary.current_machine_pct
        assert summary.cached_rmw_pct < 0.6 * summary.current_machine_pct

    def test_sync_ops_counted(self, pmake_run):
        summary = sync_stall_summary(pmake_run.kernel, pmake_run.processors)
        assert summary.sync_ops == pmake_run.kernel.syncbus.stats.total_ops


class TestFailedAcquireRates:
    def test_rates_nonnegative(self, multpgm_run):
        rates = failed_acquires_per_ms(multpgm_run.kernel, 70.0)
        assert rates
        assert all(rate >= 0 for rate in rates.values())

    def test_zero_wall_time(self, multpgm_run):
        assert failed_acquires_per_ms(multpgm_run.kernel, 0.0) == {}
