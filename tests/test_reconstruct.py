"""Trace-side cache reconstruction and its equivalence to a real cache."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import CacheGeometry
from repro.common.types import MissClass, RefDomain
from repro.memsys.cache import Cache
from repro.analysis.reconstruct import CpuReconstruction, ReconstructedCache

OS = RefDomain.OS
APP = RefDomain.APP


def make(size=1024):
    return ReconstructedCache(size)


class TestClassification:
    def test_first_fill_cold(self):
        cache = make()
        cls, same = cache.classify_fill(5, OS, 0)
        assert cls is MissClass.COLD and not same

    def test_displacement_by_os(self):
        cache = make()
        cache.classify_fill(5, OS, 0)
        cache.classify_fill(5 + 64, OS, 0)  # evicts 5
        cls, same = cache.classify_fill(5, OS, 0)
        assert cls is MissClass.DISPOS and same

    def test_dispossame_needs_same_epoch(self):
        cache = make()
        cache.classify_fill(5, OS, 1)
        cache.classify_fill(5 + 64, OS, 1)
        cls, same = cache.classify_fill(5, OS, 2)
        assert cls is MissClass.DISPOS and not same

    def test_displacement_by_app(self):
        cache = make()
        cache.classify_fill(5, OS, 0)
        cache.classify_fill(5 + 64, APP, 0)
        cls, _ = cache.classify_fill(5, OS, 0)
        assert cls is MissClass.DISPAP

    def test_invalidation_yields_sharing(self):
        cache = make()
        cache.classify_fill(5, OS, 0)
        assert cache.invalidate(5)
        cls, _ = cache.classify_fill(5, OS, 0)
        assert cls is MissClass.SHARING

    def test_invalidate_absent_false(self):
        cache = make()
        assert not cache.invalidate(5)

    def test_full_flush(self):
        cache = make()
        cache.classify_fill(5, OS, 0)
        cache.classify_fill(6, OS, 0)
        assert cache.invalidate_all() == 2
        cls, _ = cache.classify_fill(5, OS, 0)
        assert cls is MissClass.SHARING  # mapped to INVAL by the caller

    def test_refill_clears_state(self):
        cache = make()
        cache.classify_fill(5, OS, 0)
        cache.invalidate(5)
        cache.classify_fill(5, OS, 0)   # SHARING consumed
        cache.classify_fill(5 + 64, OS, 0)
        cls, _ = cache.classify_fill(5, OS, 0)
        assert cls is MissClass.DISPOS

    def test_resident(self):
        cache = make()
        cache.classify_fill(5, OS, 0)
        assert cache.resident(5)
        assert not cache.resident(6)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=300))
def test_reconstruction_matches_real_cache(blocks):
    """Feeding the reconstruction exactly the real cache's miss stream
    yields identical contents — the property the paper's postprocessing
    (and Figure 6) relies on."""
    real = Cache(CacheGeometry(1024, 16, 1))
    recon = ReconstructedCache(1024)
    for block in blocks:
        if real.access(block) is not None:  # the bus saw a fill
            recon.classify_fill(block, OS, 0)
    for block in set(blocks):
        assert real.lookup(block) == recon.resident(block)


class TestCpuReconstruction:
    def test_holds_both_caches(self):
        recon = CpuReconstruction(64 * 1024, 256 * 1024)
        assert recon.icache.num_sets == 4096
        assert recon.dcache.num_sets == 16384
        assert recon.app_epoch == 0
