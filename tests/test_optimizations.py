"""The paper-proposed optimization modes: block ops, distributed queues."""

import pytest

from repro.common.params import MachineParams
from repro.common.types import Mode, RefDomain
from repro.cpu.processor import Processor
from repro.kernel.kernel import Kernel, KernelTuning
from repro.kernel.vm import VmTuning
from repro.memsys.system import MemorySystem


def make_kernel(**tuning_kwargs):
    params = MachineParams()
    memsys = MemorySystem(params)
    cpus = [Processor(i, params, memsys) for i in range(4)]
    tuning = KernelTuning(vm=VmTuning(baseline_frames=256), **tuning_kwargs)
    return Kernel(params, memsys, cpus, tuning=tuning), cpus


class TestBlockopBypass:
    def test_bypass_copy_displaces_nothing(self):
        kernel, cpus = make_kernel(blockop_cache_bypass=True)
        proc = cpus[0]
        proc.set_mode(Mode.KERNEL)
        # Warm a victim line that a cached copy would displace.
        victim_block = 0x500000 // 16
        proc.dread_block(victim_block)
        kernel.blockops.bcopy(proc, 0x500000 + 4096 * 16, 0x600000, 4096)
        assert kernel.memsys.hierarchies[0].data_resident(victim_block)

    def test_bypass_still_stalls(self):
        kernel, cpus = make_kernel(blockop_cache_bypass=True)
        proc = cpus[0]
        proc.set_mode(Mode.KERNEL)
        before = proc.stall_cycles[Mode.KERNEL]
        kernel.blockops.bcopy(proc, 0x500000, 0x600000, 4096)
        assert proc.stall_cycles[Mode.KERNEL] > before

    def test_bypass_write_invalidates_stale_copies(self):
        kernel, cpus = make_kernel(blockop_cache_bypass=True)
        writer, reader = cpus[0], cpus[1]
        writer.set_mode(Mode.KERNEL)
        reader.set_mode(Mode.KERNEL)
        block = 0x600000 // 16
        reader.dread_block(block)  # reader caches the destination
        kernel.blockops.bclear(writer, 0x600000, 64)
        assert not kernel.memsys.hierarchies[1].data_resident(block)

    def test_bypass_no_cacheable_bus_traffic(self):
        kernel, cpus = make_kernel(blockop_cache_bypass=True)
        proc = cpus[0]
        proc.set_mode(Mode.KERNEL)
        reads_before = kernel.memsys.bus_reads
        kernel.blockops.bclear(proc, 0x600000, 1024)
        # Only the routine's I-fetches hit the bus, not the data sweep.
        data_misses = kernel.memsys.truth.class_counts(
            RefDomain.OS, "D"
        )
        assert sum(data_misses.values()) == 0
        assert kernel.memsys.bus_reads > reads_before  # code still fetched


class TestBlockopPrefetch:
    def test_prefetch_mode_reset_after_op(self):
        kernel, cpus = make_kernel(blockop_prefetch=True)
        proc = cpus[0]
        proc.set_mode(Mode.KERNEL)
        kernel.blockops.bcopy(proc, 0x500000, 0x600000, 1024)
        assert not proc.prefetch_mode

    def test_prefetch_keeps_misses_drops_stall(self):
        base_kernel, base_cpus = make_kernel()
        pf_kernel, pf_cpus = make_kernel(blockop_prefetch=True)
        for kernel, cpus in ((base_kernel, base_cpus), (pf_kernel, pf_cpus)):
            cpus[0].set_mode(Mode.KERNEL)
            kernel.blockops.bcopy(cpus[0], 0x500000, 0x600000, 4096)
        base_data = sum(
            base_kernel.memsys.truth.class_counts(RefDomain.OS, "D").values()
        )
        pf_data = sum(
            pf_kernel.memsys.truth.class_counts(RefDomain.OS, "D").values()
        )
        assert pf_data == base_data  # same bus traffic
        assert (
            pf_cpus[0].stall_cycles[Mode.KERNEL]
            < base_cpus[0].stall_cycles[Mode.KERNEL]
        )


class TestDistributedQueues:
    def test_per_cluster_queue_mapping(self):
        kernel, cpus = make_kernel(num_run_queues=2)
        sched = kernel.scheduler
        assert sched.queue_of_cpu(0) == 0
        assert sched.queue_of_cpu(1) == 0
        assert sched.queue_of_cpu(2) == 1
        assert sched.queue_of_cpu(3) == 1

    def test_runqlk_array_created(self):
        kernel, _ = make_kernel(num_run_queues=2)
        assert kernel.locks.runq(0).name == "runqlk_0"
        assert kernel.locks.runq(1).name == "runqlk_1"
        assert kernel.locks.runq(0).family == "runqlk"

    def test_setrq_prefers_home_queue(self):
        from repro.kernel.process import Image
        from tests.test_kernel_core import dummy_driver

        kernel, cpus = make_kernel(num_run_queues=2)
        image = Image("x", text_pages=1, file_ino=1)
        process = kernel.create_process("p", image, dummy_driver())
        process.last_cpu = 3  # home: cluster 1
        kernel.scheduler.setrq(cpus[0], process)
        assert process in kernel.scheduler.queues[1]

    def test_empty_home_queue_steals(self):
        from repro.kernel.process import Image
        from tests.test_kernel_core import dummy_driver

        kernel, cpus = make_kernel(num_run_queues=2)
        image = Image("x", text_pages=1, file_ino=1)
        process = kernel.create_process("p", image, dummy_driver())
        process.last_cpu = 3
        kernel.scheduler.setrq(cpus[0], process)
        # CPU 0 (cluster 0) has an empty home queue: it must steal.
        chosen = kernel.scheduler.pick_next(cpus[0])
        assert chosen is process
        assert kernel.scheduler.cross_queue_steals == 1

    def test_overloaded_home_queue_spills(self):
        from repro.kernel.process import Image
        from tests.test_kernel_core import dummy_driver

        kernel, cpus = make_kernel(num_run_queues=2)
        image = Image("x", text_pages=1, file_ino=1)
        procs = [
            kernel.create_process(f"p{i}", image, dummy_driver())
            for i in range(5)
        ]
        for process in procs:
            process.last_cpu = 0  # all home to cluster 0
            kernel.scheduler.setrq(cpus[0], process)
        # Imbalance beyond the slack spills to the other queue.
        assert len(kernel.scheduler.queues[1]) > 0


class TestOracleScale:
    def test_standard_scale_bigger_footprint(self):
        from repro.workloads.oracle import OracleWorkload

        scaled = OracleWorkload(scale="scaled")
        standard = OracleWorkload(scale="standard")
        assert standard.num_datafiles > scaled.num_datafiles
        assert standard.sga_pages > scaled.sga_pages

    def test_invalid_scale_rejected(self):
        from repro.workloads.oracle import OracleWorkload

        with pytest.raises(ValueError):
            OracleWorkload(scale="enormous")
