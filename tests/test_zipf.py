"""Zipf generator: table construction, sampling and analytic PMF."""

import pytest

from repro.workloads.zipf import ZipfGenerator, zipf_pmf, zipf_table_distribution


class TestTable:
    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_table_distribution(0, 0.99)
        with pytest.raises(ValueError):
            zipf_table_distribution(16, -0.1)

    def test_cumulative_and_complete(self):
        table = zipf_table_distribution(64, 0.99)
        assert len(table) == 64
        assert all(a <= b for a, b in zip(table, table[1:]))
        assert table[-1] == 1.0

    def test_memoized(self):
        assert zipf_table_distribution(64, 0.99) is \
            zipf_table_distribution(64, 0.99)

    def test_skew_zero_is_uniform(self):
        pmf = zipf_pmf(10, 0.0)
        assert all(abs(p - 0.1) < 1e-12 for p in pmf)

    def test_pmf_is_rank_ordered(self):
        pmf = zipf_pmf(100, 0.99)
        assert abs(sum(pmf) - 1.0) < 1e-9
        assert all(a >= b for a, b in zip(pmf, pmf[1:]))


class TestGenerator:
    def test_samples_in_range(self):
        gen = ZipfGenerator(16, 1.2, seed=3)
        for _ in range(2000):
            assert 0 <= gen.sample() < 16

    def test_seed_determinism(self):
        a = ZipfGenerator(1024, 0.99, seed=11)
        b = ZipfGenerator(1024, 0.99, seed=11)
        assert [a.sample() for _ in range(500)] == \
            [b.sample() for _ in range(500)]

    def test_distinct_seeds_diverge(self):
        a = ZipfGenerator(1024, 0.99, seed=11)
        b = ZipfGenerator(1024, 0.99, seed=12)
        assert [a.sample() for _ in range(100)] != \
            [b.sample() for _ in range(100)]

    def test_empirical_matches_analytic_pmf(self):
        keys, skew, n = 32, 0.99, 60_000
        gen = ZipfGenerator(keys, skew, seed=1)
        counts = [0] * keys
        for _ in range(n):
            counts[gen.sample()] += 1
        for rank in range(8):  # the head carries the mass
            expected = gen.pmf(rank)
            observed = counts[rank] / n
            assert observed == pytest.approx(expected, rel=0.1)

    def test_higher_skew_concentrates_head(self):
        def head_mass(skew):
            gen = ZipfGenerator(256, skew, seed=2)
            hits = sum(1 for _ in range(20_000) if gen.sample() < 8)
            return hits / 20_000
        assert head_mass(1.2) > head_mass(0.7) > head_mass(0.0)
