"""Parallel runner determinism: serial and --jobs N output must be identical."""

from __future__ import annotations

import pytest

from repro.experiments import parallel
from repro.api import ExperimentContext, RunSettings
from repro.experiments.registry import run_experiment
from repro.sim.runcache import RunCache

# Tiny windows keep the three-per-context simulations cheap.
_SMALL = RunSettings(horizon_ms=4.0, warmup_ms=10.0, seed=5)
_EXHIBITS = ["table1", "table3", "figure3"]


@pytest.fixture(scope="module")
def serial_texts():
    ctx = ExperimentContext(_SMALL)
    return {e: run_experiment(e, ctx).to_text() for e in _EXHIBITS}


def test_default_jobs_bounds():
    jobs = parallel.default_jobs()
    assert 1 <= jobs <= 3


def test_parallel_matches_serial_without_cache(serial_texts):
    ctx = ExperimentContext(_SMALL)
    built = parallel.run_exhibits(ctx, _EXHIBITS, jobs=3)
    assert [e for e, _ in built] == _EXHIBITS
    for exhibit_id, exhibit in built:
        assert exhibit.to_text() == serial_texts[exhibit_id]


def test_parallel_matches_serial_with_cache(serial_texts, tmp_path):
    cold = ExperimentContext(_SMALL, cache=RunCache(cache_dir=tmp_path))
    built = parallel.run_exhibits(cold, _EXHIBITS, jobs=3)
    for exhibit_id, exhibit in built:
        assert exhibit.to_text() == serial_texts[exhibit_id]

    # Second, warm context: everything must come from disk, unchanged.
    warm = ExperimentContext(_SMALL, cache=RunCache(cache_dir=tmp_path))
    rebuilt = parallel.run_exhibits(warm, _EXHIBITS, jobs=3)
    for exhibit_id, exhibit in rebuilt:
        assert exhibit.to_text() == serial_texts[exhibit_id]
    assert warm.cache.hits == len(_EXHIBITS)
    assert warm.cache.misses == 0


def test_parallel_merges_state_back(serial_texts):
    """After a parallel build the context looks like a serial one."""
    ctx = ExperimentContext(_SMALL)
    parallel.run_exhibits(ctx, _EXHIBITS, jobs=3)
    assert set(_EXHIBITS) <= set(ctx.exhibit_cache)
    # Base runs were merged back, so further serial derivations reuse
    # them (and agree with the fully serial reference).
    for workload in parallel.BASE_WORKLOADS:
        assert (workload, ()) in ctx._runs
        assert (workload, ()) in ctx._reports
    assert run_experiment("table4", ctx).to_text()


def test_single_exhibit_stays_serial(serial_texts):
    """jobs>1 with one target must not spin up a pool (and must match)."""
    ctx = ExperimentContext(_SMALL)
    built = parallel.run_exhibits(ctx, ["table1"], jobs=3)
    assert built[0][1].to_text() == serial_texts["table1"]


def test_jobs_one_is_pure_serial(serial_texts):
    ctx = ExperimentContext(_SMALL)
    built = parallel.run_exhibits(ctx, _EXHIBITS, jobs=1)
    for exhibit_id, exhibit in built:
        assert exhibit.to_text() == serial_texts[exhibit_id]


def test_cli_defaults_track_runsettings():
    """argparse defaults must come from RunSettings, not hardcoded copies."""
    from repro.experiments import cli

    assert cli._DEFAULTS == RunSettings()


def test_cli_parallel_output_matches_serial(tmp_path, capsys):
    from repro.experiments.cli import main

    args = ["--horizon-ms", "4", "--warmup-ms", "10", "--no-cache"]
    assert main(["run", "table3", "--jobs", "1"] + args) == 0
    serial_out = capsys.readouterr().out
    assert main(["run", "table3", "--jobs", "3"] + args) == 0
    parallel_out = capsys.readouterr().out
    assert parallel_out == serial_out
    assert "table3" in serial_out


class TestWorkerFailureSurfacing:
    """Worker failures must abort the run loudly — never degrade to serial."""

    def test_worker_boundary_wraps_with_traceback(self):
        def boom():
            raise KeyError("inner detail")

        with pytest.raises(parallel.ParallelWorkerError) as exc_info:
            parallel._worker_boundary("exhibit 'x'", boom)
        message = str(exc_info.value)
        assert "exhibit 'x'" in message
        assert "KeyError" in message
        assert "Traceback" in message  # worker-side traceback ships as text
        # No __cause__ chaining: causes do not survive pool pickling.
        assert exc_info.value.__cause__ is None

    def test_worker_boundary_passes_results_through(self):
        assert parallel._worker_boundary("t", lambda a, b: a + b, 1, 2) == 3

    def test_pool_map_wraps_pool_level_deaths(self):
        class DeadPool:
            def map(self, fn, tasks, chunksize=1):
                raise ImportError("No module named 'numpy'")

        with pytest.raises(
            parallel.ParallelWorkerError, match="stage-x pool failed"
        ) as exc_info:
            parallel._pool_map(DeadPool(), None, [], "stage-x")
        assert "ImportError" in str(exc_info.value)

    def test_pool_map_reraises_worker_errors_verbatim(self):
        class FailingPool:
            def map(self, fn, tasks, chunksize=1):
                raise parallel.ParallelWorkerError("worker failed on exhibit 'y'")

        with pytest.raises(parallel.ParallelWorkerError, match="exhibit 'y'"):
            parallel._pool_map(FailingPool(), None, [], "stage")

    @pytest.mark.skipif(
        __import__("multiprocessing").get_start_method() != "fork",
        reason="in-parent monkeypatch reaches workers only under fork",
    )
    def test_failing_build_aborts_real_pool_run(self, monkeypatch):
        def broken_inner(exhibit_id):
            raise RuntimeError("simulated worker crash")

        monkeypatch.setattr(parallel, "_build_exhibit_inner", broken_inner)
        ctx = ExperimentContext(_SMALL)
        with pytest.raises(
            parallel.ParallelWorkerError, match="simulated worker crash"
        ):
            parallel.run_exhibits(ctx, _EXHIBITS, jobs=3)

    def test_cli_exits_3_on_worker_failure(self, monkeypatch, capsys):
        from repro.experiments import cli

        def boom(ctx, targets, jobs=None):
            raise parallel.ParallelWorkerError(
                "worker failed on exhibit 'table3': ValueError: boom"
            )

        monkeypatch.setattr(cli.parallel, "run_exhibits", boom)
        rc = cli.main([
            "run", "table3", "--jobs", "2",
            "--horizon-ms", "1", "--warmup-ms", "2", "--no-cache",
        ])
        assert rc == 3
        captured = capsys.readouterr()
        assert "parallel run failed" in captured.err
        assert "table3" in captured.err
        assert captured.out == ""  # no partial exhibit output
