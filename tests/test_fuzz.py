"""Whole-system fuzzing: arbitrary workloads must never wedge the machine.

Hypothesis generates random process behaviours from the full action
vocabulary; whatever they do, the simulation must reach its horizon with
the system invariants intact.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.kernel.process import Image, ProcState
from repro.api import Simulation
from repro.workloads import actions as A
from repro.workloads.base import Workload, preload_image

_FILE0 = 900
_NUM_FILES = 4

# One generated step: (kind, small integer parameter).
STEP = st.tuples(
    st.sampled_from(
        ["compute", "read", "write", "open", "misc", "sginap", "lock",
         "sem", "sleep", "brk", "fork"]
    ),
    st.integers(0, 3),
)


def _actions_from(steps, rank):
    """Translate generated steps into a driver, guaranteeing that taken
    locks are released within a few steps."""
    held = None
    for kind, arg in steps:
        if kind == "compute":
            yield A.Compute(2000 + arg * 3000, write_fraction=0.3)
        elif kind == "read":
            yield A.ReadFile(_FILE0 + arg, arg * 1024, 1024)
        elif kind == "write":
            yield A.WriteFile(_FILE0 + arg, arg * 1024, 512)
        elif kind == "open":
            yield A.OpenFile(_FILE0 + arg)
        elif kind == "misc":
            yield A.Misc(["time", "stat", "signal", "ioctl"][arg])
        elif kind == "sginap":
            yield A.Sginap()
        elif kind == "lock":
            if held is None:
                yield A.UserLockAcquire(arg)
                held = arg
                yield A.Compute(1000)
                yield A.UserLockRelease(held)
                held = None
        elif kind == "sem":
            # V before P so the pair cannot deadlock alone.
            yield A.SemOp(arg, +1)
            yield A.SemOp(arg, -1)
        elif kind == "sleep":
            yield A.SleepFor(0.2 + 0.3 * arg)
        elif kind == "brk":
            yield A.Brk(8 + 4 * arg)
        elif kind == "fork":
            def _child():
                yield A.Compute(3000)
            yield A.Fork(f"kid-{rank}-{arg}", lambda: _child())
    # Tail: keep the process alive so the run queue never empties early.
    for _ in itertools.count():
        yield A.Compute(20_000)


class _FuzzWorkload(Workload):
    name = "fuzz"

    def __init__(self, programs):
        super().__init__()
        self.programs = programs

    def setup(self, kernel, rng) -> None:
        for ino in range(_FILE0, _FILE0 + _NUM_FILES):
            kernel.fs.register_file(ino, 16 * 1024, f"f{ino}")
        kernel.fs.register_file(_FILE0 + 50, 4 * 4096, "bin")
        image = Image("fuzzbin", text_pages=4, file_ino=_FILE0 + 50)
        preload_image(kernel, image)
        for rank, steps in enumerate(self.programs):
            process = kernel.create_process(
                f"fuzz-{rank}", image, _actions_from(steps, rank)
            )
            process.data_pages = 24
            process.state = ProcState.RUNNABLE
            kernel.scheduler.run_queue.append(process)


@settings(max_examples=10, deadline=None)
@given(
    st.lists(st.lists(STEP, max_size=12), min_size=1, max_size=3),
    st.integers(0, 100),
)
def test_random_workloads_complete_cleanly(programs, seed):
    sim = Simulation(_FuzzWorkload(programs), seed=seed)
    sim.run(3.0, warmup_ms=0.0)
    kernel = sim.kernel
    # The machine reached the horizon with its invariants intact.
    horizon = sim.horizon_cycles
    assert all(proc.cycles >= horizon for proc in sim.processors)
    for lock in kernel.locks.all_locks():
        assert lock.holder_cpu is None, lock.name
        assert lock.stats.acquires == lock.stats.releases
    phys = kernel.memsys.memory
    assert len(phys._allocated) + phys.free_frame_count() == phys.num_frames
    # Trace classification stays consistent with bus traffic.
    truth = kernel.memsys.truth
    assert truth.total_misses() <= kernel.memsys.total_bus_transactions()
