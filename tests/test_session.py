"""Simulation sessions: determinism, horizons, machine variants."""

import pytest

from repro.common.params import MachineParams
from repro.common.types import Mode
from repro.api import Simulation, run_traced_workload


class TestBasicRun:
    def test_all_cpus_reach_horizon(self, pmake_run):
        horizon = pmake_run.simulation.horizon_cycles
        for proc in pmake_run.processors:
            assert proc.cycles >= horizon

    def test_trace_nonempty(self, pmake_run):
        assert len(pmake_run.trace) > 1000

    def test_measure_from_set(self, pmake_run):
        params = pmake_run.params
        assert pmake_run.measure_from_cycles == params.ms_to_cycles(60.0)

    def test_time_modes_all_observed(self, pmake_run):
        total = {m: 0 for m in Mode}
        for proc in pmake_run.processors:
            for mode in Mode:
                total[mode] += proc.mode_cycles[mode]
        assert total[Mode.USER] > 0
        assert total[Mode.KERNEL] > 0


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def run():
            sim = Simulation("pmake", seed=9)
            return sim.run(5.0, warmup_ms=0.0)

        a, b = run(), run()
        assert len(a.trace) == len(b.trace)
        assert list(a.trace.all_entries()) == list(b.trace.all_entries())

    def test_different_seed_different_trace(self):
        a = Simulation("pmake", seed=1).run(5.0, warmup_ms=0.0)
        b = Simulation("pmake", seed=2).run(5.0, warmup_ms=0.0)
        assert list(a.trace.all_entries()) != list(b.trace.all_entries())


class TestMachineVariants:
    @pytest.mark.parametrize("ncpus", [1, 2, 6])
    def test_other_cpu_counts_run(self, ncpus):
        params = MachineParams(num_cpus=ncpus)
        sim = Simulation("multpgm", params=params, seed=1)
        run = sim.run(4.0, warmup_ms=0.0)
        assert len(run.processors) == ncpus
        assert sim.kernel.os_invocations > 0

    def test_untraced_run_has_no_escapes(self):
        sim = Simulation("pmake", seed=1, trace=False)
        sim.run(4.0, warmup_ms=0.0)
        assert sim.memsys.bus_uncached == 0

    def test_convenience_runner(self):
        run = run_traced_workload("oracle", horizon_ms=3.0, warmup_ms=0.0,
                                  seed=1)
        assert run.workload_name == "oracle"
        assert len(run.trace) > 0


class TestMasterIntegration:
    def test_master_dumps_with_small_buffer(self):
        from repro.monitor.master import MasterConfig

        params = MachineParams(trace_buffer_entries=4000)
        sim = Simulation(
            "pmake", params=params, seed=1,
            master_config=MasterConfig(check_interval_ms=2.0,
                                       dump_threshold=0.5),
        )
        run = sim.run(10.0, warmup_ms=0.0)
        assert sim.master.dumps >= 1
        assert len(run.trace.segments) == sim.master.dumps + 1

    def test_strict_buffer_survives_with_master(self):
        """The threshold must leave headroom for a worst-case burst
        between master wake-ups (the paper chooses it 'so that the
        buffer never overflows')."""
        from repro.monitor.master import MasterConfig

        params = MachineParams(trace_buffer_entries=40_000)
        sim = Simulation(
            "pmake", params=params, seed=1, monitor_strict=True,
            master_config=MasterConfig(check_interval_ms=2.0,
                                       dump_threshold=0.5),
        )
        sim.run(10.0, warmup_ms=0.0)  # must not raise BufferOverflow
