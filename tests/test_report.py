"""AnalysisReport arithmetic on synthetic analyses."""

import pytest

from repro.analysis.decode import TraceAnalysis
from repro.analysis.report import AnalysisReport, CYCLES_PER_TICK
from repro.common.types import MissClass, RefDomain

OS = RefDomain.OS
APP = RefDomain.APP


def synthetic() -> TraceAnalysis:
    analysis = TraceAnalysis("synthetic", 4)
    analysis.user_ticks = 500
    analysis.sys_ticks = 300
    analysis.idle_ticks = 200
    analysis.miss_counts[(OS, "I", MissClass.COLD)] = 10
    analysis.miss_counts[(OS, "D", MissClass.SHARING)] = 20
    analysis.miss_counts[(APP, "D", MissClass.COLD)] = 30
    analysis.ap_dispos["D"] = 6
    return analysis


@pytest.fixture
def report() -> AnalysisReport:
    return AnalysisReport(synthetic())


class TestTimeSplit:
    def test_percentages(self, report):
        assert report.user_pct == pytest.approx(50.0)
        assert report.sys_pct == pytest.approx(30.0)
        assert report.idle_pct == pytest.approx(20.0)

    def test_sum_to_100(self, report):
        assert report.user_pct + report.sys_pct + report.idle_pct == (
            pytest.approx(100.0)
        )

    def test_empty_analysis_all_zero(self):
        report = AnalysisReport(TraceAnalysis("empty", 4))
        assert report.user_pct == 0.0
        assert report.total_stall_pct == 0.0
        assert report.os_miss_fraction_pct == 0.0


class TestMissShares:
    def test_os_fraction(self, report):
        assert report.os_miss_fraction_pct == pytest.approx(50.0)

    def test_class_share(self, report):
        assert report.os_class_share_pct("D", MissClass.SHARING) == (
            pytest.approx(100.0 * 20 / 30)
        )


class TestStalls:
    def test_total_stall(self, report):
        non_idle_cycles = (500 + 300) * CYCLES_PER_TICK
        expected = 100.0 * 60 * 35 / non_idle_cycles
        assert report.total_stall_pct == pytest.approx(expected)

    def test_os_stall(self, report):
        non_idle_cycles = (500 + 300) * CYCLES_PER_TICK
        assert report.os_stall_pct == pytest.approx(
            100.0 * 30 * 35 / non_idle_cycles
        )

    def test_induced_adds_ap_dispos(self, report):
        non_idle_cycles = (500 + 300) * CYCLES_PER_TICK
        assert report.os_plus_induced_stall_pct == pytest.approx(
            100.0 * 36 * 35 / non_idle_cycles
        )

    def test_custom_stall_cost(self):
        report = AnalysisReport(synthetic(), bus_stall_cycles=70)
        assert report.total_stall_pct == pytest.approx(
            2 * AnalysisReport(synthetic()).total_stall_pct
        )

    def test_stall_for_component(self, report):
        assert report.stall_pct_for(0) == 0.0
        assert report.stall_pct_for(30) == report.os_stall_pct


class TestQueries:
    def test_total_misses_by_domain(self, report):
        analysis = report.analysis
        assert analysis.total_misses() == 60
        assert analysis.total_misses(OS) == 30
        assert analysis.total_misses(APP) == 30

    def test_class_counts_filtering(self, report):
        analysis = report.analysis
        assert analysis.class_counts(OS, "I") == {MissClass.COLD: 10}
        assert analysis.class_counts(kind="D")[MissClass.COLD] == 30

    def test_non_idle_ticks(self, report):
        assert report.analysis.non_idle_ticks() == 800
