"""The example scripts must run end to end (shortened horizons)."""

import runpy
import sys

import pytest


def run_example(monkeypatch, capsys, name, argv):
    monkeypatch.setattr(sys, "argv", argv)
    runpy.run_path(f"examples/{name}.py", run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.slow
def test_quickstart_runs(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart",
                      ["quickstart.py", "pmake", "8"])
    assert "Table 1 style summary" in out
    assert "three major OS miss sources" in out


@pytest.mark.slow
def test_custom_workload_runs(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "custom_workload",
                      ["custom_workload.py"])
    assert "toy server" in out
    assert "forks serviced" in out
