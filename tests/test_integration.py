"""Full-system integration invariants across all three workloads."""

import pytest

from repro.analysis.report import analyze_trace
from repro.common.types import MissClass, Mode, RefDomain
from repro.kernel.process import ProcState


class TestSystemInvariants:
    def test_frames_conserved(self, any_run):
        """Allocated + free frames always equals the pool size."""
        kernel = any_run.kernel
        phys = kernel.memsys.memory
        assert len(phys._allocated) + phys.free_frame_count() == phys.num_frames

    def test_no_lock_left_held(self, any_run):
        for lock in any_run.kernel.locks.all_locks():
            assert lock.holder_cpu is None, lock.name

    def test_lock_acquires_match_releases(self, any_run):
        for lock in any_run.kernel.locks.all_locks():
            assert lock.stats.acquires == lock.stats.releases, lock.name

    def test_every_cpu_saw_kernel_time(self, any_run):
        for proc in any_run.processors:
            assert proc.mode_cycles[Mode.KERNEL] > 0

    def test_clocks_monotone_and_reach_horizon(self, any_run):
        horizon = any_run.simulation.horizon_cycles
        for proc in any_run.processors:
            assert proc.cycles >= horizon

    def test_processes_in_consistent_states(self, any_run):
        kernel = any_run.kernel
        for process in kernel.processes.values():
            if process.state is ProcState.RUNNING:
                assert kernel.current[process.last_cpu] is process
            if process.state is ProcState.SLEEPING:
                assert process.sleep_channel is not None

    def test_current_processes_marked_running(self, any_run):
        for cpu, process in enumerate(any_run.kernel.current):
            if process is not None:
                assert process.state is ProcState.RUNNING

    def test_trace_timestamps_monotone_per_cpu(self, any_run):
        """Entries are in recording order; each CPU's own timestamps are
        monotone (cross-CPU interleaving is bounded clock skew)."""
        last = {}
        for segment in any_run.trace.segments:
            for tick, cpu, _addr, _op in segment.entries:
                assert tick >= last.get(cpu, 0)
                last[cpu] = tick

    def test_sginap_means_lock_backoff_happened(self, multpgm_run):
        kernel = multpgm_run.kernel
        engine = multpgm_run.simulation.engine
        assert kernel.syscalls.counts["sginap"] >= engine.lock_sginaps


class TestPaperShapeProperties:
    """Qualitative results the paper reports must hold in any decent run."""

    def test_os_misses_substantial(self, any_run):
        truth = any_run.kernel.memsys.truth
        os_misses = truth.total_misses(RefDomain.OS)
        total = truth.total_misses()
        assert os_misses / total > 0.10

    def test_migration_produces_sharing_misses(self, multpgm_run):
        report = analyze_trace(multpgm_run, keep_imiss_stream=False)
        from repro.experiments.derive import migration_misses

        assert migration_misses(report.analysis)["total"] > 0

    def test_blockops_produce_data_misses(self, pmake_report):
        assert sum(pmake_report.analysis.blockop_misses.values()) > 0

    def test_instruction_misses_significant(self, any_run):
        """Section 4.2.1: OS instruction misses are a large share of OS
        misses (the paper's first major source)."""
        truth = any_run.kernel.memsys.truth
        i_misses = sum(
            count for (dom, kind, cls), count in truth.counts.items()
            if dom is RefDomain.OS and kind == "I"
            and cls is not MissClass.UNCACHED
        )
        os_misses = sum(
            count for (dom, _kind, cls), count in truth.counts.items()
            if dom is RefDomain.OS and cls is not MissClass.UNCACHED
        )
        assert i_misses / os_misses > 0.2

    def test_os_locks_show_locality(self, pmake_run):
        """Section 5.2: OS lock accesses have high locality overall."""
        stats = pmake_run.kernel.locks.family_stats()
        acquires = sum(s.acquires for s in stats.values())
        local = sum(s.same_cpu_no_intervening for s in stats.values())
        assert acquires > 100
        assert local / acquires > 0.3

    def test_lock_contention_low_on_4_cpus(self, pmake_run):
        """Section 5.2: low lock contention with four CPUs."""
        stats = pmake_run.kernel.locks.family_stats()
        acquires = sum(s.acquires for s in stats.values())
        failed = sum(s.failed_acquires for s in stats.values())
        assert failed / acquires < 0.25

    def test_oracle_has_biggest_app_footprint(self, pmake_run, oracle_run):
        """Oracle's application misses dominate relative to OS misses
        (Table 1: OS share 26.6% vs Pmake's 52.6%)."""
        def os_share(run):
            truth = run.kernel.memsys.truth
            return truth.total_misses(RefDomain.OS) / truth.total_misses()

        assert os_share(oracle_run) < os_share(pmake_run)

    def test_ap_dispos_exists(self, nowarmup_report):
        assert sum(nowarmup_report.analysis.ap_dispos.values()) > 0
