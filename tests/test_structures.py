"""Kernel data map: Table 3 sizes and address attribution."""

import pytest

from repro.kernel import structures as S
from repro.kernel.structures import KernelDataMap, StructName
from repro.memsys.memory import KDATA_BASE, KDATA_SIZE


@pytest.fixture(scope="module")
def datamap():
    return KernelDataMap()


class TestPaperSizes:
    """The structure sizes are Table 3, verbatim."""

    def test_kernel_stack(self):
        assert S.KSTACK_BYTES == 4096

    def test_pcb(self):
        assert S.PCB_BYTES == 240

    def test_eframe(self):
        assert S.EFRAME_BYTES == 172

    def test_ustruct_rest(self):
        assert S.USTRUCT_REST_BYTES == 3684

    def test_process_table(self):
        assert S.PROC_TABLE_BYTES == 46080

    def test_pfdat(self):
        assert S.PFDAT_BYTES == 210944

    def test_buffer(self):
        assert S.BUFFER_TABLE_BYTES == 17408

    def test_inode(self):
        assert S.INODE_TABLE_BYTES == 68608

    def test_runq(self):
        assert S.RUNQ_BYTES == 24

    def test_freepgbuck(self):
        assert S.FREEPGBUCK_BYTES == 3072

    def test_hi_ndproc(self):
        assert S.HI_NDPROC_BYTES == 4


class TestAttribution:
    def test_proc_table(self, datamap):
        assert datamap.structure_at(datamap.proc_entry(5)) is StructName.PROC_TABLE

    def test_kernel_stack(self, datamap):
        addr = datamap.kstack_base(3) + 100
        assert datamap.structure_at(addr) is StructName.KERNEL_STACK

    def test_ustruct_subdivision(self, datamap):
        base = datamap.ustruct_base(2)
        assert datamap.structure_at(base) is StructName.PCB
        assert datamap.structure_at(base + S.PCB_BYTES) is StructName.EFRAME
        assert (
            datamap.structure_at(base + S.PCB_BYTES + S.EFRAME_BYTES)
            is StructName.USTRUCT_REST
        )

    def test_run_queue(self, datamap):
        assert datamap.structure_at(datamap.runq_base) is StructName.RUN_QUEUE

    def test_hi_ndproc(self, datamap):
        assert datamap.structure_at(datamap.hi_ndproc_base) is StructName.HI_NDPROC

    def test_pfdat(self, datamap):
        assert datamap.structure_at(datamap.pfdat_entry(100)) is StructName.PFDAT

    def test_buffer_header(self, datamap):
        assert datamap.structure_at(datamap.buffer_header(10)) is StructName.BUFFER

    def test_inode(self, datamap):
        assert datamap.structure_at(datamap.inode_entry(10)) is StructName.INODE

    def test_page_table(self, datamap):
        assert (
            datamap.structure_at(datamap.pagetable_base(7))
            is StructName.PAGE_TABLE
        )

    def test_kheap_scratch(self, datamap):
        assert datamap.structure_at(datamap.kheap_scratch(3)) is StructName.KHEAP

    def test_unknown_is_other(self, datamap):
        assert datamap.structure_at(0x400000) is StructName.OTHER


class TestPerSlotAddresses:
    def test_slots_disjoint_kstacks(self, datamap):
        assert datamap.kstack_base(1) - datamap.kstack_base(0) == S.KSTACK_BYTES

    def test_slot_bounds_checked(self, datamap):
        with pytest.raises(ValueError):
            datamap.kstack_base(S.NPROC)
        with pytest.raises(ValueError):
            datamap.proc_entry(-1)

    def test_everything_fits_in_kdata(self, datamap):
        assert datamap.kdata_end <= KDATA_BASE + KDATA_SIZE

    def test_eframe_between_pcb_and_rest(self, datamap):
        assert datamap.eframe_base(0) == datamap.pcb_base(0) + S.PCB_BYTES
        assert (
            datamap.ustruct_rest_base(0)
            == datamap.eframe_base(0) + S.EFRAME_BYTES
        )
