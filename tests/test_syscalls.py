"""System-call handlers."""

import pytest

from repro.common.types import Mode
from repro.kernel.process import DATA_VBASE, Image, ProcState
from tests.test_kernel_core import dummy_driver, make_kernel


@pytest.fixture
def env():
    kernel, cpus = make_kernel()
    kernel.fs.register_file(50, 8 * 4096, "binary")
    kernel.fs.register_file(60, 16 * 1024, "data")
    image = Image("prog", text_pages=4, file_ino=50)
    process = kernel.create_process("init", image, dummy_driver())
    kernel.current[0] = process
    process.state = ProcState.RUNNING
    cpus[0].set_mode(Mode.USER)
    return kernel, cpus, process


class TestFork:
    def test_fork_creates_runnable_child(self, env):
        kernel, cpus, parent = env
        child = kernel.syscalls.fork(cpus[0], parent, "kid", dummy_driver())
        assert child.pid != parent.pid
        assert child.state is ProcState.RUNNABLE
        assert child in kernel.scheduler.run_queue
        assert child.image is parent.image

    def test_fork_marks_cow_both_sides(self, env):
        kernel, cpus, parent = env
        vpage = DATA_VBASE + 1
        kernel.translate(cpus[0], parent, vpage, write=True)
        child = kernel.syscalls.fork(cpus[0], parent, "kid", dummy_driver())
        assert vpage in parent.cow_pages
        assert vpage in child.cow_pages
        assert child.data_frames[vpage] == parent.data_frames[vpage]
        assert kernel.frame_shared(parent.data_frames[vpage])


class TestExec:
    def test_exec_replaces_image_and_frees_data(self, env):
        kernel, cpus, process = env
        kernel.translate(cpus[0], process, DATA_VBASE + 1, write=True)
        old_image = process.image
        kernel.fs.register_file(51, 4 * 4096, "other")
        new_image = Image("other", text_pages=4, file_ino=51)
        kernel.syscalls.exec(cpus[0], process, new_image, data_pages=6)
        assert process.image is new_image
        assert new_image.refcount == 1
        assert old_image.refcount == 0
        assert process.data_frames == {}
        assert process.data_pages == 6


class TestExitWait:
    def test_wait_then_exit_wakes_parent(self, env):
        kernel, cpus, parent = env
        child = kernel.syscalls.fork(cpus[0], parent, "kid", dummy_driver())
        done = kernel.syscalls.wait_for(cpus[0], parent, child)
        assert not done
        assert parent.state is ProcState.SLEEPING
        # Run the child to exit on CPU1.
        kernel.scheduler.dispatch(cpus[1])
        kernel.syscalls.exit(cpus[1], child)
        assert child.exited
        # Woken — and possibly already dispatched by exit's scheduler run.
        assert parent.state in (ProcState.RUNNABLE, ProcState.RUNNING)

    def test_wait_on_already_dead_child(self, env):
        kernel, cpus, parent = env
        child = kernel.syscalls.fork(cpus[0], parent, "kid", dummy_driver())
        kernel.scheduler.dispatch(cpus[1])
        kernel.syscalls.exit(cpus[1], child)
        assert kernel.syscalls.wait_for(cpus[0], parent, child)

    def test_exit_recycles_slot(self, env):
        kernel, cpus, parent = env
        child = kernel.syscalls.fork(cpus[0], parent, "kid", dummy_driver())
        slot = child.slot
        kernel.scheduler.dispatch(cpus[1])
        kernel.syscalls.exit(cpus[1], child)
        assert slot in kernel._free_slots


class TestSginap:
    def test_sginap_requeues_and_dispatches(self, env):
        kernel, cpus, process = env
        other = kernel.syscalls.fork(cpus[0], process, "other", dummy_driver())
        other.priority = 0  # strictly better: must win the CPU
        kernel.syscalls.sginap(cpus[0], process)
        assert kernel.current[0] is other
        assert process.state is ProcState.RUNNABLE

    def test_sginap_alone_reruns_self(self, env):
        kernel, cpus, process = env
        kernel.syscalls.sginap(cpus[0], process)
        assert kernel.current[0] is process


class TestSemop:
    def test_v_then_p_succeeds(self, env):
        kernel, cpus, process = env
        assert kernel.syscalls.semop(cpus[0], process, 1, +1)
        assert kernel.syscalls.semop(cpus[0], process, 1, -1)

    def test_p_on_zero_blocks(self, env):
        kernel, cpus, process = env
        assert not kernel.syscalls.semop(cpus[0], process, 2, -1)
        assert process.state is ProcState.SLEEPING

    def test_v_wakes_blocked_p(self, env):
        kernel, cpus, process = env
        waiter = kernel.syscalls.fork(cpus[0], process, "w", dummy_driver())
        kernel.scheduler.run_queue.remove(waiter)
        kernel.current[1] = waiter
        waiter.state = ProcState.RUNNING
        cpus[1].set_mode(Mode.USER)
        kernel.syscalls.semop(cpus[1], waiter, 3, -1)
        assert waiter.state is ProcState.SLEEPING
        kernel.syscalls.semop(cpus[0], process, 3, +1)
        assert waiter.state is ProcState.RUNNABLE


class TestBrkAndMisc:
    def test_brk_grows(self, env):
        kernel, cpus, process = env
        kernel.syscalls.brk(cpus[0], process, 32)
        assert process.data_pages == 32

    def test_brk_never_shrinks(self, env):
        kernel, cpus, process = env
        kernel.syscalls.brk(cpus[0], process, 32)
        kernel.syscalls.brk(cpus[0], process, 8)
        assert process.data_pages == 32

    def test_misc_flavors_execute(self, env):
        kernel, cpus, process = env
        for flavor in ("time", "signal", "ioctl", "stat", "pipe", "unknown"):
            kernel.syscalls.misc(cpus[0], process, flavor)
        assert kernel.syscalls.counts["misc"] == 6

    def test_tty_write_uses_streams_lock(self, env):
        kernel, cpus, process = env
        streams = kernel.locks.streams(0)
        before = streams.stats.acquires
        kernel.syscalls.tty_write(cpus[0], process, 0, 20)
        assert streams.stats.acquires == before + 1
