"""Every exhibit builds and carries sane content (small settings)."""

import pytest

from repro.api import Exhibit, ExperimentContext, RunSettings
from repro.experiments.registry import EXPERIMENTS, get_experiment, run_experiment

# One shared tiny context: every exhibit runs off the same three short
# simulations, so the whole module stays fast.
_SMALL = RunSettings(horizon_ms=12.0, warmup_ms=30.0, seed=3)

# figure11 and the ablations run their own extra simulations; the
# cheap ones are exercised here, the multi-machine ones separately.
_FAST_IDS = [
    e for e in EXPERIMENTS
    if e != "figure11" and not e.startswith("ablation-")
]
_ABLATION_IDS = [e for e in EXPERIMENTS if e.startswith("ablation-")]


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(_SMALL)


class TestRegistry:
    def test_all_paper_exhibits_present(self):
        from repro.experiments.registry import PAPER_EXPERIMENTS

        expected = {f"table{i}" for i in range(1, 13)} | {
            f"figure{i}" for i in range(1, 12)
        }
        assert set(PAPER_EXPERIMENTS) == expected

    def test_ablations_registered(self):
        from repro.experiments.registry import ABLATION_EXPERIMENTS

        assert set(ABLATION_EXPERIMENTS) == {
            "ablation-layout", "ablation-blockops", "ablation-affinity",
            "ablation-runqueues", "oracle-scale", "tr-distributions",
        }

    def test_unknown_exhibit_rejected(self):
        with pytest.raises(ValueError):
            get_experiment("table99")


@pytest.mark.parametrize("exhibit_id", _FAST_IDS)
def test_exhibit_builds_and_renders(ctx, exhibit_id):
    exhibit = run_experiment(exhibit_id, ctx)
    assert isinstance(exhibit, Exhibit)
    assert exhibit.rows, exhibit_id
    text = exhibit.to_text()
    assert exhibit_id in text
    # Every row matches the declared column count.
    for row in exhibit.rows:
        assert len(row) == len(exhibit.columns)


class TestExhibitContent:
    def test_table1_has_paper_and_measured(self, ctx):
        exhibit = run_experiment("table1", ctx)
        sources = [row[1] for row in exhibit.rows]
        assert sources.count("paper") == 3
        assert sources.count("measured") == 3

    def test_table3_sizes_match_paper(self, ctx):
        exhibit = run_experiment("table3", ctx)
        for row in exhibit.rows:
            assert row[1] == row[2], f"size mismatch for {row[0]}"

    def test_table2_all_classes_observed(self, ctx):
        exhibit = run_experiment("table2", ctx)
        observed = {row[0]: row[2] for row in exhibit.rows}
        for cls in ("cold", "dispos", "uncached"):
            assert observed[cls] == "yes"

    def test_figure4_shares_sum_bounded(self, ctx):
        exhibit = run_experiment("figure4", ctx)
        for row in exhibit.rows:
            assert 0 <= row[5] <= 100.0  # I-total as % of all OS misses

    def test_figure6_base_relative_is_one(self, ctx):
        exhibit = run_experiment("figure6", ctx)
        for row in exhibit.rows:
            if row[1] == 64 and row[2] == 1:
                assert row[3] == pytest.approx(1.0)

    def test_table9_components_bounded_by_total(self, ctx):
        exhibit = run_experiment("table9", ctx)
        for row in exhibit.rows:
            if row[1] != "measured":
                continue
            total, instr, migration, blockops, rest = row[2:]
            assert instr + migration + blockops + rest == pytest.approx(
                total, rel=0.05
            )

    def test_table10_cached_below_uncached(self, ctx):
        exhibit = run_experiment("table10", ctx)
        for row in exhibit.rows:
            if row[1] == "measured":
                assert row[3] < row[2]

    def test_figure10_shares_bounded(self, ctx):
        exhibit = run_experiment("figure10", ctx)
        for row in exhibit.rows:
            assert 0.0 <= row[3] <= 100.0

    def test_cli_list(self, capsys):
        from repro.experiments.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "figure11" in out


@pytest.mark.slow
@pytest.mark.parametrize("exhibit_id", _ABLATION_IDS)
def test_ablation_builds(ctx, exhibit_id):
    exhibit = run_experiment(exhibit_id, ctx)
    assert exhibit.rows
    assert exhibit.to_text()


@pytest.mark.slow
def test_layout_ablation_reduces_dispos(ctx):
    exhibit = run_experiment("ablation-layout", ctx)
    rows = exhibit.row_dict()
    default_dispos = rows["OS I-misses (Dispos)"][1]
    optimized_dispos = rows["OS I-misses (Dispos)"][2]
    assert optimized_dispos <= default_dispos


@pytest.mark.slow
def test_figure11_contention_grows():
    from repro.experiments.figure11 import contention_series

    series = contention_series(
        seed=3, cpu_counts=(2, 6), horizon_ms=10.0, warmup_ms=25.0
    )
    # Runqlk contention grows with CPU count (the paper's conclusion).
    assert series["runqlk"][1] >= series["runqlk"][0]
