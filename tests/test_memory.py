"""Physical memory map and frame allocator."""

import pytest

from repro.common.params import MachineParams
from repro.memsys.memory import (
    ESCAPE_BASE,
    FRAMES_BASE,
    KDATA_BASE,
    KTEXT_BASE,
    OutOfMemoryError,
    PhysicalMemory,
)


@pytest.fixture
def phys():
    return PhysicalMemory(MachineParams())


class TestRegions:
    def test_region_lookup(self, phys):
        assert phys.region_of(KTEXT_BASE).name == "ktext"
        assert phys.region_of(ESCAPE_BASE).name == "escape"
        assert phys.region_of(KDATA_BASE).name == "kdata"
        assert phys.region_of(FRAMES_BASE).name == "frames"

    def test_regions_cover_memory_without_overlap(self, phys):
        regions = sorted(phys.regions.values(), key=lambda r: r.base)
        assert regions[0].base == 0
        for a, b in zip(regions, regions[1:]):
            assert a.end == b.base
        assert regions[-1].end == phys.params.memory_bytes

    def test_is_kernel_text(self, phys):
        assert phys.is_kernel_text(0x100)
        assert not phys.is_kernel_text(KDATA_BASE)

    def test_is_escape(self, phys):
        assert phys.is_escape(ESCAPE_BASE + 1)
        assert not phys.is_escape(KTEXT_BASE)

    def test_out_of_range_address(self, phys):
        assert phys.region_of(phys.params.memory_bytes + 10) is None


class TestFrameAllocator:
    def test_alloc_returns_frames_region_frames(self, phys):
        frame = phys.alloc_frame()
        assert phys.frame_base(frame) >= FRAMES_BASE

    def test_alloc_unique(self, phys):
        frames = {phys.alloc_frame() for _ in range(100)}
        assert len(frames) == 100

    def test_free_then_realloc_is_fifo(self, phys):
        a = phys.alloc_frame()
        b = phys.alloc_frame()
        phys.free_frame(a)
        phys.free_frame(b)
        # FIFO: freed frames go to the back of the list.
        next_frames = [phys.alloc_frame() for _ in range(phys.num_frames)]
        assert next_frames[-2:] == [a, b]

    def test_free_count_tracks(self, phys):
        start = phys.free_frame_count()
        frame = phys.alloc_frame()
        assert phys.free_frame_count() == start - 1
        phys.free_frame(frame)
        assert phys.free_frame_count() == start

    def test_double_free_rejected(self, phys):
        frame = phys.alloc_frame()
        phys.free_frame(frame)
        with pytest.raises(ValueError):
            phys.free_frame(frame)

    def test_exhaustion_raises(self, phys):
        for _ in range(phys.num_frames):
            phys.alloc_frame()
        with pytest.raises(OutOfMemoryError):
            phys.alloc_frame()

    def test_compaction_preserves_order(self, phys):
        # Exercise the amortized-FIFO compaction path.
        allocated = [phys.alloc_frame() for _ in range(5000)]
        for frame in allocated:
            phys.free_frame(frame)
        remaining = phys.free_frame_count()
        seen = [phys.alloc_frame() for _ in range(remaining)]
        assert len(set(seen)) == remaining
