"""The trace analyzer against the simulator's ground truth.

These are the reproduction's central correctness tests: everything the
postprocessor infers from the bus trace alone must agree with what the
simulator knows actually happened.
"""

import pytest

from repro.analysis.report import analyze_trace
from repro.common.types import MissClass, Mode, RefDomain
from repro.kernel.structures import StructName


@pytest.fixture(scope="module")
def truth_and_analysis(nowarmup_run):
    report = analyze_trace(nowarmup_run)
    return nowarmup_run, report


class TestMissTotalsExact:
    def test_total_misses_match_bus(self, truth_and_analysis):
        run, report = truth_and_analysis
        analysis = report.analysis
        cacheable_txns = run.memsys.bus_reads + run.memsys.bus_writes
        assert analysis.total_misses() + analysis.upgrades == cacheable_txns

    def test_escape_count_matches(self, truth_and_analysis):
        run, report = truth_and_analysis
        assert report.analysis.escape_reads == run.memsys.bus_uncached


class TestClassAgreement:
    @pytest.mark.parametrize("domain", [RefDomain.OS, RefDomain.APP])
    def test_class_counts_close(self, truth_and_analysis, domain):
        """Per-class counts agree with ground truth to within 1%
        (residual skew comes from cross-CPU timestamp interleaving in
        the recorded order)."""
        run, report = truth_and_analysis
        measured = report.analysis.class_counts(domain)
        expected = run.memsys.truth.class_counts(domain=domain)
        expected.pop(MissClass.UNCACHED, None)
        total = sum(expected.values())
        for cls in set(measured) | set(expected):
            delta = abs(measured.get(cls, 0) - expected.get(cls, 0))
            assert delta <= max(5, 0.01 * total), (cls, measured, expected)

    def test_domain_totals_close(self, truth_and_analysis):
        run, report = truth_and_analysis
        for domain in (RefDomain.OS, RefDomain.APP):
            measured = report.analysis.total_misses(domain)
            expected = sum(
                count
                for (dom, _k, cls), count in run.memsys.truth.counts.items()
                if dom is domain and cls is not MissClass.UNCACHED
            )
            assert measured == pytest.approx(expected, rel=0.01)


class TestTimeAccounting:
    def test_split_matches_ground_truth(self, truth_and_analysis):
        run, report = truth_and_analysis
        total = {mode: 0 for mode in Mode}
        for proc in run.processors:
            for mode in Mode:
                total[mode] += proc.mode_cycles[mode]
        grand = sum(total.values())
        # Tolerance 2.5 points: the decoder sees state changes only at
        # bus events, so short quiet stretches around blocking/idle
        # transitions can land in the neighbouring bucket (the paper's
        # own instrumentation distorted cycle counts by 1.5-7%).
        assert report.user_pct == pytest.approx(
            100.0 * total[Mode.USER] / grand, abs=2.5
        )
        assert report.sys_pct == pytest.approx(
            100.0 * total[Mode.KERNEL] / grand, abs=2.5
        )
        assert report.idle_pct == pytest.approx(
            100.0 * total[Mode.IDLE] / grand, abs=2.5
        )

    def test_ticks_sum_to_wall_time(self, truth_and_analysis):
        _run, report = truth_and_analysis
        analysis = report.analysis
        total = analysis.user_ticks + analysis.sys_ticks + analysis.idle_ticks
        assert total == analysis.measured_ticks * analysis.num_cpus


class TestInvocations:
    def test_invocation_count_matches_kernel(self, truth_and_analysis):
        run, report = truth_and_analysis
        # Kernel counts every os_invocation() including nested ones and
        # UTLB faults; the analyzer's outermost invocations + UTLB
        # spikes + nested entries must add up.
        from repro.kernel.tlbfault import UTLB_OP_CODE

        kernel_total = run.kernel.os_invocations + run.kernel.tlbfaults.utlb_faults
        analyzer_total = sum(report.analysis.op_counts.values()) - sum(
            count for label, count in report.analysis.op_counts.items()
            if label.startswith("intr_")
        )
        assert analyzer_total == pytest.approx(kernel_total, rel=0.02)

    def test_utlb_faults_counted(self, truth_and_analysis):
        run, report = truth_and_analysis
        assert report.analysis.utlb_count == pytest.approx(
            run.kernel.tlbfaults.utlb_faults, rel=0.02
        )

    def test_utlb_faults_nearly_miss_free(self, truth_and_analysis):
        """Figure 1: a UTLB fault causes well under a miss on average
        once the handler is warm."""
        _run, report = truth_and_analysis
        analysis = report.analysis
        if analysis.utlb_count >= 50:
            assert analysis.utlb_misses / analysis.utlb_count < 2.0

    def test_invocations_have_positive_duration(self, truth_and_analysis):
        _run, report = truth_and_analysis
        assert all(i.duration_ticks >= 0 for i in report.analysis.invocations)

    def test_blockop_log_matches_kernel(self, truth_and_analysis):
        run, report = truth_and_analysis
        kernel_ops = (
            run.kernel.blockops.copies
            + run.kernel.blockops.clears
            + run.kernel.blockops.traversals
        )
        assert len(report.analysis.blockop_log) == kernel_ops


class TestAttribution:
    def test_sharing_by_struct_totals(self, truth_and_analysis):
        _run, report = truth_and_analysis
        analysis = report.analysis
        by_struct = sum(analysis.sharing_by_struct.values())
        sharing_total = analysis.miss_counts.get(
            (RefDomain.OS, "D", MissClass.SHARING), 0
        )
        assert by_struct == sharing_total

    def test_migration_ops_subset_of_migration_misses(self, truth_and_analysis):
        _run, report = truth_and_analysis
        analysis = report.analysis
        from repro.experiments.derive import migration_misses

        assert (
            sum(analysis.migration_op_misses.values())
            <= migration_misses(analysis)["total"]
            + analysis.sharing_by_struct.get(StructName.RUN_QUEUE, 0)
        )

    def test_dispos_routines_are_real(self, truth_and_analysis):
        run, report = truth_and_analysis
        for name in report.analysis.imiss_dispos_by_routine:
            assert name in run.kernel.layout.routines
