"""Shared fixtures.

Traced-run fixtures are session scoped: a short simulation per workload
is reused by every analysis/integration test that only reads it. They
also go through the persistent run cache (`repro.sim.runcache`), so
repeated pytest sessions against unchanged simulator sources reload the
runs from disk instead of re-simulating; the key embeds a source digest,
so editing the simulator invalidates them automatically. Set
``REPRO_NO_CACHE=1`` to force fresh simulations.
"""

from __future__ import annotations

import pytest

from repro.common.params import MachineParams
from repro.memsys.system import MemorySystem
from repro.sim.runcache import RunCache, load_or_run
from repro.api import TracedRun

_CACHE = RunCache()


@pytest.fixture
def params() -> MachineParams:
    return MachineParams()


@pytest.fixture
def memsys(params) -> MemorySystem:
    return MemorySystem(params)


def _run(workload: str, horizon_ms: float, warmup_ms: float, **kwargs) -> TracedRun:
    run, _ = load_or_run(
        _CACHE, workload, horizon_ms, warmup_ms, seed=3, sim_kwargs=kwargs
    )
    return run


@pytest.fixture(scope="session")
def pmake_run() -> TracedRun:
    """A short Pmake run with ground-truth events enabled."""
    return _run("pmake", horizon_ms=25.0, warmup_ms=60.0)


@pytest.fixture(scope="session")
def multpgm_run() -> TracedRun:
    return _run("multpgm", horizon_ms=20.0, warmup_ms=50.0)


@pytest.fixture(scope="session")
def oracle_run() -> TracedRun:
    return _run("oracle", horizon_ms=20.0, warmup_ms=50.0)


@pytest.fixture(scope="session", params=["pmake", "multpgm", "oracle"])
def any_run(request, pmake_run, multpgm_run, oracle_run) -> TracedRun:
    return {
        "pmake": pmake_run,
        "multpgm": multpgm_run,
        "oracle": oracle_run,
    }[request.param]


@pytest.fixture(scope="session")
def pmake_report(pmake_run):
    from repro.analysis.report import analyze_trace

    return analyze_trace(pmake_run)


@pytest.fixture(scope="session")
def nowarmup_run() -> TracedRun:
    """A run measured from t=0 so trace statistics can be compared with
    the simulator's cumulative ground truth."""
    return _run("pmake", horizon_ms=40.0, warmup_ms=0.0)


@pytest.fixture(scope="session")
def nowarmup_report(nowarmup_run):
    from repro.analysis.report import analyze_trace

    return analyze_trace(nowarmup_run)
