"""Filesystem: buffer cache, disk model, read/write paths."""

import pytest

from repro.common.rng import substream
from repro.common.types import Mode
from repro.kernel.fs import Disk, READAHEAD_BUFFERS
from repro.kernel.process import Image, ProcState
from tests.test_kernel_core import dummy_driver, make_kernel



def drain_disk(kernel, proc):
    """Advance time past every pending disk completion and service it."""
    due = kernel.fs.disk.next_time()
    while due is not None:
        proc.advance_to(due + 1)
        kernel.service_disk(proc)
        due = kernel.fs.disk.next_time()

@pytest.fixture
def env():
    kernel, cpus = make_kernel()
    kernel.fs.register_file(100, 64 * 1024, "data")
    image = Image("x", text_pages=1, file_ino=99)
    process = kernel.create_process("p", image, dummy_driver())
    kernel.current[0] = process
    cpus[0].set_mode(Mode.USER)
    return kernel, cpus, process


class TestDisk:
    def test_fcfs_serialization(self):
        disk = Disk(substream(0, "d"), 33333.0)
        t1 = disk.schedule(0, ("read", 1, (0,)))
        t2 = disk.schedule(0, ("read", 1, (1,)))
        assert t2 > t1

    def test_pop_due_order(self):
        disk = Disk(substream(0, "d"), 33333.0)
        disk.schedule(0, ("a",))
        disk.schedule(0, ("b",))
        done = disk.pop_due(10**9)
        assert done == [("a",), ("b",)]

    def test_nothing_due_early(self):
        disk = Disk(substream(0, "d"), 33333.0)
        disk.schedule(0, ("a",))
        assert disk.pop_due(0) == []

    def test_service_scale_shortens(self):
        slow = Disk(substream(5, "d"), 33333.0)
        fast = Disk(substream(5, "d"), 33333.0)
        t_slow = slow.schedule(0, ("a",))
        t_fast = fast.schedule(0, ("a",), service_scale=0.1)
        assert t_fast < t_slow

    def test_next_time(self):
        disk = Disk(substream(0, "d"), 33333.0)
        assert disk.next_time() is None
        t = disk.schedule(0, ("a",))
        assert disk.next_time() == t


class TestBufferCache:
    def test_miss_then_hit(self, env):
        kernel, cpus, _ = env
        bc = kernel.fs.buffer_cache
        assert bc.lookup(cpus[0], 100, 0) is None
        entry = bc.getblk(cpus[0], 100, 0)
        assert bc.lookup(cpus[0], 100, 0) is entry

    def test_getblk_takes_bfreelock(self, env):
        kernel, cpus, _ = env
        before = kernel.locks.lock("bfreelock").stats.acquires
        kernel.fs.buffer_cache.getblk(cpus[0], 100, 0)
        assert kernel.locks.lock("bfreelock").stats.acquires == before + 1

    def test_buffers_share_frames(self, env):
        kernel, cpus, _ = env
        bc = kernel.fs.buffer_cache
        entries = [bc.getblk(cpus[0], 100, i) for i in range(4)]
        frames = {e.frame for e in entries}
        assert len(frames) == 1  # four quarter-page buffers per frame
        offsets = {e.offset_in_frame for e in entries}
        assert offsets == {0, 1024, 2048, 3072}

    def test_lru_eviction_when_full(self, env):
        kernel, cpus, _ = env
        bc = kernel.fs.buffer_cache
        from repro.kernel.structures import NBUF

        for i in range(NBUF + 1):
            entry = bc.getblk(cpus[0], 100, i)
            entry.valid = True
        assert bc.lookup(cpus[0], 100, 0) is None  # LRU victim
        assert bc.cached_buffers() == NBUF

    def test_reclaim_frame(self, env):
        kernel, cpus, _ = env
        bc = kernel.fs.buffer_cache
        entry = bc.getblk(cpus[0], 100, 0)
        entry.valid = True
        frame = entry.frame
        assert bc.reclaim_frame(cpus[0], frame)
        assert bc.lookup(cpus[0], 100, 0) is None

    def test_reclaim_skips_io_pending(self, env):
        kernel, cpus, _ = env
        bc = kernel.fs.buffer_cache
        entry = bc.getblk(cpus[0], 100, 0)
        entry.io_pending = True
        assert not bc.reclaim_frame(cpus[0], entry.frame)


class TestReadPath:
    def test_cold_read_sleeps_and_schedules_io(self, env):
        kernel, cpus, process = env
        done, progress = kernel.fs.do_read(cpus[0], process, 100, 0, 2048, 0)
        assert not done
        assert process.state is ProcState.SLEEPING
        assert kernel.fs.disk.pending() == 1

    def test_readahead_fills_run(self, env):
        kernel, cpus, process = env
        kernel.fs.do_read(cpus[0], process, 100, 0, 1024, 0)
        drain_disk(kernel, cpus[0])
        resident = sum(
            1 for fb in range(READAHEAD_BUFFERS)
            if (100, fb) in kernel.fs.buffer_cache._entries
            and kernel.fs.buffer_cache._entries[(100, fb)].valid
        )
        assert resident == READAHEAD_BUFFERS

    def test_read_completes_after_wakeup(self, env):
        kernel, cpus, process = env
        done, progress = kernel.fs.do_read(cpus[0], process, 100, 0, 2048, 0)
        drain_disk(kernel, cpus[0])
        assert process.state is ProcState.RUNNABLE
        done, progress = kernel.fs.do_read(
            cpus[0], process, 100, 0, 2048, progress
        )
        assert done and progress == 2048

    def test_read_clamps_to_file_size(self, env):
        kernel, cpus, process = env
        kernel.fs.register_file(101, 100, "tiny")
        done, progress = kernel.fs.do_read(cpus[0], process, 101, 0, 4096, 0)
        if not done:
            drain_disk(kernel, cpus[0])
            done, progress = kernel.fs.do_read(
                cpus[0], process, 101, 0, 4096, progress
            )
        assert done and progress == 100

    def test_warm_read_does_not_sleep(self, env):
        kernel, cpus, process = env
        kernel.fs.do_read(cpus[0], process, 100, 0, 1024, 0)
        drain_disk(kernel, cpus[0])
        done, _ = kernel.fs.do_read(cpus[0], process, 100, 0, 1024, 0)
        assert done


class TestWritePath:
    def test_write_never_blocks(self, env):
        kernel, cpus, process = env
        kernel.fs.do_write(cpus[0], process, 100, 0, 4096)
        assert process.state is not ProcState.SLEEPING

    def test_write_extends_file(self, env):
        kernel, cpus, process = env
        kernel.fs.register_file(102, 0, "new")
        kernel.fs.do_write(cpus[0], process, 102, 0, 3000)
        assert kernel.fs.file(102).size == 3000

    def test_write_dirties_buffers(self, env):
        kernel, cpus, process = env
        kernel.fs.do_write(cpus[0], process, 100, 0, 1024)
        entry = kernel.fs.buffer_cache._entries[(100, 0)]
        assert entry.dirty and entry.valid

    def test_new_space_allocates_disk_blocks(self, env):
        kernel, cpus, process = env
        kernel.fs.register_file(103, 0, "new2")
        before = kernel.locks.lock("dfbmaplk").stats.acquires
        kernel.fs.do_write(cpus[0], process, 103, 0, 2048)
        assert kernel.locks.lock("dfbmaplk").stats.acquires > before


class TestOpen:
    def test_every_open_goes_through_ifree(self, env):
        """iget always touches the free list (System V keeps inactive
        in-core inodes there), making Ifree a hot lock (Table 12)."""
        kernel, cpus, _ = env
        ifree_before = kernel.locks.lock("ifree").stats.acquires
        kernel.fs.do_open(cpus[0], 100)
        kernel.fs.do_open(cpus[0], 100)
        assert kernel.locks.lock("ifree").stats.acquires == ifree_before + 2
