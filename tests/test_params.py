"""MachineParams / CacheGeometry validation."""

import pytest

from repro.common.params import CacheGeometry, MachineParams


class TestCacheGeometry:
    def test_default_block_size(self):
        geom = CacheGeometry(64 * 1024)
        assert geom.block_bytes == 16

    def test_num_blocks(self):
        geom = CacheGeometry(64 * 1024)
        assert geom.num_blocks == 4096

    def test_num_sets_direct_mapped(self):
        geom = CacheGeometry(64 * 1024)
        assert geom.num_sets == 4096

    def test_num_sets_two_way(self):
        geom = CacheGeometry(64 * 1024, associativity=2)
        assert geom.num_sets == 2048

    def test_rejects_nonmultiple_size(self):
        with pytest.raises(ValueError):
            CacheGeometry(1000, block_bytes=16)

    def test_rejects_zero_associativity(self):
        with pytest.raises(ValueError):
            CacheGeometry(64 * 1024, associativity=0)


class TestMachineParams:
    def test_default_is_4d340(self, params):
        assert params.num_cpus == 4
        assert params.cycle_ns == 30.0
        assert params.icache.size_bytes == 64 * 1024
        assert params.dcache_l1.size_bytes == 64 * 1024
        assert params.dcache_l2.size_bytes == 256 * 1024
        assert params.memory_bytes == 32 * 1024 * 1024
        assert params.tlb_entries == 64

    def test_paper_stall_costs(self, params):
        assert params.bus_stall_cycles == 35
        assert params.l2_hit_stall_cycles == 15

    def test_monitor_tick_is_two_cycles(self, params):
        assert params.monitor_tick_ns / params.cycle_ns == 2.0

    def test_block_bytes(self, params):
        assert params.block_bytes == 16

    def test_num_pages(self, params):
        assert params.num_pages == 8192

    def test_cycles_per_ms(self, params):
        assert params.cycles_per_ms() == pytest.approx(33333.33, rel=1e-3)

    def test_ms_cycles_roundtrip(self, params):
        assert params.cycles_to_ms(params.ms_to_cycles(10.0)) == pytest.approx(
            10.0, rel=1e-4
        )

    def test_rejects_zero_cpus(self):
        with pytest.raises(ValueError):
            MachineParams(num_cpus=0)

    def test_rejects_ragged_memory(self):
        with pytest.raises(ValueError):
            MachineParams(memory_bytes=4096 * 100 + 1)

    def test_custom_cpu_count(self):
        assert MachineParams(num_cpus=8).num_cpus == 8
