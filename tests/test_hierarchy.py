"""Per-CPU cache hierarchy: two-level data cache with inclusion."""

from repro.common.params import MachineParams
from repro.memsys.cache import EMPTY
from repro.memsys.hierarchy import AccessOutcome, CpuCacheHierarchy


def make_hierarchy() -> CpuCacheHierarchy:
    return CpuCacheHierarchy(0, MachineParams())


class TestInstructionSide:
    def test_first_fetch_misses(self):
        h = make_hierarchy()
        assert h.ifetch(100) == EMPTY

    def test_refetch_hits(self):
        h = make_hierarchy()
        h.ifetch(100)
        assert h.ifetch(100) is None

    def test_conflict_eviction(self):
        h = make_hierarchy()
        h.ifetch(100)
        assert h.ifetch(100 + 4096) == 100  # 64KB/16B = 4096 sets

    def test_instr_resident(self):
        h = make_hierarchy()
        h.ifetch(100)
        assert h.instr_resident(100)
        assert not h.instr_resident(101)


class TestDataSide:
    def test_cold_access_is_full_miss(self):
        h = make_hierarchy()
        outcome, victim = h.daccess(7)
        assert outcome is AccessOutcome.MISS
        assert victim == EMPTY

    def test_immediate_reuse_is_l1_hit(self):
        h = make_hierarchy()
        h.daccess(7)
        outcome, _ = h.daccess(7)
        assert outcome is AccessOutcome.L1_HIT

    def test_l1_conflict_still_hits_l2(self):
        h = make_hierarchy()
        h.daccess(7)
        h.daccess(7 + 4096)       # evicts 7 from 64KB L1, not 256KB L2
        outcome, _ = h.daccess(7)
        assert outcome is AccessOutcome.L2_HIT

    def test_l2_conflict_is_full_miss_again(self):
        h = make_hierarchy()
        h.daccess(7)
        h.daccess(7 + 16384)      # L2 has 16384 sets: evicts 7 everywhere
        outcome, victim = h.daccess(7)
        assert outcome is AccessOutcome.MISS
        assert victim == 7 + 16384

    def test_inclusion_l2_eviction_purges_l1(self):
        h = make_hierarchy()
        h.daccess(7)
        _outcome, victim = h.daccess(7 + 16384)
        assert victim == 7
        # 7 must be gone from L1 too (inclusion), so this is a full miss.
        outcome, _ = h.daccess(7)
        assert outcome is AccessOutcome.MISS

    def test_invalidate_data_reports_l2_residency(self):
        h = make_hierarchy()
        h.daccess(7)
        assert h.invalidate_data(7)
        assert not h.invalidate_data(7)

    def test_invalidate_purges_both_levels(self):
        h = make_hierarchy()
        h.daccess(7)
        h.invalidate_data(7)
        outcome, _ = h.daccess(7)
        assert outcome is AccessOutcome.MISS

    def test_data_resident_tracks_l2(self):
        h = make_hierarchy()
        h.daccess(7)
        assert h.data_resident(7)


class TestInstrRangeInvalidation:
    def test_range_flush(self):
        h = make_hierarchy()
        for block in range(10, 20):
            h.ifetch(block)
        flushed = h.invalidate_instr_range(12, 4)
        assert flushed == [12, 13, 14, 15]
        assert not h.instr_resident(12)
        assert h.instr_resident(11)
