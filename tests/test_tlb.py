"""TLB behaviour: capacity, FIFO replacement, flushes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.tlb import Tlb, TlbEntry


def entry(pid=1, vpage=0, frame=100, is_text=False):
    return TlbEntry(pid, vpage, frame, is_text)


class TestLookup:
    def test_miss_on_empty(self):
        tlb = Tlb(4)
        assert tlb.lookup(1, 0) is None

    def test_hit_after_insert(self):
        tlb = Tlb(4)
        tlb.insert(entry(vpage=3))
        assert tlb.lookup(1, 3).frame == 100

    def test_pid_keyed(self):
        tlb = Tlb(4)
        tlb.insert(entry(pid=1, vpage=3))
        assert tlb.lookup(2, 3) is None

    def test_miss_counters(self):
        tlb = Tlb(4)
        tlb.lookup(1, 0)
        tlb.insert(entry(vpage=0))
        tlb.lookup(1, 0)
        assert tlb.lookups == 2 and tlb.misses == 1
        assert tlb.miss_rate == 0.5


class TestReplacement:
    def test_fifo_eviction(self):
        tlb = Tlb(2)
        tlb.insert(entry(vpage=0))
        tlb.insert(entry(vpage=1))
        _idx, evicted = tlb.insert(entry(vpage=2))
        assert evicted.vpage == 0
        assert tlb.lookup(1, 0) is None
        assert tlb.lookup(1, 1) is not None

    def test_reinsert_does_not_evict(self):
        tlb = Tlb(2)
        tlb.insert(entry(vpage=0))
        tlb.insert(entry(vpage=1))
        _idx, evicted = tlb.insert(entry(vpage=1, frame=200))
        assert evicted is None
        assert tlb.lookup(1, 1).frame == 200

    def test_capacity_never_exceeded(self):
        tlb = Tlb(4)
        for vpage in range(20):
            tlb.insert(entry(vpage=vpage))
        assert len(tlb) == 4

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            Tlb(0)


class TestFlush:
    def test_flush_pid(self):
        tlb = Tlb(8)
        tlb.insert(entry(pid=1, vpage=0))
        tlb.insert(entry(pid=2, vpage=0))
        assert tlb.flush_pid(1) == 1
        assert tlb.lookup(1, 0) is None
        assert tlb.lookup(2, 0) is not None

    def test_flush_frame(self):
        tlb = Tlb(8)
        tlb.insert(entry(pid=1, vpage=0, frame=50))
        tlb.insert(entry(pid=1, vpage=1, frame=60))
        assert tlb.flush_frame(50) == 1
        assert tlb.lookup(1, 0) is None
        assert tlb.lookup(1, 1) is not None


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(1, 4), st.integers(0, 30)), max_size=200))
def test_tlb_capacity_invariant(inserts):
    """However entries are inserted, size <= capacity and the most recent
    64... 8 distinct keys are resident."""
    tlb = Tlb(8)
    for pid, vpage in inserts:
        tlb.insert(TlbEntry(pid, vpage, 100 + vpage, False))
        assert len(tlb) <= 8
        assert tlb.lookup(pid, vpage) is not None
