"""Escape-reference encoding/decoding."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import MachineParams
from repro.cpu.processor import Processor
from repro.memsys.system import MemorySystem
from repro.monitor.escapes import (
    EscapeDecoder,
    EventType,
    Instrumentation,
    NullInstrumentation,
    PAYLOAD_COUNT,
    decode_escape_stream,
    decode_payload,
    payload_address,
    signal_address,
    signal_event,
)
from repro.monitor.hwmonitor import OP_READ, OP_UNCACHED


class TestAddressEncoding:
    def test_signal_addresses_are_odd(self):
        for event in EventType:
            assert signal_address(event) & 1

    def test_payload_addresses_are_odd(self):
        for value in (0, 1, 7, 4096, 123456):
            assert payload_address(value) & 1

    def test_payload_roundtrip(self):
        for value in (0, 1, 7, 4096, 123456):
            assert decode_payload(payload_address(value)) == value

    def test_signal_event_roundtrip(self):
        for event in EventType:
            assert signal_event(signal_address(event)) is event

    def test_even_address_is_not_signal(self):
        assert signal_event(signal_address(EventType.OS_ENTER) + 1) is None

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            payload_address(-1)

    @given(st.integers(0, 1 << 20))
    def test_payload_roundtrip_property(self, value):
        assert decode_payload(payload_address(value)) == value


def emit_and_capture(emit):
    """Run an instrumentation emission and return the uncached addresses."""
    params = MachineParams()
    memsys = MemorySystem(params)
    captured = []
    memsys.bus.attach(lambda txn: captured.append((txn.cpu, txn.addr)))
    proc = Processor(2, params, memsys)
    emit(Instrumentation(), proc)
    return captured


class TestInstrumentation:
    def test_os_enter_emits_signal_plus_payload(self):
        captured = emit_and_capture(lambda i, p: i.os_enter(p, 3))
        assert len(captured) == 2
        assert captured[0][1] == signal_address(EventType.OS_ENTER)
        assert decode_payload(captured[1][1]) == 3

    def test_tlb_update_emits_five_reads(self):
        captured = emit_and_capture(
            lambda i, p: i.tlb_update(p, 1, 0x20, 0x500, 7, True)
        )
        assert len(captured) == 5

    def test_null_instrumentation_silent(self):
        params = MachineParams()
        memsys = MemorySystem(params)
        proc = Processor(0, params, memsys)
        NullInstrumentation().os_enter(proc, 1)
        assert memsys.bus_uncached == 0

    def test_wrong_payload_count_rejected(self):
        params = MachineParams()
        memsys = MemorySystem(params)
        proc = Processor(0, params, memsys)
        with pytest.raises(ValueError):
            Instrumentation()._emit(proc, EventType.OS_ENTER)  # needs 1


class TestDecoder:
    def test_zero_payload_event_immediate(self):
        decoder = EscapeDecoder(4)
        event = decoder.feed(10, 0, signal_address(EventType.OS_EXIT))
        assert event is not None and event.type is EventType.OS_EXIT

    def test_payload_collection(self):
        decoder = EscapeDecoder(4)
        assert decoder.feed(10, 0, signal_address(EventType.PID_SET)) is None
        event = decoder.feed(11, 0, payload_address(42))
        assert event.payloads == (42,)
        assert event.tick == 10  # stamped at the signal

    def test_interleaved_cpus(self):
        decoder = EscapeDecoder(4)
        decoder.feed(0, 0, signal_address(EventType.PID_SET))
        decoder.feed(1, 1, signal_address(EventType.PID_SET))
        event1 = decoder.feed(2, 1, payload_address(7))
        event0 = decoder.feed(3, 0, payload_address(5))
        assert event1.cpu == 1 and event1.payloads == (7,)
        assert event0.cpu == 0 and event0.payloads == (5,)

    def test_stray_odd_read_rejected(self):
        decoder = EscapeDecoder(4)
        with pytest.raises(ValueError):
            decoder.feed(0, 0, payload_address(3))  # no pending signal

    def test_stream_decoder_passes_plain_entries(self):
        entries = [
            (0, 0, 0x1000, OP_READ),
            (1, 0, signal_address(EventType.IDLE_ENTER), OP_UNCACHED),
            (2, 0, 0x2000, OP_READ),
        ]
        out = list(decode_escape_stream(entries, 4))
        assert out[0] == entries[0]
        assert out[1].type is EventType.IDLE_ENTER
        assert out[2] == entries[2]


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 3),
            st.sampled_from(list(EventType)),
            st.lists(st.integers(0, 10000), min_size=4, max_size=4),
        ),
        max_size=40,
    )
)
def test_roundtrip_any_event_sequence(events):
    """Whatever events each CPU emits (interleaved), the decoder
    reproduces them exactly, in order, per CPU."""
    decoder = EscapeDecoder(4)
    expected = {cpu: [] for cpu in range(4)}
    decoded = {cpu: [] for cpu in range(4)}
    tick = 0
    for cpu, event, values in events:
        payloads = tuple(values[: PAYLOAD_COUNT[event]])
        expected[cpu].append((event, payloads))
        result = decoder.feed(tick, cpu, signal_address(event))
        tick += 1
        for value in payloads:
            assert result is None or not payloads
            result = decoder.feed(tick, cpu, payload_address(value))
            tick += 1
        assert result is not None
        decoded[cpu].append((result.type, result.payloads))
    assert decoded == expected
