"""Cache model: direct-mapped and set-associative behaviour."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.params import CacheGeometry
from repro.memsys.cache import Cache, EMPTY


def make_cache(size=1024, assoc=1) -> Cache:
    return Cache(CacheGeometry(size, 16, assoc))


class TestDirectMapped:
    def test_first_access_misses_into_free_line(self):
        cache = make_cache()
        assert cache.access(5) == EMPTY
        assert 5 in cache

    def test_second_access_hits(self):
        cache = make_cache()
        cache.access(5)
        assert cache.access(5) is None

    def test_conflicting_block_evicts(self):
        cache = make_cache(size=1024)  # 64 sets
        cache.access(3)
        victim = cache.access(3 + 64)
        assert victim == 3
        assert 3 not in cache
        assert 3 + 64 in cache

    def test_nonconflicting_blocks_coexist(self):
        cache = make_cache(size=1024)
        cache.access(3)
        assert cache.access(4) == EMPTY
        assert 3 in cache and 4 in cache

    def test_lookup_does_not_fill(self):
        cache = make_cache()
        assert not cache.lookup(7)
        assert 7 not in cache

    def test_occupancy(self):
        cache = make_cache(size=1024)
        for block in range(10):
            cache.access(block)
        assert cache.occupancy() == 10


class TestSetAssociative:
    def test_two_way_holds_two_conflicting(self):
        cache = make_cache(size=1024, assoc=2)  # 32 sets
        cache.access(1)
        assert cache.access(1 + 32) == EMPTY
        assert 1 in cache and 1 + 32 in cache

    def test_lru_eviction(self):
        cache = make_cache(size=1024, assoc=2)
        cache.access(1)
        cache.access(1 + 32)
        cache.access(1)  # refresh: 1 is MRU
        victim = cache.access(1 + 64)
        assert victim == 1 + 32

    def test_hit_refreshes_lru(self):
        cache = make_cache(size=1024, assoc=2)
        cache.access(1)
        cache.access(1 + 32)
        assert cache.access(1 + 32) is None  # MRU already
        victim = cache.access(1 + 64)
        assert victim == 1


class TestInvalidation:
    def test_invalidate_present(self):
        cache = make_cache()
        cache.access(9)
        assert cache.invalidate(9)
        assert 9 not in cache

    def test_invalidate_absent(self):
        cache = make_cache()
        assert not cache.invalidate(9)

    def test_invalidate_all_returns_contents(self):
        cache = make_cache(size=1024)
        for block in (1, 2, 3):
            cache.access(block)
        assert cache.invalidate_all() == [1, 2, 3]
        assert cache.occupancy() == 0

    def test_invalidate_range(self):
        cache = make_cache(size=1024)
        for block in range(10):
            cache.access(block)
        flushed = cache.invalidate_range(4, 3)
        assert flushed == [4, 5, 6]
        assert cache.occupancy() == 7

    def test_invalidated_line_is_free_again(self):
        cache = make_cache(size=1024)
        cache.access(3)
        cache.invalidate(3)
        assert cache.access(3 + 64) == EMPTY


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 511), min_size=1, max_size=300),
       st.sampled_from([1, 2, 4]))
def test_cache_invariants(blocks, assoc):
    """Occupancy bounds, hit-after-fill, and per-set capacity hold for
    any access sequence."""
    cache = Cache(CacheGeometry(1024, 16, assoc))
    for block in blocks:
        cache.access(block)
        # Immediately after an access the block is resident.
        assert block in cache
    assert cache.occupancy() <= cache.geometry.num_blocks
    # No set exceeds its associativity.
    per_set = {}
    for block in cache.resident_blocks:
        per_set.setdefault(block % cache.num_sets, []).append(block)
    assert all(len(ways) <= assoc for ways in per_set.values())


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=1, max_size=200))
def test_bigger_cache_superset_of_smaller(blocks):
    """A direct-mapped cache of twice the size always retains a superset
    of the smaller cache's contents (the Figure 6 sweep premise)."""
    small = Cache(CacheGeometry(512, 16, 1))
    big = Cache(CacheGeometry(1024, 16, 1))
    for block in blocks:
        small.access(block)
        big.access(block)
    assert small.resident_blocks <= big.resident_blocks
