"""Workload-args plumbing: cache-key discipline end to end.

The rule under test: tuned runs (non-empty ``workload_args``) must key
distinctly at every cache layer, while the empty default normalizes away
so every pre-existing key — run cache, exhibit cache, in-memory context
cache — stays byte-identical to before the knob existed.
"""

import pytest

from repro.experiments._base import ExperimentContext, RunSettings
from repro.sim.runcache import RunCache, load_or_run

ARGS = (("skew", 1.2),)


@pytest.fixture
def cache(tmp_path):
    return RunCache(cache_dir=str(tmp_path / "cache"))


class TestCacheRepr:
    def test_default_is_legacy_byte_identical(self):
        assert RunSettings().cache_repr() == (
            "RunSettings(horizon_ms=80.0, warmup_ms=500.0, seed=7, "
            "check=False)"
        )

    def test_tuned_settings_enter_repr(self):
        settings = RunSettings(workload_args=ARGS)
        assert settings.cache_repr().endswith(
            "check=False, workload_args=(('skew', 1.2),))"
        )

    def test_dict_and_pairs_repr_identically(self):
        by_dict = RunSettings(workload_args={"skew": 1.2}).cache_repr()
        by_pairs = RunSettings(workload_args=ARGS).cache_repr()
        assert by_dict == by_pairs


class TestResolved:
    def test_empty_args_leave_sim_kwargs_empty(self):
        ctx = ExperimentContext(RunSettings())
        *_rest, sim_kwargs, _shards = ctx._resolved({})
        assert sim_kwargs == {}
        *_rest, sim_kwargs, _shards = ctx._resolved({"workload_args": ()})
        assert sim_kwargs == {}

    def test_tuned_args_resolve_canonically(self):
        ctx = ExperimentContext(RunSettings())
        *_rest, sim_kwargs, _shards = ctx._resolved(
            {"workload_args": {"skew": 1.2, "keys": 64}}
        )
        assert sim_kwargs == {
            "workload_args": (("keys", 64), ("skew", 1.2))
        }

    def test_settings_args_flow_into_runs(self):
        ctx = ExperimentContext(RunSettings(workload_args=ARGS))
        *_rest, sim_kwargs, _shards = ctx._resolved({})
        assert sim_kwargs == {"workload_args": ARGS}

    def test_memory_key_canonicalizes(self):
        by_dict = ExperimentContext._memory_key(
            "kv", {"workload_args": {"skew": 1.2}}
        )
        by_pairs = ExperimentContext._memory_key("kv", {"workload_args": ARGS})
        bare = ExperimentContext._memory_key("kv", {})
        empty = ExperimentContext._memory_key("kv", {"workload_args": ()})
        assert by_dict == by_pairs
        assert bare == empty
        assert by_pairs != bare


class TestRunKeys:
    def test_tuned_key_differs(self, cache):
        base = cache.run_key("kv", 2.0, 0.0, 3)
        tuned = cache.run_key("kv", 2.0, 0.0, 3, {"workload_args": ARGS})
        assert base != tuned

    def test_empty_args_normalize_to_default_entry(self, cache):
        """A default run and an explicit empty-args run share one entry."""
        load_or_run(cache, "kv", 1.0, 0.0, 3, {})
        load_or_run(cache, "kv", 1.0, 0.0, 3, {"workload_args": ()})
        assert cache.hits == 1 and cache.misses == 1

    def test_tuned_run_misses_default_entry(self, cache):
        load_or_run(cache, "kv", 1.0, 0.0, 3, {})
        run, _ = load_or_run(
            cache, "kv", 1.0, 0.0, 3, {"workload_args": ARGS}
        )
        assert cache.hits == 0 and cache.misses == 2
        assert run.simulation.workload.skew == 1.2

    def test_tuned_entry_round_trips(self, cache):
        load_or_run(cache, "kv", 1.0, 0.0, 3, {"workload_args": ARGS})
        fresh = RunCache(cache_dir=cache.cache_dir)
        run, _ = load_or_run(
            fresh, "kv", 1.0, 0.0, 3, {"workload_args": ARGS}
        )
        assert fresh.hits == 1
        assert run.simulation.workload.skew == 1.2


class TestServicePlumbing:
    def test_malformed_query_arg_is_400(self):
        from repro.service.app import ServiceApp, ServiceConfig

        app = ServiceApp(ServiceConfig(no_cache=True))
        reply = app.handle("GET", "/exhibits/table1", "workload_arg=skew")
        assert reply.status == 400
        assert "name=value" in reply.json()["error"]

    def test_apply_fidelity_folds_args_into_settings(self):
        from repro.service.jobs import apply_fidelity

        settings = RunSettings()
        same = apply_fidelity(settings, "detailed", 0)
        assert same is settings
        tuned = apply_fidelity(
            settings, "detailed", 0, workload_args=ARGS
        )
        assert tuned.workload_args == ARGS
        assert tuned.cache_repr() != settings.cache_repr()

    def test_cli_rejects_malformed_args(self, capsys):
        from repro.experiments.cli import main

        code = main(["run", "table1", "--workload-arg", "skew"])
        assert code == 2
        assert "name=value" in capsys.readouterr().err


class TestSkewExperiment:
    @pytest.fixture(scope="class")
    def exhibit(self):
        from repro.experiments.registry import run_experiment

        ctx = ExperimentContext(RunSettings(horizon_ms=6.0, warmup_ms=60.0))
        built = run_experiment("figure-skew", ctx)
        # Every swept point is a distinct tuned run in the context cache.
        assert len(ctx._runs) == len(built.rows)
        # Alias and canonical id share the context cache entry.
        assert run_experiment("skew", ctx) is built
        return built

    def test_row_structure(self, exhibit):
        assert [row[0] for row in exhibit.rows] == \
            ["kv", "kv", "kv", "kv", "netserver"]
        assert [row[1] for row in exhibit.rows[:4]] == \
            ["0", "0.7", "0.99", "1.2"]

    def test_hit_rate_responds_to_skew(self, exhibit):
        by_skew = {row[1]: float(row[2]) for row in exhibit.rows[:4]}
        assert by_skew["1.2"] > by_skew["0"] + 5.0
        assert by_skew["0.99"] >= by_skew["0"]

    def test_netserver_drives_streams_lock(self, exhibit):
        netserver = exhibit.rows[-1]
        streams_col = list(exhibit.columns).index("streams_x/ms")
        assert float(netserver[streams_col]) > 0.0

    def test_kv_only_knobs_do_not_reach_netserver(self):
        """A tuned sweep with kv-only knobs must not crash the last row."""
        from repro.experiments.figure_skew import _accepted
        from repro.workloads.kv import KvWorkload
        from repro.workloads.netserver import NetserverWorkload

        base = {"keys": 4096, "workers": 3, "skew": 1.2, "servers": 2}
        assert _accepted(KvWorkload, base) == {
            "keys": 4096, "workers": 3, "skew": 1.2
        }
        assert _accepted(NetserverWorkload, base) == {
            "skew": 1.2, "servers": 2
        }

    def test_chart_renders(self, exhibit):
        from repro.experiments.figure_skew import EXHIBIT_ID, chart
        from repro.experiments.registry import run_experiment

        ctx = ExperimentContext(RunSettings(horizon_ms=6.0, warmup_ms=60.0))
        ctx.exhibit_cache[EXHIBIT_ID] = exhibit
        figure = chart(ctx)
        assert "bchit%" in figure and "0.99" in figure
