"""Interrupt handlers: clock, quantum expiry, disk, terminal."""

import pytest

from repro.common.types import HighLevelOp, InterruptKind, Mode
from repro.kernel.interrupts import DEVICE_CPU
from repro.kernel.process import Image, ProcState
from tests.test_kernel_core import dummy_driver, make_kernel


@pytest.fixture
def env():
    kernel, cpus = make_kernel()
    image = Image("x", text_pages=1, file_ino=1)
    process = kernel.create_process("p", image, dummy_driver())
    return kernel, cpus, process


class TestClock:
    def test_tick_counts(self, env):
        kernel, cpus, _ = env
        with kernel.os_invocation(cpus[0], HighLevelOp.INTERRUPT):
            kernel.interrupts.clock(cpus[0])
        assert kernel.interrupts.counts[InterruptKind.CLOCK] == 1

    def test_tick_takes_calock(self, env):
        kernel, cpus, _ = env
        before = kernel.locks.lock("calock").stats.acquires
        with kernel.os_invocation(cpus[0], HighLevelOp.INTERRUPT):
            kernel.interrupts.clock(cpus[0])
        assert kernel.locks.lock("calock").stats.acquires == before + 1

    def test_no_resched_without_current(self, env):
        kernel, cpus, _ = env
        with kernel.os_invocation(cpus[0], HighLevelOp.INTERRUPT):
            assert not kernel.interrupts.clock(cpus[0])

    def test_quantum_expiry_detected(self, env):
        kernel, cpus, process = env
        kernel.scheduler.setrq(cpus[0], process)
        kernel.scheduler.dispatch(cpus[0])
        cpus[0].advance(kernel.tuning.quantum_cycles + 1)
        with kernel.os_invocation(cpus[0], HighLevelOp.INTERRUPT):
            assert kernel.interrupts.clock(cpus[0])

    def test_fresh_quantum_not_expired(self, env):
        kernel, cpus, process = env
        kernel.scheduler.setrq(cpus[0], process)
        kernel.scheduler.dispatch(cpus[0])
        with kernel.os_invocation(cpus[0], HighLevelOp.INTERRUPT):
            assert not kernel.interrupts.clock(cpus[0])

    def test_clock_delivers_timers(self, env):
        kernel, cpus, process = env
        kernel.sleep_until(process, 100)
        cpus[0].advance(200)
        with kernel.os_invocation(cpus[0], HighLevelOp.INTERRUPT):
            kernel.interrupts.clock(cpus[0])
        assert process.state is ProcState.RUNNABLE

    def test_priority_decay_every_fourth_tick(self, env):
        kernel, cpus, process = env
        process.priority = 40
        for _ in range(4):
            with kernel.os_invocation(cpus[0], HighLevelOp.INTERRUPT):
                kernel.interrupts.clock(cpus[0])
        assert process.priority == 39


class TestDevices:
    def test_disk_interrupt_completes_io(self, env):
        kernel, cpus, process = env
        kernel.fs.register_file(100, 8192, "f")
        kernel.current[0] = process
        process.state = ProcState.RUNNING
        cpus[0].set_mode(Mode.USER)
        kernel.fs.do_read(cpus[0], process, 100, 0, 1024, 0)
        kernel.current[0] = None
        due = kernel.fs.disk.next_time()
        cpus[DEVICE_CPU].advance_to(due + 1)
        kernel.service_disk(cpus[DEVICE_CPU])
        assert kernel.interrupts.counts[InterruptKind.DISK] == 1
        assert process.state is ProcState.RUNNABLE

    def test_terminal_interrupt_buffers_and_wakes(self, env):
        kernel, cpus, process = env
        kernel.sleep(process, ("tty", 3))
        with kernel.os_invocation(cpus[0], HighLevelOp.INTERRUPT):
            kernel.interrupts.terminal(cpus[0], 3, 12)
        assert kernel.tty_input[3] == 12
        assert process.state is ProcState.RUNNABLE

    def test_inter_cpu_footprint(self, env):
        kernel, cpus, _ = env
        with kernel.os_invocation(cpus[1], HighLevelOp.INTERRUPT):
            kernel.interrupts.inter_cpu(cpus[1])
        assert kernel.interrupts.counts[InterruptKind.INTER_CPU] == 1

    def test_network_on_cpu1(self, env):
        kernel, cpus, _ = env
        with kernel.os_invocation(cpus[1], HighLevelOp.INTERRUPT):
            kernel.interrupts.network(cpus[1])
        assert kernel.interrupts.counts[InterruptKind.NETWORK] == 1
