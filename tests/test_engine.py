"""User-mode engine: action execution semantics."""

import pytest

from repro.common.types import Mode
from repro.kernel.process import Image, ProcState
from repro.sim.usermode import BLOCKED, EXITED, RAN, UserEngine
from repro.workloads import actions as A
from repro.workloads.base import EngineConfig
from tests.test_kernel_core import make_kernel
from repro.common.rng import substream


def make_engine(driver_factory, num_procs=1):
    kernel, cpus = make_kernel()
    kernel.fs.register_file(50, 16 * 4096, "binary")
    kernel.fs.register_file(60, 32 * 1024, "file")
    engine = UserEngine(kernel, EngineConfig(), substream(0, "engine-test"))
    image = Image("prog", text_pages=2, file_ino=50)
    from repro.workloads.base import preload_image

    preload_image(kernel, image)
    procs = []
    for i in range(num_procs):
        process = kernel.create_process(f"p{i}", image, driver_factory(i))
        process.data_pages = 8
        procs.append(process)
    kernel.current[0] = procs[0]
    procs[0].state = ProcState.RUNNING
    procs[0].note_dispatch(0)
    cpus[0].set_mode(Mode.USER)
    return kernel, cpus, engine, procs


SLICE = 8000


class TestCompute:
    def test_compute_consumes_budget(self):
        def driver(_i):
            yield A.Compute(100_000)

        kernel, cpus, engine, procs = make_engine(driver)
        outcome = engine.run_slice(cpus[0], procs[0], SLICE)
        assert outcome == RAN
        assert cpus[0].mode_cycles[Mode.USER] >= SLICE * 0.8

    def test_compute_finishes_then_exits(self):
        def driver(_i):
            yield A.Compute(1000)

        kernel, cpus, engine, procs = make_engine(driver)
        outcome = engine.run_slice(cpus[0], procs[0], SLICE * 100)
        assert outcome == EXITED
        assert procs[0].exited

    def test_compute_faults_demand_zero(self):
        def driver(_i):
            yield A.Compute(500_000, write_fraction=1.0)

        kernel, cpus, engine, procs = make_engine(driver)
        engine.run_slice(cpus[0], procs[0], 200_000)
        assert kernel.tlbfaults.demand_zero_faults > 0


class TestFileActions:
    def test_read_blocks_then_completes(self):
        def driver(_i):
            yield A.ReadFile(60, 0, 2048)
            yield A.Compute(10**9)

        kernel, cpus, engine, procs = make_engine(driver)
        outcome = engine.run_slice(cpus[0], procs[0], SLICE)
        assert outcome == BLOCKED
        assert procs[0].state is ProcState.SLEEPING
        from tests.test_fs import drain_disk

        drain_disk(kernel, cpus[0])
        kernel.scheduler.dispatch(cpus[0])
        outcome = engine.run_slice(cpus[0], procs[0], SLICE)
        assert outcome == RAN  # read finished, compute underway
        assert kernel.fs.read_bytes == 2048

    def test_write_does_not_block(self):
        def driver(_i):
            yield A.WriteFile(60, 0, 1024)
            yield A.Compute(10**9)

        kernel, cpus, engine, procs = make_engine(driver)
        assert engine.run_slice(cpus[0], procs[0], SLICE) == RAN

    def test_open_counts_syscall(self):
        def driver(_i):
            yield A.OpenFile(60)
            yield A.Compute(10**9)

        kernel, cpus, engine, procs = make_engine(driver)
        engine.run_slice(cpus[0], procs[0], SLICE)
        assert kernel.syscalls.counts["open"] == 1


class TestUserLocks:
    def test_uncontended_acquire_release(self):
        def driver(_i):
            yield A.UserLockAcquire(1)
            yield A.Compute(100)
            yield A.UserLockRelease(1)
            yield A.Compute(10**9)

        kernel, cpus, engine, procs = make_engine(driver)
        # Generous slice: the first compute touch demand-faults a page
        # (a ~10k-cycle bclear) before the release can run.
        engine.run_slice(cpus[0], procs[0], SLICE * 20)
        lock = engine.user_locks[1]
        assert lock.acquires == 1
        assert lock.holder_pid is None

    def test_contended_acquire_sginaps(self):
        def holder(_i):
            yield A.UserLockAcquire(1)
            yield A.Compute(10**9)

        kernel, cpus, engine, procs = make_engine(holder, num_procs=2)
        engine.run_slice(cpus[0], procs[0], SLICE)  # p0 holds lock 1
        waiter = procs[1]
        waiter.driver = iter([A.UserLockAcquire(1), A.Compute(10**9)])
        kernel.current[1] = waiter
        waiter.state = ProcState.RUNNING
        cpus[1].set_mode(Mode.USER)
        sginaps = kernel.syscalls.counts["sginap"]
        engine.run_slice(cpus[1], waiter, SLICE)
        assert kernel.syscalls.counts["sginap"] > sginaps
        assert engine.lock_sginaps > 0

    def test_reacquire_by_holder_rejected(self):
        def driver(_i):
            yield A.UserLockAcquire(1)
            yield A.UserLockAcquire(1)

        kernel, cpus, engine, procs = make_engine(driver)
        with pytest.raises(RuntimeError):
            engine.run_slice(cpus[0], procs[0], SLICE * 10)

    def test_short_overlap_spins_without_sginap(self):
        def driver(_i):
            yield A.Compute(10**9)

        kernel, cpus, engine, procs = make_engine(driver)
        from repro.sim.usermode import UserLock

        # A recorded hold interval ending 300 cycles from now.
        engine.user_locks[9] = UserLock(holder_pid=None, release_time=300)
        action = A.UserLockAcquire(9)
        procs[0].pending_action = action
        outcome = engine._execute(cpus[0], procs[0], action, 10**9)
        assert outcome == "done"
        assert action.spins_done > 0
        assert kernel.syscalls.counts["sginap"] == 0


class TestProcessActions:
    def test_fork_returns_child_via_action(self):
        def child_driver():
            yield A.Compute(100)

        def driver(_i):
            fork = A.Fork("kid", child_driver)
            yield fork
            assert fork.child is not None
            yield A.Compute(10**9)

        kernel, cpus, engine, procs = make_engine(driver)
        engine.run_slice(cpus[0], procs[0], SLICE)
        assert kernel.syscalls.counts["fork"] == 1

    def test_sleepfor_blocks_once(self):
        def driver(_i):
            yield A.SleepFor(1.0)
            yield A.Compute(10**9)

        kernel, cpus, engine, procs = make_engine(driver)
        assert engine.run_slice(cpus[0], procs[0], SLICE) == BLOCKED
        # Wake via the timer and confirm it does NOT re-sleep.
        procs[0].state = ProcState.RUNNING
        kernel.current[0] = procs[0]
        cpus[0].advance(100_000)
        kernel.pop_due_timers(cpus[0])
        assert engine.run_slice(cpus[0], procs[0], SLICE) == RAN

    def test_termwait_consumes_pending_input(self):
        def driver(_i):
            yield A.TermWait(3)
            yield A.Compute(10**9)

        kernel, cpus, engine, procs = make_engine(driver)
        kernel.tty_input[3] = 10
        assert engine.run_slice(cpus[0], procs[0], SLICE) == RAN
        assert kernel.tty_input[3] == 0

    def test_termwait_blocks_without_input(self):
        def driver(_i):
            yield A.TermWait(3)

        kernel, cpus, engine, procs = make_engine(driver)
        assert engine.run_slice(cpus[0], procs[0], SLICE) == BLOCKED

    def test_semop_block_and_retry(self):
        def driver(_i):
            yield A.SemOp(5, -1)
            yield A.Compute(10**9)

        kernel, cpus, engine, procs = make_engine(driver)
        assert engine.run_slice(cpus[0], procs[0], SLICE) == BLOCKED
        kernel.semaphores[5] = 1
        procs[0].state = ProcState.RUNNING
        kernel.current[0] = procs[0]
        assert engine.run_slice(cpus[0], procs[0], SLICE) == RAN

    def test_driver_exhaustion_exits(self):
        def driver(_i):
            yield A.Misc()

        kernel, cpus, engine, procs = make_engine(driver)
        assert engine.run_slice(cpus[0], procs[0], SLICE * 10) == EXITED
