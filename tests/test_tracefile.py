"""Trace persistence round-trips."""

import pytest

from repro.monitor.hwmonitor import Trace, TraceSegment
from repro.monitor.tracefile import load_trace, save_trace


def make_trace() -> Trace:
    trace = Trace()
    seg1 = TraceSegment(start_cycles=0, end_cycles=1000)
    seg1.entries = [(0, 0, 0x1000, 0), (5, 1, 0x2000, 1), (9, 2, 0xF0001, 2)]
    seg2 = TraceSegment(start_cycles=2000, end_cycles=2000)  # empty
    trace.segments = [seg1, seg2]
    return trace


class TestRoundTrip:
    def test_entries_preserved(self, tmp_path):
        path = tmp_path / "trace.npz"
        original = make_trace()
        save_trace(original, path)
        loaded = load_trace(path)
        assert list(loaded.all_entries()) == list(original.all_entries())

    def test_segment_structure_preserved(self, tmp_path):
        path = tmp_path / "trace.npz"
        save_trace(make_trace(), path)
        loaded = load_trace(path)
        assert len(loaded.segments) == 2
        assert loaded.segments[0].start_cycles == 0
        assert loaded.segments[0].end_cycles == 1000
        assert loaded.segments[1].entries == []

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_trace(Trace(), path)
        assert len(load_trace(path)) == 0

    def test_real_trace_roundtrip_and_reanalysis(self, tmp_path, pmake_run):
        """A captured trace analyzed from disk gives identical results."""
        from repro.analysis.report import analyze_trace
        from repro.analysis.decode import TraceAnalyzer

        path = tmp_path / "pmake.npz"
        save_trace(pmake_run.trace, path)
        loaded = load_trace(path)
        params = pmake_run.params

        def analyze(trace):
            analyzer = TraceAnalyzer(
                "pmake", params.num_cpus, params.icache.size_bytes,
                params.dcache_l2.size_bytes, layout=pmake_run.kernel.layout,
                datamap=pmake_run.kernel.datamap, keep_imiss_stream=False,
            )
            return analyzer.analyze(trace, stats_from_tick=0)

        direct = analyze(pmake_run.trace)
        from_disk = analyze(loaded)
        assert from_disk.miss_counts == direct.miss_counts
        assert from_disk.user_ticks == direct.user_ticks
