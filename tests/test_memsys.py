"""MemorySystem: coherence, classification hooks, stall costs, flushes."""

import pytest

from repro.common.types import MissClass, RefDomain
from repro.memsys.bus import BusOp
from repro.memsys.system import MemorySystem
from repro.memsys.tracking import DATA, INSTR

OS = RefDomain.OS
APP = RefDomain.APP


def classes(memsys, domain=None, kind=None):
    return memsys.truth.class_counts(domain=domain, kind=kind)


class TestStallCosts:
    def test_ifetch_miss_costs_bus_stall(self, memsys):
        assert memsys.ifetch(0, 0, 100, OS, 0) == 35

    def test_ifetch_hit_is_free(self, memsys):
        memsys.ifetch(0, 0, 100, OS, 0)
        assert memsys.ifetch(1, 0, 100, OS, 0) == 0

    def test_dread_miss_costs_bus_stall(self, memsys):
        assert memsys.dread(0, 0, 100, OS, 0) == 35

    def test_l2_hit_costs_15(self, memsys):
        memsys.dread(0, 0, 100, OS, 0)
        memsys.dread(1, 0, 100 + 4096, OS, 0)  # evict from L1 only
        assert memsys.dread(2, 0, 100, OS, 0) == 15

    def test_uncached_read_costs_bus_stall(self, memsys):
        assert memsys.uncached_read(0, 0, 0xF0001) == 35

    def test_owned_write_is_free(self, memsys):
        memsys.dwrite(0, 0, 100, OS, 0)
        assert memsys.dwrite(1, 0, 100, OS, 0) == 0


class TestCoherence:
    def test_write_invalidates_other_copies(self, memsys):
        memsys.dread(0, 0, 100, OS, 0)   # CPU0 caches it
        memsys.dread(1, 1, 100, OS, 0)   # CPU1 caches it
        memsys.dwrite(2, 1, 100, OS, 0)  # CPU1 writes: CPU0 invalidated
        # CPU0's re-read is a Sharing miss.
        memsys.dread(3, 0, 100, OS, 0)
        assert classes(memsys, OS)[MissClass.SHARING] == 1

    def test_write_upgrade_single_bus_txn(self, memsys):
        memsys.dread(0, 0, 100, OS, 0)
        writes_before = memsys.bus_writes
        memsys.dwrite(1, 0, 100, OS, 0)  # upgrade: cached but unowned
        assert memsys.bus_writes == writes_before + 1

    def test_repeat_writes_by_owner_silent(self, memsys):
        memsys.dwrite(0, 0, 100, OS, 0)
        writes = memsys.bus_writes
        memsys.dwrite(1, 0, 100, OS, 0)
        memsys.dwrite(2, 0, 100, OS, 0)
        assert memsys.bus_writes == writes

    def test_read_by_other_downgrades_ownership(self, memsys):
        memsys.dwrite(0, 0, 100, OS, 0)   # CPU0 owns
        memsys.dread(1, 1, 100, OS, 0)    # CPU1 reads: shared now
        writes = memsys.bus_writes
        memsys.dwrite(2, 0, 100, OS, 0)   # CPU0 must re-upgrade
        assert memsys.bus_writes == writes + 1

    def test_icaches_not_coherent(self, memsys):
        """A data write does NOT invalidate I-cache copies (software
        flushes only, per the 4D/340)."""
        memsys.ifetch(0, 0, 100, OS, 0)
        memsys.dwrite(1, 1, 100, OS, 0)
        assert memsys.ifetch(2, 0, 100, OS, 0) == 0  # still a hit


class TestClassification:
    def test_cold_then_dispos(self, memsys):
        memsys.ifetch(0, 0, 100, OS, 0)
        memsys.ifetch(1, 0, 100 + 4096, OS, 0)  # OS displaces
        memsys.ifetch(2, 0, 100, OS, 0)
        counts = classes(memsys, OS, INSTR)
        assert counts[MissClass.COLD] == 2
        assert counts[MissClass.DISPOS] == 1

    def test_dispap_when_app_displaces(self, memsys):
        memsys.ifetch(0, 0, 100, OS, 0)
        memsys.ifetch(1, 0, 100 + 4096, APP, 0)
        memsys.ifetch(2, 0, 100, OS, 0)
        assert classes(memsys, OS, INSTR)[MissClass.DISPAP] == 1

    def test_dispossame_within_epoch(self, memsys):
        memsys.ifetch(0, 0, 100, OS, 5)
        memsys.ifetch(1, 0, 100 + 4096, OS, 5)
        memsys.ifetch(2, 0, 100, OS, 5)
        assert memsys.truth.dispossame_counts[(OS, INSTR)] == 1

    def test_not_dispossame_across_epochs(self, memsys):
        memsys.ifetch(0, 0, 100, OS, 5)
        memsys.ifetch(1, 0, 100 + 4096, OS, 5)
        memsys.ifetch(2, 0, 100, OS, 6)  # the application ran in between
        assert memsys.truth.dispossame_counts.get((OS, INSTR), 0) == 0

    def test_inval_after_full_flush(self, memsys):
        memsys.ifetch(0, 0, 100, OS, 0)
        memsys.flush_all_icaches()
        memsys.ifetch(1, 0, 100, OS, 0)
        assert classes(memsys, OS, INSTR)[MissClass.INVAL] == 1

    def test_flush_range(self, memsys):
        memsys.ifetch(0, 0, 100, OS, 0)
        flushed = memsys.flush_icache_range(100 * 16, 16)
        assert flushed == 1
        memsys.ifetch(1, 0, 100, OS, 0)
        assert classes(memsys, OS, INSTR)[MissClass.INVAL] == 1

    def test_uncached_counted_separately(self, memsys):
        memsys.uncached_read(0, 0, 0xF0001)
        assert classes(memsys, OS)[MissClass.UNCACHED] == 1

    def test_per_cpu_cold(self, memsys):
        memsys.dread(0, 0, 100, OS, 0)
        memsys.dread(1, 1, 100, OS, 0)  # first time for CPU1: also cold
        assert classes(memsys, OS, DATA)[MissClass.COLD] == 2
