"""Sharded/vectorized analysis core: byte-identity against the serial path.

Every test here pins the same contract: the shard count (and the
vectorized Figure 6 replay) is a wall-clock knob only — outputs must be
*identical* to the serial reference, field for field and, for the
ordered Counter fields the exhibit tables iterate, key order for key
order.
"""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro.analysis.decode import MONITOR_FIELDS, TraceAnalysis
from repro.analysis.report import analyze_trace
from repro.analysis.sweeps import (
    FLUSH_CPU,
    simulate_icache_config,
    simulate_icache_sweep,
)
from repro.monitor.hwmonitor import OP_UNCACHED
from repro.sanitizers import SeamMismatch, SeamRecord, verify_seams
from repro.sim.runcache import load_or_run
from repro.sim.sharded import (
    SHARD_STATS,
    ShardStats,
    pack_imiss_stream,
    plan_boundaries,
    resolve_shards,
    sharded_analysis,
    simulate_icache_sweep_sharded,
    vector_icache_config,
)


def _assert_identical(sharded: TraceAnalysis, serial: TraceAnalysis) -> None:
    """Full field compare, including insertion order of Counter fields."""
    for name in TraceAnalysis.__dataclass_fields__:
        got, want = getattr(sharded, name), getattr(serial, name)
        assert got == want, f"{name}: {got!r} != {want!r}"
        if isinstance(want, Counter):
            assert list(got.items()) == list(want.items()), f"{name} key order"


@pytest.fixture(scope="module")
def serial_analysis(pmake_run) -> TraceAnalysis:
    return analyze_trace(pmake_run).analysis


@pytest.fixture(scope="module")
def tiny_run():
    """The smallest run the simulator produces (a few hundred entries)."""
    run, _ = load_or_run(None, "pmake", 0.02, 0.2, seed=3)
    return run


# ----------------------------------------------------------------------
# Shard-count resolution and boundary planning
# ----------------------------------------------------------------------
class TestResolveShards:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        assert resolve_shards() == 1
        assert resolve_shards(None) == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "8")
        assert resolve_shards(3) == 3

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "6")
        assert resolve_shards() == 6

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARDS", "lots")
        with pytest.raises(ValueError, match="REPRO_SHARDS"):
            resolve_shards()

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            resolve_shards(0)
        with pytest.raises(ValueError, match=">= 1"):
            resolve_shards(-2)


class TestPlanBoundaries:
    def test_even_split(self):
        assert plan_boundaries(100, 4) == [25, 50, 75]

    def test_single_shard_has_no_cuts(self):
        assert plan_boundaries(100, 1) == []

    def test_more_shards_than_entries_collapses(self):
        cuts = plan_boundaries(5, 100)
        assert cuts == [1, 2, 3, 4]  # one chunk per entry, no degenerates

    def test_empty_stream(self):
        assert plan_boundaries(0, 8) == []

    def test_strictly_increasing_interior(self):
        for n in (1, 2, 3, 7, 100, 1001):
            for shards in (1, 2, 3, 8, 64):
                cuts = plan_boundaries(n, shards)
                assert all(0 < c < n for c in cuts)
                assert cuts == sorted(set(cuts))
                assert len(cuts) <= shards - 1


# ----------------------------------------------------------------------
# Sharded analysis == serial analysis
# ----------------------------------------------------------------------
class TestShardedIdentity:
    @pytest.mark.parametrize("shards", [2, 3, 7])
    def test_in_process_chunks_match_serial(
        self, pmake_run, serial_analysis, shards
    ):
        merged = sharded_analysis(pmake_run, shards, use_pool=False)
        _assert_identical(merged, serial_analysis)

    def test_pooled_chunks_match_serial(self, pmake_run, serial_analysis):
        merged = sharded_analysis(pmake_run, 4)
        _assert_identical(merged, serial_analysis)

    def test_boundary_mid_escape_sequence(self, pmake_run, serial_analysis):
        """A seam splitting an escape payload from its header must not
        corrupt decoding — the checkpoint carries the pending escape."""
        entries = [e for s in pmake_run.trace.segments for e in s.entries]
        cut = next(
            i for i in range(1, len(entries))
            if entries[i - 1][3] == OP_UNCACHED and entries[i][3] == OP_UNCACHED
        )
        merged = sharded_analysis(
            pmake_run, 2, boundaries=[cut], use_pool=False
        )
        _assert_identical(merged, serial_analysis)

    def test_more_shards_than_entries(self, tiny_run):
        entries = sum(len(s.entries) for s in tiny_run.trace.segments)
        merged = sharded_analysis(tiny_run, entries + 7, use_pool=False)
        _assert_identical(merged, analyze_trace(tiny_run).analysis)

    def test_shards_one_routes_legacy_serial(self, pmake_run, serial_analysis):
        _assert_identical(
            analyze_trace(pmake_run, shards=1).analysis, serial_analysis
        )

    def test_analyze_trace_routes_sharded(self, pmake_run, serial_analysis):
        _assert_identical(
            analyze_trace(pmake_run, shards=3).analysis, serial_analysis
        )

    def test_without_imiss_stream(self, pmake_run):
        serial = analyze_trace(pmake_run, keep_imiss_stream=False).analysis
        merged = sharded_analysis(
            pmake_run, 3, keep_imiss_stream=False, use_pool=False
        )
        _assert_identical(merged, serial)
        assert merged.imiss_stream == []


# ----------------------------------------------------------------------
# Seam crosscheck
# ----------------------------------------------------------------------
class TestServerWorkloadShardedIdentity:
    """The new server workloads hold the same serial-vs-sharded contract."""

    @pytest.mark.parametrize("name", ["kv", "netserver"])
    def test_serial_vs_four_shards(self, name):
        run, _ = load_or_run(None, name, 4.0, 20.0, seed=3)
        serial = analyze_trace(run).analysis
        sharded = analyze_trace(run, shards=4).analysis
        _assert_identical(sharded, serial)


class TestSeams:
    def _seam(self, cumulative, index=1, entry_index=10):
        counters = dict.fromkeys(MONITOR_FIELDS, 0)
        counters.update(cumulative)
        return SeamRecord(
            index=index, entry_index=entry_index, cumulative=counters
        )

    def _chunks(self, *counts):
        return [
            {**dict.fromkeys(MONITOR_FIELDS, 0), "monitor_writes": count}
            for count in counts
        ]

    def test_matching_seams_report_ok(self):
        seams = [
            self._seam({"monitor_writes": 4}, index=1),
            self._seam({"monitor_writes": 9}, index=2, entry_index=20),
        ]
        lines = verify_seams(seams, self._chunks(4, 5, 1))
        assert len(lines) == 2
        assert all("ok" in line for line in lines)

    def test_divergent_splice_raises(self):
        seams = [self._seam({"monitor_writes": 4})]
        with pytest.raises(SeamMismatch, match="monitor_writes"):
            verify_seams(seams, self._chunks(3, 5))

    def test_no_seams_no_lines(self):
        assert verify_seams([], self._chunks(7)) == []

    def test_sharded_analysis_verifies_every_seam(self, pmake_run):
        SHARD_STATS.reset()
        sharded_analysis(pmake_run, 5, use_pool=False)
        assert len(SHARD_STATS.seam_lines) == 4


# ----------------------------------------------------------------------
# Per-shard throughput accounting
# ----------------------------------------------------------------------
class TestShardStats:
    def test_record_and_stats(self):
        stats = ShardStats()
        stats.record(
            [
                {"shard": 0, "entries": 60, "seconds": 0.5, "refs_per_sec": 120.0},
                {"shard": 1, "entries": 40, "seconds": 0.5, "refs_per_sec": 80.0},
            ],
            scout_seconds=0.25,
            wall_seconds=2.0,
            seam_lines=["seam 1 ok"],
        )
        snap = stats.stats()
        assert snap["total_entries"] == 100
        assert snap["total_refs_per_sec"] == pytest.approx(50.0)
        assert snap["seams_ok"] == 1
        line = stats.stats_line()
        assert "shards[2]" in line and "s0=120/s" in line and "1 seams ok" in line

    def test_reset_reads_serial(self):
        stats = ShardStats()
        stats.record(
            [{"shard": 0, "entries": 1, "seconds": 1.0, "refs_per_sec": 1.0}],
            0.0, 1.0, [],
        )
        stats.reset()
        assert stats.stats_line() == "shards[1] serial"
        assert stats.stats()["total_entries"] == 0

    def test_global_instance_updated_by_run(self, pmake_run):
        SHARD_STATS.reset()
        sharded_analysis(pmake_run, 2, use_pool=False)
        snap = SHARD_STATS.stats()
        assert len(snap["shards"]) == 2
        assert snap["total_entries"] > 0
        assert snap["total_refs_per_sec"] > 0


# ----------------------------------------------------------------------
# Vectorized Figure 6 replay
# ----------------------------------------------------------------------
class TestVectorizedSweep:
    @pytest.fixture(scope="class")
    def stream(self, pmake_run):
        return analyze_trace(pmake_run).analysis.imiss_stream

    def test_vector_matches_scalar_on_real_stream(self, stream):
        packed = pack_imiss_stream(stream)
        for size in (64 * 1024, 256 * 1024, 1024 * 1024):
            assert vector_icache_config(packed, size) == simulate_icache_config(
                stream, 4, size, 1
            )

    def test_sharded_sweep_matches_serial_sweep(self, stream):
        serial = simulate_icache_sweep(stream, 4)
        assert simulate_icache_sweep_sharded(stream, 4, use_pool=False) == serial
        assert simulate_icache_sweep_sharded(stream, 4, use_pool=True) == serial

    def test_random_streams_match_scalar(self):
        """Adversarial fuzz: flush-heavy synthetic streams across small
        caches must agree with the scalar replay exactly, for both the
        direct-mapped and the 2-way LRU vector replays."""
        rng = random.Random(1992)
        for _ in range(40):
            stream = []
            for _ in range(rng.randrange(0, 300)):
                if rng.random() < 0.08:
                    stream.append((FLUSH_CPU, 0, False, False))
                else:
                    stream.append((
                        rng.randrange(4),
                        rng.randrange(40),
                        rng.random() < 0.5,
                        rng.random() < 0.7,
                    ))
            packed = pack_imiss_stream(stream)
            for size_blocks in (4, 16, 64):
                size = size_blocks * 16
                for assoc in (1, 2):
                    assert vector_icache_config(packed, size, 16, assoc) == \
                        simulate_icache_config(stream, 4, size, assoc), \
                        (assoc, stream)

    def test_vector_assoc2_matches_scalar_on_real_stream(self, stream):
        packed = pack_imiss_stream(stream)
        for size in (128 * 1024, 512 * 1024, 1024 * 1024):
            assert vector_icache_config(packed, size, 16, 2) == \
                simulate_icache_config(stream, 4, size, 2)

    def test_vector_rejects_unsupported_associativity(self, stream):
        packed = pack_imiss_stream(stream)
        with pytest.raises(ValueError, match="associativity"):
            vector_icache_config(packed, 256 * 1024, 16, 4)

    def test_assoc2_lru_second_way_hit(self):
        """Two blocks alternate in one 2-way set: everything after the
        two compulsory misses must hit."""
        blocks_apart = 64 * 1024 // (16 * 2)  # same set, 64KB 2-way
        stream = [
            (0, 100, True, True),
            (0, 100 + blocks_apart, True, True),
            (0, 100, True, True),
            (0, 100 + blocks_apart, True, True),
        ]
        packed = pack_imiss_stream(stream)
        point = vector_icache_config(packed, 64 * 1024, 16, 2)
        assert point == simulate_icache_config(stream, 1, 64 * 1024, 2)
        assert point.os_misses == 2

    def test_assoc2_lru_eviction_order(self):
        """Third distinct block evicts the least-recently-used way."""
        apart = 64 * 1024 // (16 * 2)
        stream = [
            (0, 100, True, True),           # miss, set = [100]
            (0, 100 + apart, True, True),   # miss, set = [100, 100+a]
            (0, 100, True, True),           # hit, refreshes 100
            (0, 100 + 2 * apart, True, True),  # miss, evicts 100+a
            (0, 100, True, True),           # hit (100 survived)
            (0, 100 + apart, True, True),   # miss (was evicted)
        ]
        packed = pack_imiss_stream(stream)
        point = vector_icache_config(packed, 64 * 1024, 16, 2)
        assert point == simulate_icache_config(stream, 1, 64 * 1024, 2)
        assert point.os_misses == 4

    def test_assoc2_flush_invalidates_both_ways(self):
        apart = 64 * 1024 // (16 * 2)
        stream = [
            (0, 100, True, True),
            (0, 100 + apart, True, True),
            (FLUSH_CPU, 0, False, False),
            (0, 100, True, True),
            (0, 100 + apart, True, True),
        ]
        packed = pack_imiss_stream(stream)
        point = vector_icache_config(packed, 64 * 1024, 16, 2)
        assert point == simulate_icache_config(stream, 1, 64 * 1024, 2)
        assert point.os_misses == 4
        assert point.os_inval_misses == 2

    def test_flush_forces_inval_remiss(self):
        stream = [
            (0, 100, True, True),
            (FLUSH_CPU, 0, False, False),
            (0, 100, True, True),
        ]
        point = vector_icache_config(pack_imiss_stream(stream), 1024 * 1024)
        assert point.os_misses == 2
        assert point.os_inval_misses == 1

    def test_refill_clears_invalidated_membership(self):
        """Miss-after-flush refills the block; a later conflict miss on
        the same block must NOT count as an Inval miss."""
        blocks_apart = 1024 * 1024 // 16  # same set in a 1MB DM cache
        stream = [
            (0, 100, True, True),
            (FLUSH_CPU, 0, False, False),
            (0, 100, True, True),            # inval remiss, refills
            (0, 100 + blocks_apart, True, True),  # evicts block 100
            (0, 100, True, True),            # conflict miss, not inval
        ]
        packed = pack_imiss_stream(stream)
        point = vector_icache_config(packed, 1024 * 1024)
        assert point == simulate_icache_config(stream, 1, 1024 * 1024, 1)
        assert point.os_misses == 4
        assert point.os_inval_misses == 1

    def test_warmup_entries_fill_but_do_not_count(self):
        stream = [(0, 100, True, False), (0, 100, True, True)]
        point = vector_icache_config(pack_imiss_stream(stream), 1024 * 1024)
        assert point.os_misses == 0

    def test_empty_stream(self):
        point = vector_icache_config(pack_imiss_stream([]), 64 * 1024)
        assert (point.os_misses, point.os_inval_misses, point.app_misses) \
            == (0, 0, 0)

    def test_sweep_order_is_canonical(self, stream):
        points = simulate_icache_sweep_sharded(stream, 4, use_pool=False)
        serial = simulate_icache_sweep(stream, 4)
        assert [(p.size_bytes, p.associativity) for p in points] == \
            [(p.size_bytes, p.associativity) for p in serial]
