"""Processor: clock, mode accounting, reference issue."""

import pytest

from repro.common.params import MachineParams
from repro.common.types import Mode, RefDomain
from repro.cpu.processor import Processor
from repro.memsys.system import MemorySystem


@pytest.fixture
def cpu(params):
    return Processor(0, params, MemorySystem(params))


class TestModeAccounting:
    def test_starts_idle(self, cpu):
        assert cpu.mode is Mode.IDLE

    def test_advance_attributes_to_mode(self, cpu):
        cpu.set_mode(Mode.USER)
        cpu.advance(100)
        cpu.set_mode(Mode.KERNEL)
        cpu.advance(50)
        assert cpu.mode_cycles[Mode.USER] == 100
        assert cpu.mode_cycles[Mode.KERNEL] == 50

    def test_non_idle_cycles(self, cpu):
        cpu.set_mode(Mode.USER)
        cpu.advance(100)
        cpu.set_mode(Mode.IDLE)
        cpu.advance(900)
        assert cpu.non_idle_cycles() == 100

    def test_time_split_sums_to_one(self, cpu):
        cpu.set_mode(Mode.USER)
        cpu.advance(30)
        cpu.set_mode(Mode.IDLE)
        cpu.advance(70)
        split = cpu.time_split()
        assert sum(split.values()) == pytest.approx(1.0)
        assert split[Mode.IDLE] == pytest.approx(0.7)

    def test_rejects_negative_advance(self, cpu):
        with pytest.raises(ValueError):
            cpu.advance(-1)

    def test_advance_to_is_monotonic(self, cpu):
        cpu.advance(100)
        cpu.advance_to(50)  # no-op
        assert cpu.cycles == 100
        cpu.advance_to(200)
        assert cpu.cycles == 200


class TestAppEpoch:
    def test_entering_user_bumps_epoch(self, cpu):
        start = cpu.app_epoch
        cpu.set_mode(Mode.USER)
        assert cpu.app_epoch == start + 1

    def test_reentering_user_from_kernel_bumps(self, cpu):
        cpu.set_mode(Mode.USER)
        epoch = cpu.app_epoch
        cpu.set_mode(Mode.KERNEL)
        cpu.set_mode(Mode.USER)
        assert cpu.app_epoch == epoch + 1

    def test_user_to_user_does_not_bump(self, cpu):
        cpu.set_mode(Mode.USER)
        epoch = cpu.app_epoch
        cpu.set_mode(Mode.USER)
        assert cpu.app_epoch == epoch

    def test_domain_follows_mode(self, cpu):
        cpu.set_mode(Mode.USER)
        assert cpu.domain is RefDomain.APP
        cpu.set_mode(Mode.KERNEL)
        assert cpu.domain is RefDomain.OS
        cpu.set_mode(Mode.IDLE)
        assert cpu.domain is RefDomain.OS


class TestReferenceIssue:
    def test_ifetch_range_advances_issue_and_stall(self, cpu):
        cpu.set_mode(Mode.KERNEL)
        cpu.ifetch_range(0, 160)  # 10 blocks, all cold
        # 10 blocks x (4 issue + 35 stall)
        assert cpu.cycles == 10 * 39
        assert cpu.stall_cycles[Mode.KERNEL] == 350

    def test_refetch_is_cheap(self, cpu):
        cpu.set_mode(Mode.KERNEL)
        cpu.ifetch_range(0, 160)
        before = cpu.cycles
        cpu.ifetch_range(0, 160)
        assert cpu.cycles - before == 40  # issue only

    def test_dtouch_range_write(self, cpu):
        cpu.set_mode(Mode.KERNEL)
        cpu.dtouch_range(0x100000, 64, write=True)
        assert cpu.memsys.bus_writes == 4

    def test_empty_ranges_free(self, cpu):
        cpu.ifetch_range(0, 0)
        cpu.dtouch_range(0, 0)
        assert cpu.cycles == 0

    def test_charge_stall_rejects_negative(self, cpu):
        with pytest.raises(ValueError):
            cpu.charge_stall(-5)

    def test_uncached_read_goes_to_bus(self, cpu):
        cpu.set_mode(Mode.KERNEL)
        cpu.uncached_read(0xF0001)
        assert cpu.memsys.bus_uncached == 1
