"""Scheduler: run queue, priorities, context switches, migration."""

import pytest

from repro.kernel.process import Image, ProcState
from tests.test_kernel_core import dummy_driver, make_kernel


@pytest.fixture
def env():
    kernel, cpus = make_kernel()
    image = Image("x", text_pages=1, file_ino=1)
    procs = [kernel.create_process(f"p{i}", image, dummy_driver()) for i in range(3)]
    return kernel, cpus, procs


class TestRunQueue:
    def test_setrq_makes_runnable(self, env):
        kernel, cpus, procs = env
        kernel.scheduler.setrq(cpus[0], procs[0])
        assert procs[0].state is ProcState.RUNNABLE
        assert kernel.scheduler.runnable_waiting()

    def test_setrq_takes_runqlk(self, env):
        kernel, cpus, procs = env
        before = kernel.locks.lock("runqlk").stats.acquires
        kernel.scheduler.setrq(cpus[0], procs[0])
        assert kernel.locks.lock("runqlk").stats.acquires == before + 1

    def test_pick_next_empty(self, env):
        kernel, cpus, _ = env
        assert kernel.scheduler.pick_next(cpus[0]) is None

    def test_pick_best_priority(self, env):
        kernel, cpus, procs = env
        procs[0].priority = 40
        procs[1].priority = 10
        kernel.scheduler.setrq(cpus[0], procs[0])
        kernel.scheduler.setrq(cpus[0], procs[1])
        assert kernel.scheduler.pick_next(cpus[0]) is procs[1]

    def test_fifo_tiebreak(self, env):
        kernel, cpus, procs = env
        kernel.scheduler.setrq(cpus[0], procs[0])
        kernel.scheduler.setrq(cpus[0], procs[1])
        assert kernel.scheduler.pick_next(cpus[0]) is procs[0]


class TestContextSwitch:
    def test_dispatch_sets_current(self, env):
        kernel, cpus, procs = env
        kernel.scheduler.setrq(cpus[0], procs[0])
        chosen = kernel.scheduler.dispatch(cpus[0])
        assert chosen is procs[0]
        assert kernel.current[0] is procs[0]
        assert procs[0].state is ProcState.RUNNING
        assert cpus[0].current_pid == procs[0].pid

    def test_first_dispatch_not_migration(self, env):
        kernel, cpus, procs = env
        kernel.scheduler.setrq(cpus[0], procs[0])
        kernel.scheduler.dispatch(cpus[0])
        assert kernel.scheduler.migrations == 0

    def test_cross_cpu_dispatch_is_migration(self, env):
        kernel, cpus, procs = env
        kernel.scheduler.setrq(cpus[0], procs[0])
        kernel.scheduler.dispatch(cpus[0])
        kernel.current[0] = None
        kernel.scheduler.setrq(cpus[0], procs[0])
        kernel.scheduler.dispatch(cpus[1])
        assert kernel.scheduler.migrations == 1
        assert procs[0].migrations == 1

    def test_switch_touches_pcb_of_both(self, env):
        kernel, cpus, procs = env
        from repro.kernel.structures import StructName

        kernel.scheduler.setrq(cpus[0], procs[0])
        kernel.scheduler.dispatch(cpus[0])
        kernel.scheduler.setrq(cpus[0], procs[1])
        kernel.scheduler.context_switch(cpus[0], procs[0], procs[1])
        # The PCB region saw traffic (ground truth records D misses there).
        pcb_misses = [
            count for (dom, kind, cls), count
            in kernel.memsys.truth.counts.items()
            if kind == "D"
        ]
        assert sum(pcb_misses) > 0

    def test_preempt_decays_priority(self, env):
        kernel, cpus, procs = env
        kernel.scheduler.setrq(cpus[0], procs[0])
        kernel.scheduler.dispatch(cpus[0])
        before = procs[0].priority
        kernel.scheduler.preempt_current(cpus[0])
        assert procs[0].priority == before + 4

    def test_quantum_reset_on_dispatch(self, env):
        kernel, cpus, procs = env
        cpus[0].advance(12345)
        kernel.scheduler.setrq(cpus[0], procs[0])
        kernel.scheduler.dispatch(cpus[0])
        assert kernel.quantum_start_cycles[0] == cpus[0].cycles


class TestAffinity:
    def test_affinity_prefers_last_cpu(self, env):
        kernel, cpus, procs = env
        kernel.scheduler.affinity = True
        procs[0].last_cpu = 1
        procs[1].last_cpu = 0
        procs[0].priority = procs[1].priority = 20
        kernel.scheduler.setrq(cpus[0], procs[0])
        kernel.scheduler.setrq(cpus[0], procs[1])
        # CPU0 should prefer the process that last ran on it.
        assert kernel.scheduler.pick_next(cpus[0]) is procs[1]

    def test_affinity_bounded_by_priority(self, env):
        kernel, cpus, procs = env
        kernel.scheduler.affinity = True
        procs[0].last_cpu = 1
        procs[0].priority = 10
        procs[1].last_cpu = 0
        procs[1].priority = 40  # far worse: affinity must not pick it
        kernel.scheduler.setrq(cpus[0], procs[0])
        kernel.scheduler.setrq(cpus[0], procs[1])
        assert kernel.scheduler.pick_next(cpus[0]) is procs[0]

    def test_affinity_reduces_migrations_in_workload(self):
        """The paper's proposed optimization: affinity scheduling cuts
        migrations relative to the IRIX default."""
        from repro.kernel.kernel import KernelTuning
        from repro.kernel.vm import VmTuning
        from repro.api import Simulation

        def run(affinity):
            tuning = KernelTuning(
                quantum_ms=5.0, affinity_scheduling=affinity, vm=VmTuning()
            )
            sim = Simulation("multpgm", seed=5, tuning=tuning)
            sim.run(15.0, warmup_ms=30.0)
            sched = sim.kernel.scheduler
            return sched.migrations / max(1, sched.context_switches)

        assert run(True) < run(False)
