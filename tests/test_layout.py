"""Kernel text layout: placement, symbol lookup, engineered conflicts."""

import pytest

from repro.kernel.layout import ICACHE_BYTES, KernelLayout, Routine
from repro.memsys.memory import KTEXT_BASE, KTEXT_SIZE


@pytest.fixture(scope="module")
def layout():
    return KernelLayout()


class TestPlacement:
    def test_all_routines_inside_text(self, layout):
        for routine in layout.routines.values():
            assert KTEXT_BASE <= routine.base
            assert routine.end <= KTEXT_BASE + KTEXT_SIZE

    def test_no_overlaps(self, layout):
        spans = sorted(
            (r.base, r.end, r.name) for r in layout.routines.values()
        )
        for a, b in zip(spans, spans[1:]):
            assert a[1] <= b[0], f"{a[2]} overlaps {b[2]}"

    def test_explicit_placements_honoured(self, layout):
        assert layout.routine("excvec_entry").base == KTEXT_BASE
        assert layout.routine("fs_read").base == KTEXT_BASE + 0x0A000

    def test_expected_routines_exist(self, layout):
        for name in ("utlbmiss", "bcopy", "bclear", "pfdat_scan",
                     "runq_switch", "idle_loop", "disk_driver_hot",
                     "syscall_entry", "sginap_impl"):
            assert name in layout.routines

    def test_kernel_text_is_substantial(self, layout):
        """The image must exceed the I-cache several times over, or
        self-interference could not occur."""
        assert layout.text_end - KTEXT_BASE > 4 * ICACHE_BYTES


class TestSymbolLookup:
    def test_routine_at_base(self, layout):
        fs_read = layout.routine("fs_read")
        assert layout.routine_at(fs_read.base) == "fs_read"

    def test_routine_at_interior(self, layout):
        fs_read = layout.routine("fs_read")
        assert layout.routine_at(fs_read.base + fs_read.size // 2) == "fs_read"

    def test_routine_at_gap_returns_none(self, layout):
        # Address one byte past the last routine.
        assert layout.routine_at(layout.text_end) is None

    def test_routine_at_every_base(self, layout):
        for name, routine in layout.routines.items():
            assert layout.routine_at(routine.base) == name


class TestConflicts:
    def test_engineered_conflicts_present(self, layout):
        pairs = [
            ("fs_read", "disk_driver_hot"),
            ("syscall_entry", "tty_driver_hot"),
            ("runq_switch", "clock_intr"),
        ]
        for a, b in pairs:
            assert layout.routine(a).conflicts_with(layout.routine(b)), (a, b)

    def test_adjacent_routines_do_not_conflict_when_close(self):
        a = Routine("a", 0x1000, 256)
        b = Routine("b", 0x2000, 256)
        assert not a.conflicts_with(b)

    def test_same_offset_mod_cache_conflicts(self):
        a = Routine("a", 0x1000, 256)
        b = Routine("b", 0x1000 + ICACHE_BYTES, 256)
        assert a.conflicts_with(b)

    def test_wraparound_span(self):
        # Routine straddling the cache-image boundary.
        a = Routine("a", ICACHE_BYTES - 128, 256)
        b = Routine("b", ICACHE_BYTES, 64)  # maps to offset 0
        assert a.conflicts_with(b)

    def test_giant_routine_conflicts_with_everything(self):
        a = Routine("a", 0, ICACHE_BYTES)
        b = Routine("b", 5 * ICACHE_BYTES + 0x500, 64)
        assert a.conflicts_with(b)

    def test_conflicting_pairs_nonempty(self, layout):
        assert len(layout.conflicting_pairs()) > 5
