"""The machine-preset registry and the CPU-count scaling surface.

Covers the :mod:`repro.machines` registry itself (coherent geometry
scaling along the ladder), machine selection through every public layer
(Simulation, ExperimentContext, repro.api, the service), the audit of
former 4-CPU assumptions (interrupt routing, clock stagger, run-queue
hashing, sanitizer sizing), and the cache-key compatibility contract:
the default 4d340 machine must key and render byte-identically to the
world before presets existed.
"""

from __future__ import annotations

import warnings
from types import SimpleNamespace

import pytest

from repro import api
from repro.common.params import MachineParams
from repro.experiments._base import (
    EXHIBIT_SCHEMA_VERSION,
    Exhibit,
    ExperimentContext,
    RunSettings,
)
from repro.kernel.scheduler import Scheduler
from repro.machines import (
    DEFAULT_MACHINE,
    LADDER,
    MACHINES,
    canonical_machine,
    machine_for_cpus,
    resolve_machine,
    resolve_machine_name,
)
from repro.sim._session import Simulation, clock_stagger


class TestRegistry:
    def test_ladder_order_and_default(self):
        assert LADDER[0] == DEFAULT_MACHINE == "4d340"
        assert LADDER == ["4d340", "cpus8", "cpus16", "cpus32", "cpus64"]

    def test_default_is_legacy_params(self):
        assert MACHINES[DEFAULT_MACHINE].params == MachineParams()

    def test_geometry_scales_coherently(self):
        """Each doubling: L2 and memory double, bus stall +5, run
        queues double (one queue per 4-CPU cluster)."""
        presets = [MACHINES[name] for name in LADDER]
        for small, big in zip(presets, presets[1:]):
            assert big.params.num_cpus == 2 * small.params.num_cpus
            assert big.params.memory_bytes == 2 * small.params.memory_bytes
            assert big.params.bus_stall_cycles == small.params.bus_stall_cycles + 5
            if small.name != DEFAULT_MACHINE:
                assert big.params.dcache_l2.size_bytes == \
                    2 * small.params.dcache_l2.size_bytes
                assert big.run_queues == 2 * small.run_queues
            assert big.run_queues * 4 == big.params.num_cpus
            # Per-CPU L1s and the cycle time model "more of the same CPU".
            assert big.params.dcache_l1 == small.params.dcache_l1
            assert big.params.icache == small.params.icache
            assert big.params.cycle_ns == small.params.cycle_ns

    def test_resolve_machine(self):
        assert resolve_machine(None) == MachineParams()
        assert resolve_machine("cpus16").num_cpus == 16
        params = MachineParams(num_cpus=2)
        assert resolve_machine(params) is params
        with pytest.raises(ValueError, match="unknown machine"):
            resolve_machine("cray1")
        with pytest.raises(TypeError, match="preset name or MachineParams"):
            resolve_machine(16)

    def test_canonical_machine(self):
        assert canonical_machine("cpus8") == "cpus8"
        assert canonical_machine(None) == DEFAULT_MACHINE
        # Params equal to a preset canonicalize to its name...
        assert canonical_machine(MACHINES["cpus8"].params) == "cpus8"
        assert canonical_machine(MachineParams()) == DEFAULT_MACHINE
        # ...custom params stay themselves.
        custom = MachineParams(num_cpus=2)
        assert canonical_machine(custom) is custom

    def test_machine_for_cpus(self):
        assert machine_for_cpus(4) == "4d340"
        assert machine_for_cpus(64) == "cpus64"
        with pytest.raises(ValueError, match="no machine preset"):
            machine_for_cpus(12)

    def test_resolve_machine_name_chain(self, monkeypatch):
        monkeypatch.delenv("REPRO_MACHINE", raising=False)
        assert resolve_machine_name() == DEFAULT_MACHINE
        assert resolve_machine_name("cpus32") == "cpus32"
        monkeypatch.setenv("REPRO_MACHINE", "cpus8")
        assert resolve_machine_name() == "cpus8"
        assert resolve_machine_name("cpus16") == "cpus16"  # explicit wins
        monkeypatch.setenv("REPRO_MACHINE", "vax")
        with pytest.raises(ValueError, match="unknown machine"):
            resolve_machine_name()


class TestMachineParamsRouting:
    def test_default_routing(self):
        params = MachineParams()
        assert params.device_cpu == 0
        assert params.network_cpu == 1

    def test_uniprocessor_routes_to_cpu0(self):
        assert MachineParams(num_cpus=1).network_cpu == 0

    @pytest.mark.parametrize("ncpus", [8, 16, 32, 64])
    def test_scaled_routing_in_bounds(self, ncpus):
        params = resolve_machine(machine_for_cpus(ncpus))
        assert 0 <= params.device_cpu < ncpus
        assert 0 <= params.network_cpu < ncpus

    def test_routing_validation(self):
        with pytest.raises(ValueError, match="device_cpu"):
            MachineParams(num_cpus=4, device_cpu=4)
        with pytest.raises(ValueError, match="network_cpu"):
            MachineParams(num_cpus=4, network_cpu=-1)
        with pytest.raises(ValueError, match="network_cpu"):
            MachineParams(num_cpus=2, network_cpu=2)


class TestClockStagger:
    def test_legacy_4cpu_values(self):
        """The 4D/340's stagger is byte-identical to the pre-preset
        arithmetic (cache keys depend on the event stream)."""
        assert clock_stagger(333333, 4) == [333333, 416666, 499999, 583332]

    @pytest.mark.parametrize("ncpus", [1, 3, 5, 6, 8, 16, 33, 64])
    def test_exact_for_any_cpu_count(self, ncpus):
        period = 333333
        stagger = clock_stagger(period, ncpus)
        assert len(stagger) == ncpus
        assert stagger[0] == period
        # Strictly increasing, all inside one period: no two CPUs tick
        # together and nobody wraps into the next period.
        assert all(b > a for a, b in zip(stagger, stagger[1:]))
        assert all(period <= s < 2 * period for s in stagger)
        # Bresenham exactness: offsets are floor(period * i / n).
        assert [s - period for s in stagger] == [
            period * i // ncpus for i in range(ncpus)
        ]


class TestRunQueueHashing:
    @pytest.mark.parametrize("name", ["cpus8", "cpus16", "cpus32", "cpus64"])
    def test_every_queue_serves_a_cluster(self, name):
        preset = MACHINES[name]
        kernel = SimpleNamespace(params=preset.params)
        sched = Scheduler(kernel, num_queues=preset.run_queues)
        mapping = [
            sched.queue_of_cpu(cpu) for cpu in range(preset.params.num_cpus)
        ]
        # Every queue owned by at least one CPU, indices in range, and
        # contiguous 4-CPU clusters share a queue.
        assert set(mapping) == set(range(preset.run_queues))
        assert mapping == sorted(mapping)
        cluster = preset.params.num_cpus // preset.run_queues
        assert all(
            mapping[cpu] == cpu // cluster
            for cpu in range(preset.params.num_cpus)
        )


class TestSimulationSelection:
    def test_machine_by_name(self):
        sim = Simulation("multpgm", machine="cpus8")
        assert sim.params == MACHINES["cpus8"].params
        assert len(sim.processors) == 8
        # The preset's recommended distributed run queues are folded
        # into the default tuning.
        assert sim.kernel.scheduler.num_queues == MACHINES["cpus8"].run_queues

    def test_machine_params_equal_to_preset_gets_preset_queues(self):
        sim = Simulation("multpgm", machine=MACHINES["cpus8"].params)
        assert sim.kernel.scheduler.num_queues == MACHINES["cpus8"].run_queues

    def test_default_machine_keeps_global_queue(self):
        assert Simulation("multpgm").kernel.scheduler.num_queues == 1
        assert Simulation(
            "multpgm", machine="4d340"
        ).kernel.scheduler.num_queues == 1

    def test_explicit_tuning_wins(self):
        from repro.kernel.kernel import KernelTuning

        sim = Simulation(
            "multpgm", machine="cpus8", tuning=KernelTuning(num_run_queues=1)
        )
        assert sim.kernel.scheduler.num_queues == 1

    def test_machine_and_params_conflict(self):
        with pytest.raises(TypeError, match="not both"):
            Simulation("multpgm", machine="cpus8", params=MachineParams())

    def test_checked_run_sizes_sanitizers(self):
        """Per-CPU sanitizer state follows the machine, not a baked-in 4."""
        sim = Simulation("multpgm", machine="cpus8", seed=3, check=True)
        assert len(sim.checks.lockdep.held) == 8
        run = sim.run(1.0, warmup_ms=4.0)
        report = run.check_report
        assert report is not None and report.ok, report.to_text()


class TestContextAndCacheKeys:
    def test_default_cache_repr_is_legacy(self):
        assert RunSettings().cache_repr() == (
            "RunSettings(horizon_ms=80.0, warmup_ms=500.0, seed=7, "
            "check=False)"
        )

    def test_non_default_machine_enters_cache_repr(self):
        settings = RunSettings(machine="cpus16")
        assert settings.cache_repr().endswith("check=False, machine='cpus16')")

    def test_preset_params_key_as_name(self):
        by_name = RunSettings(machine="cpus16").cache_repr()
        by_params = RunSettings(machine=MACHINES["cpus16"].params).cache_repr()
        assert by_name == by_params

    def test_resolved_default_machine_has_no_sim_kwargs(self):
        ctx = ExperimentContext(RunSettings())
        *_rest, sim_kwargs, _shards = ctx._resolved({})
        assert sim_kwargs == {}
        *_rest, sim_kwargs, _shards = ctx._resolved({"machine": "4d340"})
        assert sim_kwargs == {}

    def test_resolved_scaled_machine(self):
        ctx = ExperimentContext(RunSettings())
        *_rest, sim_kwargs, _shards = ctx._resolved(
            {"machine": MACHINES["cpus8"].params}
        )
        assert sim_kwargs == {"machine": "cpus8"}


class TestExhibitSchema:
    def test_to_dict_carries_version(self):
        exhibit = Exhibit("t", "T", ("a",))
        exhibit.add_row(1)
        payload = exhibit.to_dict()
        assert payload["schema_version"] == EXHIBIT_SCHEMA_VERSION
        assert list(payload)[0] == "schema_version"

    def test_round_trip(self):
        exhibit = Exhibit("t", "T", ("a", "b"))
        exhibit.add_row(1, 2.5)
        exhibit.note("n")
        clone = Exhibit.from_dict(exhibit.to_dict())
        assert clone.to_dict() == exhibit.to_dict()
        assert clone.to_text() == exhibit.to_text()

    def test_accepts_version1_payload(self):
        payload = {
            "exhibit_id": "t", "title": "T", "columns": ["a"],
            "rows": [[1]], "notes": [],
        }
        clone = Exhibit.from_dict(payload)
        assert clone.rows == [(1,)]
        # Re-serialized at the current version.
        assert clone.to_dict()["schema_version"] == EXHIBIT_SCHEMA_VERSION

    def test_rejects_newer_version(self):
        payload = Exhibit("t", "T", ("a",)).to_dict()
        payload["schema_version"] = EXHIBIT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            Exhibit.from_dict(payload)


class TestApiSurface:
    def test_run_machine_kwarg(self):
        run = api.run("multpgm", horizon_ms=1.0, warmup_ms=4.0,
                      machine="cpus8")
        assert run.params.num_cpus == 8

    def test_params_shim_warns_and_works(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            run = api.run(
                "multpgm", horizon_ms=1.0, warmup_ms=4.0,
                params=MachineParams(num_cpus=2),
            )
        assert any(
            issubclass(w.category, DeprecationWarning) for w in caught
        )
        assert run.params.num_cpus == 2

    def test_machine_and_params_conflict(self):
        with pytest.raises(TypeError, match="not both"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                api.run("multpgm", machine="cpus8", params=MachineParams())

    def test_report_forwards_machine(self):
        report = api.report("multpgm", horizon_ms=1.0, warmup_ms=4.0,
                            machine="cpus8")
        assert report.analysis.total_misses() > 0

    def test_report_rejects_machine_with_run(self):
        run = api.run("multpgm", horizon_ms=1.0, warmup_ms=4.0)
        with pytest.raises(TypeError, match="machine"):
            api.report("multpgm", run=run, machine="cpus8")

    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError, match="unknown machine"):
            api.run("multpgm", horizon_ms=1.0, warmup_ms=4.0,
                    machine="pdp11")

    def test_exports(self):
        assert "cpus16" in api.MACHINES
        assert api.machine_for_cpus(8) == "cpus8"
        assert api.resolve_machine("cpus8").num_cpus == 8


class TestServiceMachineParam:
    def test_unknown_machine_is_400(self):
        from repro.service.app import ServiceApp, ServiceConfig

        app = ServiceApp(ServiceConfig(no_cache=True))
        reply = app.handle("GET", "/exhibits/table1", "machine=bogus")
        assert reply.status == 400
        assert reply.json()["choices"] == list(MACHINES)

    def test_alias_resolves_before_lookup(self):
        from repro.service.app import ServiceApp, ServiceConfig

        app = ServiceApp(ServiceConfig(no_cache=True))
        exhibit = Exhibit("figure-scaling", "T", ("a",))
        app.ctx.exhibit_cache["figure-scaling"] = exhibit
        direct = app.handle("GET", "/exhibits/figure-scaling", "")
        alias = app.handle("GET", "/exhibits/scaling", "")
        assert direct.status == alias.status == 200
        assert direct.body == alias.body


class TestScalingExperiment:
    def test_sweep_honors_env(self, monkeypatch):
        from repro.experiments import scaling

        monkeypatch.setenv("REPRO_SCALING_CPUS", "4, 8 32")
        ctx = ExperimentContext(RunSettings())
        assert scaling.sweep_machines(ctx) == ["4d340", "cpus8", "cpus32"]

    def test_sweep_caps_at_context_machine(self, monkeypatch):
        from repro.experiments import scaling

        monkeypatch.delenv("REPRO_SCALING_CPUS", raising=False)
        ctx = ExperimentContext(RunSettings(machine="cpus8"))
        assert scaling.sweep_machines(ctx) == ["4d340", "cpus8"]
        ctx = ExperimentContext(RunSettings(machine="cpus64"))
        assert scaling.sweep_machines(ctx) == LADDER
        # The default ladder stops at cpus16.
        ctx = ExperimentContext(RunSettings())
        assert scaling.sweep_machines(ctx) == ["4d340", "cpus8", "cpus16"]

    def test_build_and_alias(self, monkeypatch):
        from repro.experiments.registry import run_experiment

        monkeypatch.setenv("REPRO_SCALING_CPUS", "4 8")
        ctx = ExperimentContext(RunSettings(horizon_ms=2.0, warmup_ms=10.0))
        exhibit = run_experiment("scaling", ctx)
        assert exhibit.exhibit_id == "figure-scaling"
        assert [row[0] for row in exhibit.rows] == ["4d340", "cpus8"]
        assert [row[1] for row in exhibit.rows] == [4, 8]
        # Alias and canonical id share the context cache entry.
        assert run_experiment("figure-scaling", ctx) is exhibit


@pytest.mark.slow
class TestShardedIdentityAt16CPUs:
    def test_sharded_matches_serial(self):
        """Seam crosschecks and byte-identity hold off the 4-CPU default."""
        from repro.analysis.report import analyze_trace
        from repro.sim.runcache import load_or_run

        run, _ = load_or_run(
            None, "multpgm", 2.0, 10.0, seed=3,
            sim_kwargs={"machine": "cpus16"},
        )
        serial = analyze_trace(run, shards=1).analysis
        sharded = analyze_trace(run, shards=2).analysis
        for name in type(serial).__dataclass_fields__:
            assert getattr(sharded, name) == getattr(serial, name), name
